"""Experiment runners reproducing every table and figure of the paper.

Each module maps to an evaluation artefact (see DESIGN.md's experiment
index); ``benchmarks/`` wraps these runners with pytest-benchmark so the
tables can be regenerated with one command.
"""

from .workloads import (SCALES, ExperimentScale, Workload, build_workload,
                        current_scale)
from .common import (VARIANTS, ap_comparator, ap_rankings, format_table,
                     make_model, model_rankings, train_variant)
from .search_quality import (ALL_MEASURES, TABLE2_METHODS, TABLE3_METHODS,
                             format_results, run_cell, run_search_quality)
from .efficiency import (IndexedTiming, SearchTiming, TrainingCost,
                         db_sizes_for_scale, run_indexed_search_time,
                         run_search_time, run_training_time)
from .sensitivity import (ConvergenceCurve, format_series, run_convergence,
                          run_embedding_dim_sweep, run_scan_width_sweep,
                          run_training_size_sweep)
from .clustering_exp import ClusteringPoint, run_clustering
from .zero_shot import ZeroShotResult, run_zero_shot
from .case_study import CaseStudy, pick_representative_queries, run_case_study

__all__ = [
    "SCALES", "ExperimentScale", "Workload", "build_workload",
    "current_scale",
    "VARIANTS", "ap_comparator", "ap_rankings", "format_table", "make_model",
    "model_rankings", "train_variant",
    "ALL_MEASURES", "TABLE2_METHODS", "TABLE3_METHODS", "format_results",
    "run_cell", "run_search_quality",
    "IndexedTiming", "SearchTiming", "TrainingCost", "db_sizes_for_scale",
    "run_indexed_search_time", "run_search_time", "run_training_time",
    "ConvergenceCurve", "format_series", "run_convergence",
    "run_embedding_dim_sweep", "run_scan_width_sweep",
    "run_training_size_sweep",
    "ClusteringPoint", "run_clustering",
    "ZeroShotResult", "run_zero_shot",
    "CaseStudy", "pick_representative_queries", "run_case_study",
]
