"""Tests for the embedding-accelerated similarity join."""

import numpy as np
import pytest

from repro import NeuTraj, NeuTrajConfig, PortoConfig, generate_porto
from repro.applications import (calibrate_threshold, exact_join,
                                similarity_join)
from repro.measures import get_measure, pairwise_distances


@pytest.fixture(scope="module")
def world():
    rng = np.random.default_rng(55)
    dataset = generate_porto(
        PortoConfig(num_trajectories=80, min_points=8, max_points=16,
                    num_route_families=6, family_fraction=0.9,
                    noise_std=15.0), seed=55)
    seeds_ds, rest = dataset.split((0.4, 0.6), rng)
    seeds, items = list(seeds_ds), list(rest)
    measure = get_measure("hausdorff")
    seed_matrix = pairwise_distances(seeds, measure)
    model = NeuTraj(NeuTrajConfig(measure="hausdorff", embedding_dim=16,
                                  epochs=4, sampling_num=5, batch_anchors=10,
                                  cell_size=500.0, seed=0))
    model.fit(seeds, distance_matrix=seed_matrix)
    return model, seeds, seed_matrix, items, measure


def test_exact_join_reference(world):
    _, _, _, items, measure = world
    threshold = 400.0
    pairs = exact_join(items, measure, threshold)
    for i, j in pairs:
        assert i < j
        assert measure(items[i], items[j]) <= threshold


def test_calibrated_join_recall(world):
    model, seeds, seed_matrix, items, measure = world
    threshold = 800.0  # wide enough for a stable positive-pair population
    embedding_threshold = calibrate_threshold(
        model, seeds, seed_matrix, threshold, target_recall=0.98)
    result = similarity_join(model, items, measure, threshold,
                             embedding_threshold)
    truth = set(exact_join(items, measure, threshold))
    found = set(result.pairs)
    assert found <= truth  # refine stage guarantees precision 1.0
    assert truth, "workload produced no true join pairs"
    recall = len(found & truth) / len(truth)
    assert recall >= 0.5, f"join recall too low: {recall:.2f}"


def test_join_saves_exact_computations(world):
    model, seeds, seed_matrix, items, measure = world
    threshold = 400.0
    embedding_threshold = calibrate_threshold(model, seeds, seed_matrix,
                                              threshold)
    result = similarity_join(model, items, measure, threshold,
                             embedding_threshold)
    all_pairs = len(items) * (len(items) - 1) // 2
    assert result.num_exact_computations < all_pairs


def test_calibrate_threshold_recall_monotone(world):
    model, seeds, seed_matrix, _, _ = world
    low = calibrate_threshold(model, seeds, seed_matrix, 400.0,
                              target_recall=0.5)
    high = calibrate_threshold(model, seeds, seed_matrix, 400.0,
                               target_recall=0.99)
    assert high >= low


def test_calibrate_threshold_no_positives_falls_back(world):
    model, seeds, seed_matrix, _, _ = world
    out = calibrate_threshold(model, seeds, seed_matrix,
                              distance_threshold=1e-9)
    assert out > 0.0


def test_calibrate_rejects_bad_recall(world):
    model, seeds, seed_matrix, _, _ = world
    with pytest.raises(ValueError):
        calibrate_threshold(model, seeds, seed_matrix, 100.0,
                            target_recall=0.0)
