"""Tests for indexed search pipelines."""

import numpy as np
import pytest

from repro.approx import AnchorHausdorff
from repro.datasets import Grid
from repro.index import (GridInvertedIndex, RTree, candidates_for_query,
                         search_approx, search_embedding, search_exact)
from repro.measures import get_measure


@pytest.fixture
def database(small_dataset):
    return list(small_dataset)


@pytest.fixture
def rtree(database):
    return RTree.from_trajectories(database)


@pytest.fixture
def grid_index(database, small_dataset):
    grid = Grid.for_dataset(small_dataset, cell_size=500.0)
    return GridInvertedIndex.from_trajectories(database, grid)


def test_candidates_rtree_vs_grid(database, rtree, grid_index):
    q = database[3]
    c_rtree = candidates_for_query(rtree, q, margin=100.0)
    c_grid = candidates_for_query(grid_index, q, ring=1)
    assert 3 in c_rtree
    assert 3 in c_grid


def test_candidates_rejects_unknown_index(database):
    with pytest.raises(TypeError):
        candidates_for_query(object(), database[0])


def test_search_exact_returns_sorted_by_measure(database, rtree):
    measure = get_measure("hausdorff")
    result = search_exact(rtree, database[0], database, measure, k=5,
                          margin=200.0)
    assert result.ids[0] == 0
    dists = [measure(database[0], database[i]) for i in result.ids]
    assert dists == sorted(dists)
    assert result.num_candidates >= len(result.ids)


def test_search_exact_subset_of_candidates(database, rtree):
    measure = get_measure("hausdorff")
    result = search_exact(rtree, database[0], database, measure, k=50)
    cand = set(candidates_for_query(rtree, database[0]))
    assert set(result.ids.tolist()) <= cand


def test_search_approx_pipeline(database, rtree, small_dataset):
    approx = AnchorHausdorff(small_dataset.bbox, num_anchors=36, seed=0)
    sketches = [approx.preprocess(t.points) for t in database]
    result = search_approx(rtree, database[2], database, approx, sketches,
                           k=5, margin=200.0)
    assert result.ids[0] == 2  # identical sketch distance 0
    assert len(result.ids) <= 5


def test_search_embedding_pipeline(database, grid_index, rng):
    embeddings = rng.normal(size=(len(database), 8))
    query_emb = embeddings[4] + 1e-6
    result = search_embedding(grid_index, database[4], query_emb, embeddings,
                              k=5)
    assert result.ids[0] == 4


def test_empty_candidates_give_empty_result(database):
    # An R-tree over far-away boxes yields no candidates for our query.
    far = RTree([(1e7, 1e7, 1e7 + 1, 1e7 + 1)] * 3)
    measure = get_measure("hausdorff")
    result = search_exact(far, database[0], database[:3], measure, k=5)
    assert len(result.ids) == 0
    assert result.num_candidates == 0


def test_index_prunes_relative_to_full_scan(database, rtree):
    """A localised query should involve fewer candidates than the DB size."""
    counts = [len(candidates_for_query(rtree, q)) for q in database[:10]]
    assert min(counts) < len(database)
