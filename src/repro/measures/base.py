"""Measure interface and registry.

NeuTraj is *generic*: any trajectory measure can guide training (paper §I).
Measures implement :class:`TrajectoryMeasure` and register under a string
name so experiment configs can select them (``get_measure("dtw")``).
"""

from __future__ import annotations

from typing import Callable, Dict, Type

import numpy as np


def point_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All-pairs Euclidean distances between two point sequences.

    Parameters
    ----------
    a, b:
        Arrays of shape (n, 2) and (m, 2).

    Returns
    -------
    (n, m) distance matrix.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt((diff * diff).sum(axis=-1))


class TrajectoryMeasure:
    """Base class: a distance function over point arrays.

    Sub-classes implement :meth:`distance` on raw (L, 2) arrays; the
    convenience ``__call__`` also accepts :class:`~repro.datasets.Trajectory`.
    """

    #: registry name, set by subclasses
    name: str = ""
    #: True when the measure is a metric (symmetric + triangle inequality)
    is_metric: bool = True

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        raise NotImplementedError

    def __call__(self, a, b) -> float:
        a = getattr(a, "points", a)
        b = getattr(b, "points", b)
        return self.distance(np.asarray(a), np.asarray(b))

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


_REGISTRY: Dict[str, Callable[..., TrajectoryMeasure]] = {}


def register_measure(name: str):
    """Class decorator adding a measure to the registry under ``name``."""

    def decorator(cls: Type[TrajectoryMeasure]) -> Type[TrajectoryMeasure]:
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def get_measure(name: str, **kwargs) -> TrajectoryMeasure:
    """Instantiate a registered measure by name (e.g. ``"frechet"``)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown measure {name!r}; available: {sorted(_REGISTRY)}") from None
    return factory(**kwargs)


def available_measures() -> list:
    """Names of all registered measures."""
    return sorted(_REGISTRY)
