"""Self-tests for the fault-injection toolkit.

The injectors drive every resilience test in the repo, so their own
determinism is load-bearing: a flaky injector would make the fault suite
flaky everywhere at once.
"""

import numpy as np
import pytest

from repro.measures import get_measure
from repro.testing import (CorruptionSpec, FaultInjected, FlakyCallable,
                           HangInWorker, KillWorkerOnce, corrupt_bytes,
                           fail_on_nth_call)

pytestmark = pytest.mark.faults


# ------------------------------------------------------------- FlakyCallable

def test_flaky_fails_exactly_the_scripted_calls():
    flaky = FlakyCallable(lambda x: x * 2, fail_on=(2, 4))
    assert flaky(1) == 2
    with pytest.raises(FaultInjected, match="call 2"):
        flaky(1)
    assert flaky(3) == 6
    with pytest.raises(FaultInjected):
        flaky(3)
    assert flaky(5) == 10
    assert flaky.calls == 5
    assert flaky.failures_injected == 2


def test_flaky_fail_every():
    flaky = FlakyCallable(lambda: "ok", fail_every=3)
    outcomes = []
    for _ in range(6):
        try:
            outcomes.append(flaky())
        except FaultInjected:
            outcomes.append("boom")
    assert outcomes == ["ok", "ok", "boom", "ok", "ok", "boom"]


def test_flaky_custom_exception_and_passthrough():
    flaky = FlakyCallable(sorted, fail_on=(1,),
                          exc_factory=lambda c: KeyError(c))
    with pytest.raises(KeyError):
        flaky([3, 1])
    assert flaky([3, 1, 2]) == [1, 2, 3]  # args/kwargs pass through


def test_fail_on_nth_call_window():
    flaky = fail_on_nth_call(lambda: 1, n=2, times=2)
    assert flaky() == 1
    for _ in range(2):
        with pytest.raises(FaultInjected):
            flaky()
    assert flaky() == 1
    with pytest.raises(ValueError):
        fail_on_nth_call(lambda: 1, n=0)


# ---------------------------------------------------------------- corruption

def test_flip_is_deterministic_and_reversible(tmp_path):
    path = tmp_path / "blob"
    original = bytes(range(256))
    path.write_bytes(original)
    offset = corrupt_bytes(path, mode="flip")
    assert offset == 128
    assert path.read_bytes() != original
    corrupt_bytes(path, mode="flip")    # same offset: flips back
    assert path.read_bytes() == original


def test_truncate_and_zero(tmp_path):
    path = tmp_path / "blob"
    path.write_bytes(b"x" * 100)
    corrupt_bytes(path, mode="truncate", offset=10)
    assert path.stat().st_size == 10
    path.write_bytes(b"x" * 100)
    CorruptionSpec(mode="zero", offset=5, length=3).apply(path)
    blob = path.read_bytes()
    assert blob[5:8] == b"\x00\x00\x00" and blob[:5] == b"x" * 5


def test_corruption_rejects_nonsense(tmp_path):
    path = tmp_path / "blob"
    path.write_bytes(b"")
    with pytest.raises(ValueError, match="empty"):
        corrupt_bytes(path)
    path.write_bytes(b"data")
    with pytest.raises(ValueError, match="unknown corruption mode"):
        corrupt_bytes(path, mode="sparkle")


def test_negative_offset_counts_from_end(tmp_path):
    path = tmp_path / "blob"
    path.write_bytes(b"abcdef")
    offset = corrupt_bytes(path, mode="zero", offset=-2)
    assert offset == 4
    assert path.read_bytes() == b"abcd\x00f"


# --------------------------------------------------- multiprocessing wrappers

def test_kill_wrapper_is_inert_in_the_parent(tmp_path):
    """only_in_children=True must never kill the test process itself, and
    must delegate to the real measure untouched."""
    measure = get_measure("hausdorff")
    wrapper = KillWorkerOnce(measure, tmp_path / "marker")
    a = np.array([[0.0, 0.0], [1.0, 1.0]])
    b = np.array([[0.0, 1.0], [1.0, 0.0]])
    assert wrapper.distance(a, b) == measure.distance(a, b)
    assert not (tmp_path / "marker").exists()
    assert wrapper.cache_token() == measure.cache_token()


def test_hang_wrapper_is_inert_in_the_parent():
    measure = get_measure("hausdorff")
    wrapper = HangInWorker(measure, sleep_s=60.0)
    a = np.array([[0.0, 0.0], [1.0, 1.0]])
    b = np.array([[0.0, 1.0], [1.0, 0.0]])
    # would take 60s if the hang fired here
    assert wrapper.distance(a, b) == measure.distance(a, b)


def test_wrappers_are_picklable():
    import pickle

    measure = get_measure("hausdorff")
    for wrapper in (KillWorkerOnce(measure, "/tmp/m"),
                    HangInWorker(measure, sleep_s=1.0, marker_path="/tmp/m2")):
        clone = pickle.loads(pickle.dumps(wrapper))
        assert clone.cache_token() == measure.cache_token()
