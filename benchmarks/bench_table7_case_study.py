"""Table VII — case study: top-3 retrieval vs ground truth.

Retrieval detail for one short and one long query (the paper shows T91 and
T65): the top-3 ids from the ground truth and from NeuTraj, plus the
per-query quality numbers printed in the table header.
"""

import pytest

from repro.experiments import format_table, run_case_study, train_variant


@pytest.fixture(scope="module")
def table7(porto_workload):
    return run_case_study(porto_workload, "frechet")


def test_table7_case_study(benchmark, table7, porto_workload, report):
    model = train_variant("neutraj", porto_workload, "frechet")
    short_query = porto_workload.queries[table7[0].query_index]
    benchmark(lambda: model.embed([short_query]))

    rows = []
    for study in table7:
        rows.append([
            f"T{study.query_index}", study.query_length,
            str(study.truth_top3), str(study.neutraj_top3),
            f"{study.hr10:.2f}", f"{study.hr50:.2f}",
            f"{study.r10_at_50:.2f}",
            f"{study.delta_h5:.0f}/{study.delta_h10:.0f}/{study.delta_r10:.0f}",
        ])
    report("table7_case_study",
           format_table("Table VII: case study (short & long query, Fréchet)",
                        ["query", "len", "GT top-3", "NeuTraj top-3",
                         "HR@10", "HR@50", "R10@50", "dH5/dH10/dR10"], rows))

    short, long_ = table7
    assert short.query_length <= long_.query_length
    for study in table7:
        # NeuTraj recovers at least part of the true neighbourhood.
        assert study.r10_at_50 > 0.0
