"""WALTailer gap detection: LSN jumps and shrunk (truncated) segments.

A reader that silently skipped records would diverge from the primary;
both truncation shapes must surface as :class:`WALGapError` carrying the
last successfully applied LSN so the reader knows where its good prefix
ends and rebuilds from the snapshot.
"""

import numpy as np
import pytest

from repro.serving.wal import (OP_INSERT, ShardWAL, WALGapError, WALTailer,
                               list_segments)

pytestmark = pytest.mark.streaming


def _append_n(wal, n, dim=3, start=0):
    for i in range(n):
        ids = np.array([start + i], dtype=np.int64)
        rows = np.full((1, dim), float(start + i))
        wal.append(OP_INSERT, ids, rows)


def test_tailer_reads_records_in_lsn_order(tmp_path):
    wal = ShardWAL(tmp_path, segment_bytes=1 << 20)
    _append_n(wal, 5)
    tailer = WALTailer(tmp_path)
    records = tailer.poll()
    assert [r.lsn for r in records] == [1, 2, 3, 4, 5]
    assert tailer.last_lsn == 5
    assert tailer.poll() == []  # each record exactly once
    wal.close()


def test_shrunk_segment_raises_gap_with_last_good_lsn(tmp_path):
    wal = ShardWAL(tmp_path, segment_bytes=1 << 20)
    _append_n(wal, 4)
    tailer = WALTailer(tmp_path)
    assert len(tailer.poll()) == 4
    wal.close()

    # The primary rewrites the segment shorter than bytes this reader
    # already consumed (torn-tail repair / truncation gone wrong).
    [segment] = list_segments(tmp_path)
    data = segment.read_bytes()
    with open(segment, "r+b") as handle:
        handle.truncate(len(data) // 2)

    with pytest.raises(WALGapError) as excinfo:
        tailer.poll()
    assert excinfo.value.last_lsn == 4
    assert "shrank" in str(excinfo.value)


def test_unchanged_segment_is_not_a_gap(tmp_path):
    """Boundary: offset == len(data) means caught up, not truncated."""
    wal = ShardWAL(tmp_path, segment_bytes=1 << 20)
    _append_n(wal, 2)
    tailer = WALTailer(tmp_path)
    assert len(tailer.poll()) == 2
    assert tailer.poll() == []
    assert tailer.poll() == []
    wal.close()


def test_lsn_jump_raises_gap_with_last_good_lsn(tmp_path):
    # Tiny segments: every record rotates into its own file, so
    # truncating the WAL behind a snapshot removes whole early segments.
    wal = ShardWAL(tmp_path, segment_bytes=1)
    _append_n(wal, 5)
    tailer = WALTailer(tmp_path)
    records = tailer.poll()
    assert [r.lsn for r in records][:1] == [1]
    applied = tailer.last_lsn
    assert applied == 5

    # A reader that only applied lsn 1 while the primary truncated
    # through 3: its next record is lsn 4 — a jump it must not bridge.
    stale = WALTailer(tmp_path, applied_lsn=1)
    wal.truncate_through(3)
    with pytest.raises(WALGapError) as excinfo:
        stale.poll()
    assert excinfo.value.last_lsn == 1
    assert "jumped" in str(excinfo.value) or "gap" in str(excinfo.value)
    wal.close()


def test_torn_tail_ends_poll_without_error(tmp_path):
    """A mid-record tail is in-flight, not a gap: poll returns the clean
    prefix and picks the record up once its bytes complete."""
    wal = ShardWAL(tmp_path, segment_bytes=1 << 20)
    _append_n(wal, 3)
    [segment] = list_segments(tmp_path)
    whole = segment.read_bytes()
    wal.close()

    with open(segment, "r+b") as handle:
        handle.truncate(len(whole) - 4)  # shear the last record's tail

    tailer = WALTailer(tmp_path)
    records = tailer.poll()
    assert [r.lsn for r in records] == [1, 2]

    with open(segment, "r+b") as handle:
        handle.seek(0, 2)
        handle.write(whole[-4:])  # the missing bytes land
    assert [r.lsn for r in tailer.poll()] == [3]
    assert tailer.last_lsn == 3
