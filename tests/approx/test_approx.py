"""Tests for the approximate-distance baselines (AP)."""

import numpy as np
import pytest

from repro.approx import (AnchorHausdorff, CurveLSH, FastDTW, GridDTW,
                          GridFrechet, fastdtw, get_approx, snap_curve)
from repro.measures import get_measure


@pytest.fixture
def curve_pair(rng):
    a = np.cumsum(rng.normal(size=(40, 2)) * 20, axis=0) + 2000.0
    b = a + rng.normal(size=a.shape) * 15.0
    return a, b


class TestSnapCurve:
    def test_dedupes_consecutive(self):
        pts = np.array([[0.1, 0.1], [0.2, 0.2], [5.1, 5.1]])
        cells = snap_curve(pts, delta=1.0)
        assert len(cells) == 2
        np.testing.assert_array_equal(cells, [[0, 0], [5, 5]])

    def test_offset_shifts_cells(self):
        pts = np.array([[0.9, 0.9]])
        assert snap_curve(pts, 1.0)[0].tolist() == [0, 0]
        assert snap_curve(pts, 1.0, offset=0.2)[0].tolist() == [1, 1]

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            snap_curve(np.zeros((2, 2)), 0.0)


class TestGridFrechet:
    def test_error_bounded_by_delta(self, curve_pair):
        a, b = curve_pair
        exact = get_measure("frechet").distance(a, b)
        for delta in (10.0, 50.0):
            approx = GridFrechet(delta=delta).distance(a, b)
            assert abs(approx - exact) <= np.sqrt(2) * delta + 1e-9

    def test_simplification_shortens(self, curve_pair):
        a, _ = curve_pair
        sig = GridFrechet(delta=200.0).preprocess(a)
        assert len(sig) < len(a)

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            GridFrechet(delta=-1.0)


class TestGridDTW:
    def test_roughly_tracks_exact(self, curve_pair):
        a, b = curve_pair
        exact = get_measure("dtw").distance(a, b)
        approx = GridDTW(delta=20.0).distance(a, b)
        assert approx == pytest.approx(exact, rel=0.7)


class TestFastDTW:
    def test_exact_on_short_inputs(self, rng):
        dtw = get_measure("dtw")
        a = rng.normal(size=(4, 2))
        b = rng.normal(size=(3, 2))
        assert FastDTW(radius=1).distance(a, b) == pytest.approx(
            dtw.distance(a, b))

    def test_upper_bounds_exact(self, curve_pair):
        """FastDTW restricts the warp corridor, so it never undershoots."""
        a, b = curve_pair
        exact = get_measure("dtw").distance(a, b)
        assert FastDTW(radius=1).distance(a, b) >= exact - 1e-9

    def test_larger_radius_is_tighter(self, curve_pair):
        a, b = curve_pair
        loose = FastDTW(radius=0).distance(a, b)
        tight = FastDTW(radius=4).distance(a, b)
        assert tight <= loose + 1e-9

    def test_close_to_exact_for_moderate_radius(self, curve_pair):
        a, b = curve_pair
        exact = get_measure("dtw").distance(a, b)
        assert FastDTW(radius=3).distance(a, b) == pytest.approx(exact, rel=0.2)

    def test_path_endpoints(self, rng):
        a = rng.normal(size=(16, 2))
        b = rng.normal(size=(12, 2))
        _, path = fastdtw(a, b, radius=1)
        assert path[0] == (0, 0)
        assert path[-1] == (15, 11)

    def test_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            FastDTW(radius=-1)


class TestAnchorHausdorff:
    def test_lower_bounds_exact(self, rng):
        bbox = (0.0, 0.0, 1000.0, 1000.0)
        approx = AnchorHausdorff(bbox, num_anchors=64, seed=0)
        exact = get_measure("hausdorff")
        for _ in range(10):
            a = rng.uniform(0, 1000, size=(15, 2))
            b = rng.uniform(0, 1000, size=(12, 2))
            assert approx.distance(a, b) <= exact.distance(a, b) + 1e-9

    def test_more_anchors_tighter(self, rng):
        bbox = (0.0, 0.0, 1000.0, 1000.0)
        exact = get_measure("hausdorff")
        gaps_few, gaps_many = [], []
        for i in range(10):
            r = np.random.default_rng(i)
            a = r.uniform(0, 1000, size=(15, 2))
            b = r.uniform(0, 1000, size=(12, 2))
            true = exact.distance(a, b)
            gaps_few.append(true - AnchorHausdorff(bbox, 9, seed=0).distance(a, b))
            gaps_many.append(true - AnchorHausdorff(bbox, 400, seed=0).distance(a, b))
        assert np.mean(gaps_many) < np.mean(gaps_few)

    def test_sketch_is_anchor_count(self):
        approx = AnchorHausdorff((0, 0, 10, 10), num_anchors=16, seed=0)
        sig = approx.preprocess(np.zeros((5, 2)))
        assert sig.shape == (16,)

    def test_rejects_bad_anchor_count(self):
        with pytest.raises(ValueError):
            AnchorHausdorff((0, 0, 1, 1), num_anchors=0)


class TestCurveLSH:
    def test_identical_curves_collide_at_finest(self, rng):
        a = rng.uniform(0, 100, size=(10, 2))
        lsh = CurveLSH([1.0, 10.0, 100.0], num_offsets=3, seed=0)
        assert lsh.distance(a, a) == 1.0

    def test_far_curves_do_not_collide_finely(self, rng):
        a = rng.uniform(0, 10, size=(10, 2))
        b = a + 500.0
        lsh = CurveLSH([1.0, 10.0], num_offsets=2, seed=0)
        assert lsh.distance(a, b) == float("inf")

    def test_resolution_ladder_monotone_requirement(self):
        with pytest.raises(ValueError):
            CurveLSH([10.0, 1.0])

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            CurveLSH([0.0, 1.0])

    def test_close_curves_collide_earlier(self, rng):
        a = np.cumsum(rng.normal(size=(20, 2)), axis=0)
        near = a + 0.05
        far = a + 30.0
        lsh = CurveLSH([0.5, 2.0, 8.0, 32.0, 128.0], num_offsets=4, seed=1)
        assert lsh.distance(a, near) <= lsh.distance(a, far)


class TestGetApprox:
    def test_dispatch(self):
        assert isinstance(get_approx("frechet"), GridFrechet)
        assert isinstance(get_approx("dtw"), FastDTW)
        assert isinstance(get_approx("hausdorff", bbox=(0, 0, 1, 1)),
                          AnchorHausdorff)

    def test_erp_unsupported(self):
        with pytest.raises(ValueError):
            get_approx("erp")

    def test_hausdorff_requires_bbox(self):
        with pytest.raises(ValueError):
            get_approx("hausdorff")

    def test_unknown_measure(self):
        with pytest.raises(KeyError):
            get_approx("nope")


class TestLSHCurveDistance:
    def test_self_collides_at_finest(self, rng):
        from repro.approx import LSHCurveDistance
        ap = LSHCurveDistance(base_resolution=1.0, levels=5, seed=0)
        a = rng.uniform(0, 50, size=(12, 2))
        assert ap.distance(a, a) == 1.0

    def test_far_pairs_report_beyond_ladder(self, rng):
        from repro.approx import LSHCurveDistance
        ap = LSHCurveDistance(base_resolution=1.0, levels=3, seed=0)
        a = rng.uniform(0, 5, size=(8, 2))
        b = a + 1000.0
        assert ap.distance(a, b) == 2.0 * 4.0  # 2x coarsest resolution

    def test_ordering_monotone_with_offset(self, rng):
        from repro.approx import LSHCurveDistance
        ap = LSHCurveDistance(base_resolution=2.0, levels=8, seed=1)
        a = np.cumsum(rng.normal(size=(20, 2)), axis=0)
        near = a + 0.2
        far = a + 60.0
        assert ap.distance(a, near) <= ap.distance(a, far)

    def test_estimates_quantised_to_ladder(self, rng):
        from repro.approx import LSHCurveDistance
        ap = LSHCurveDistance(base_resolution=1.0, levels=4, seed=0)
        ladder = {1.0, 2.0, 4.0, 8.0, 16.0}
        for i in range(8):
            r = np.random.default_rng(i)
            a = r.uniform(0, 30, size=(10, 2))
            b = r.uniform(0, 30, size=(10, 2))
            assert ap.distance(a, b) in ladder

    def test_rejects_bad_levels(self):
        from repro.approx import LSHCurveDistance
        with pytest.raises(ValueError):
            LSHCurveDistance(base_resolution=1.0, levels=0)
