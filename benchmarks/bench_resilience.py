"""Resilience benchmark: serving behaviour under injected faults.

Where ``bench_serving`` measures the happy path, this benchmark measures
the *contract under failure* introduced by the fault-tolerance layer:

* **faulty_encoder** — a :class:`~repro.testing.FlakyCallable` makes the
  encoder raise on a scripted schedule while queries keep arriving. The
  circuit breaker must trip and the grid-index fallback must keep
  answering (``degraded=True``); every query must end in an answer or a
  *typed* error — ``failed`` counts anything else and must be 0. p50/p99
  latency is reported across all queries, including the degraded ones.
* **load_shedding** — more concurrent clients than ``max_inflight``
  permits; the admission gate must shed the excess with
  :class:`~repro.exceptions.ServiceOverloadedError` (the HTTP 429 path)
  and ``accepted + shed`` must equal ``offered``.
* **no_hangs** — the whole run is wall-clock-bounded; a single stuck
  future or un-joined thread fails the benchmark.

Run with ``PYTHONPATH=src python benchmarks/bench_resilience.py``;
``scripts/check_bench_regression.py --only resilience`` compares a fresh
run against the committed ``BENCH_resilience.json``. The functional
fields (``failed``, ``breaker_opened``, shed accounting) are hard
checks; latency uses a loose threshold because degraded-path timings on
shared CPUs are noisy.
"""

from __future__ import annotations

import argparse
import json
import os
import threading
import time
from pathlib import Path

import numpy as np

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_resilience.json"

CONFIG = {
    "num_seeds": 30,
    "num_database": 96,
    "embedding_dim": 16,
    "epochs": 2,
    "measure": "hausdorff",
    "faulty_queries": 60,
    "encoder_fail_from": 9,  # calls >= this index all fail: a hard outage
    "breaker_failure_threshold": 3,
    "breaker_reset_s": 30.0,
    "shed_clients": 6,
    "shed_queries_per_client": 10,
    "max_inflight": 2,
    "encoder_latency_ms": 2.0,
    "wall_clock_budget_s": 120.0,
}


def _percentiles_ms(latencies_s) -> dict:
    arr = np.asarray(latencies_s) * 1000.0
    return {
        "p50_ms": float(np.percentile(arr, 50)),
        "p99_ms": float(np.percentile(arr, 99)),
    }


class _WrappedModel:
    """Delegate everything to the real model except ``embed``."""

    def __init__(self, model, embed):
        self._model = model
        self.embed = embed

    def __getattr__(self, name):
        return getattr(self._model, name)


def build_world(config=CONFIG):
    """(model, store, fallback index, queries) for the fault scenarios."""
    from repro import NeuTraj, NeuTrajConfig, PortoConfig, generate_porto
    from repro.core.store import EmbeddingStore
    from repro.index.grid_index import GridInvertedIndex

    seeds = list(generate_porto(
        PortoConfig(num_trajectories=config["num_seeds"], min_points=10,
                    max_points=25), seed=0))
    database = list(generate_porto(
        PortoConfig(num_trajectories=config["num_database"], min_points=10,
                    max_points=25), seed=1))
    queries = list(generate_porto(
        PortoConfig(num_trajectories=max(
            config["faulty_queries"],
            config["shed_clients"] * config["shed_queries_per_client"]),
            min_points=10, max_points=25), seed=2))
    model = NeuTraj(NeuTrajConfig(
        measure=config["measure"], embedding_dim=config["embedding_dim"],
        epochs=config["epochs"], sampling_num=5, batch_anchors=10,
        cell_size=400.0, seed=0))
    model.fit(seeds)
    store = EmbeddingStore(model)
    ids = store.add(database)
    fallback = GridInvertedIndex(model._require_fitted().grid)
    for traj_id, traj in zip(ids, database):
        fallback.insert(traj_id, np.asarray(traj.points))
    return model, store, fallback, queries


def run_all(config=CONFIG) -> dict:
    from repro.exceptions import (ServiceOverloadedError,
                                  ServiceUnavailableError)
    from repro.serving import ServingConfig, SimilarityService
    from repro.testing import FaultInjected, FlakyCallable

    wall_start = time.perf_counter()
    model, store, fallback, queries = build_world(config)

    # ---------------------------------------------------- faulty encoder
    # The encoder dies for good partway in: healthy calls, then a run of
    # consecutive failures that must trip the breaker, then degraded
    # answers from the grid index for the rest of the load.
    flaky = FlakyCallable(
        model.embed,
        fail_on=range(config["encoder_fail_from"],
                      config["faulty_queries"] * 4))
    service = SimilarityService(
        _WrappedModel(model, flaky), store,
        ServingConfig(max_wait_ms=0.0, cache_capacity=0,
                      breaker_failure_threshold=config[
                          "breaker_failure_threshold"],
                      breaker_reset_s=config["breaker_reset_s"]),
        fallback_index=fallback)
    answered = degraded = typed_errors = failed = 0
    latencies = []
    try:
        for query in queries[:config["faulty_queries"]]:
            t0 = time.perf_counter()
            try:
                result = service.top_k(query, k=10, use_cache=False,
                                       timeout=30.0)
                answered += 1
                if result.degraded:
                    degraded += 1
            except (FaultInjected, ServiceUnavailableError):
                typed_errors += 1   # pre-trip failures surface typed
            # Counting the hard-failure bucket is the point of this
            # bench.  # repro: disable=exception-hygiene
            except Exception:       # noqa: BLE001 - the hard failure bucket
                failed += 1
            latencies.append(time.perf_counter() - t0)
        breaker_stats = service.breaker.stats()
        snap = service.registry.snapshot()
    finally:
        service.close()
    faulty = {
        "queries": config["faulty_queries"],
        "answered": answered,
        "degraded": degraded,
        "typed_errors": typed_errors,
        "failed": failed,
        "breaker_opened": breaker_stats["transitions"] > 0,
        "encoder_failures": snap.get("repro_encoder_failures_total", 0),
    }
    faulty.update(_percentiles_ms(latencies))

    # ------------------------------------------------------ load shedding
    slow = FlakyCallable(model.embed,
                         latency_s=config["encoder_latency_ms"] / 1000.0)
    service = SimilarityService(
        _WrappedModel(model, slow), store,
        ServingConfig(max_wait_ms=0.0, cache_capacity=0,
                      max_inflight=config["max_inflight"]),
        fallback_index=fallback)
    clients = config["shed_clients"]
    per_client = config["shed_queries_per_client"]
    accepted_counts = [0] * clients
    shed_counts = [0] * clients
    barrier = threading.Barrier(clients)

    def client(idx):
        mine = queries[idx * per_client:(idx + 1) * per_client]
        barrier.wait()
        for query in mine:
            try:
                service.top_k(query, k=10, use_cache=False, timeout=30.0)
                accepted_counts[idx] += 1
            except ServiceOverloadedError:
                shed_counts[idx] += 1

    try:
        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        hung_threads = sum(1 for t in threads if t.is_alive())
        gate_stats = service.stats()["resilience"]["admission"]
    finally:
        service.close()
    offered = clients * per_client
    accepted = sum(accepted_counts)
    shed = sum(shed_counts)
    shedding = {
        "offered": offered,
        "accepted": accepted,
        "shed": shed,
        "shed_rate": shed / offered,
        "accounting_exact": accepted + shed == offered,
        "gate_shed_counter": gate_stats["shed"],
        "hung_threads": hung_threads,
    }

    wall = time.perf_counter() - wall_start
    return {
        "schema": "repro.bench_resilience.v1",
        "config": dict(config),
        "cpu_count": os.cpu_count(),
        "results": {
            "faulty_encoder": faulty,
            "load_shedding": shedding,
            "wall_clock_s": wall,
            "no_hangs": (hung_threads == 0
                         and wall < config["wall_clock_budget_s"]),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    report = run_all()
    results = report["results"]
    faulty = results["faulty_encoder"]
    shedding = results["load_shedding"]
    print(f"faulty encoder : {faulty['answered']}/{faulty['queries']} "
          f"answered ({faulty['degraded']} degraded, "
          f"{faulty['typed_errors']} typed errors, {faulty['failed']} hard "
          f"failures), p50 {faulty['p50_ms']:.2f} ms, "
          f"p99 {faulty['p99_ms']:.2f} ms, "
          f"breaker_opened={faulty['breaker_opened']}")
    print(f"load shedding  : {shedding['accepted']}/{shedding['offered']} "
          f"accepted, {shedding['shed']} shed "
          f"(rate {shedding['shed_rate']:.2f}), "
          f"accounting_exact={shedding['accounting_exact']}")
    print(f"no hangs       : {results['no_hangs']} "
          f"(wall {results['wall_clock_s']:.1f}s)")

    args.output.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {args.output}")
    ok = (faulty["failed"] == 0 and faulty["breaker_opened"]
          and shedding["accounting_exact"] and results["no_hangs"])
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
