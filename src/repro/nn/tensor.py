"""Reverse-mode automatic differentiation over numpy arrays.

This module is the neural-network substrate of the reproduction: the paper's
model is implemented in PyTorch, which is unavailable here, so we provide a
small tape-based autodiff engine with the operations needed by LSTM cells,
the SAM attention reader and the NeuTraj losses.

Design:

* A :class:`Tensor` wraps a ``numpy.ndarray`` plus an optional gradient and a
  closure that propagates gradients to its parents.
* Calling :meth:`Tensor.backward` on a scalar performs a topological sweep of
  the recorded tape.
* Broadcasting follows numpy semantics; gradients are summed back over the
  broadcast axes (see :func:`_unbroadcast`).

All operations are validated against numerical differentiation in
``tests/nn/test_gradcheck.py``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling tape construction (inference mode).

    Inside the context every op result has ``requires_grad=False`` and no
    backward closure, which removes the autodiff overhead from pure
    inference paths such as bulk embedding.
    """

    def __enter__(self):
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc, tb):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous
        return False


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape`` after broadcasting.

    Numpy broadcasting may have expanded some axes of an operand; the gradient
    of that operand is the sum of the upstream gradient over the expanded axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


class Tensor:
    """A numpy array with an autodiff tape.

    Parameters
    ----------
    data:
        Array contents; anything ``numpy.asarray`` accepts.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")
    __array_priority__ = 100  # make numpy defer to our __r*__ operators

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        self.data = _as_array(data, dtype=np.float64 if not isinstance(data, np.ndarray) else None)
        if self.data.dtype.kind != "f":
            self.data = self.data.astype(np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()

    # ------------------------------------------------------------------ infra

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError("item() requires a single-element tensor")
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the tape."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy()
        else:
            # The buffer is always own-allocated (copy/zeros above), so the
            # in-place add is safe and saves one temporary per fan-in.
            self.grad += grad

    def _accumulate_into(self, key, grad: np.ndarray) -> None:
        """Accumulate ``grad`` into a sub-slice of this tensor's gradient.

        Used by slab-splitting ops (:func:`lstm_gates`, :func:`unstack`)
        whose outputs cover disjoint regions of the parent: a lazily
        allocated buffer plus an in-place slice add avoids the full-size
        zeros + ``np.add.at`` scatter a ``__getitem__`` node would pay.
        """
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad[key] += grad

    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        out = Tensor.__new__(Tensor)
        out.data = data
        out.grad = None
        out.requires_grad = (_GRAD_ENABLED
                             and any(p.requires_grad for p in parents))
        out._parents = (tuple(p for p in parents if p.requires_grad)
                        if out.requires_grad else ())
        out._backward = backward if out.requires_grad else None
        return out

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded tape."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient "
                                   "requires a scalar tensor")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        # Topological order via iterative DFS (recursion would overflow on
        # long BPTT chains).
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------- arithmetic

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data ** 2), other.shape))

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        data = np.matmul(self.data, other.data)

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            # Promote to >=2-D following np.matmul semantics, do the math in
            # the promoted space, then reduce back to the original shapes.
            a2 = a[None, :] if a.ndim == 1 else a
            b2 = b[:, None] if b.ndim == 1 else b
            g2 = grad
            if a.ndim == 1:
                g2 = np.expand_dims(g2, axis=-2)
            if b.ndim == 1:
                g2 = np.expand_dims(g2, axis=-1)
            if self.requires_grad:
                ga = np.matmul(g2, np.swapaxes(b2, -1, -2))
                self._accumulate(_unbroadcast(ga, a2.shape).reshape(a.shape))
            if other.requires_grad:
                gb = np.matmul(np.swapaxes(a2, -1, -2), g2)
                other._accumulate(_unbroadcast(gb, b2.shape).reshape(b.shape))

        return Tensor._make(data, (self, other), backward)

    # ----------------------------------------------------------- element-wise

    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), backward)

    def sqrt(self, eps: float = 0.0) -> "Tensor":
        """Element-wise square root; ``eps`` guards the gradient at zero."""
        data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * 0.5 / (data + eps))

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic; one exp, shared by both branches.
        x = self.data
        e = np.exp(-np.abs(x))
        pos = 1.0 / (1.0 + e)
        data = np.where(x >= 0, pos, e * pos)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - data ** 2))

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (self.data > 0))

        return Tensor._make(data, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        e = np.exp(shifted)
        data = e / e.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                dot = (grad * data).sum(axis=axis, keepdims=True)
                self._accumulate(data * (grad - dot))

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------- reductions

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ----------------------------------------------------------- shape juggle

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        data = self.data.transpose(axes)
        inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(data, (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        data = self.data[key]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, key, grad)
                self._accumulate(full)

        return Tensor._make(data, (self,), backward)

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Gather rows along the first axis (gradient scatters back)."""
        # Gather indices keep their caller dtype (int arrays or bool
        # masks both index correctly).  # repro: disable=dtype-discipline
        indices = np.asarray(indices)
        data = self.data[indices]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, indices, grad)
                self._accumulate(full)

        return Tensor._make(data, (self,), backward)

    # ----------------------------------------------------------------- extras

    def clip_min(self, minimum: float) -> "Tensor":
        """Clamp below; gradient passes only where data > minimum."""
        data = np.maximum(self.data, minimum)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (self.data > minimum))

        return Tensor._make(data, (self,), backward)


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy when already one)."""
    return value if isinstance(value, Tensor) else Tensor(value)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient splitting."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                t._accumulate(grad[tuple(index)])

    return Tensor._make(data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient unstacking."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slabs = np.moveaxis(grad, axis, 0)
        for t, slab in zip(tensors, slabs):
            if t.requires_grad:
                t._accumulate(slab)

    return Tensor._make(data, tensors, backward)


def lstm_gates(pre: Tensor, num_gates: int) -> Tuple[Tensor, ...]:
    """Fused sigmoid-gate slab: split ``pre`` into ``num_gates`` gates.

    Equivalent to ``pre.sigmoid()`` followed by ``num_gates`` slices along
    the last axis, but fused: the logistic is applied once to the whole
    slab with no intermediate tape node, and each gate's backward adds
    ``grad * g * (1 - g)`` straight into its slice of the parent's gradient
    buffer — replacing the sigmoid node plus per-slice full-size
    zeros/``np.add.at`` scatters of the unfused form. This is the hot op of
    the recurrent training step (one call per timestep).
    """
    width = pre.shape[-1]
    if width % num_gates != 0:
        raise ValueError(
            f"last axis ({width}) is not divisible into {num_gates} gates")
    d = width // num_gates
    x = pre.data
    e = np.exp(-np.abs(x))
    pos = 1.0 / (1.0 + e)
    slab = np.where(x >= 0, pos, e * pos)

    def make_backward(key, gate: np.ndarray):
        def backward(grad: np.ndarray) -> None:
            if pre.requires_grad:
                pre._accumulate_into(key, grad * gate * (1.0 - gate))
        return backward

    gates = []
    for g in range(num_gates):
        key = (Ellipsis, slice(g * d, (g + 1) * d))
        gate = slab[key]
        gates.append(Tensor._make(gate, (pre,), make_backward(key, gate)))
    return tuple(gates)


def unstack(tensor: Tensor, axis: int = 0) -> list:
    """Split ``tensor`` into views along ``axis`` (gradients fill slots).

    The inverse of :func:`stack`: returns ``tensor.shape[axis]`` tensors,
    each a (zero-copy) slice whose backward accumulates into its slot of
    the parent's gradient buffer. Used to slice per-timestep projections
    out of a hoisted whole-sequence matmul without per-step ``np.add.at``
    scatters.
    """
    t = as_tensor(tensor)
    prefix = (slice(None),) * (axis % max(t.ndim, 1))

    def make_backward(key):
        def backward(grad: np.ndarray) -> None:
            if t.requires_grad:
                t._accumulate_into(key, grad)
        return backward

    outs = []
    for idx in range(t.shape[axis]):
        key = prefix + (idx,)
        outs.append(Tensor._make(t.data[key], (t,), make_backward(key)))
    return outs


def where(condition: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Select ``a`` where ``condition`` else ``b``; condition is constant."""
    condition = np.asarray(condition, dtype=bool)
    a, b = as_tensor(a), as_tensor(b)
    data = np.where(condition, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * condition, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * ~condition, b.shape))

    return Tensor._make(data, (a, b), backward)


def numerical_gradient(fn: Callable[[np.ndarray], float], x: np.ndarray,
                       eps: float = 1e-6) -> np.ndarray:
    """Central-difference numerical gradient of scalar-valued ``fn`` at ``x``."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat_x = x.reshape(-1)
    flat_g = grad.reshape(-1)
    for i in range(flat_x.size):
        old = flat_x[i]
        flat_x[i] = old + eps
        fp = fn(x)
        flat_x[i] = old - eps
        fm = fn(x)
        flat_x[i] = old
        flat_g[i] = (fp - fm) / (2 * eps)
    return grad


def gradient_check(build: Callable[[Tensor], Tensor], x: np.ndarray,
                   eps: float = 1e-6, tol: float = 1e-4) -> bool:
    """Verify that autodiff gradients of ``build`` match numerical ones.

    ``build`` takes a Tensor and returns a scalar Tensor. Returns True when
    the maximum absolute deviation is within ``tol``; raises AssertionError
    otherwise with diagnostics.
    """
    x = np.asarray(x, dtype=np.float64)
    t = Tensor(x.copy(), requires_grad=True)
    out = build(t)
    out.backward()
    analytic = t.grad

    def evaluate(arr: np.ndarray) -> float:
        return build(Tensor(arr.copy())).item()

    numeric = numerical_gradient(evaluate, x, eps=eps)
    err = np.max(np.abs(analytic - numeric))
    scale = max(1.0, np.max(np.abs(numeric)))
    if err / scale > tol:
        raise AssertionError(
            f"gradient check failed: max abs err {err:.3e} (rel {err / scale:.3e})")
    return True
