"""Crash-chaos and failover tests for the durable sharded tier.

The chaos harness runs the same deterministic mutation workload under
20+ seeded fault schedules — SIGKILL at a chosen point of the WAL
append path, optional torn-write tail damage, optional double crash —
then recovers and checks the durability contract:

* every **acked** write survives recovery (inserts present, deletes
  absent);
* an **unacked** per-shard sub-batch is all-or-nothing — the WAL record
  either replays whole or was torn away whole;
* post-recovery top-k answers are id-identical to a single-process
  exact oracle built from the surviving id set.
"""

import os
import signal
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.partition import save_partitions
from repro.core.store import EmbeddingStore
from repro.exceptions import PartialWriteError
from repro.serving import make_server
from repro.serving.sharding import ShardedConfig, ShardedService, group_by_shard
from repro.serving.wal import (OP_DELETE, encode_record, list_segments,
                               scan_buffer)
from repro.testing.faults import KillAtWALPoint

pytestmark = pytest.mark.durability

DIM = 8
SEED_ROWS = 40
NUM_SHARDS = 2
TIMEOUT = 30.0


def make_embeddings(n, seed=11, dim=DIM):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, dim)).astype(np.float64)


def _config(**kwargs):
    kwargs.setdefault("request_timeout_s", TIMEOUT)
    return ShardedConfig(**kwargs)


def _make_partitions(tmp_path):
    emb = make_embeddings(SEED_ROWS, seed=5)
    ids = np.arange(SEED_ROWS, dtype=np.int64)
    part_dir = tmp_path / "parts"
    save_partitions(part_dir, ids, emb, num_shards=NUM_SHARDS)
    return part_dir, ids, emb


class _Tracker:
    """Ground truth for the chaos workload: what was acked vs in flight."""

    def __init__(self, ids, emb):
        self.embedding = {int(i): emb[j] for j, i in enumerate(ids)}
        self.acked_inserted = set(int(i) for i in ids)
        self.acked_deleted = set()
        # Per-shard sub-batches whose ack never arrived:
        # ("insert"|"delete", frozenset_of_ids)
        self.pending = []

    def live_acked(self):
        return self.acked_inserted - self.acked_deleted

    def record_insert(self, service, rows):
        base = service._next_id
        intended = list(range(base, base + len(rows)))
        for offset, row_id in enumerate(intended):
            self.embedding[row_id] = rows[offset]
        try:
            assigned = service.insert_embeddings(rows)
            assert assigned == intended
            self.acked_inserted.update(intended)
        except PartialWriteError as exc:
            applied = set(int(i) for i in exc.applied_ids)
            self.acked_inserted.update(applied)
            groups = group_by_shard(service._ring, intended)
            for positions in groups.values():
                batch = frozenset(intended[p] for p in positions)
                if not batch & applied:
                    self.pending.append(("insert", batch))

    def record_delete(self, service, ids):
        ids = [int(i) for i in ids]
        try:
            service.delete(ids)
            self.acked_deleted.update(ids)
        except PartialWriteError as exc:
            applied = set(int(i) for i in exc.applied_ids)
            self.acked_deleted.update(applied)
            groups = group_by_shard(service._ring, ids)
            for positions in groups.values():
                batch = frozenset(ids[p] for p in positions)
                if not batch & applied:
                    self.pending.append(("delete", batch))


def _workload(service, tracker, rng, round_no=0):
    """Deterministic insert/delete stream; survives dead shards."""
    for step in range(4):
        rows = make_embeddings(5 + step, seed=1000 + 10 * round_no + step)
        tracker.record_insert(service, rows)
        if step == 2:
            live = sorted(tracker.live_acked())
            victims = [live[i] for i in
                       rng.choice(len(live), size=4, replace=False)]
            tracker.record_delete(service, victims)


def _present_ids(service):
    present = set()
    for handle in service._shards:
        present.update(handle.call("ids", None, TIMEOUT))
    return present


def _restart_dead_shards(service):
    for shard_id in range(service.num_shards):
        if not service._shards[shard_id].alive or \
                service._shards[shard_id].breaker.state != "closed":
            service.restart_shard(shard_id)


def _check_contract(service, tracker):
    present = _present_ids(service)
    # 1. Acked inserts that were never acked-deleted must be present.
    missing = tracker.live_acked() - present
    assert not missing, f"acked writes lost: {sorted(missing)[:10]}"
    # 2. Acked deletes must stay deleted.
    resurrected = tracker.acked_deleted & present
    assert not resurrected, f"acked deletes resurrected: {sorted(resurrected)}"
    # 3. Unacked sub-batches are all-or-nothing (one WAL record each).
    for kind, batch in tracker.pending:
        overlap = batch & present
        assert overlap in (set(), set(batch)), \
            f"half-applied {kind} sub-batch: {sorted(overlap)} of {sorted(batch)}"
    # 4. Top-k is id-identical to an exact oracle over the surviving set.
    oracle = EmbeddingStore(None, dim=DIM)
    ordered = sorted(present)
    oracle.add_embeddings(
        np.stack([tracker.embedding[i] for i in ordered]), ids=ordered)
    for q_seed in (70, 71, 72):
        q = make_embeddings(1, seed=q_seed)[0]
        want_ids, want_dist = oracle.query_embedding(q, k=10)
        got = service.query_embedding(q, k=10)
        assert got.partial is False
        assert got.ids == [int(i) for i in want_ids]
        np.testing.assert_allclose(got.distances, want_dist, rtol=1e-6)
    return present


# ------------------------------------------------------------ chaos harness


_POINTS = ("after_write", "before_fsync", "after_fsync")


def _schedule(seed):
    """Derive one deterministic fault schedule from its seed."""
    point = _POINTS[seed % 3]
    return {
        "seed": seed,
        "point": point,
        "nth": 1 + (seed // 3) % 3,
        "target": seed % NUM_SHARDS,
        # Group commit for every before_fsync schedule plus a few others.
        "window_ms": 2.0 if point == "before_fsync" or seed % 5 == 0 else 0.0,
        # Torn tail: only where the killed record was never fsynced, so
        # cutting bytes off the tail cannot touch an acked record.
        "torn": point != "after_fsync" and seed % 4 == 0,
        "double": seed % 7 == 3,
        "cold": seed % 2 == 1,
    }


@pytest.mark.parametrize("seed", range(20))
def test_chaos_schedule_preserves_acked_writes(tmp_path, seed):
    sched = _schedule(seed)
    part_dir, ids, emb = _make_partitions(tmp_path)
    durable = tmp_path / "durable"
    marker_dir = tmp_path / "markers"
    hook = KillAtWALPoint(sched["point"], marker_dir, nth=sched["nth"],
                          max_kills=2 if sched["double"] else 1)
    config = _config(fsync_window_ms=sched["window_ms"])
    tracker = _Tracker(ids, emb)
    rng = np.random.default_rng(200 + seed)

    service = ShardedService(part_dir, config=config, durable_dir=durable,
                             wal_hooks={sched["target"]: hook})
    try:
        _workload(service, tracker, rng, round_no=0)
        assert hook.kills_so_far() >= 1, "fault schedule never fired"

        if sched["torn"]:
            # A SIGKILL drops the worker's userspace write buffer, so the
            # segment on disk ends at the durable boundary. Simulate the
            # record that only *partially* hit the platter: append a
            # truncated frame for the next LSN — recovery must shear it
            # off without touching the acked prefix.
            wal_dir = durable / f"shard-{sched['target']:04d}"
            segment = list_segments(wal_dir)[-1]
            records, _, damage = scan_buffer(segment.read_bytes())
            assert damage is None
            next_lsn = (records[-1].lsn + 1) if records else 1
            torn_frame = encode_record(next_lsn, OP_DELETE,
                                       np.array([123], dtype=np.int64))
            with open(segment, "ab") as tail:
                tail.write(torn_frame[:-4])

        if sched["cold"]:
            service.close()
            # Keep the hook installed: exhausted schedules must stay
            # inert on replay; double-crash ones get their second kill.
            service = ShardedService(part_dir, config=config,
                                     durable_dir=durable,
                                     wal_hooks={sched["target"]: hook})
        else:
            _restart_dead_shards(service)

        present = _check_contract(service, tracker)

        if sched["double"]:
            # Crash-recover-crash: the reinstalled hook has one kill
            # budget left; run another round and recover again.
            _workload(service, tracker, rng, round_no=1)
            assert hook.kills_so_far() == 2
            _restart_dead_shards(service)
            present = _check_contract(service, tracker)

        # Recovered id space must not collide with surviving rows.
        before = len(present)
        tracker.record_insert(service, make_embeddings(3, seed=999))
        assert len(_present_ids(service)) == before + 3
        _check_contract(service, tracker)
    finally:
        service.close()


# -------------------------------------------------------- replica failover


def test_replica_failover_mid_stream_keeps_acked_writes(tmp_path):
    part_dir, ids, emb = _make_partitions(tmp_path)
    service = ShardedService(part_dir, config=_config(replicas=1),
                             durable_dir=tmp_path / "durable")
    tracker = _Tracker(ids, emb)
    try:
        tracker.record_insert(service, make_embeddings(12, seed=300))
        tracker.record_delete(service, sorted(tracker.live_acked())[:3])
        assert not tracker.pending

        primary = service._shards[0]
        pid = primary._proc.pid
        os.kill(pid, signal.SIGKILL)

        # The very next scatter must fail over to the standby and answer
        # complete — not partial — with zero acked-write loss.
        q = make_embeddings(1, seed=42)[0]
        got = service.query_embedding(q, k=10)
        assert got.partial is False
        assert service.stats()["durability"]["failovers"] == 1
        assert service._shards[0]._proc.pid != pid
        _check_contract(service, tracker)

        # Writes keep flowing through the promoted primary, and a
        # replacement standby was spawned behind it.
        tracker.record_insert(service, make_embeddings(4, seed=301))
        assert not tracker.pending
        _check_contract(service, tracker)
        assert len(service._replicas[0]) == 1

        # Kill the promoted primary too: the replacement takes over.
        os.kill(service._shards[0]._proc.pid, signal.SIGKILL)
        got = service.query_embedding(q, k=10)
        assert got.partial is False
        assert service.stats()["durability"]["failovers"] == 2
        _check_contract(service, tracker)
    finally:
        service.close()


# ----------------------------------------------------- partial write surface


def test_partial_write_reports_exactly_the_applied_ids(tmp_path):
    part_dir, ids, emb = _make_partitions(tmp_path)
    service = ShardedService(part_dir, config=_config(),
                             durable_dir=tmp_path / "durable")
    try:
        os.kill(service._shards[1]._proc.pid, signal.SIGKILL)
        base = service._next_id
        rows = make_embeddings(8, seed=500)
        intended = list(range(base, base + len(rows)))
        groups = group_by_shard(service._ring, intended)
        with pytest.raises(PartialWriteError) as excinfo:
            service.insert_embeddings(rows)
        live_ids = sorted(intended[p] for p in groups.get(0, []))
        assert sorted(excinfo.value.applied_ids) == live_ids
        present = _present_ids_live(service, shard_ids=(0,))
        assert set(live_ids) <= present
        # The dead shard's sub-batch never reached a WAL: recovery must
        # not surface any of it.
        service.restart_shard(1)
        dead_ids = set(intended[p] for p in groups.get(1, []))
        assert not dead_ids & _present_ids(service)
    finally:
        service.close()


def _present_ids_live(service, shard_ids):
    present = set()
    for shard_id in shard_ids:
        present.update(service._shards[shard_id].call("ids", None, TIMEOUT))
    return present


# -------------------------------------------------- cold coordinator restart


def test_cold_restart_is_id_identical_including_id_space(tmp_path):
    part_dir, ids, emb = _make_partitions(tmp_path)
    durable = tmp_path / "durable"
    config = _config()
    tracker = _Tracker(ids, emb)
    service = ShardedService(part_dir, config=config, durable_dir=durable)
    tracker.record_insert(service, make_embeddings(10, seed=600))
    tracker.record_delete(service, sorted(tracker.live_acked())[5:8])
    compacted = service.compact()  # snapshot + WAL truncation path
    assert set(compacted) == {0, 1}
    tracker.record_insert(service, make_embeddings(5, seed=601))
    next_id = service._next_id
    q = make_embeddings(1, seed=602)[0]
    want = service.query_embedding(q, k=12)
    service.close()

    revived = ShardedService(part_dir, config=config, durable_dir=durable)
    try:
        assert revived._next_id == next_id
        got = revived.query_embedding(q, k=12)
        assert got.ids == want.ids
        np.testing.assert_allclose(got.distances, want.distances, rtol=1e-6)
        _check_contract(revived, tracker)
        # Fresh inserts continue the id sequence instead of colliding.
        assigned = revived.insert_embeddings(make_embeddings(2, seed=603))
        assert assigned == [next_id, next_id + 1]
    finally:
        revived.close()


# ------------------------------------------------------- HTTP admin restart


def test_http_admin_restart_recovers_a_killed_shard(tmp_path):
    part_dir, ids, emb = _make_partitions(tmp_path)
    service = ShardedService(part_dir, config=_config(),
                             durable_dir=tmp_path / "durable")
    srv = make_server(service)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        os.kill(service._shards[0]._proc.pid, signal.SIGKILL)
        request = urllib.request.Request(srv.url + "/admin/restart/0",
                                         data=b"", method="POST")
        with urllib.request.urlopen(request, timeout=TIMEOUT) as response:
            assert response.status == 200
        assert service._shards[0].alive
        got = service.query_embedding(make_embeddings(1, seed=700)[0], k=5)
        assert got.partial is False

        # Bad shard ids are a client error, not a crash.
        bad = urllib.request.Request(srv.url + "/admin/restart/nope",
                                     data=b"", method="POST")
        try:
            urllib.request.urlopen(bad, timeout=TIMEOUT)
            raise AssertionError("expected HTTP 400")
        except urllib.error.HTTPError as error:
            assert error.code == 400
    finally:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=10)
        service.close()
