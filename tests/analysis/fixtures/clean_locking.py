"""Clean negative: every path to the field holds the lock.

The helper itself never takes ``self._lock`` — its callers do — so a
purely lexical checker would flag ``_bump``. The interprocedural entry
lockset (intersection over call sites, all of which hold the lock)
proves it safe, and the satisfied docstring contract must not fire
either.
"""

import threading


class SafeCounter:

    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def increment(self):
        with self._lock:
            self._bump()

    def value(self):
        with self._lock:
            return self._count

    def _bump(self):
        """Caller must hold ``self._lock``."""
        self._count += 1
