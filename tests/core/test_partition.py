"""Tests for consistent-hash partitioning (repro.core.partition)."""

import json

import numpy as np
import pytest

from repro.core.partition import (HashRing, load_partition,
                                  load_partition_manifest,
                                  partition_file_name, save_partitions)
from repro.exceptions import CorruptArtifactError

# ---------------------------------------------------------------- hash ring


def test_ring_validation():
    with pytest.raises(ValueError):
        HashRing(0)
    with pytest.raises(ValueError):
        HashRing(2, vnodes=0)
    with pytest.raises(ValueError):
        HashRing(2.5)  # type: ignore[arg-type]


def test_ring_deterministic_across_instances():
    ids = np.arange(5000)
    a = HashRing(4).shard_for(ids)
    b = HashRing(4).shard_for(ids)
    np.testing.assert_array_equal(a, b)


def test_ring_scalar_in_scalar_out():
    ring = HashRing(3)
    owner = ring.shard_for(7)
    assert isinstance(owner, int)
    assert owner == ring.shard_for(np.array([7]))[0]


def test_ring_rejects_negative_ids():
    with pytest.raises(ValueError):
        HashRing(2).shard_for([-1, 3])


def test_ring_sequential_small_ids_are_spread():
    # Regression: ring-point hash inputs once coincided with small
    # sequential ids, pinning every id < vnodes onto shard 0.
    for num_shards in (2, 3, 4):
        spread = HashRing(num_shards).spread(np.arange(64))
        assert max(spread) < 64, spread
        assert sum(spread) == 64


def test_ring_balance_at_scale():
    ids = np.arange(100_000)
    for num_shards in (2, 4, 8):
        spread = HashRing(num_shards).spread(ids)
        expected = len(ids) / num_shards
        assert sum(spread) == len(ids)
        # Consistent hashing with 64 vnodes keeps shards within ~2x of
        # the mean; catastrophic skew (one shard owning ~everything)
        # is what this guards against.
        assert min(spread) > expected / 2
        assert max(spread) < expected * 2


def test_ring_minimal_movement_on_shard_add():
    ids = np.arange(50_000)
    before = HashRing(3).shard_for(ids)
    after = HashRing(4).shard_for(ids)
    moved = before != after
    # Every relocated id lands on the NEW shard; survivors keep their
    # placement. This is the property that makes resharding cheap.
    assert np.all(after[moved] == 3)
    assert 0 < moved.sum() < len(ids) / 2


def test_ring_partition_covers_all_rows_once():
    ring = HashRing(5)
    ids = np.arange(777)
    rows = ring.partition(ids)
    assert len(rows) == 5
    combined = np.sort(np.concatenate(rows))
    np.testing.assert_array_equal(combined, np.arange(777))


# ---------------------------------------------------------- save / load


@pytest.fixture
def world(tmp_path):
    rng = np.random.default_rng(7)
    ids = np.arange(200, dtype=np.int64)
    embeddings = rng.standard_normal((200, 8)).astype(np.float32)
    manifest = save_partitions(tmp_path, ids, embeddings, num_shards=3,
                               metadata={"origin": "tests"})
    return tmp_path, ids, embeddings, manifest


def test_save_partitions_manifest(world):
    path, ids, embeddings, manifest = world
    assert manifest["schema"] == "repro.partitions.v1"
    assert manifest["num_shards"] == 3
    assert manifest["embedding_dim"] == 8
    assert manifest["total_count"] == 200
    assert manifest["next_id"] == 200
    assert sum(e["count"] for e in manifest["shards"]) == 200
    assert manifest["user_metadata"] == {"origin": "tests"}
    reread = load_partition_manifest(path)
    assert reread["num_shards"] == manifest["num_shards"]


def test_round_trip_reassembles_store(world):
    path, ids, embeddings, manifest = world
    ring = HashRing(3, vnodes=manifest["vnodes"])
    seen_ids, seen_rows = [], []
    for shard_id in range(3):
        store = load_partition(path, shard_id)
        assert len(store) == manifest["shards"][shard_id]["count"]
        # every row in this shard is owned by this shard
        np.testing.assert_array_equal(
            ring.shard_for(np.asarray(store.ids)), shard_id)
        assert store.next_id == 200
        seen_ids.append(np.asarray(store.ids))
        seen_rows.append(store.embeddings)
    all_ids = np.concatenate(seen_ids)
    order = np.argsort(all_ids)
    np.testing.assert_array_equal(all_ids[order], ids)
    np.testing.assert_allclose(
        np.concatenate(seen_rows)[order], embeddings, atol=0)


def test_save_partitions_validation(tmp_path):
    rng = np.random.default_rng(0)
    emb = rng.standard_normal((4, 3))
    with pytest.raises(ValueError):  # mismatched lengths
        save_partitions(tmp_path, np.arange(3), emb, num_shards=2)
    with pytest.raises(ValueError):  # duplicate ids
        save_partitions(tmp_path, np.array([0, 1, 1, 2]), emb, num_shards=2)


def test_explicit_next_id_is_floored_at_max_id(tmp_path):
    rng = np.random.default_rng(0)
    manifest = save_partitions(tmp_path, np.array([5, 9]),
                               rng.standard_normal((2, 4)),
                               num_shards=2, next_id=3)
    assert manifest["next_id"] == 10


def test_load_partition_rejects_bad_shard_id(world):
    path = world[0]
    with pytest.raises(ValueError):
        load_partition(path, 3)
    with pytest.raises(ValueError):
        load_partition(path, -1)


def test_load_partition_detects_corruption(world):
    path = world[0]
    target = path / partition_file_name(1)
    blob = bytearray(target.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    target.write_bytes(bytes(blob))
    with pytest.raises(CorruptArtifactError):
        load_partition(path, 1, verify=True)


def test_load_partition_missing_file(world):
    path = world[0]
    (path / partition_file_name(2)).unlink()
    with pytest.raises(CorruptArtifactError):
        load_partition(path, 2)


def test_manifest_schema_checks(tmp_path):
    with pytest.raises(CorruptArtifactError):  # no manifest at all
        load_partition_manifest(tmp_path)
    bad = {"schema": "something.else.v9", "num_shards": 1, "shards": []}
    (tmp_path / "PARTITIONS.json").write_text(json.dumps(bad))
    with pytest.raises(CorruptArtifactError):
        load_partition_manifest(tmp_path)
