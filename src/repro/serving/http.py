"""Zero-dependency HTTP front end for :class:`SimilarityService`.

A deliberately small JSON API over the stdlib
:class:`~http.server.ThreadingHTTPServer` (one thread per connection; the
micro-batcher coalesces their encoder work — see DESIGN.md for why this
stands in for a production RPC stack):

==========  =======================  ==========================================
method      path                     body / response
==========  =======================  ==========================================
GET         ``/healthz``             liveness: ``{"status": "ok", ...}`` —
                                     200 whenever the process can answer
GET         ``/readyz``              readiness: 200 when the service can give
                                     good answers (store loaded, warmed up,
                                     breaker not open), else 503 with the
                                     failing checks in the body
GET         ``/metrics``             Prometheus text exposition
GET         ``/v1/stats``            operational snapshot (JSON)
GET         ``/v1/stream``           streaming-ingest snapshot: window /
                                     watermark / backlog stats (409 when no
                                     stream ingester is attached)
POST        ``/v1/topk``             ``{"trajectory": [[x,y],...], "k": 5}`` ->
                                     ``{"ids": [...], "distances": [...]}``
POST        ``/v1/embed``            ``{"trajectory": [[x,y],...]}`` ->
                                     ``{"embedding": [...]}``
POST        ``/v1/insert``           ``{"trajectories": [[[x,y],...],...]}`` ->
                                     ``{"ids": [...]}``
POST        ``/v1/delete``           ``{"ids": [...]}`` -> ``{"removed": n}``
POST        ``/v1/ingest``           ``{"points": [[source_id, seq, t, x, y],
                                     ...]}`` -> per-batch ingest report; acked
                                     only after the stream WAL fsync (409 when
                                     no stream ingester is attached, 429 when
                                     its admission gate sheds)
POST        ``/admin/compact``       ``{}`` -> ``{"compacted": {"0": true}}``
                                     — folds pending IVF inserts/tombstones
POST        ``/admin/reload``        ``{"partition_dir": ..., "bundle_dir":
                                     ...}`` -> generation-flip report (sharded
                                     tier only; 409 when unsupported/failed)
POST        ``/admin/restart/<id>``  respawn one shard worker; on a durable
                                     tier it recovers snapshot + WAL (sharded
                                     tier only; 409 when unsupported)
==========  =======================  ==========================================

Serves either tier: a single-process
:class:`~repro.serving.service.SimilarityService` or the sharded
:class:`~repro.serving.sharding.ShardedService` — the handler relies only
on their shared surface (``top_k``/``insert``/``delete``/``size``/
``stats``/``compact``/...). ``/admin/reload`` answers 409 on a service
without zero-downtime reload.

Errors come back as ``{"error": "..."}`` with 400 (bad request), 404
(unknown route), 409 (empty store / unsupported admin op / failed
reload), 429 (load shed — retry later), 503 (degradation the service
could not absorb: breaker open with no fallback, every shard down, or
shut down), 504 (request deadline expired), or 500 (unexpected).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from ..exceptions import (DeadlineExceededError, InvalidTrajectoryError,
                          NotFittedError, PartialWriteError, ReloadError,
                          ServiceClosedError, ServiceOverloadedError,
                          ServiceUnavailableError)
from .service import SimilarityService

__all__ = ["ServingHTTPServer", "make_server", "serve"]

MAX_BODY_BYTES = 16 << 20  # refuse absurd request bodies


class ServingHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns a :class:`SimilarityService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int],
                 service: SimilarityService, quiet: bool = True):
        super().__init__(address, _Handler)
        self.service = service
        self.quiet = quiet

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serving/1"
    protocol_version = "HTTP/1.1"

    # ---------------------------------------------------------------- plumbing

    @property
    def service(self) -> SimilarityService:
        return self.server.service

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not getattr(self.server, "quiet", True):
            super().log_message(format, *args)

    def _send(self, status: int, body: bytes,
              content_type: str = "application/json") -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload) -> None:
        self._send(status, json.dumps(payload).encode())

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_json(self) -> Optional[dict]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            self._send_error_json(400, "missing request body")
            return None
        if length > MAX_BODY_BYTES:
            self._send_error_json(400, "request body too large")
            return None
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except ValueError:
            self._send_error_json(400, "request body is not valid JSON")
            return None
        if not isinstance(payload, dict):
            self._send_error_json(400, "request body must be a JSON object")
            return None
        return payload

    def _observe(self, route: str, status: int, seconds: float) -> None:
        reg = self.service.registry
        reg.counter("repro_http_requests_total",
                    "HTTP requests handled (any route).").inc()
        if status >= 400:
            reg.counter("repro_http_errors_total",
                        "HTTP requests answered with 4xx/5xx.").inc()
        reg.histogram("repro_http_request_seconds",
                      "HTTP request handling latency.").observe(seconds)

    def _route(self, handler) -> None:
        start = time.monotonic()
        status = 500
        try:
            status = handler()
        except (InvalidTrajectoryError, ValueError) as exc:
            status = 400
            self._send_error_json(status, str(exc))
        except (NotFittedError, ReloadError) as exc:
            status = 409
            self._send_error_json(status, str(exc))
        except ServiceOverloadedError as exc:
            status = 429
            self._send_error_json(status, str(exc))
        except DeadlineExceededError as exc:
            status = 504
            self._send_error_json(status, str(exc))
        except PartialWriteError as exc:
            # The durably applied ids let the client retry idempotently.
            status = 503
            self._send_json(status, {"error": str(exc),
                                     "applied_ids": exc.applied_ids})
        except (ServiceUnavailableError, ServiceClosedError) as exc:
            status = 503
            self._send_error_json(status, str(exc))
        except BrokenPipeError:
            pass  # client went away; nothing to answer
        except Exception as exc:  # noqa: BLE001 - must answer something
            self._send_error_json(status, f"internal error: {exc}")
        finally:
            self._observe(self.path, status, time.monotonic() - start)

    # ------------------------------------------------------------------ routes

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/healthz":
            self._route(self._get_healthz)
        elif self.path == "/readyz":
            self._route(self._get_readyz)
        elif self.path == "/metrics":
            self._route(self._get_metrics)
        elif self.path == "/v1/stats":
            self._route(self._get_stats)
        elif self.path == "/v1/stream":
            self._route(self._get_stream)
        else:
            self._route(self._not_found)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/v1/topk":
            self._route(self._post_topk)
        elif self.path == "/v1/embed":
            self._route(self._post_embed)
        elif self.path == "/v1/insert":
            self._route(self._post_insert)
        elif self.path == "/v1/delete":
            self._route(self._post_delete)
        elif self.path == "/v1/ingest":
            self._route(self._post_ingest)
        elif self.path == "/admin/compact":
            self._route(self._post_compact)
        elif self.path == "/admin/reload":
            self._route(self._post_reload)
        elif self.path.startswith("/admin/restart/"):
            self._route(self._post_restart)
        else:
            self._route(self._not_found)

    def _not_found(self) -> int:
        self._send_error_json(404, f"no such route: {self.path}")
        return 404

    def _get_healthz(self) -> int:
        self._send_json(200, {"status": "ok",
                              "store_size": self.service.size()})
        return 200

    def _get_readyz(self) -> int:
        readiness = self.service.readiness()
        status = 200 if readiness["ready"] else 503
        self._send_json(status, readiness)
        return status

    def _get_metrics(self) -> int:
        body = self.service.render_metrics().encode()
        self._send(200, body, content_type="text/plain; version=0.0.4")
        return 200

    def _get_stats(self) -> int:
        self._send_json(200, self.service.stats())
        return 200

    def _get_stream(self) -> int:
        stats_fn = getattr(self.service, "stream_stats", None)
        if stats_fn is None:
            raise ReloadError("this service has no streaming ingest tier")
        self._send_json(200, stats_fn())
        return 200

    def _post_topk(self) -> int:
        payload = self._read_json()
        if payload is None:
            return 400
        if "trajectory" not in payload:
            self._send_error_json(400, "missing field: trajectory")
            return 400
        k = payload.get("k", self.service.config.default_k)
        if not isinstance(k, int) or isinstance(k, bool):
            self._send_error_json(400, "k must be an integer")
            return 400
        if k < 1:
            self._send_error_json(400, "k must be >= 1")
            return 400
        store_size = self.service.size()
        if store_size and k > store_size:
            self._send_error_json(
                400, f"k={k} exceeds store size {store_size}")
            return 400
        use_cache = bool(payload.get("use_cache", True))
        result = self.service.top_k(payload["trajectory"], k=k,
                                    use_cache=use_cache)
        self._send_json(200, result.to_json())
        return 200

    def _post_embed(self) -> int:
        payload = self._read_json()
        if payload is None:
            return 400
        if "trajectory" not in payload:
            self._send_error_json(400, "missing field: trajectory")
            return 400
        embedding = self.service.embed(payload["trajectory"])
        self._send_json(200, {"embedding": [float(x) for x in embedding]})
        return 200

    def _post_insert(self) -> int:
        payload = self._read_json()
        if payload is None:
            return 400
        trajectories = payload.get("trajectories")
        if not isinstance(trajectories, list):
            self._send_error_json(400, "trajectories must be a list")
            return 400
        ids = self.service.insert(trajectories)
        self._send_json(200, {"ids": ids})
        return 200

    def _post_delete(self) -> int:
        payload = self._read_json()
        if payload is None:
            return 400
        ids = payload.get("ids")
        if not isinstance(ids, list):
            self._send_error_json(400, "ids must be a list")
            return 400
        removed = self.service.delete(ids)
        self._send_json(200, {"removed": removed})
        return 200

    def _post_ingest(self) -> int:
        payload = self._read_json()
        if payload is None:
            return 400
        points = payload.get("points")
        if not isinstance(points, list):
            self._send_error_json(
                400, "points must be a list of [source_id, seq, t, x, y]")
            return 400
        ingest_fn = getattr(self.service, "stream_ingest", None)
        if ingest_fn is None:
            raise ReloadError("this service has no streaming ingest tier")
        self._send_json(200, ingest_fn(points))
        return 200

    def _post_compact(self) -> int:
        # Body is optional (an empty POST compacts everything).
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            self.rfile.read(min(length, MAX_BODY_BYTES))
        compacted = self.service.compact()
        self._send_json(200, {"compacted": {str(s): bool(v)
                                            for s, v in compacted.items()}})
        return 200

    def _post_reload(self) -> int:
        payload = self._read_json()
        if payload is None:
            return 400
        reload_fn = getattr(self.service, "reload", None)
        if reload_fn is None:
            raise ReloadError(
                "this service does not support zero-downtime reload "
                "(sharded tier only); restart it with the new bundle")
        result = reload_fn(partition_dir=payload.get("partition_dir"),
                           bundle_dir=payload.get("bundle_dir"))
        self._send_json(200, result)
        return 200

    def _post_restart(self) -> int:
        # Body is optional; the shard id rides in the path.
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            self.rfile.read(min(length, MAX_BODY_BYTES))
        suffix = self.path[len("/admin/restart/"):]
        try:
            shard_id = int(suffix)
        except ValueError:
            self._send_error_json(400, f"shard id must be an integer, "
                                       f"got {suffix!r}")
            return 400
        restart_fn = getattr(self.service, "restart_shard", None)
        if restart_fn is None:
            raise ReloadError(
                "this service has no shard workers to restart "
                "(sharded tier only)")
        result = restart_fn(shard_id)
        self._send_json(200, {"restarted": shard_id, "shard": result})
        return 200


def make_server(service: SimilarityService, host: str = "127.0.0.1",
                port: int = 0, quiet: bool = True) -> ServingHTTPServer:
    """Bind (but do not start) a serving HTTP server; ``port=0`` picks one."""
    return ServingHTTPServer((host, port), service, quiet=quiet)


def serve(service: SimilarityService, host: str = "127.0.0.1",
          port: int = 8080, quiet: bool = False,
          ready: Optional[threading.Event] = None) -> None:
    """Blocking serve loop (Ctrl-C returns cleanly and closes the service)."""
    server = make_server(service, host=host, port=port, quiet=quiet)
    if ready is not None:
        ready.set()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()
