"""Bounded admission with load shedding.

Under overload a service must refuse work fast, not queue it until every
caller times out. :class:`AdmissionGate` caps concurrent in-flight
requests; when full, admission fails immediately (the serving layer maps
that to HTTP 429 and a shed counter) instead of blocking.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict

from ..exceptions import ConfigurationError, ServiceOverloadedError

__all__ = ["AdmissionGate"]


class AdmissionGate:
    """Non-blocking bounded admission counter.

    Parameters
    ----------
    limit:
        Maximum concurrent admitted requests; 0 disables the gate
        (everything admitted).
    """

    def __init__(self, limit: int = 0):
        if limit < 0:
            raise ConfigurationError("limit must be >= 0")
        self.limit = limit
        self._lock = threading.Lock()
        self._in_flight = 0
        self._admitted = 0
        self._shed = 0

    def try_acquire(self) -> bool:
        """Admit one request if capacity allows; never blocks."""
        with self._lock:
            if self.limit and self._in_flight >= self.limit:
                self._shed += 1
                return False
            self._in_flight += 1
            self._admitted += 1
            return True

    def release(self) -> None:
        with self._lock:
            if self._in_flight <= 0:
                raise RuntimeError("release() without matching try_acquire()")
            self._in_flight -= 1

    @contextmanager
    def admit(self, what: str = "request"):
        """Context manager: admit or raise :class:`ServiceOverloadedError`."""
        if not self.try_acquire():
            with self._lock:
                in_flight = self._in_flight
            raise ServiceOverloadedError(
                f"{what} shed: {in_flight}/{self.limit} in flight")
        try:
            yield
        finally:
            self.release()

    def stats(self) -> Dict:
        with self._lock:
            return {"limit": self.limit, "in_flight": self._in_flight,
                    "admitted": self._admitted, "shed": self._shed}
