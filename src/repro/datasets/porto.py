"""Synthetic Porto-like taxi trajectory generator.

Substitute for the public Porto taxi dataset [23] (unavailable offline).
Taxi traffic concentrates on a limited set of popular routes (airport <->
center, arterials), producing many near-duplicate trajectories — the paper
explicitly attributes its absolute HR numbers to those near-duplicates.
The generator therefore draws most trips from a pool of *route families*
(a smoothed master route plus per-trip jitter, trimming and resampling) and
the rest as dispersed background trips.

Coordinates are meters in a city frame ``[0, extent] x [0, extent]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import synthesis
from .trajectory import Trajectory, TrajectoryDataset


@dataclass(frozen=True)
class PortoConfig:
    """Parameters of the Porto-like generator.

    Attributes
    ----------
    num_trajectories: total trips to generate.
    num_route_families: number of popular master routes.
    family_fraction: fraction of trips drawn from route families.
    extent: city side length in meters.
    noise_std: GPS jitter in meters.
    min_points / max_points: per-trip sample-count range.
    """

    num_trajectories: int = 1000
    num_route_families: int = 20
    family_fraction: float = 0.7
    extent: float = 10_000.0
    noise_std: float = 25.0
    min_points: int = 10
    max_points: int = 60


def generate_porto(config: PortoConfig = PortoConfig(),
                   seed: int = 0) -> TrajectoryDataset:
    """Generate a Porto-like taxi dataset.

    Returns a :class:`TrajectoryDataset` of ``config.num_trajectories``
    trajectories with ids ``0..n-1``.
    """
    rng = np.random.default_rng(seed)
    bbox = (0.0, 0.0, config.extent, config.extent)

    families = []
    for _ in range(config.num_route_families):
        num_way = int(rng.integers(3, 7))
        way = synthesis.random_waypoints(bbox, num_way, rng)
        families.append(synthesis.smooth_polyline(way, passes=3))

    trajectories = []
    for i in range(config.num_trajectories):
        num_points = int(rng.integers(config.min_points, config.max_points + 1))
        if rng.random() < config.family_fraction and families:
            master = families[int(rng.integers(len(families)))]
            route = synthesis.interpolate_path(master, max(num_points + 10, 12))
            route = synthesis.trim_route(route, rng)
            route = synthesis.interpolate_path(route, num_points)
        else:
            num_way = int(rng.integers(2, 5))
            way = synthesis.random_waypoints(bbox, num_way, rng)
            route = synthesis.interpolate_path(
                synthesis.smooth_polyline(way, passes=2), num_points)
        route = synthesis.jitter(route, config.noise_std, rng)
        route = np.clip(route, 0.0, config.extent)
        trajectories.append(Trajectory(route, traj_id=i))
    return TrajectoryDataset(trajectories)
