"""Spatial Attention Memory (SAM) and the SAM-augmented LSTM (paper §IV).

The SAM module is a grid-based external memory: a tensor ``M`` of shape
(P, Q, d) holding one embedding per grid cell of the discretised space.
The augmented recurrent unit adds a fourth *spatial* gate ``s_t`` and, at
each step,

* **reads** (Eq. 4): scans the (2w+1)² window of grid cells around the
  current input cell, attends over them with the intermediate cell state
  and mixes the result back into the cell state, and
* **writes** (Eq. 5): stores the new cell state into the current grid cell,
  gated by ``sigma(s_t)``.

Following the released implementation, the memory is *external state*:
reads treat stored embeddings as constants and writes store detached
values — gradients flow through the attention weights and the read
projection, not through history.

Two stabilisations (both ablatable) keep long CPU trainings healthy; we
found the literal equations drift otherwise (cell-state magnitudes past 10,
saturating ``tanh`` and costing ~20 HR@10 points on our workloads):

* the spatial gate's bias starts at ``SPATIAL_GATE_BIAS`` (negative), so
  the additive memory path opens only where training finds it useful —
  the standard highway/GRU-style initialisation for additive gates;
* writes store ``tanh(c_t)`` (``bounded=True``), bounding the stored
  embeddings to the same range the attention reader was designed for.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from . import init
from .layers import Linear
from .module import Module, Parameter
from .tensor import Tensor, concat, where

#: Initial bias of the spatial gate: strongly negative so the memory path
#: starts nearly closed and opens only where it reduces the loss.
SPATIAL_GATE_BIAS = -4.0


class SpatialMemory:
    """Grid-based memory tensor ``M`` with windowed gather and gated scatter.

    Parameters
    ----------
    grid_shape:
        (P, Q) number of grid cells along each axis.
    hidden_size:
        Width ``d`` of each stored cell embedding.
    bandwidth:
        Scan half-width ``w``; reads return the (2w+1)² surrounding cells.
    bounded:
        Store ``tanh(values)`` on writes (default True), keeping cell
        embeddings in (-1, 1) regardless of cell-state drift.
    """

    def __init__(self, grid_shape: Tuple[int, int], hidden_size: int,
                 bandwidth: int = 2, bounded: bool = True):
        if bandwidth < 0:
            raise ValueError("bandwidth must be >= 0")
        self.grid_shape = (int(grid_shape[0]), int(grid_shape[1]))
        self.hidden_size = int(hidden_size)
        self.bandwidth = int(bandwidth)
        self.bounded = bool(bounded)
        p, q = self.grid_shape
        self.data = np.zeros((p, q, self.hidden_size))
        offsets = np.arange(-bandwidth, bandwidth + 1)
        ox, oy = np.meshgrid(offsets, offsets, indexing="ij")
        # (K, 2) window offsets in row-major scan order, K = (2w+1)^2.
        self._window = np.stack([ox.ravel(), oy.ravel()], axis=1)

    @property
    def window_size(self) -> int:
        return len(self._window)

    def reset(self) -> None:
        """Zero the memory (used between training runs / datasets)."""
        self.data[:] = 0.0

    def copy(self) -> "SpatialMemory":
        clone = SpatialMemory(self.grid_shape, self.hidden_size,
                              self.bandwidth, bounded=self.bounded)
        clone.data = self.data.copy()
        return clone

    def gather(self, cells: np.ndarray) -> np.ndarray:
        """Read the scan windows around a batch of grid cells.

        Parameters
        ----------
        cells:
            Integer array (B, 2) of (gx, gy) cell coordinates.

        Returns
        -------
        (B, K, d) array of the surrounding grid-cell embeddings; positions
        outside the grid read as zeros.
        """
        cells = np.asarray(cells, dtype=int)
        coords = cells[:, None, :] + self._window[None, :, :]  # (B, K, 2)
        p, q = self.grid_shape
        valid = ((coords[..., 0] >= 0) & (coords[..., 0] < p)
                 & (coords[..., 1] >= 0) & (coords[..., 1] < q))
        gx = np.clip(coords[..., 0], 0, p - 1)
        gy = np.clip(coords[..., 1], 0, q - 1)
        window = self.data[gx, gy]  # (B, K, d)
        window = window * valid[..., None]
        return window

    def write(self, cells: np.ndarray, values: np.ndarray, gates: np.ndarray,
              mask: Optional[np.ndarray] = None) -> None:
        """Gated sparse update ``M(g) = sig(s)*c + (1-sig(s))*M(g)`` (Eq. 5).

        Writes are applied sample-by-sample in batch order, matching the
        per-trajectory semantics of the paper (a later sample in the batch
        sees earlier writes to the same cell).
        """
        cells = np.asarray(cells, dtype=int)
        values = np.asarray(values)
        if self.bounded:
            values = np.tanh(values)
        gate_weight = _sigmoid(np.asarray(gates))
        p, q = self.grid_shape
        for b in range(len(cells)):
            if mask is not None and not mask[b]:
                continue
            gx, gy = cells[b]
            if not (0 <= gx < p and 0 <= gy < q):
                continue
            g = gate_weight[b]
            self.data[gx, gy] = g * values[b] + (1.0 - g) * self.data[gx, gy]

    def occupancy(self) -> float:
        """Fraction of grid cells holding a non-zero embedding."""
        nonzero = np.any(self.data != 0.0, axis=-1)
        return float(nonzero.mean())


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return np.where(x >= 0, 1.0 / (1.0 + np.exp(-np.abs(x))),
                    np.exp(-np.abs(x)) / (1.0 + np.exp(-np.abs(x))))


class SAMLSTMCell(Module):
    """SAM-augmented LSTM step (paper Eq. 1-6).

    Produces four sigmoid gates ``[f, i, s, o]`` from the coordinate input
    and previous hidden state, forms the intermediate cell state, augments it
    with the attention read from :class:`SpatialMemory` scaled by the spatial
    gate, writes the result back, and emits the hidden state.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        self.input_size = input_size
        self.hidden_size = hidden_size
        d = hidden_size
        self.w_gates = Parameter(init.xavier_uniform((4 * d, input_size), rng))
        self.u_gates = Parameter(init.orthogonal((4 * d, d), rng))
        bias = init.lstm_forget_bias(init.zeros(4 * d), d)
        bias[2 * d:3 * d] = SPATIAL_GATE_BIAS
        self.b_gates = Parameter(bias)
        self.w_cand = Parameter(init.xavier_uniform((d, input_size), rng))
        self.u_cand = Parameter(init.orthogonal((d, d), rng))
        self.b_cand = Parameter(init.zeros(d))
        # Attention read projection W_his: concat([c_hat, mix]) -> d.
        self.read_proj = Linear(2 * d, d, rng)

    def forward(self, x: Tensor, grid_cells: np.ndarray, h_prev: Tensor,
                c_prev: Tensor, memory: SpatialMemory,
                write: bool = True, step_mask: Optional[np.ndarray] = None
                ) -> Tuple[Tensor, Tensor]:
        d = self.hidden_size
        gates = (x @ self.w_gates.transpose()
                 + h_prev @ self.u_gates.transpose() + self.b_gates).sigmoid()
        f_t = gates[:, 0 * d:1 * d]
        i_t = gates[:, 1 * d:2 * d]
        s_t = gates[:, 2 * d:3 * d]
        o_t = gates[:, 3 * d:4 * d]
        cand = (x @ self.w_cand.transpose()
                + h_prev @ self.u_cand.transpose() + self.b_cand).tanh()
        c_hat = f_t * c_prev + i_t * cand

        c_his = self.read(c_hat, grid_cells, memory)
        c_t = c_hat + s_t * c_his
        if write:
            memory.write(grid_cells, c_t.data, s_t.data, mask=step_mask)
        h_t = o_t * c_t.tanh()
        return h_t, c_t

    def read(self, c_hat: Tensor, grid_cells: np.ndarray,
             memory: SpatialMemory) -> Tensor:
        """Attention read (§IV-C1): scan, attend, mix, project."""
        window = Tensor(memory.gather(grid_cells))  # (B, K, d), constant
        # Attention scores: (B, K, d) @ (B, d, 1) -> (B, K).
        scores = (window @ c_hat.reshape(c_hat.shape[0], c_hat.shape[1], 1)
                  ).reshape(window.shape[0], window.shape[1])
        attn = scores.softmax(axis=-1)
        # mix = G^T A: (B, d, K) @ (B, K, 1) -> (B, d).
        mix = (window.transpose(0, 2, 1)
               @ attn.reshape(attn.shape[0], attn.shape[1], 1)
               ).reshape(c_hat.shape)
        cat = concat([c_hat, mix], axis=-1)
        return self.read_proj(cat).tanh()


class SAMLSTM(Module):
    """Run a :class:`SAMLSTMCell` over padded (coords, grid-cells) sequences.

    ``forward`` consumes coordinates (B, T, input_size), integer grid cells
    (B, T, 2) and a boolean mask (B, T). Memory writes happen only when
    ``update_memory`` is True (training); inference is read-only so that
    embeddings are deterministic.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator):
        self.hidden_size = hidden_size
        self.cell = SAMLSTMCell(input_size, hidden_size, rng)

    def forward(self, inputs: np.ndarray, grid_cells: np.ndarray,
                mask: np.ndarray, memory: SpatialMemory,
                update_memory: bool = False, return_sequence: bool = False):
        inputs = np.asarray(inputs, dtype=np.float64)
        grid_cells = np.asarray(grid_cells, dtype=int)
        mask = np.asarray(mask, dtype=bool)
        batch, steps, _ = inputs.shape
        h = Tensor(np.zeros((batch, self.hidden_size)))
        c = Tensor(np.zeros((batch, self.hidden_size)))
        outputs = []
        for t in range(steps):
            x_t = Tensor(inputs[:, t, :])
            step_mask = mask[:, t]
            h_new, c_new = self.cell(
                x_t, grid_cells[:, t, :], h, c, memory,
                write=update_memory, step_mask=step_mask)
            h = where(step_mask[:, None], h_new, h)
            c = where(step_mask[:, None], c_new, c)
            if return_sequence:
                outputs.append(h)
        if return_sequence:
            return h, outputs
        return h
