"""tape-shape: abstract interpretation of tensor code on the shape/dtype
lattice.

Runs over ``repro.nn`` modules (and anything that imports them, which is
how encoder fixtures opt in). Each function/method is interpreted
intraprocedurally on the :mod:`repro.analysis.lattice` domains:

* constructor arguments become symbolic dims (``hidden_size`` → ``d``),
  so ``__init__`` seeds a per-class attribute environment in which
  ``self.u_gates`` really is a ``(3d, d)`` array;
* ``forward``/``step``/``step_core`` bodies then check every
  ``matmul``/``concat``/``stack``/``lstm_gates``/broadcast against the
  symbolic shapes, reporting only *provable* mismatches — a branch join
  produces ⊤, never a guess;
* dtype constants are tracked through aliases, so a ``float32`` that
  reaches a ``Tensor``/``Parameter`` constructor or an ``astype`` via a
  variable is flagged even though no ``np.float32`` literal appears on
  the offending line (the gap the per-file ``dtype-discipline`` rule
  cannot see);
* ``Parameter`` fields that no method outside ``__init__`` (in the class
  or any program-known subclass) ever reads are dead weight: they are
  registered by ``parameters()`` but no forward path touches them, so
  their tape backward is unreachable and their gradient is forever zero.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from . import register_program
from .base import ProgramRule
from .. import lattice
from ..lattice import AbstractValue, BAD_FLOATS, Dim, DTYPE_TOP, F64, Shape

_TOP = object()  # interp value: unknown

_NUMPY_CTORS = {
    "numpy.zeros": F64, "numpy.ones": F64, "numpy.empty": F64,
    "numpy.full": F64, "numpy.zeros_like": None, "numpy.ones_like": None,
    "numpy.empty_like": None,
}

_DTYPE_NAMES = {
    "numpy.float64": "float64", "numpy.float32": "float32",
    "numpy.float16": "float16", "numpy.half": "float16",
    "numpy.single": "float32", "numpy.double": "float64",
    "numpy.complex64": "complex64", "numpy.int64": "int",
    "numpy.int32": "int", "numpy.bool_": "bool",
    "float": "float64", "int": "int", "bool": "bool",
}

_SHAPE_PRESERVING_METHODS = frozenset({
    "softmax", "tanh", "sigmoid", "relu", "exp", "log", "sqrt", "copy",
    "clip", "abs",
})

_TENSOR_CTORS = frozenset({"Tensor", "Parameter"})


def _is_dim(value) -> bool:
    return isinstance(value, Dim)


def _as_array(value) -> Optional[AbstractValue]:
    return value if isinstance(value, AbstractValue) else None


def _as_shape(value) -> Optional[Shape]:
    """A tuple-of-dims interp value as a Shape, if fully understood."""
    if isinstance(value, Dim):
        return Shape.of(value)
    if isinstance(value, tuple):
        dims = []
        for element in value:
            if isinstance(element, Dim):
                dims.append(element)
            else:
                dims.append(Dim.top())
        return Shape(dims)
    return None


class _Interp:
    """One function's abstract interpretation; collects findings."""

    def __init__(self, rule, program, module, fn,
                 attrs: Optional[Dict[str, object]] = None):
        self.rule = rule
        self.program = program
        self.module = module
        self.fn = fn
        self.attrs = attrs if attrs is not None else {}
        self.findings: List = []
        self._flagged: set = set()

    # --------------------------------------------------------------- driving

    def run(self, seed_symbols: bool) -> Dict[str, object]:
        env: Dict[str, object] = {}
        node = self.fn.node
        args = node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        if args.vararg:
            names.append(args.vararg.arg)
        for name in names:
            if name == "self":
                continue
            env[name] = Dim.symbol(name) if seed_symbols else _TOP
        self._stmts(node.body, env)
        return env

    def _flag(self, node: ast.AST, message: str) -> None:
        key = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0),
               message)
        if key in self._flagged:
            return
        self._flagged.add(key)
        self.findings.append(self.program.finding(
            self.module, self.rule.rule_id, node, message))

    # ------------------------------------------------------------ statements

    def _stmts(self, stmts, env) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Assign):
                value = self._eval(stmt.value, env)
                for target in stmt.targets:
                    self._bind(target, value, env)
            elif isinstance(stmt, ast.AnnAssign):
                if stmt.value is not None:
                    self._bind(stmt.target, self._eval(stmt.value, env), env)
            elif isinstance(stmt, ast.AugAssign):
                value = self._binop(stmt, self._load_target(stmt.target, env),
                                    self._eval(stmt.value, env), stmt.op)
                self._bind(stmt.target, value, env)
            elif isinstance(stmt, ast.If):
                self._eval(stmt.test, env)
                then_env = dict(env)
                else_env = dict(env)
                self._stmts(stmt.body, then_env)
                self._stmts(stmt.orelse, else_env)
                self._join_into(env, then_env, else_env)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._eval(stmt.iter, env)
                body_env = dict(env)
                self._bind(stmt.target, _TOP, body_env)
                self._stmts(stmt.body, body_env)
                self._stmts(stmt.orelse, body_env)
                self._join_into(env, env, body_env)
            elif isinstance(stmt, ast.While):
                self._eval(stmt.test, env)
                body_env = dict(env)
                self._stmts(stmt.body, body_env)
                self._join_into(env, env, body_env)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._eval(item.context_expr, env)
                    if item.optional_vars is not None:
                        self._bind(item.optional_vars, _TOP, env)
                self._stmts(stmt.body, env)
            elif isinstance(stmt, ast.Try):
                body_env = dict(env)
                self._stmts(stmt.body, body_env)
                self._stmts(stmt.orelse, body_env)
                for handler in stmt.handlers:
                    self._stmts(handler.body, dict(env))
                self._join_into(env, env, body_env)
                self._stmts(stmt.finalbody, env)
            elif isinstance(stmt, (ast.Return, ast.Expr)):
                if stmt.value is not None:
                    self._eval(stmt.value, env)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                pass  # nested defs (backward closures) are not re-entered
            else:
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.expr):
                        self._eval(child, env)

    def _join_into(self, env, a, b) -> None:
        for key in set(a) | set(b):
            va, vb = a.get(key, _TOP), b.get(key, _TOP)
            env[key] = self._join(va, vb)
        for key in [k for k in env if k not in a and k not in b]:
            del env[key]

    @staticmethod
    def _join(a, b):
        if a is b:
            return a
        if isinstance(a, Dim) and isinstance(b, Dim):
            return a.join(b)
        array_a, array_b = _as_array(a), _as_array(b)
        if array_a is not None and array_b is not None:
            return array_a.join(array_b)
        if isinstance(a, str) and isinstance(b, str) and a == b:
            return a
        return _TOP

    def _bind(self, target, value, env) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            elements = value if isinstance(value, tuple) else None
            for i, element in enumerate(target.elts):
                item = elements[i] if elements is not None \
                    and i < len(elements) else _TOP
                self._bind(element, item, env)
        elif isinstance(target, ast.Attribute) \
                and isinstance(target.value, ast.Name) \
                and target.value.id == "self":
            self.attrs[target.attr] = value
        elif isinstance(target, ast.Starred):
            self._bind(target.value, _TOP, env)
        # subscripts and foreign attributes: no tracked cell

    def _load_target(self, target, env):
        if isinstance(target, ast.Name):
            return env.get(target.id, _TOP)
        return _TOP

    # ----------------------------------------------------------- expressions

    def _eval(self, node, env):
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return _TOP
            if isinstance(node.value, int):
                return Dim.of(node.value)
            if isinstance(node.value, float):
                return AbstractValue(Shape.of(), F64)
            return _TOP
        if isinstance(node, ast.Name):
            return env.get(node.id, _TOP)
        if isinstance(node, ast.Attribute):
            return self._attribute(node, env)
        if isinstance(node, (ast.Tuple, ast.List)):
            return tuple(self._eval(element, env) for element in node.elts)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, env)
            right = self._eval(node.right, env)
            return self._binop(node, left, right, node.op)
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand, env)
            if isinstance(operand, Dim) and isinstance(node.op, ast.USub):
                return operand.scaled(-1)
            return operand if _as_array(operand) else _TOP
        if isinstance(node, ast.Call):
            return self._call(node, env)
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env)
            return self._join(self._eval(node.body, env),
                              self._eval(node.orelse, env))
        if isinstance(node, ast.Subscript):
            return self._subscript(node, env)
        if isinstance(node, ast.Compare):
            self._eval(node.left, env)
            for comparator in node.comparators:
                self._eval(comparator, env)
            return _TOP
        if isinstance(node, (ast.Lambda,)):
            return _TOP
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._eval(child, env)
            elif isinstance(child, ast.comprehension):
                self._eval(child.iter, env)
        return _TOP

    def _attribute(self, node: ast.Attribute, env):
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            if node.attr in self.attrs:
                return self.attrs[node.attr]
            dotted = self.module.resolve_name(node)
            if dotted in _DTYPE_NAMES:
                return _DTYPE_NAMES[dotted]
            return Dim.symbol(f"self.{node.attr}")
        dotted = self.module.resolve_name(node)
        if dotted in _DTYPE_NAMES:
            return _DTYPE_NAMES[dotted]
        base = self._eval(node.value, env)
        array = _as_array(base)
        if array is not None:
            if node.attr == "shape" and not array.shape.is_top:
                return tuple(array.shape.dims)
            if node.attr == "T":
                if not array.shape.is_top:
                    return AbstractValue(Shape(array.shape.dims[::-1]),
                                         array.dtype, array.tensorlike)
                return AbstractValue(dtype=array.dtype)
            if node.attr == "data":
                return AbstractValue(array.shape, array.dtype, False)
            if node.attr == "dtype":
                return array.dtype
        return _TOP

    def _binop(self, node, left, right, op):
        if isinstance(left, Dim) and isinstance(right, Dim):
            if isinstance(op, ast.Add):
                return left.plus(right)
            if isinstance(op, ast.Sub):
                return left.plus(right.scaled(-1))
            if isinstance(op, ast.Mult):
                if left.known_const() is not None:
                    return right.scaled(left.known_const())
                if right.known_const() is not None:
                    return left.scaled(right.known_const())
                return Dim.top()
            if isinstance(op, ast.FloorDiv) \
                    and right.known_const() is not None:
                k = right.known_const()
                if k and left.coeff % k == 0 and left.const % k == 0:
                    return Dim(coeff=left.coeff // k, sym=left.sym,
                               const=left.const // k)
            return Dim.top()
        array_left, array_right = _as_array(left), _as_array(right)
        if isinstance(op, ast.MatMult):
            if array_left is not None and array_right is not None:
                result, error = lattice.matmul(array_left.shape,
                                               array_right.shape)
                if error:
                    self._flag(node, f"matmul of {array_left.shape!r} @ "
                                     f"{array_right.shape!r}: {error}")
                return self._combine(array_left, array_right, result)
            return _TOP
        if array_left is not None or array_right is not None:
            a = array_left or AbstractValue(Shape.of(),
                                            F64 if isinstance(left, Dim)
                                            else DTYPE_TOP)
            b = array_right or AbstractValue(Shape.of(),
                                             F64 if isinstance(right, Dim)
                                             else DTYPE_TOP)
            result, error = lattice.broadcast(a.shape, b.shape)
            if error:
                self._flag(node, f"elementwise op on {a.shape!r} and "
                                 f"{b.shape!r}: {error}")
            return self._combine(a, b, result)
        return _TOP

    @staticmethod
    def _combine(a: AbstractValue, b: AbstractValue,
                 shape: Shape) -> AbstractValue:
        dtype = a.dtype if a.dtype == b.dtype else (
            a.dtype if b.dtype == DTYPE_TOP else
            b.dtype if a.dtype == DTYPE_TOP else DTYPE_TOP)
        return AbstractValue(shape, dtype, a.tensorlike or b.tensorlike)

    # ----------------------------------------------------------------- calls

    def _call(self, node: ast.Call, env):
        func = node.func
        arg_values = [self._eval(argument, env) for argument in node.args]
        keyword_values = {kw.arg: self._eval(kw.value, env)
                          for kw in node.keywords if kw.arg}
        dotted = self.module.resolve_name(func) or ""
        simple = dotted.rsplit(".", 1)[-1]

        if simple in _TENSOR_CTORS and arg_values:
            return self._tensor_ctor(node, arg_values[0], keyword_values)
        if dotted in _NUMPY_CTORS:
            return self._numpy_ctor(node, dotted, arg_values, keyword_values)
        if dotted in ("numpy.asarray", "numpy.array",
                      "numpy.ascontiguousarray"):
            return self._asarray(node, arg_values, keyword_values)
        if dotted in ("numpy.matmul", "numpy.dot") and len(arg_values) >= 2:
            return self._binop(node, arg_values[0], arg_values[1],
                               ast.MatMult())
        if simple == "concat" and arg_values:
            return self._concat(node, arg_values, keyword_values)
        if simple == "stack" and arg_values:
            return self._stack(node, arg_values, keyword_values)
        if simple == "lstm_gates" and len(arg_values) >= 2:
            return self._lstm_gates(node, arg_values)
        if simple == "where" and len(arg_values) >= 3:
            return self._binop(node, arg_values[1], arg_values[2], ast.Add())
        if isinstance(func, ast.Attribute):
            return self._method_call(node, func, env, arg_values,
                                     keyword_values)
        if simple in ("xavier_uniform", "orthogonal", "glorot") \
                and arg_values:
            shape = _as_shape(arg_values[0])
            if shape is not None:
                return AbstractValue(shape, F64)
        if simple in ("zeros", "ones") and arg_values:
            shape = _as_shape(arg_values[0])
            if shape is not None:
                return AbstractValue(shape, F64)
        if simple == "lstm_forget_bias" and arg_values:
            return arg_values[0]
        return _TOP

    def _method_call(self, node, func: ast.Attribute, env, arg_values,
                     keyword_values):
        receiver = self._eval(func.value, env)
        array = _as_array(receiver)
        method = func.attr
        if array is None:
            return _TOP
        if method == "astype" and arg_values:
            dtype = arg_values[0] if isinstance(arg_values[0], str) \
                else DTYPE_TOP
            if dtype in BAD_FLOATS:
                self._flag(node, f"astype to {dtype} violates the float64 "
                                 f"tape discipline (dtype reached this "
                                 f"call through an alias)")
            return AbstractValue(array.shape, dtype, array.tensorlike)
        if method == "reshape":
            return self._reshape(node, array, arg_values)
        if method == "transpose":
            return self._transpose(array, arg_values)
        if method in _SHAPE_PRESERVING_METHODS:
            return AbstractValue(array.shape, array.dtype, array.tensorlike)
        if method in ("sum", "mean", "max", "min"):
            return AbstractValue(dtype=array.dtype,
                                 tensorlike=array.tensorlike)
        return _TOP

    def _tensor_ctor(self, node, data, keyword_values):
        array = _as_array(data)
        shape = array.shape if array is not None else _as_shape(data) \
            or Shape.top()
        if array is not None and array.dtype in BAD_FLOATS:
            self._flag(node, f"{array.dtype} value flows into a tape "
                             f"Tensor: float64 discipline violated through "
                             f"aliasing (the per-file dtype rule cannot "
                             f"see this)")
        return AbstractValue(shape, F64, tensorlike=True)

    def _numpy_ctor(self, node, dotted, arg_values, keyword_values):
        default = _NUMPY_CTORS[dotted]
        dtype = self._dtype_of(node, keyword_values, default or DTYPE_TOP)
        if dotted.endswith("_like"):
            source = _as_array(arg_values[0]) if arg_values else None
            shape = source.shape if source is not None else Shape.top()
            if default is None and "dtype" not in keyword_values \
                    and source is not None:
                dtype = source.dtype
            return AbstractValue(shape, dtype)
        shape = _as_shape(arg_values[0]) if arg_values else None
        return AbstractValue(shape or Shape.top(), dtype)

    def _asarray(self, node, arg_values, keyword_values):
        source = _as_array(arg_values[0]) if arg_values else None
        dtype = self._dtype_of(
            node, keyword_values,
            source.dtype if source is not None else DTYPE_TOP)
        shape = source.shape if source is not None else Shape.top()
        return AbstractValue(shape, dtype)

    def _dtype_of(self, node, keyword_values, default):
        if "dtype" not in keyword_values:
            return default
        dtype = keyword_values["dtype"]
        if isinstance(dtype, str):
            if dtype in BAD_FLOATS:
                self._flag(node, f"dtype {dtype} reached this constructor "
                                 f"through an alias: float64 discipline "
                                 f"violated (invisible to the per-file "
                                 f"dtype rule)")
            return dtype
        return DTYPE_TOP

    def _concat(self, node, arg_values, keyword_values):
        shapes = self._element_shapes(arg_values[0])
        if shapes is None:
            return _TOP
        axis = self._axis(arg_values[1:], keyword_values)
        result, error = lattice.concat(shapes, axis)
        if error:
            self._flag(node, error)
        return AbstractValue(result, F64, tensorlike=True)

    def _stack(self, node, arg_values, keyword_values):
        shapes = self._element_shapes(arg_values[0])
        if shapes is None:
            return _TOP
        axis = self._axis(arg_values[1:], keyword_values)
        result, error = lattice.stack(shapes, axis)
        if error:
            self._flag(node, error)
        return AbstractValue(result, F64, tensorlike=True)

    def _lstm_gates(self, node, arg_values):
        pre = _as_array(arg_values[0])
        gates = arg_values[1]
        if pre is None or not isinstance(gates, Dim) \
                or gates.known_const() is None:
            return _TOP
        pieces, error = lattice.lstm_gates(pre.shape, gates.known_const())
        if error:
            self._flag(node, f"lstm_gates: {error}")
        return tuple(AbstractValue(piece, pre.dtype, pre.tensorlike)
                     for piece in pieces)

    @staticmethod
    def _element_shapes(value) -> Optional[List[Shape]]:
        if not isinstance(value, tuple) or not value:
            return None
        shapes = []
        for element in value:
            array = _as_array(element)
            if array is None:
                return None
            shapes.append(array.shape)
        return shapes

    @staticmethod
    def _axis(positional, keyword_values) -> int:
        candidate = keyword_values.get("axis")
        if candidate is None and positional:
            candidate = positional[0]
        if isinstance(candidate, Dim) and candidate.known_const() is not None:
            return candidate.known_const()
        return 0

    def _reshape(self, node, array: AbstractValue, arg_values):
        dims = arg_values[0] if len(arg_values) == 1 \
            and isinstance(arg_values[0], tuple) else tuple(arg_values)
        shape = _as_shape(dims)
        if shape is None:
            return AbstractValue(dtype=array.dtype,
                                 tensorlike=array.tensorlike)
        if not array.shape.is_top:
            source = self._product(array.shape.dims)
            target = self._product(shape.dims)
            if source is not None and target is not None \
                    and -1 not in (d.known_const() for d in shape.dims) \
                    and source != target:
                self._flag(node, f"reshape of {array.shape!r} "
                                 f"({source} elements) to {shape!r} "
                                 f"({target} elements)")
        return AbstractValue(shape, array.dtype, array.tensorlike)

    @staticmethod
    def _product(dims) -> Optional[int]:
        total = 1
        for dim in dims:
            const = dim.known_const()
            if const is None or const < 0:
                return None
            total *= const
        return total

    def _transpose(self, array: AbstractValue, arg_values):
        if array.shape.is_top:
            return AbstractValue(dtype=array.dtype,
                                 tensorlike=array.tensorlike)
        dims = array.shape.dims
        perm = arg_values[0] if len(arg_values) == 1 \
            and isinstance(arg_values[0], tuple) else tuple(arg_values)
        indexes = []
        for element in perm:
            if isinstance(element, Dim) and element.known_const() is not None:
                indexes.append(element.known_const())
            else:
                return AbstractValue(dtype=array.dtype,
                                     tensorlike=array.tensorlike)
        if not indexes:
            indexes = list(range(len(dims)))[::-1]
        if sorted(indexes) != list(range(len(dims))):
            return AbstractValue(dtype=array.dtype,
                                 tensorlike=array.tensorlike)
        return AbstractValue(Shape([dims[i] for i in indexes]),
                             array.dtype, array.tensorlike)

    def _subscript(self, node: ast.Subscript, env):
        base = self._eval(node.value, env)
        index = self._eval(node.slice, env)
        array = _as_array(base)
        if isinstance(base, tuple):
            if isinstance(index, Dim) and index.known_const() is not None \
                    and 0 <= index.known_const() < len(base):
                return base[index.known_const()]
            return _TOP
        if array is None or array.shape.is_top:
            return _TOP
        if isinstance(index, Dim) and array.shape.dims:
            return AbstractValue(Shape(array.shape.dims[1:]), array.dtype,
                                 array.tensorlike)
        if isinstance(node.slice, ast.Slice) and array.shape.dims:
            return AbstractValue(Shape((Dim.top(),)
                                       + array.shape.dims[1:]),
                                 array.dtype, array.tensorlike)
        return AbstractValue(dtype=array.dtype, tensorlike=array.tensorlike)


@register_program
class TapeShapeRule(ProgramRule):
    rule_id = "tape-shape"
    description = ("abstract shape/dtype interpretation of tape code: "
                   "provable matmul/concat/stack/lstm_gates mismatches, "
                   "aliased float64-discipline violations, and Parameters "
                   "whose backward is unreachable from parameters()")
    default_options = {
        "packages": ("repro/nn/",),
        #: modules importing any of these packages are also in scope
        #: (fixture encoders opt in by importing the tape engine).
        "import_roots": ("repro.nn",),
    }

    def check_module(self, program, callgraph, module, options):
        if not self._in_scope(module, options):
            return []
        findings = []
        for fn in module.functions:
            interp = _Interp(self, program, module, fn)
            interp.run(seed_symbols=False)
            findings.extend(interp.findings)
        for cls in module.classes:
            findings.extend(self._check_class(program, module, cls))
        return findings

    @staticmethod
    def _in_scope(module, options) -> bool:
        if any(fragment in module.rel_path
               for fragment in options.get("packages", ())):
            return True
        roots = options.get("import_roots", ())
        return any(origin.startswith(root)
                   for origin in module.imports.values()
                   for root in roots)

    def _check_class(self, program, module, cls):
        findings = []
        attrs: Dict[str, object] = {}
        init = cls.methods.get("__init__")
        if init is not None:
            interp = _Interp(self, program, module, init, attrs)
            interp.run(seed_symbols=True)
            findings.extend(interp.findings)
        for name, fn in cls.methods.items():
            if name == "__init__":
                continue
            interp = _Interp(self, program, module, fn, dict(attrs))
            interp.run(seed_symbols=False)
            findings.extend(interp.findings)
        findings.extend(self._dead_parameters(program, module, cls, init))
        return findings

    # A Parameter field nothing reads outside __init__ is registered by
    # parameters() but disconnected from every forward tape.
    def _dead_parameters(self, program, module, cls, init):
        if init is None or not self._is_module_subclass(program, cls):
            return []
        param_fields: Dict[str, ast.AST] = {}
        for node in ast.walk(init.node):
            if not isinstance(node, ast.Assign):
                continue
            target = node.targets[0] if node.targets else None
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            for call in ast.walk(node.value):
                if isinstance(call, ast.Call) \
                        and isinstance(call.func, ast.Name) \
                        and call.func.id == "Parameter":
                    param_fields[target.attr] = node
                    break
        if not param_fields:
            return []
        used = set()
        scopes = [cls] + program.subclasses_of(cls)
        for scope in scopes:
            for name, fn in scope.methods.items():
                if name == "__init__" and scope is cls:
                    continue
                for node in ast.walk(fn.node):
                    if isinstance(node, ast.Attribute) \
                            and node.attr in param_fields \
                            and not isinstance(node.ctx, ast.Store):
                        used.add(node.attr)
        findings = []
        for field, node in sorted(param_fields.items()):
            if field in used:
                continue
            findings.append(program.finding(
                module, self.rule_id, node,
                f"Parameter `self.{field}` of {cls.name} is registered by "
                f"parameters() but never read by any method: its tape "
                f"backward is unreachable and its gradient is always "
                f"zero"))
        return findings

    def _is_module_subclass(self, program, cls, _depth=0) -> bool:
        if _depth > 8:
            return False
        for base in cls.bases:
            if base.rsplit(".", 1)[-1] == "Module":
                return True
            resolved = program.resolve_class(base, cls.module)
            if resolved is not None and resolved is not cls \
                    and self._is_module_subclass(program, resolved,
                                                 _depth + 1):
                return True
        return False
