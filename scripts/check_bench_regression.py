#!/usr/bin/env python
"""Guard against kernel performance regressions.

Re-runs ``benchmarks/bench_kernels.py`` and compares each kernel's
optimised-path time (``after_s``) against the committed
``benchmarks/BENCH_kernels.json`` baseline. Exits non-zero when

* any kernel's fresh ``after_s`` is more than ``--threshold`` (default
  1.5×) slower than the committed baseline, or
* any kernel's old/new equivalence check fails.

Wall-clock on shared CPUs is noisy, so the 1.5× threshold is deliberately
loose: it catches "someone un-vectorised the hot path", not 10% jitter.

Usage::

    PYTHONPATH=src python scripts/check_bench_regression.py
    PYTHONPATH=src python scripts/check_bench_regression.py --threshold 2.0

The same check is importable from the optional ``bench_regression``
pytest marker (deselected by default)::

    PYTHONPATH=src python -m pytest -m bench_regression
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "benchmarks" / "BENCH_kernels.json"
DEFAULT_THRESHOLD = 1.5


def compare_reports(baseline: dict, fresh: dict,
                    threshold: float = DEFAULT_THRESHOLD) -> list:
    """Return a list of human-readable failure strings (empty = pass)."""
    failures = []
    for name, base in baseline["kernels"].items():
        entry = fresh["kernels"].get(name)
        if entry is None:
            failures.append(f"{name}: missing from fresh run")
            continue
        if not entry["identical"]:
            failures.append(f"{name}: old/new equivalence check failed")
        slowdown = entry["after_s"] / base["after_s"]
        if slowdown > threshold:
            failures.append(
                f"{name}: after_s {entry['after_s']:.3f}s is "
                f"{slowdown:.2f}x the committed {base['after_s']:.3f}s "
                f"(threshold {threshold:.2f}x)")
    return failures


def run_check(threshold: float = DEFAULT_THRESHOLD) -> list:
    """Run the benchmarks and compare against the committed baseline."""
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    try:
        import bench_kernels
    finally:
        sys.path.pop(0)
    baseline = json.loads(BASELINE.read_text())
    fresh = bench_kernels.run_all()
    return compare_reports(baseline, fresh, threshold)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="max allowed slowdown vs the committed baseline "
                             f"(default {DEFAULT_THRESHOLD})")
    args = parser.parse_args(argv)
    if not BASELINE.exists():
        print(f"no committed baseline at {BASELINE}")
        return 1
    failures = run_check(args.threshold)
    if failures:
        print("PERFORMANCE REGRESSION:")
        for line in failures:
            print(f"  - {line}")
        return 1
    print("all kernels within threshold of the committed baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
