"""Golden-fixture tests for the whole-program analyzer.

Every seeded bug under ``tests/analysis/fixtures/`` must be reported
with the exact rule id, anchor line and fingerprint; every ``clean_*``
negative must stay silent. On top of that, ``src/`` itself must analyze
clean (the gate ci.sh stage 8 enforces), the incremental cache must
reproduce findings byte-for-byte, and the CLI exit codes must hold.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import Finding, load_baseline
from repro.analysis.cli import (DEFAULT_BASELINE, analyze_main,
                                main as lint_main)
from repro.analysis.engine import analyze_program_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"


@pytest.fixture(scope="module")
def result():
    return analyze_program_paths([FIXTURES])


def findings_in(result, name):
    path = (FIXTURES / name).as_posix()
    return sorted((f for f in result.findings if f.path == path),
                  key=lambda f: f.line)


def line_of(name, snippet):
    """1-based line of the first source line containing ``snippet``."""
    for lineno, text in enumerate(
            (FIXTURES / name).read_text().splitlines(), start=1):
        if snippet in text:
            return lineno
    raise AssertionError(f"{snippet!r} not in {name}")


def expected_fingerprint(name, line, rule):
    """The fingerprint contract: sha over rule, path and line *text*."""
    text = (FIXTURES / name).read_text().splitlines()[line - 1]
    return Finding(rule=rule, path=(FIXTURES / name).as_posix(), line=line,
                   col=0, message="", line_text=text).fingerprint


# ------------------------------------------------------------------- lockset

def test_lockset_flags_lock_free_read_through_helper(result):
    findings = findings_in(result, "race_helper.py")
    assert [f.rule for f in findings] == ["lockset"]
    finding = findings[0]
    # anchored at the unguarded read inside the helper, naming both sites
    assert finding.line == line_of("race_helper.py",
                                   "return self._count")
    assert "`self._count`" in finding.message
    assert "_unlocked_read" in finding.message
    assert "increment" in finding.message
    assert finding.fingerprint == expected_fingerprint(
        "race_helper.py", finding.line, "lockset")


def test_lockset_flags_contradicted_docstring_contract(result):
    findings = findings_in(result, "race_contract.py")
    assert [f.rule for f in findings] == ["lockset"]
    finding = findings[0]
    # anchored at the bare-handed call site in add_fast
    assert finding.line == line_of("race_contract.py",
                                   "    def add_fast") + 1
    assert "self._lock" in finding.message
    assert "contradicting" in finding.message
    assert finding.fingerprint == expected_fingerprint(
        "race_contract.py", finding.line, "lockset")


def test_lock_taken_in_caller_is_clean(result):
    assert findings_in(result, "clean_locking.py") == []


# ---------------------------------------------------------------- tape-shape

def test_tape_shape_flags_provable_symbolic_matmul_mismatch(result):
    findings = findings_in(result, "shape_bug.py")
    assert [f.rule for f in findings] == ["tape-shape"]
    finding = findings[0]
    assert finding.line == line_of("shape_bug.py",
                                   "self.w_in @ self.w_in")
    assert finding.message.startswith("matmul of")
    assert finding.fingerprint == expected_fingerprint(
        "shape_bug.py", finding.line, "tape-shape")


def test_shape_joined_at_branch_is_clean(result):
    assert findings_in(result, "clean_shapes.py") == []


def test_tape_shape_flags_aliased_float32(result):
    findings = findings_in(result, "dtype_alias.py")
    assert [f.rule for f in findings] == ["tape-shape"] * 2
    ctor, tensor = findings
    assert ctor.line == line_of("dtype_alias.py", "dtype=compact")
    assert "alias" in ctor.message
    assert tensor.line == line_of("dtype_alias.py", "Tensor(buffer)")
    assert "float32" in tensor.message
    assert tensor.fingerprint == expected_fingerprint(
        "dtype_alias.py", tensor.line, "tape-shape")


def test_tape_shape_flags_dead_parameter(result):
    findings = findings_in(result, "dead_parameter.py")
    assert [f.rule for f in findings] == ["tape-shape"]
    finding = findings[0]
    assert finding.line == line_of("dead_parameter.py", "self.w_spare")
    assert "`self.w_spare`" in finding.message
    assert "gradient" in finding.message
    assert finding.fingerprint == expected_fingerprint(
        "dead_parameter.py", finding.line, "tape-shape")


# ------------------------------------------------------------- resource-leak

def test_leaked_pipe_end_is_flagged_and_clean_variant_is_not(result):
    findings = findings_in(result, "leaked_pipe.py")
    # exactly one: handshake leaks `parent`, handshake_clean is silent
    assert [f.rule for f in findings] == ["resource-leak"]
    finding = findings[0]
    assert finding.line == line_of("leaked_pipe.py",
                                   "parent, child = Pipe()")
    assert "`parent`" in finding.message
    assert "Pipe connection" in finding.message
    assert finding.fingerprint == expected_fingerprint(
        "leaked_pipe.py", finding.line, "resource-leak")


def test_fixture_sweep_is_exhaustive(result):
    """No finding outside the ones the tests above pin down."""
    flagged = {Path(f.path).name for f in result.findings}
    assert flagged == {"race_helper.py", "race_contract.py",
                       "shape_bug.py", "dtype_alias.py",
                       "dead_parameter.py", "leaked_pipe.py"}


# ---------------------------------------------------------------- src/ gate

def test_repo_src_analyzes_clean():
    baseline = load_baseline(REPO_ROOT / DEFAULT_BASELINE)
    result = analyze_program_paths([REPO_ROOT / "src"], baseline=baseline)
    assert result.files_checked > 50
    details = "\n".join(f.format() for f in result.findings)
    assert result.clean, f"whole-program findings in src/:\n{details}"


# ------------------------------------------------------------------- caching

def test_incremental_cache_reproduces_findings(tmp_path, result):
    cache = tmp_path / "analyze.json"
    first = analyze_program_paths([FIXTURES], cache_path=cache)
    assert first.cached_modules == 0
    second = analyze_program_paths([FIXTURES], cache_path=cache)
    assert second.cached_modules == second.files_checked
    # byte-identical findings, fingerprints included
    key = lambda r: sorted((f.fingerprint, f.line, f.message)
                           for f in r.findings)
    assert key(second) == key(first) == key(result)


def test_cache_invalidates_when_an_import_neighbor_changes(tmp_path):
    lib = "def helper():\n    return 1\n"
    app = "import lib\n\nvalue = lib.helper()\n"
    (tmp_path / "lib.py").write_text(lib)
    (tmp_path / "app.py").write_text(app)
    cache = tmp_path / "cache.json"
    analyze_program_paths([tmp_path], cache_path=cache)
    # editing lib.py must also evict app.py (facts flow along imports)
    (tmp_path / "lib.py").write_text(lib + "\nEXTRA = 2\n")
    rerun = analyze_program_paths([tmp_path], cache_path=cache)
    assert rerun.cached_modules == 0


# ----------------------------------------------------------------------- CLI

def test_analyze_cli_exit_codes():
    dirty = str(FIXTURES / "leaked_pipe.py")
    clean = str(FIXTURES / "clean_locking.py")
    assert analyze_main([dirty, "--no-baseline"]) == 1
    assert analyze_main([clean, "--no-baseline"]) == 0
    # over the wall-clock budget: exit 2 even when clean
    assert analyze_main([clean, "--no-baseline", "--max-seconds", "0"]) == 2


def test_module_cli_wires_analyze_subcommand():
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "analyze", str(REPO_ROOT / "src"),
         "--baseline", str(REPO_ROOT / DEFAULT_BASELINE)],
        capture_output=True, text=True, cwd=REPO_ROOT, env=env)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 finding(s)" in proc.stderr


def test_stale_pragma_audit_reports_and_clears(tmp_path, capsys):
    used = ("import time\n"
            "created = time.time()  # repro: disable=determinism\n")
    unused = "x = 1  # repro: disable=determinism\n"
    (tmp_path / "used.py").write_text(used)
    (tmp_path / "unused.py").write_text(unused)
    exit_code = lint_main(["--stale-pragmas", "--no-baseline",
                           str(tmp_path)])
    output = capsys.readouterr().out
    assert exit_code == 1
    assert "unused.py:1" in output
    assert output.count("stale pragma") == 1
    (tmp_path / "unused.py").write_text("x = 1\n")
    assert lint_main(["--stale-pragmas", "--no-baseline",
                      str(tmp_path)]) == 0
