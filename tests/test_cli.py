"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_measures_command(capsys):
    assert main(["measures"]) == 0
    out = capsys.readouterr().out
    for name in ("dtw", "frechet", "hausdorff", "erp", "edr", "lcss"):
        assert name in out
    assert "non-metric" in out
    assert "metric" in out


def test_demo_command_small(capsys):
    assert main(["demo", "--size", "40", "--epochs", "1",
                 "--measure", "hausdorff"]) == 0
    out = capsys.readouterr().out
    assert "top-5 neighbours" in out


def test_experiment_unknown_name_rejected():
    with pytest.raises(SystemExit):
        main(["experiment", "tableX"])


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
