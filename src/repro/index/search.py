"""Index-accelerated top-k search pipelines (paper §VII-C1, Table V).

NeuTraj is *elastic*: because embeddings preserve spatial locality, any
spatial index can first shrink the candidate set, after which the ranker —
exact measure, AP sketch, or NeuTraj embeddings — only touches the
candidates. These pipelines reproduce the three Table V rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..approx.base import ApproximateMeasure
from ..eval.knn import top_k_from_distances
from ..measures.base import TrajectoryMeasure
from .grid_index import GridInvertedIndex
from .rtree import RTree, expand_bbox


@dataclass(frozen=True)
class IndexedSearchResult:
    """Top-k ids plus the candidate count the index produced."""

    ids: np.ndarray
    num_candidates: int


def candidates_for_query(index, query, margin: float = 0.0,
                         ring: int = 1) -> List[int]:
    """Candidate ids from either index type for a query trajectory."""
    if isinstance(index, RTree):
        return index.query(expand_bbox(query.bbox, margin))
    if isinstance(index, GridInvertedIndex):
        return index.query(query.points, ring=ring)
    raise TypeError(f"unsupported index type: {type(index)!r}")


def search_exact(index, query, database: Sequence,
                 measure: TrajectoryMeasure, k: int,
                 margin: float = 0.0) -> IndexedSearchResult:
    """Index + brute-force exact ranking over the candidates."""
    cand = candidates_for_query(index, query, margin=margin)
    distances = np.array([
        measure.distance(query.points, database[i].points) for i in cand
    ]) if cand else np.array([])
    top = top_k_from_distances(distances, min(k, len(cand))) if cand else []
    return IndexedSearchResult(ids=np.array([cand[i] for i in top], dtype=int),
                               num_candidates=len(cand))


def search_approx(index, query, database: Sequence,
                  approx: ApproximateMeasure, sketches: List, k: int,
                  margin: float = 0.0) -> IndexedSearchResult:
    """Index + AP sketch ranking over the candidates."""
    cand = candidates_for_query(index, query, margin=margin)
    query_sketch = approx.preprocess(query.points)
    distances = np.array([
        approx.signature_distance(query_sketch, sketches[i]) for i in cand
    ]) if cand else np.array([])
    top = top_k_from_distances(distances, min(k, len(cand))) if cand else []
    return IndexedSearchResult(ids=np.array([cand[i] for i in top], dtype=int),
                               num_candidates=len(cand))


def search_embedding(index, query, query_embedding: np.ndarray,
                     database_embeddings: np.ndarray, k: int,
                     margin: float = 0.0) -> IndexedSearchResult:
    """Index + NeuTraj embedding ranking over the candidates."""
    cand = candidates_for_query(index, query, margin=margin)
    if cand:
        cand_arr = np.asarray(cand, dtype=int)
        diffs = database_embeddings[cand_arr] - query_embedding[None, :]
        distances = np.sqrt((diffs * diffs).sum(axis=1))
        top = top_k_from_distances(distances, min(k, len(cand)))
        ids = cand_arr[top]
    else:
        ids = np.array([], dtype=int)
    return IndexedSearchResult(ids=ids, num_candidates=len(cand))
