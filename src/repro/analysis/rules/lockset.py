"""lockset: interprocedural Eraser-style race detection on ``self`` fields.

Where the per-file ``lock-discipline`` rule trusts "Caller must hold"
docstrings, this whole-program rule *infers* locking. Per lock-owning
class it:

1. collects every read, write and mutating container call
   (``self._queue.append(...)``) on each ``self`` field, together with
   the set of class locks lexically held (``with self._lock:``;
   Condition objects canonicalise to the lock they wrap);
2. propagates held locks through ``self.``-method dispatch: a private
   helper's *entry lockset* is the intersection of the locks held at its
   internal call sites (fixpoint over the class call graph), while
   public and dunder methods are externally callable and start with ∅;
3. treats "Caller must hold ``self._x``" docstrings as *checked claims*:
   the declared lock becomes the helper's entry lockset, and every
   internal call site that does not hold it is flagged as contradicting
   the contract;
4. applies the Eraser condition per field: if the intersection of held
   locksets over all post-``__init__`` accesses is empty — and at least
   one access *is* protected, so the field is evidently meant to be
   guarded — the field is racy, and the finding names both the
   unprotected and a protected access site.

Soundness limits (documented in DESIGN "Whole-program analysis"): code
inside nested ``def``/``lambda`` bodies runs later on an unknown thread
and is excluded from the intersection; ``lock.acquire()``/``release()``
pairs are not tracked (the codebase uses ``with`` exclusively);
cross-object attribute writes (``other._field = ...``) are invisible;
fields written only in ``__init__`` are construction-local and skipped.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, List, NamedTuple, Optional, Set

from . import register_program
from .base import ProgramRule

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset({
    "append", "appendleft", "extend", "insert", "remove", "pop", "popleft",
    "popitem", "clear", "add", "discard", "update", "setdefault", "sort",
    "reverse", "move_to_end",
})

_HELD_MARKERS = ("must hold", "must be held", "caller must hold",
                 "caller holds", "lock held", "while holding")

_SELF_ATTR_RE = re.compile(r"self\.(_?\w+)")

#: Methods whose accesses are construction/destruction-local.
_LIFECYCLE = frozenset({"__init__", "__new__", "__del__"})


class Access(NamedTuple):
    field: str
    kind: str            # "read" | "write" | "mutate"
    node: ast.AST
    held: FrozenSet[str]
    method: str


class InternalCall(NamedTuple):
    callee: str
    node: ast.AST
    held: FrozenSet[str]
    method: str


class _MethodScan:
    """Lexical accesses and self-dispatch call sites of one method."""

    def __init__(self, cls, fn):
        self.cls = cls
        self.fn = fn
        self.accesses: List[Access] = []
        self.calls: List[InternalCall] = []
        self._walk(fn.node.body, frozenset())

    # ------------------------------------------------------------ statements

    def _walk(self, stmts: List[ast.stmt], held: FrozenSet[str]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner: Set[str] = set(held)
                for item in stmt.items:
                    lock = self._lock_of(item.context_expr)
                    if lock is not None:
                        inner.add(lock)
                    else:
                        self._expr(item.context_expr, held)
                self._walk(stmt.body, frozenset(inner))
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                pass  # deferred execution: unknown thread, unknown locks
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    self._target(target, held)
                self._expr(stmt.value, held)
            elif isinstance(stmt, ast.AnnAssign):
                self._target(stmt.target, held)
                if stmt.value is not None:
                    self._expr(stmt.value, held)
            elif isinstance(stmt, ast.AugAssign):
                self._target(stmt.target, held, aug=True)
                self._expr(stmt.value, held)
            elif isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    self._target(target, held)
            elif isinstance(stmt, ast.If):
                self._expr(stmt.test, held)
                self._walk(stmt.body, held)
                self._walk(stmt.orelse, held)
            elif isinstance(stmt, ast.While):
                self._expr(stmt.test, held)
                self._walk(stmt.body, held)
                self._walk(stmt.orelse, held)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._expr(stmt.iter, held)
                self._target(stmt.target, held)
                self._walk(stmt.body, held)
                self._walk(stmt.orelse, held)
            elif isinstance(stmt, ast.Try):
                self._walk(stmt.body, held)
                for handler in stmt.handlers:
                    self._walk(handler.body, held)
                self._walk(stmt.orelse, held)
                self._walk(stmt.finalbody, held)
            else:
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.expr):
                        self._expr(child, held)

    # ----------------------------------------------------------- expressions

    def _target(self, node: ast.AST, held: FrozenSet[str],
                aug: bool = False) -> None:
        """An assignment target: field write, container-slot mutate, ..."""
        if isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                self._target(element, held)
        elif self._self_attr(node) is not None:
            self._record(self._self_attr(node), "write", node, held)
        elif isinstance(node, ast.Subscript):
            field = self._self_attr(node.value)
            if field is not None:
                self._record(field, "mutate", node, held)
            else:
                self._expr(node.value, held)
            self._expr(node.slice, held)
        elif isinstance(node, ast.Attribute):
            self._expr(node.value, held)
        elif isinstance(node, ast.Starred):
            self._target(node.value, held)

    def _expr(self, node: ast.AST, held: FrozenSet[str]) -> None:
        if isinstance(node, ast.Lambda):
            return  # deferred execution
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                receiver_field = self._self_attr(func.value)
                if receiver_field is not None:
                    kind = "mutate" if func.attr in _MUTATORS else "read"
                    self._record(receiver_field, kind, func.value, held)
                elif isinstance(func.value, ast.Name) \
                        and func.value.id == "self":
                    self.calls.append(InternalCall(func.attr, node, held,
                                                   self.fn.name))
                else:
                    self._expr(func.value, held)
            else:
                self._expr(func, held)
            for arg in node.args:
                self._expr(arg, held)
            for keyword in node.keywords:
                self._expr(keyword.value, held)
            return
        field = self._self_attr(node)
        if field is not None:
            self._record(field, "read", node, held)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.keyword):
                self._expr(child.value, held)
            elif isinstance(child, (ast.expr, ast.comprehension)):
                self._expr(child, held)

    # -------------------------------------------------------------- plumbing

    @staticmethod
    def _self_attr(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self":
            return node.attr
        return None

    def _lock_of(self, node: ast.AST) -> Optional[str]:
        field = self._self_attr(node)
        if field is None:
            return None
        return self.cls.canonical_lock(field)

    def _record(self, field: str, kind: str, node: ast.AST,
                held: FrozenSet[str]) -> None:
        if field in self.cls.lock_attrs:
            return
        self.accesses.append(Access(field, kind, node, held, self.fn.name))


def _contract_locks(fn, cls) -> Optional[FrozenSet[str]]:
    """Locks a "Caller must hold ..." docstring declares, canonicalised."""
    doc = fn.docstring
    if not doc:
        return None
    lowered = doc.lower()
    if not any(marker in lowered for marker in _HELD_MARKERS):
        return None
    declared = {cls.lock_attrs[attr]
                for attr in _SELF_ATTR_RE.findall(doc)
                if attr in cls.lock_attrs}
    if not declared and len(set(cls.lock_attrs.values())) == 1:
        declared = set(cls.lock_attrs.values())
    return frozenset(declared) or None


@register_program
class LocksetRule(ProgramRule):
    rule_id = "lockset"
    description = ("Eraser-style lockset inference: fields of lock-owning "
                   "classes whose access locksets have an empty "
                   "intersection, and call sites contradicting 'caller "
                   "must hold' docstring contracts")
    default_options = {}

    def check_module(self, program, callgraph, module, options):
        findings = []
        for cls in module.classes:
            if not cls.lock_attrs:
                continue
            findings.extend(self._check_class(program, module, cls))
        return findings

    # ------------------------------------------------------------- per class

    def _check_class(self, program, module, cls):
        scans: Dict[str, _MethodScan] = {
            name: _MethodScan(cls, fn)
            for name, fn in cls.methods.items()
            if name not in _LIFECYCLE
        }
        contracts: Dict[str, FrozenSet[str]] = {}
        for name, fn in cls.methods.items():
            declared = _contract_locks(fn, cls)
            if declared:
                contracts[name] = declared

        entry = self._entry_locksets(cls, scans, contracts)
        findings = []
        findings.extend(self._contract_findings(program, module, cls, scans,
                                                contracts, entry))
        findings.extend(self._race_findings(program, module, cls, scans,
                                            entry))
        return findings

    def _entry_locksets(self, cls, scans, contracts):
        """Fixpoint: entry lockset of every method of the class."""
        all_locks = frozenset(cls.lock_attrs.values())
        entry: Dict[str, FrozenSet[str]] = {}
        for name in cls.methods:
            if name in contracts:
                entry[name] = contracts[name]
            elif name.startswith("_") and not name.endswith("__"):
                entry[name] = all_locks  # refined downward by call sites
            else:
                entry[name] = frozenset()
        # Call sites per callee (held sets are lexical; effective held
        # at a site is the caller's entry ∪ lexical).
        sites: Dict[str, List[InternalCall]] = {}
        for scan in scans.values():
            for call in scan.calls:
                if call.callee in cls.methods:
                    sites.setdefault(call.callee, []).append(call)
        for _ in range(len(cls.methods) + 1):
            changed = False
            for name in cls.methods:
                if name in contracts or not name.startswith("_") \
                        or name.endswith("__"):
                    continue
                callers = sites.get(name)
                if not callers:
                    new = frozenset()  # never called internally: assume ∅
                else:
                    held_sets = [entry[c.method] | c.held for c in callers]
                    new = frozenset.intersection(*held_sets)
                if new != entry[name]:
                    entry[name] = new
                    changed = True
            if not changed:
                break
        return entry

    def _contract_findings(self, program, module, cls, scans, contracts,
                           entry):
        findings = []
        for scan in scans.values():
            for call in scan.calls:
                declared = contracts.get(call.callee)
                if not declared:
                    continue
                effective = entry.get(call.method, frozenset()) | call.held
                missing = declared - effective
                if missing:
                    locks = ", ".join(f"self.{lock}"
                                      for lock in sorted(missing))
                    findings.append(program.finding(
                        module, self.rule_id, call.node,
                        f"call to `self.{call.callee}()` does not hold "
                        f"{locks}, contradicting its \"caller must hold\" "
                        f"docstring contract"))
        return findings

    def _race_findings(self, program, module, cls, scans, entry):
        accesses: Dict[str, List[Access]] = {}
        for scan in scans.values():
            base = entry.get(scan.fn.name, frozenset())
            for access in scan.accesses:
                effective = access._replace(held=access.held | base)
                accesses.setdefault(access.field, []).append(effective)

        findings = []
        for field, sites in sorted(accesses.items()):
            if not any(a.kind in ("write", "mutate") for a in sites):
                continue  # read-only after __init__: no race to have
            if not any(a.held for a in sites):
                continue  # never guarded anywhere: no locking intent
            intersection = frozenset.intersection(
                *[a.held for a in sites])
            if intersection:
                continue
            unprotected = min(
                (a for a in sites if not a.held),
                key=lambda a: (0 if a.kind in ("write", "mutate") else 1,
                               a.node.lineno),
                default=None)
            if unprotected is None:
                # Sites hold different locks but never none; still racy.
                unprotected = min(sites, key=lambda a: a.node.lineno)
            protected = next((a for a in sorted(
                sites, key=lambda a: a.node.lineno) if a.held
                and a is not unprotected), None)
            if protected is None:
                continue
            held_desc = ("no lock" if not unprotected.held else
                         "only " + ", ".join(f"self.{lock}" for lock in
                                             sorted(unprotected.held)))
            other_locks = ", ".join(f"self.{lock}"
                                    for lock in sorted(protected.held))
            findings.append(program.finding(
                module, self.rule_id, unprotected.node,
                f"field `self.{field}` of {cls.name}: lockset "
                f"intersection over {len(sites)} access site(s) is empty "
                f"— this {unprotected.kind} in `{unprotected.method}` "
                f"holds {held_desc}, but the {protected.kind} at line "
                f"{protected.node.lineno} in `{protected.method}` holds "
                f"{other_locks}"))
        return findings
