"""Embedding store: an incremental similarity-search database.

The deployment pattern from §VI-A: embed every database trajectory once,
then answer ad-hoc queries in O(L + N·d). The store owns the embedding
table, supports incremental inserts (new trajectories only pay their own
O(L) encoding) and persists to ``.npz`` alongside the model.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..datasets.trajectory import Trajectory
from ..exceptions import NotFittedError
from .model import MetricModel

PathLike = Union[str, Path]


class EmbeddingStore:
    """Searchable collection of trajectory embeddings.

    Parameters
    ----------
    model:
        A trained :class:`~repro.core.model.MetricModel`; its encoder maps
        every inserted trajectory to the store's embedding space.
    """

    def __init__(self, model: MetricModel):
        model._require_fitted()
        self.model = model
        dim = model.config.embedding_dim
        self._embeddings = np.zeros((0, dim))
        self._ids: List[int] = []
        self._next_id = 0

    def __len__(self) -> int:
        return len(self._ids)

    @property
    def embeddings(self) -> np.ndarray:
        """(N, d) embedding table (read-only view)."""
        view = self._embeddings.view()
        view.setflags(write=False)
        return view

    @property
    def ids(self) -> List[int]:
        return list(self._ids)

    def add(self, trajectories: Sequence[Trajectory],
            batch_size: int = 128) -> List[int]:
        """Embed and insert trajectories; returns their assigned ids."""
        items = list(trajectories)
        if not items:
            return []
        new = self.model.embed(items, batch_size=batch_size)
        assigned = list(range(self._next_id, self._next_id + len(items)))
        self._next_id += len(items)
        self._embeddings = np.concatenate([self._embeddings, new], axis=0)
        self._ids.extend(assigned)
        return assigned

    def remove(self, ids: Sequence[int]) -> int:
        """Remove entries by id; returns how many were removed."""
        drop = set(ids)
        keep = [i for i, item_id in enumerate(self._ids)
                if item_id not in drop]
        removed = len(self._ids) - len(keep)
        self._embeddings = self._embeddings[keep]
        self._ids = [self._ids[i] for i in keep]
        return removed

    def query(self, trajectory: Trajectory, k: int = 10
              ) -> Tuple[np.ndarray, np.ndarray]:
        """Top-k (ids, embedding distances) for a query trajectory."""
        if len(self) == 0:
            raise NotFittedError("the store is empty")
        query_emb = self.model.embed([trajectory])[0]
        diffs = self._embeddings - query_emb[None, :]
        distances = np.sqrt((diffs * diffs).sum(axis=1))
        k = min(k, len(distances))
        order = np.argpartition(distances, k - 1)[:k]
        order = order[np.argsort(distances[order], kind="stable")]
        return (np.array([self._ids[i] for i in order]),
                distances[order])

    def query_radius(self, trajectory: Trajectory, radius: float
                     ) -> Tuple[np.ndarray, np.ndarray]:
        """All (ids, distances) within an embedding-distance radius."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        if len(self) == 0:
            return np.array([], dtype=int), np.array([])
        query_emb = self.model.embed([trajectory])[0]
        diffs = self._embeddings - query_emb[None, :]
        distances = np.sqrt((diffs * diffs).sum(axis=1))
        hit = np.flatnonzero(distances <= radius)
        order = hit[np.argsort(distances[hit], kind="stable")]
        return (np.array([self._ids[i] for i in order]),
                distances[order])

    # ----------------------------------------------------------- persistence

    def save(self, path: PathLike) -> None:
        """Persist the embedding table (not the model) to ``.npz``."""
        np.savez_compressed(path, embeddings=self._embeddings,
                            ids=np.array(self._ids, dtype=np.int64),
                            next_id=np.array(self._next_id))

    @classmethod
    def load(cls, path: PathLike, model: MetricModel) -> "EmbeddingStore":
        """Restore a store saved by :meth:`save` (model supplied separately)."""
        store = cls(model)
        with np.load(path) as data:
            store._embeddings = data["embeddings"].copy()
            store._ids = data["ids"].tolist()
            store._next_id = int(data["next_id"])
        if store._embeddings.shape[1] != model.config.embedding_dim:
            raise ValueError("store dimensionality does not match the model")
        return store
