"""Tests for the IVF ANN index (repro.index.ann)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, CorruptArtifactError
from repro.index.ann import IVFConfig, IVFIndex, auto_nlist, kmeans


def make_vectors(count=2000, dim=8, clusters=24, spread=0.4, seed=5):
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(clusters, dim)).astype(np.float32)
    assign = rng.integers(0, clusters, size=count)
    noise = (spread * rng.standard_normal(size=(count, dim))
             ).astype(np.float32)
    return centers[assign] + noise


def exact_topk(ids, vectors, query, k):
    diffs = vectors - query[None, :]
    sq = (diffs * diffs).sum(axis=1)
    order = np.argsort(sq, kind="stable")[:k]
    return ids[order]


@pytest.fixture(scope="module")
def fixture_index():
    vectors = make_vectors()
    ids = np.arange(vectors.shape[0], dtype=np.int64) * 2 + 1
    index = IVFIndex.build(ids, vectors,
                           IVFConfig(nlist=32, nprobe=8, quantize=True,
                                     seed=0))
    return index, ids, vectors


# ----------------------------------------------------------------- config

def test_config_validation():
    with pytest.raises(ConfigurationError):
        IVFConfig(nlist=-1)
    with pytest.raises(ConfigurationError):
        IVFConfig(nprobe=0)
    with pytest.raises(ConfigurationError):
        IVFConfig(rerank=0)
    with pytest.raises(ConfigurationError):
        IVFConfig(kmeans_iters=0)


def test_auto_nlist_scales_like_sqrt():
    assert auto_nlist(0) == 1
    assert auto_nlist(100) == 10
    assert auto_nlist(1_000_000) == 1000
    assert auto_nlist(10**9) == 4096  # clipped


# ----------------------------------------------------------------- kmeans

def test_kmeans_deterministic_and_shaped():
    vectors = make_vectors(count=500, dim=4)
    a = kmeans(vectors, 10, np.random.default_rng(3), iters=5)
    b = kmeans(vectors, 10, np.random.default_rng(3), iters=5)
    assert a.shape == (10, 4)
    assert a.dtype == np.float32
    np.testing.assert_array_equal(a, b)


def test_kmeans_clamps_k_to_population():
    vectors = make_vectors(count=6, dim=4)
    centroids = kmeans(vectors, 50, np.random.default_rng(0))
    assert centroids.shape[0] == 6


def test_kmeans_rejects_empty():
    with pytest.raises(ValueError):
        kmeans(np.zeros((0, 4), dtype=np.float32), 4,
               np.random.default_rng(0))


# ------------------------------------------------------------------ build

def test_build_validates_ids():
    vectors = make_vectors(count=10)
    with pytest.raises(ValueError):
        IVFIndex.build(np.arange(9, dtype=np.int64), vectors)
    with pytest.raises(ValueError):
        IVFIndex.build(np.zeros(10, dtype=np.int64), vectors)  # duplicates


def test_build_empty_is_untrained():
    index = IVFIndex.build(np.zeros(0, dtype=np.int64),
                           np.zeros((0, 8), dtype=np.float32))
    assert not index.is_trained
    ids, dist = index.search(np.zeros(8, dtype=np.float32), 5)
    assert ids.size == 0 and dist.size == 0


def test_cells_partition_every_row(fixture_index):
    index, ids, _ = fixture_index
    assert index.nlist == 32
    assert index.ntotal == ids.size
    stats = index.stats()
    assert stats["cell_min"] >= 0
    assert stats["cell_max"] <= ids.size
    # bounds cover exactly the id array
    assert index._bounds[0] == 0 and index._bounds[-1] == ids.size


# ----------------------------------------------------------------- search

def test_search_validates_inputs(fixture_index):
    index, _, vectors = fixture_index
    with pytest.raises(ValueError):
        index.search(vectors[0], 0)
    with pytest.raises(ValueError):
        index.search(np.zeros(3, dtype=np.float32), 5)


def test_search_self_query_hits_itself(fixture_index):
    index, ids, vectors = fixture_index
    got, dist = index.search(vectors[7], 5)
    assert got[0] == ids[7]
    assert dist[0] == pytest.approx(0.0, abs=1e-5)
    assert np.all(np.diff(dist) >= -1e-12)


def test_recall_at_10_beats_095(fixture_index):
    """The satellite acceptance fixture: recall@10 >= 0.95."""
    index, ids, vectors = fixture_index
    rng = np.random.default_rng(9)
    pick = rng.choice(vectors.shape[0], size=50, replace=False)
    queries = vectors[pick] + 0.1 * rng.standard_normal(
        size=(50, vectors.shape[1])).astype(np.float32)
    hits = 0
    for query in queries:
        got, _ = index.search(query, 10)
        truth = exact_topk(ids, vectors, query, 10)
        hits += len(set(got.tolist()) & set(truth.tolist()))
    assert hits / 500 >= 0.95


def test_search_scans_a_fraction(fixture_index):
    index, ids, vectors = fixture_index
    before = index.stats()["candidates_scanned"]
    index.search(vectors[0], 10)
    scanned = index.stats()["candidates_scanned"] - before
    assert 0 < scanned < ids.size  # strictly sub-linear probe


def test_quantize_off_matches_exact_on_probed_cells():
    vectors = make_vectors(count=400, dim=8)
    ids = np.arange(400, dtype=np.int64)
    index = IVFIndex.build(ids, vectors,
                           IVFConfig(nlist=4, nprobe=4, quantize=False,
                                     seed=0))
    # nprobe == nlist: every cell probed, so answers are exact.
    for row in (0, 13, 77):
        got, _ = index.search(vectors[row], 10)
        np.testing.assert_array_equal(
            got, exact_topk(ids, vectors, vectors[row], 10))


def test_nprobe_equals_nlist_is_exhaustive(fixture_index):
    index, ids, vectors = fixture_index
    got, _ = index.search(vectors[3], 10, nprobe=index.nlist)
    truth = exact_topk(ids, vectors, vectors[3], 10)
    # int8 rerank repairs ranking; exhaustive probe must recall all.
    assert set(got.tolist()) == set(truth.tolist())


def test_search_radius(fixture_index):
    index, ids, vectors = fixture_index
    got, dist = index.search_radius(vectors[11], 0.5)
    assert ids[11] in got.tolist()
    assert np.all(dist <= 0.5)
    assert np.all(np.diff(dist) >= -1e-12)
    with pytest.raises(ValueError):
        index.search_radius(vectors[0], -1.0)


# --------------------------------------------------------------- mutation

def test_add_remove_compact_roundtrip():
    vectors = make_vectors(count=300, dim=8)
    ids = np.arange(300, dtype=np.int64)
    index = IVFIndex.build(ids, vectors,
                           IVFConfig(nlist=8, nprobe=8, quantize=True,
                                     seed=0))
    extra = vectors[:3] + np.float32(0.01)
    index.add(np.array([1000, 1001, 1002], dtype=np.int64), extra)
    assert index.ntotal == 303 and index.pending_count == 3
    got, _ = index.search(extra[0], 3)
    assert 1000 in got.tolist()

    assert index.remove([1000, 5, 5, 99999]) == 2  # dupes/missing ignored
    assert index.live_count == 301
    got, _ = index.search(extra[0], 10)
    assert 1000 not in got.tolist()
    got, _ = index.search(vectors[5], 10)
    assert 5 not in got.tolist()

    before_ids, before_dist = index.search(vectors[42], 10)
    index.compact()
    assert index.pending_count == 0
    assert index.stats()["tombstones"] == 0
    assert index.live_count == 301
    after_ids, after_dist = index.search(vectors[42], 10)
    np.testing.assert_array_equal(before_ids, after_ids)
    np.testing.assert_allclose(before_dist, after_dist, atol=1e-5)


def test_add_to_untrained_raises():
    index = IVFIndex(8)
    with pytest.raises(ConfigurationError):
        index.add(np.array([1], dtype=np.int64),
                  np.zeros((1, 8), dtype=np.float32))


# ------------------------------------------------------------ persistence

def test_save_load_mmap_roundtrip(tmp_path, fixture_index):
    index, ids, vectors = fixture_index
    path = index.save(tmp_path / "ivf")
    for mmap in (True, False):
        reloaded = IVFIndex.load(path, mmap=mmap)
        assert reloaded.ntotal == index.ntotal
        assert reloaded.config.nprobe == index.config.nprobe
        got_a, dist_a = index.search(vectors[0], 10)
        got_b, dist_b = reloaded.search(vectors[0], 10)
        np.testing.assert_array_equal(got_a, got_b)
        np.testing.assert_allclose(dist_a, dist_b, atol=1e-6)


def test_save_compacts_pending_state(tmp_path):
    vectors = make_vectors(count=100, dim=8)
    ids = np.arange(100, dtype=np.int64)
    index = IVFIndex.build(ids, vectors, IVFConfig(nlist=4, seed=0))
    index.add(np.array([500], dtype=np.int64), vectors[:1] + np.float32(0.02))
    index.remove([7])
    index.save(tmp_path / "ivf")
    reloaded = IVFIndex.load(tmp_path / "ivf")
    assert reloaded.ntotal == 100  # 100 - 1 removed + 1 added
    assert reloaded.pending_count == 0
    got, _ = reloaded.search(vectors[7], 100, nprobe=4)
    assert 7 not in got.tolist()
    assert 500 in got.tolist()


def test_load_rejects_corruption(tmp_path, fixture_index):
    index, _, _ = fixture_index
    path = index.save(tmp_path / "ivf")
    with pytest.raises(CorruptArtifactError):
        IVFIndex.load(tmp_path / "nowhere")
    data = path / "data.bin"
    raw = bytearray(data.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    data.write_bytes(bytes(raw))
    with pytest.raises(CorruptArtifactError):
        IVFIndex.load(path, verify=True)
    # truncation is caught even without the sha pass
    data.write_bytes(bytes(raw[:-10]))
    with pytest.raises(CorruptArtifactError):
        IVFIndex.load(path, verify=False)


def test_load_rejects_bad_schema(tmp_path, fixture_index):
    index, _, _ = fixture_index
    path = index.save(tmp_path / "ivf")
    manifest = path / "MANIFEST.json"
    manifest.write_text(manifest.read_text().replace(
        "repro.ivf.v1", "repro.ivf.v999"))
    with pytest.raises(CorruptArtifactError):
        IVFIndex.load(path)


def test_mmap_load_survives_restart_and_mutation(tmp_path):
    """Reopen-after-restart: mmap index keeps answering, accepts deltas."""
    vectors = make_vectors(count=500, dim=8)
    ids = np.arange(500, dtype=np.int64)
    IVFIndex.build(ids, vectors,
                   IVFConfig(nlist=8, nprobe=8, seed=0)).save(tmp_path / "i")
    reloaded = IVFIndex.load(tmp_path / "i", mmap=True)
    got, _ = reloaded.search(vectors[17], 5)
    assert got[0] == 17
    # mutation on top of read-only mmap arrays must not write through
    reloaded.add(np.array([900], dtype=np.int64),
                 vectors[17:18] + np.float32(0.001))
    assert reloaded.remove([17]) == 1
    got, _ = reloaded.search(vectors[17], 5)
    assert 17 not in got.tolist() and 900 in got.tolist()
    reloaded.compact()  # detaches from the mmap backing
    got, _ = reloaded.search(vectors[17], 5)
    assert 900 in got.tolist()
    # the on-disk file is untouched: a second load still sees row 17
    fresh = IVFIndex.load(tmp_path / "i", mmap=True)
    got, _ = fresh.search(vectors[17], 5)
    assert got[0] == 17
