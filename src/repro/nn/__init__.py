"""Numpy-based neural-network substrate (autodiff, layers, RNNs, SAM, optim).

Replaces the PyTorch dependency of the original NeuTraj implementation with a
self-contained tape-based autodiff engine. See ``DESIGN.md`` for rationale.
"""

from .tensor import Tensor, as_tensor, concat, stack, where, gradient_check
from .module import Module, Parameter
from .layers import Linear, euclidean_distance, embedding_similarity
from .rnn import LSTM, LSTMCell, lengths_to_mask
from .sam import SAMLSTM, SAMLSTMCell, SpatialMemory
from .optim import SGD, Adam, Optimizer, clip_grad_norm, grads_finite

__all__ = [
    "Tensor", "as_tensor", "concat", "stack", "where", "gradient_check",
    "Module", "Parameter",
    "Linear", "euclidean_distance", "embedding_similarity",
    "LSTM", "LSTMCell", "lengths_to_mask",
    "SAMLSTM", "SAMLSTMCell", "SpatialMemory",
    "SGD", "Adam", "Optimizer", "clip_grad_norm", "grads_finite",
]
