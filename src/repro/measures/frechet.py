"""Discrete Fréchet distance (Alt & Godau; discrete variant of Eiter/Mannila).

The Fréchet distance is the classic "dog-leash" measure: the minimal leash
length over all monotone traversals of both curves. The discrete variant on
sample points is the one trajectory systems (and the paper's experiments)
compute; it is a metric.
"""

from __future__ import annotations

import numpy as np

from ._batch import frechet_many
from ._dp import frechet_table
from .base import (TrajectoryMeasure, check_pair, point_distances,
                   register_measure)


@register_measure("frechet")
class FrechetDistance(TrajectoryMeasure):
    """Exact discrete Fréchet distance with Euclidean point costs."""

    is_metric = True

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        check_pair(a, b)
        cost = point_distances(a, b)
        table = frechet_table(cost)
        return float(table[-1, -1])

    def distance_many(self, pairs_a, pairs_b) -> np.ndarray:
        pairs_a = [np.asarray(a, dtype=np.float64) for a in pairs_a]
        pairs_b = [np.asarray(b, dtype=np.float64) for b in pairs_b]
        for a, b in zip(pairs_a, pairs_b):
            check_pair(a, b)
        return frechet_many(pairs_a, pairs_b)
