"""Table III — ablation study: NT-No-WS / NT-No-SAM / full NeuTraj.

Expected shape (paper): the full model is the best variant on most cells;
removing either module (weighted sampling, SAM) costs accuracy.
"""

import pytest

from repro.experiments import (ALL_MEASURES, TABLE3_METHODS, format_results,
                               run_cell, train_variant)


@pytest.fixture(scope="module")
def table3(porto_workload, geolife_workload):
    results = {}
    for dataset_name, workload in (("geolife", geolife_workload),
                                   ("porto", porto_workload)):
        for measure in ALL_MEASURES:
            for method in TABLE3_METHODS:
                results[(dataset_name, measure, method)] = run_cell(
                    workload, measure, method)
    return results


def test_table3_ablations(benchmark, table3, porto_workload, report,
                          strict_shapes):
    # Kernel: one ablated-model embedding pass (same cost class as full).
    model = train_variant("nt_no_sam", porto_workload, "frechet")
    batch = porto_workload.database[:32]
    benchmark(lambda: model.embed(batch))

    report("table3_ablation",
           format_results(table3, "Table III: ablation study "
                          "(NT-No-WS / NT-No-SAM / NeuTraj)"))

    # Shape: the paper's per-module gains are ~1-2 HR points — below the
    # query noise (~5-8 points) of our 20-query scaled protocol, so we
    # assert non-inferiority within noise rather than strict wins (see
    # EXPERIMENTS.md, Table III).
    if not strict_shapes:
        return
    cells = [(d, m) for d in ("geolife", "porto") for m in ALL_MEASURES]
    for ablation in ("nt_no_ws", "nt_no_sam"):
        close = sum(
            table3[(d, m, "neutraj")].hr50
            >= table3[(d, m, ablation)].hr50 - 0.08
            for d, m in cells)
        assert close >= len(cells) - 1, (
            f"full NeuTraj non-inferior on only {close}/{len(cells)} "
            f"vs {ablation}")
