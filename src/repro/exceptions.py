"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class InvalidTrajectoryError(ReproError):
    """A trajectory failed validation (wrong shape, too short, non-finite)."""


class ConfigurationError(ReproError):
    """A configuration value is invalid or inconsistent."""


class NotFittedError(ReproError):
    """A model method requiring training was called before ``fit``."""


class CorruptArtifactError(ReproError, ValueError):
    """A persisted artifact (store, model, checkpoint) failed to load cleanly.

    Also a :class:`ValueError` so call sites that predate the typed error
    (e.g. the bundle loader's store handling) keep catching it.
    """


class CheckpointError(ReproError):
    """A training checkpoint could not be written, read, or applied."""


class PrecomputeError(ReproError):
    """The distance precompute failed even after retries and serial fallback."""


class TrainingDivergedError(ReproError):
    """Training produced non-finite loss/gradients or a sustained loss
    spike past the guardrails' skip budget (see
    :class:`repro.core.trainer.DivergenceGuard`)."""


class ServiceClosedError(ReproError):
    """Work was submitted to (or stranded in) a closed serving component."""


class ServiceOverloadedError(ReproError):
    """The service shed the request because its admission queue is full."""


class ServiceUnavailableError(ReproError):
    """The service cannot answer right now (e.g. encoder circuit open
    with no fallback index configured)."""


class DeadlineExceededError(ReproError):
    """The request's deadline expired before an answer was produced."""


class ShardUnavailableError(ServiceUnavailableError):
    """A shard worker is dead, timed out, or behind an open breaker.

    Inside the scatter-gather tier this marks one fan-out leg as failed;
    it only escapes to callers when *every* shard is unavailable (a
    partial answer is impossible)."""


class ReloadError(ReproError):
    """A zero-downtime bundle reload could not be prepared or activated;
    the serving tier keeps answering from the old generation."""


class WALCorruptionError(CorruptArtifactError):
    """A write-ahead log is corrupted *mid-stream*: a record failed its
    checksum (or framing) and at least one structurally valid record
    follows it, so the damage cannot be explained as a torn tail from a
    crash during append. Recovery refuses to guess and raises instead of
    silently dropping acknowledged mutations.

    A torn tail — garbage with **no** valid record after it — is the
    expected signature of a crash mid-write and is repaired silently by
    truncating to the longest valid prefix."""


class PartialWriteError(ShardUnavailableError):
    """A mutation fan-out failed after some shards durably applied their
    sub-batch. ``applied_ids`` lists exactly the ids that are on disk
    (WAL-acknowledged), so callers can retry the remainder idempotently:
    re-sending an already-applied id is a no-op at the shard."""

    def __init__(self, message, applied_ids=()):
        super().__init__(message)
        self.applied_ids = list(applied_ids)
