"""Tests for the versioned on-disk serving bundle."""

import json

import numpy as np
import pytest

from repro import NeuTraj, NeuTrajConfig
from repro.core.store import EmbeddingStore
from repro.serving import BUNDLE_SCHEMA, BundleError, load_bundle, save_bundle
from repro.serving.bundle import MANIFEST_NAME, MODEL_FILE, STORE_FILE


def test_roundtrip_model_store_probes(serving_world, fresh_store, tmp_path):
    model, items = serving_world
    path = save_bundle(tmp_path / "b", model, fresh_store, probes=items[:3],
                       metadata={"note": "hello"})
    bundle = load_bundle(path)
    assert len(bundle.store) == len(fresh_store)
    assert bundle.store.ids == fresh_store.ids
    assert bundle.store.next_id == fresh_store.next_id
    assert bundle.embedding_dim == model.config.embedding_dim
    assert bundle.measure == model.config.measure
    assert [p.points.tolist() for p in bundle.probes] == \
           [p.points.tolist() for p in items[:3]]
    assert bundle.manifest["user_metadata"] == {"note": "hello"}
    # The restored model answers queries identically to the original.
    ids_a, dist_a = fresh_store.query(items[0], k=5)
    ids_b, dist_b = bundle.store.query(items[0], k=5)
    np.testing.assert_array_equal(ids_a, ids_b)
    np.testing.assert_allclose(dist_a, dist_b, atol=1e-12)


def test_manifest_contents(serving_world, fresh_store, tmp_path):
    model, items = serving_world
    path = save_bundle(tmp_path / "b", model, fresh_store, probes=items[:2])
    manifest = json.loads((path / MANIFEST_NAME).read_text())
    assert manifest["schema"] == BUNDLE_SCHEMA
    assert manifest["model_class"] == "NeuTraj"
    assert manifest["embedding_dim"] == model.config.embedding_dim
    assert manifest["measure"] == model.config.measure
    assert manifest["store"]["count"] == len(fresh_store)
    assert manifest["store"]["next_id"] == fresh_store.next_id
    assert manifest["num_probes"] == 2
    for meta in manifest["files"].values():
        assert len(meta["sha256"]) == 64
        assert meta["bytes"] > 0


def test_bundle_without_store_loads_empty(serving_world, tmp_path):
    model, _ = serving_world
    path = save_bundle(tmp_path / "b", model)
    bundle = load_bundle(path)
    assert len(bundle.store) == 0
    assert bundle.probes == []


def test_missing_manifest_rejected(tmp_path):
    with pytest.raises(BundleError, match="MANIFEST"):
        load_bundle(tmp_path)


def test_unknown_schema_rejected(serving_world, fresh_store, tmp_path):
    model, _ = serving_world
    path = save_bundle(tmp_path / "b", model, fresh_store)
    manifest_path = path / MANIFEST_NAME
    manifest = json.loads(manifest_path.read_text())
    manifest["schema"] = "repro.bundle.v999"
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(BundleError, match="schema"):
        load_bundle(path)


def test_unknown_model_class_rejected(serving_world, fresh_store, tmp_path):
    model, _ = serving_world
    path = save_bundle(tmp_path / "b", model, fresh_store)
    manifest_path = path / MANIFEST_NAME
    manifest = json.loads(manifest_path.read_text())
    manifest["model_class"] = "EvilModel"
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(BundleError, match="model class"):
        load_bundle(path)


def test_corrupted_artifact_detected(serving_world, fresh_store, tmp_path):
    model, _ = serving_world
    path = save_bundle(tmp_path / "b", model, fresh_store)
    store_path = path / STORE_FILE
    blob = bytearray(store_path.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    store_path.write_bytes(bytes(blob))
    with pytest.raises(BundleError, match="sha256"):
        load_bundle(path)


def test_missing_artifact_detected(serving_world, fresh_store, tmp_path):
    model, _ = serving_world
    path = save_bundle(tmp_path / "b", model, fresh_store)
    (path / MODEL_FILE).unlink()
    with pytest.raises(BundleError, match="missing"):
        load_bundle(path)


def test_unfitted_model_rejected(tmp_path):
    from repro.exceptions import NotFittedError
    with pytest.raises(NotFittedError):
        save_bundle(tmp_path / "b", NeuTraj(NeuTrajConfig()))


def test_save_is_overwrite_safe(serving_world, fresh_store, tmp_path):
    """Saving twice into the same directory leaves a consistent bundle."""
    model, items = serving_world
    path = save_bundle(tmp_path / "b", model, fresh_store)
    fresh_store.add(items[16:18])
    save_bundle(path, model, fresh_store)
    bundle = load_bundle(path)
    assert len(bundle.store) == len(fresh_store)
    assert bundle.manifest["store"]["count"] == len(fresh_store)


# ------------------------------------------------- corruption injection (PR 3)

@pytest.mark.faults
@pytest.mark.parametrize("mode", ["flip", "truncate", "zero"])
@pytest.mark.parametrize("victim", [MODEL_FILE, STORE_FILE])
def test_verified_load_catches_any_byte_corruption(serving_world, fresh_store,
                                                   tmp_path, mode, victim):
    from repro.testing import CorruptionSpec

    model, _ = serving_world
    path = save_bundle(tmp_path / "b", model, fresh_store)
    CorruptionSpec(mode=mode, length=16).apply(path / victim)
    with pytest.raises(BundleError, match="sha256"):
        load_bundle(path)


@pytest.mark.faults
def test_unverified_load_still_fails_closed_on_corrupt_store(
        serving_world, fresh_store, tmp_path):
    """Even with hash verification off, a mangled store must raise the
    typed error, never return a half-parsed store."""
    from repro.testing import corrupt_bytes

    model, _ = serving_world
    path = save_bundle(tmp_path / "b", model, fresh_store)
    corrupt_bytes(path / STORE_FILE, mode="truncate")
    with pytest.raises(BundleError):
        load_bundle(path, verify=False)


@pytest.mark.faults
def test_unverified_load_still_fails_closed_on_corrupt_model(
        serving_world, fresh_store, tmp_path):
    from repro.testing import corrupt_bytes

    model, _ = serving_world
    path = save_bundle(tmp_path / "b", model, fresh_store)
    corrupt_bytes(path / MODEL_FILE, mode="zero", offset=0, length=64)
    with pytest.raises(BundleError):
        load_bundle(path, verify=False)
