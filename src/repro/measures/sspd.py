"""Symmetric Segment-Path Distance (SSPD; Besse et al., 2015).

SSPD treats trajectories as continuous polylines rather than point sets:

``SPD(T1, T2) = mean over points p of T1 of d(p, polyline(T2))``
``SSPD(T1, T2) = (SPD(T1, T2) + SPD(T2, T1)) / 2``

where ``d(p, polyline)`` is the distance from ``p`` to the nearest point
*on any segment* of the other trajectory (not just its vertices). SSPD is
symmetric and robust to sampling-rate differences; it is a popular measure
for trajectory clustering and another demonstration of NeuTraj's generic
registry beyond the paper's four.
"""

from __future__ import annotations

import numpy as np

from .base import TrajectoryMeasure, check_pair, register_measure


def point_to_segments(points: np.ndarray, polyline: np.ndarray) -> np.ndarray:
    """Distance from each point to the nearest location on a polyline.

    Parameters
    ----------
    points:
        (n, 2) query points.
    polyline:
        (m, 2) polyline vertices; a single vertex degenerates to point
        distance.

    Returns
    -------
    (n,) distances.
    """
    points = np.asarray(points, dtype=np.float64)
    polyline = np.asarray(polyline, dtype=np.float64)
    if len(polyline) == 1:
        return np.linalg.norm(points - polyline[0], axis=1)
    starts = polyline[:-1]                       # (s, 2)
    ends = polyline[1:]                          # (s, 2)
    direction = ends - starts                    # (s, 2)
    length_sq = (direction ** 2).sum(axis=1)     # (s,)
    length_sq = np.where(length_sq == 0.0, 1.0, length_sq)
    # Project every point on every segment: (n, s)
    rel = points[:, None, :] - starts[None, :, :]
    t = (rel * direction[None, :, :]).sum(axis=2) / length_sq[None, :]
    t = np.clip(t, 0.0, 1.0)
    nearest = starts[None, :, :] + t[:, :, None] * direction[None, :, :]
    distances = np.linalg.norm(points[:, None, :] - nearest, axis=2)
    return distances.min(axis=1)


@register_measure("sspd")
class SSPDDistance(TrajectoryMeasure):
    """Exact SSPD (segment-path, both directions averaged)."""

    is_metric = False  # symmetric but violates the triangle inequality

    def spd(self, a: np.ndarray, b: np.ndarray) -> float:
        """One-sided segment-path distance from ``a`` to polyline ``b``."""
        return float(point_to_segments(np.asarray(a, dtype=np.float64),
                                       np.asarray(b, dtype=np.float64)).mean())

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        check_pair(a, b)
        return 0.5 * (self.spd(a, b) + self.spd(b, a))
