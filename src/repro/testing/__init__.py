"""Deterministic test harnesses for the repro package.

:mod:`repro.testing.faults` is the fault-injection toolkit the resilience
tests and benchmarks use to *exercise* failure paths instead of merely
asserting they exist: scripted call failures, injected latency, worker
kills, and byte-level artifact corruption, all reproducible run to run.

:mod:`repro.testing.fuzz` is the dirty-data counterpart: seeded
adversarial trajectory generators plus metamorphic invariant checks for
every measure and the encoder.
"""

from .faults import (CorruptionSpec, FaultInjected, FlakyCallable,
                     HangInWorker, KillWorkerOnce, PoisonOnCalls,
                     corrupt_bytes, fail_on_nth_call)
from .fuzz import (adversarial_arrays, check_encoder_invariants,
                   check_measure_invariants, corrupt, random_walks)

__all__ = [
    "CorruptionSpec", "FaultInjected", "FlakyCallable", "HangInWorker",
    "KillWorkerOnce", "PoisonOnCalls", "adversarial_arrays",
    "check_encoder_invariants", "check_measure_invariants", "corrupt",
    "corrupt_bytes", "fail_on_nth_call", "random_walks",
]
