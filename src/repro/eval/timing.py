"""Wall-clock measurement helpers for the efficiency study (Tables IV-VI)."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class Timing:
    """A measured duration with repetition metadata."""

    seconds: float
    repetitions: int

    @property
    def per_call(self) -> float:
        return self.seconds / max(self.repetitions, 1)

    def __str__(self) -> str:
        return f"{self.per_call:.4f}s"


def measure(fn: Callable[[], object], repetitions: int = 1,
            warmup: int = 0) -> Timing:
    """Time ``fn`` over ``repetitions`` calls after ``warmup`` unmeasured ones."""
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    for _ in range(warmup):
        fn()
    start = time.perf_counter()
    for _ in range(repetitions):
        fn()
    elapsed = time.perf_counter() - start
    return Timing(seconds=elapsed, repetitions=repetitions)


def speedup(baseline: Timing, candidate: Timing) -> float:
    """How many times faster ``candidate`` is than ``baseline``."""
    if candidate.per_call <= 0:
        return float("inf")
    return baseline.per_call / candidate.per_call
