"""Unit tests for the autodiff Tensor: forward values and basic semantics."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, as_tensor, concat, stack, where


class TestConstruction:
    def test_wraps_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype == np.float64

    def test_int_input_promoted_to_float(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.dtype.kind == "f"

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_as_tensor_wraps_scalar(self):
        assert as_tensor(2.0).shape == ()

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_item_like_scalar_array(self):
        assert Tensor(np.array([3.5])).sum().item() == 3.5

    def test_len(self):
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(Tensor([1.0, 2.0]))


class TestForwardValues:
    def test_add(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_add_broadcast(self):
        out = Tensor(np.ones((2, 3))) + Tensor([1.0, 2.0, 3.0])
        np.testing.assert_allclose(out.data, [[2, 3, 4], [2, 3, 4]])

    def test_radd_scalar(self):
        out = 1.0 + Tensor([1.0])
        np.testing.assert_allclose(out.data, [2.0])

    def test_sub(self):
        out = Tensor([3.0]) - Tensor([1.0])
        np.testing.assert_allclose(out.data, [2.0])

    def test_rsub(self):
        out = 5.0 - Tensor([1.0])
        np.testing.assert_allclose(out.data, [4.0])

    def test_mul(self):
        out = Tensor([2.0, 3.0]) * Tensor([4.0, 5.0])
        np.testing.assert_allclose(out.data, [8.0, 15.0])

    def test_div(self):
        out = Tensor([8.0]) / Tensor([2.0])
        np.testing.assert_allclose(out.data, [4.0])

    def test_rtruediv(self):
        out = 8.0 / Tensor([2.0])
        np.testing.assert_allclose(out.data, [4.0])

    def test_neg(self):
        np.testing.assert_allclose((-Tensor([1.0, -2.0])).data, [-1.0, 2.0])

    def test_pow(self):
        np.testing.assert_allclose((Tensor([2.0]) ** 3).data, [8.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([3.0])

    def test_matmul_2d(self):
        a = Tensor(np.eye(2))
        b = Tensor([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose((a @ b).data, b.data)

    def test_matmul_batched(self):
        a = Tensor(np.ones((3, 2, 4)))
        b = Tensor(np.ones((3, 4, 5)))
        out = a @ b
        assert out.shape == (3, 2, 5)
        np.testing.assert_allclose(out.data, 4.0)

    def test_exp_log_roundtrip(self):
        x = Tensor([0.5, 1.0, 2.0])
        np.testing.assert_allclose(x.exp().log().data, x.data)

    def test_sigmoid_extremes_are_stable(self):
        out = Tensor([-1000.0, 0.0, 1000.0]).sigmoid()
        np.testing.assert_allclose(out.data, [0.0, 0.5, 1.0], atol=1e-12)

    def test_tanh(self):
        np.testing.assert_allclose(Tensor([0.0]).tanh().data, [0.0])

    def test_relu(self):
        np.testing.assert_allclose(
            Tensor([-1.0, 0.0, 2.0]).relu().data, [0.0, 0.0, 2.0])

    def test_softmax_rows_sum_to_one(self):
        out = Tensor(np.random.default_rng(0).normal(size=(4, 6))).softmax()
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4))

    def test_softmax_shift_invariant(self):
        x = np.random.default_rng(1).normal(size=(3, 4))
        a = Tensor(x).softmax().data
        b = Tensor(x + 100.0).softmax().data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_sum_axis(self):
        out = Tensor(np.ones((2, 3))).sum(axis=0)
        np.testing.assert_allclose(out.data, [2.0, 2.0, 2.0])

    def test_sum_keepdims(self):
        assert Tensor(np.ones((2, 3))).sum(axis=1, keepdims=True).shape == (2, 1)

    def test_mean(self):
        assert Tensor([1.0, 2.0, 3.0]).mean().item() == 2.0

    def test_mean_axis_tuple(self):
        out = Tensor(np.ones((2, 3, 4))).mean(axis=(0, 2))
        np.testing.assert_allclose(out.data, np.ones(3))

    def test_reshape(self):
        assert Tensor(np.arange(6.0)).reshape(2, 3).shape == (2, 3)

    def test_transpose_default_reverses(self):
        assert Tensor(np.zeros((2, 3, 4))).transpose().shape == (4, 3, 2)

    def test_getitem_slice(self):
        out = Tensor(np.arange(10.0))[2:5]
        np.testing.assert_allclose(out.data, [2.0, 3.0, 4.0])

    def test_take_rows(self):
        t = Tensor(np.arange(6.0).reshape(3, 2))
        out = t.take_rows(np.array([2, 0]))
        np.testing.assert_allclose(out.data, [[4.0, 5.0], [0.0, 1.0]])

    def test_concat(self):
        out = concat([Tensor(np.ones((2, 2))), Tensor(np.zeros((2, 3)))], axis=1)
        assert out.shape == (2, 5)

    def test_stack(self):
        out = stack([Tensor([1.0, 2.0]), Tensor([3.0, 4.0])], axis=0)
        assert out.shape == (2, 2)

    def test_where(self):
        cond = np.array([True, False])
        out = where(cond, Tensor([1.0, 1.0]), Tensor([2.0, 2.0]))
        np.testing.assert_allclose(out.data, [1.0, 2.0])

    def test_clip_min(self):
        out = Tensor([-1.0, 0.5]).clip_min(0.0)
        np.testing.assert_allclose(out.data, [0.0, 0.5])

    def test_sqrt(self):
        np.testing.assert_allclose(Tensor([4.0, 9.0]).sqrt().data, [2.0, 3.0])


class TestBackwardSemantics:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_requires_scalar(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_grad_accumulates_across_backwards(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2).sum().backward()
        first = t.grad.copy()
        (t * 2).sum().backward()
        np.testing.assert_allclose(t.grad, 2 * first)

    def test_zero_grad(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_detach_cuts_tape(self):
        t = Tensor([2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_shared_subexpression_grad(self):
        # y = x*x uses x twice; dy/dx = 2x.
        t = Tensor([3.0], requires_grad=True)
        (t * t).sum().backward()
        np.testing.assert_allclose(t.grad, [6.0])

    def test_diamond_graph_grad(self):
        # z = (x+1) * (x+2): dz/dx = 2x+3.
        t = Tensor([1.0], requires_grad=True)
        ((t + 1) * (t + 2)).sum().backward()
        np.testing.assert_allclose(t.grad, [5.0])

    def test_long_chain_does_not_recurse(self):
        # 3000-step chain would overflow Python recursion if DFS were
        # recursive.
        t = Tensor([1.0], requires_grad=True)
        out = t
        for _ in range(3000):
            out = out + 1.0
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [1.0])

    def test_broadcast_grad_shape(self):
        t = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        (Tensor(np.ones((4, 3))) * t).sum().backward()
        np.testing.assert_allclose(t.grad, [4.0, 4.0, 4.0])

    def test_constant_branch_gets_no_grad(self):
        const = Tensor([1.0])
        t = Tensor([1.0], requires_grad=True)
        (t + const).sum().backward()
        assert const.grad is None
