"""Figure 7 — HR@10 versus embedding dimensionality d.

Expected shape (paper): accuracy rises with d and then flattens (possibly
dipping from overfitting at very large d relative to the data size).
"""

import pytest

from repro.experiments import (format_table, run_embedding_dim_sweep,
                               train_variant)

DIMS = (8, 32, 64)


@pytest.fixture(scope="module")
def fig7(porto_workload):
    return run_embedding_dim_sweep(porto_workload, dims=DIMS)


def test_fig7_embedding_dim(benchmark, fig7, porto_workload, report,
                            strict_shapes):
    model = train_variant("neutraj", porto_workload, "frechet")
    batch = porto_workload.database[:16]
    benchmark(lambda: model.embed(batch))

    rows = [[variant] + [f"{fig7[(variant, d)]:.4f}" for d in DIMS]
            for variant in ("neutraj", "nt_no_sam")]
    report("fig7_embedding_dim",
           format_table("Fig 7: HR@10 vs embedding dimension (Fréchet)",
                        ["variant"] + [f"d={d}" for d in DIMS], rows))

    if not strict_shapes:
        return
    for variant in ("neutraj", "nt_no_sam"):
        series = [fig7[(variant, d)] for d in DIMS]
        # The best dimension is not the smallest one.
        assert max(series[1:]) >= series[0], variant
