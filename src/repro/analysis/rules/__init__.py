"""Rule registry.

Rules self-register via the :func:`register` decorator at import time;
importing this package pulls in every built-in rule module. Adding a rule
is: write a module with a ``Rule`` subclass, decorate it, import it at
the bottom of this file, and give it fixture tests (see DESIGN "Static
analysis").
"""

from __future__ import annotations

from typing import Dict, Type

from .base import ModuleContext, ProgramRule, Rule

_REGISTRY: Dict[str, Type[Rule]] = {}
_PROGRAM_REGISTRY: Dict[str, Type[ProgramRule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id!r}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def register_program(cls: Type[ProgramRule]) -> Type[ProgramRule]:
    """Class decorator adding a whole-program rule to the registry."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in _PROGRAM_REGISTRY or cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id!r}")
    _PROGRAM_REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> Dict[str, Type[Rule]]:
    """Registered rules, keyed and sorted by rule id."""
    return dict(sorted(_REGISTRY.items()))


def all_program_rules() -> Dict[str, Type[ProgramRule]]:
    """Registered whole-program rules, keyed and sorted by rule id."""
    return dict(sorted(_PROGRAM_REGISTRY.items()))


def get_rule(rule_id: str) -> Type[Rule]:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {sorted(_REGISTRY)}"
        ) from None


# Built-in rules (import order is registration order; listing is sorted).
from . import api  # noqa: E402,F401
from . import determinism  # noqa: E402,F401
from . import dtype  # noqa: E402,F401
from . import durability  # noqa: E402,F401
from . import exception_hygiene  # noqa: E402,F401
from . import locks  # noqa: E402,F401
from . import tape  # noqa: E402,F401

# Whole-program rules (``python -m repro analyze``).
from . import leaks  # noqa: E402,F401
from . import lockset  # noqa: E402,F401
from . import tape_shape  # noqa: E402,F401

__all__ = ["ModuleContext", "ProgramRule", "Rule", "register",
           "register_program", "all_rules", "all_program_rules", "get_rule"]
