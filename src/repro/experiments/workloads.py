"""Standard experiment workloads and scaling presets.

The paper evaluates on Geolife (8,203 trajectories) and Porto (601k, with a
10k sample for ground truth) on GPU hardware. Our CPU/numpy substrate runs
the same *protocol* at reduced scale; this module centralises the scaled
workload definitions so every table/figure uses consistent data, and caches
the expensive exact distance matrices on disk.

Scale is selected with the ``REPRO_SCALE`` environment variable
(``smoke`` < ``small`` < ``medium``); benchmarks default to ``small``.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.config import NeuTrajConfig
from ..datasets import (GeolifeConfig, PortoConfig, Trajectory,
                        TrajectoryDataset, generate_geolife, generate_porto)
from ..measures import cross_distances, get_measure, pairwise_distances

DEFAULT_CACHE_DIR = Path(
    os.environ.get("REPRO_CACHE", Path(__file__).resolve().parents[3]
                   / ".bench_cache"))


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that shrink the paper's experiments to CPU scale."""

    name: str
    num_trajectories: int     # full synthetic dataset size
    seed_fraction: float      # paper: 20%
    num_queries: int          # queries evaluated per cell
    embedding_dim: int        # paper: 128
    epochs: int
    sampling_num: int         # paper: 10
    batch_anchors: int        # paper: 20
    cell_size: float
    max_points: int

    def neutraj_config(self, measure: str, **overrides) -> NeuTrajConfig:
        """NeuTrajConfig pre-filled from this scale."""
        base = dict(
            measure=measure,
            embedding_dim=self.embedding_dim,
            epochs=self.epochs,
            sampling_num=self.sampling_num,
            batch_anchors=self.batch_anchors,
            cell_size=self.cell_size,
            learning_rate=0.008,
            seed=0,
        )
        base.update(overrides)
        return NeuTrajConfig(**base)


SCALES: Dict[str, ExperimentScale] = {
    "smoke": ExperimentScale(
        name="smoke", num_trajectories=120, seed_fraction=0.4, num_queries=8,
        embedding_dim=16, epochs=3, sampling_num=5, batch_anchors=10,
        cell_size=400.0, max_points=24),
    "small": ExperimentScale(
        name="small", num_trajectories=300, seed_fraction=0.4, num_queries=20,
        embedding_dim=32, epochs=16, sampling_num=10, batch_anchors=20,
        cell_size=200.0, max_points=40),
    "medium": ExperimentScale(
        name="medium", num_trajectories=800, seed_fraction=0.3,
        num_queries=40, embedding_dim=48, epochs=14, sampling_num=10,
        batch_anchors=20, cell_size=150.0, max_points=60),
}


def current_scale() -> ExperimentScale:
    """Scale selected by ``REPRO_SCALE`` (default ``small``)."""
    name = os.environ.get("REPRO_SCALE", "small")
    try:
        return SCALES[name]
    except KeyError:
        raise KeyError(f"unknown REPRO_SCALE={name!r}; "
                       f"choose from {sorted(SCALES)}") from None


@dataclass
class Workload:
    """A dataset split plus (lazily cached) exact distance structures."""

    dataset_name: str
    scale: ExperimentScale
    seeds: List[Trajectory]
    queries: List[Trajectory]
    database: List[Trajectory]
    bbox: Tuple[float, float, float, float]

    _cache_dir: Optional[Path] = None

    def _cache_path(self, kind: str, measure: str) -> Optional[Path]:
        if self._cache_dir is None:
            return None
        key = f"{self.dataset_name}-{self.scale.name}-{measure}-{kind}"
        digest = hashlib.sha1(key.encode()).hexdigest()[:16]
        return self._cache_dir / f"{key}-{digest}.npy"

    def _cached(self, kind: str, measure: str, compute) -> np.ndarray:
        path = self._cache_path(kind, measure)
        if path is not None and path.exists():
            return np.load(path)
        value = compute()
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            np.save(path, value)
        return value

    def seed_distances(self, measure_name: str) -> np.ndarray:
        """Exact (N, N) seed distance matrix (the offline quadratic step)."""
        measure = _measure_for(measure_name, self.bbox)
        return self._cached("seedD", measure_name,
                            lambda: pairwise_distances(self.seeds, measure))

    def ground_truth(self, measure_name: str) -> np.ndarray:
        """Exact (Q, N_db) query->database distances (search ground truth)."""
        measure = _measure_for(measure_name, self.bbox)
        return self._cached(
            "gt", measure_name,
            lambda: cross_distances(self.queries, self.database, measure))


def _measure_for(measure_name: str, bbox):
    """Instantiate a measure; ERP gets the area centroid as gap point."""
    if measure_name == "erp":
        gap = ((bbox[0] + bbox[2]) / 2.0, (bbox[1] + bbox[3]) / 2.0)
        return get_measure("erp", gap=gap)
    return get_measure(measure_name)


def build_workload(dataset_name: str, scale: Optional[ExperimentScale] = None,
                   cache: bool = True, seed: int = 0) -> Workload:
    """Create the standard (seeds / queries / database) split.

    ``dataset_name`` is ``"porto"`` or ``"geolife"``. The split follows the
    paper: ``seed_fraction`` of trajectories are seeds (training), the rest
    is the search database, from which ``num_queries`` queries are drawn.
    """
    scale = scale or current_scale()
    if dataset_name == "porto":
        dataset = generate_porto(
            PortoConfig(num_trajectories=scale.num_trajectories,
                        min_points=10, max_points=scale.max_points),
            seed=seed)
    elif dataset_name == "geolife":
        dataset = generate_geolife(
            GeolifeConfig(num_trajectories=scale.num_trajectories,
                          min_points=10, max_points=scale.max_points),
            seed=seed)
    else:
        raise KeyError(f"unknown dataset {dataset_name!r}")

    rng = np.random.default_rng(seed)
    seeds_ds, rest = dataset.split(
        (scale.seed_fraction, 1.0 - scale.seed_fraction), rng)
    rest_list = list(rest)
    queries = rest_list[:scale.num_queries]
    # Queries are held out of the database so no method gets the trivial
    # self-match (the released implementation likewise excludes self).
    database = rest_list[scale.num_queries:]

    return Workload(
        dataset_name=dataset_name,
        scale=scale,
        seeds=list(seeds_ds),
        queries=queries,
        database=database,
        bbox=dataset.bbox,
        _cache_dir=DEFAULT_CACHE_DIR if cache else None,
    )
