"""Tests for clustering-quality metrics (homogeneity / completeness / V / ARI)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import (adjusted_rand_index, contingency_table,
                              homogeneity_completeness_v)


class TestContingency:
    def test_counts(self):
        table = contingency_table([0, 0, 1, 1], [0, 1, 1, 1])
        np.testing.assert_array_equal(table, [[1, 1], [0, 2]])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            contingency_table([0, 1], [0])


class TestHomogeneityCompleteness:
    def test_identical_partitions_perfect(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        h, c, v = homogeneity_completeness_v(labels, labels)
        assert (h, c, v) == (1.0, 1.0, 1.0)

    def test_relabeling_invariant(self):
        truth = np.array([0, 0, 1, 1])
        pred = np.array([5, 5, 2, 2])
        h, c, v = homogeneity_completeness_v(truth, pred)
        assert (h, c, v) == (1.0, 1.0, 1.0)

    def test_oversplit_is_homogeneous_not_complete(self):
        truth = np.array([0, 0, 0, 0])
        pred = np.array([0, 0, 1, 1])
        h, c, v = homogeneity_completeness_v(truth, pred)
        assert h == 1.0
        assert c < 1.0
        assert 0.0 <= v < 1.0

    def test_merged_is_complete_not_homogeneous(self):
        truth = np.array([0, 0, 1, 1])
        pred = np.array([0, 0, 0, 0])
        h, c, v = homogeneity_completeness_v(truth, pred)
        assert c == 1.0
        assert h < 1.0

    def test_v_is_harmonic_mean(self):
        truth = np.array([0, 0, 1, 1, 2, 2])
        pred = np.array([0, 0, 1, 2, 2, 2])
        h, c, v = homogeneity_completeness_v(truth, pred)
        assert v == pytest.approx(2 * h * c / (h + c))

    def test_range(self, rng):
        for _ in range(20):
            truth = rng.integers(0, 4, size=30)
            pred = rng.integers(0, 4, size=30)
            h, c, v = homogeneity_completeness_v(truth, pred)
            assert 0.0 <= h <= 1.0
            assert 0.0 <= c <= 1.0
            assert 0.0 <= v <= 1.0


class TestARI:
    def test_identical_is_one(self):
        labels = np.array([0, 1, 1, 2])
        assert adjusted_rand_index(labels, labels) == 1.0

    def test_relabeling_invariant(self):
        assert adjusted_rand_index([0, 0, 1, 1], [7, 7, 3, 3]) == 1.0

    def test_random_near_zero(self, rng):
        values = []
        for i in range(50):
            r = np.random.default_rng(i)
            truth = r.integers(0, 3, size=60)
            pred = r.permutation(truth)
            values.append(adjusted_rand_index(truth, pred))
        assert abs(np.mean(values)) < 0.05

    def test_known_value(self):
        # Classic example: ARI symmetric, bounded by 1.
        truth = [0, 0, 0, 1, 1, 1]
        pred = [0, 0, 1, 1, 2, 2]
        ab = adjusted_rand_index(truth, pred)
        ba = adjusted_rand_index(pred, truth)
        assert ab == pytest.approx(ba)
        assert ab < 1.0

    def test_single_point(self):
        assert adjusted_rand_index([0], [0]) == 1.0


@given(st.lists(st.integers(min_value=0, max_value=3), min_size=2,
                max_size=40))
@settings(max_examples=30, deadline=None)
def test_property_self_comparison_perfect(labels):
    labels = np.array(labels)
    h, c, v = homogeneity_completeness_v(labels, labels)
    assert v == pytest.approx(1.0)
    assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)


@given(st.lists(st.integers(min_value=0, max_value=3), min_size=2,
                max_size=30),
       st.lists(st.integers(min_value=0, max_value=3), min_size=2,
                max_size=30))
@settings(max_examples=30, deadline=None)
def test_property_ari_symmetric(a, b):
    n = min(len(a), len(b))
    a, b = np.array(a[:n]), np.array(b[:n])
    assert adjusted_rand_index(a, b) == pytest.approx(
        adjusted_rand_index(b, a))
