"""Interprocedural call graph over the :class:`~.program.ProgramModel`.

Edges are resolved purely syntactically, which covers the dispatch shapes
the whole-program rules need:

* ``self.method(...)`` — the enclosing class's method, falling back to
  the nearest base class defined inside the program;
* ``helper(...)`` — a module-level function of the same module, or one
  imported via ``from mod import helper`` when ``mod`` is in the program;
* ``pkg.mod.helper(...)`` / ``alias.helper(...)`` — attribute calls whose
  prefix resolves (through the import map) to a program module;
* ``ClassName(...)`` — the class's ``__init__``.

Anything else (dynamic dispatch, callables stored in fields, stdlib) has
no edge: callers must treat missing edges as "unknown callee". Each edge
keeps the :class:`ast.Call` node so analyses can reason about the call
*site* (the lockset rule propagates the locks held there).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from .program import FunctionInfo, ModuleInfo, ProgramModel, dotted_name


class CallSite:
    """One resolved call edge: caller -> callee at a specific Call node."""

    def __init__(self, caller: FunctionInfo, callee: FunctionInfo,
                 node: ast.Call):
        self.caller = caller
        self.callee = callee
        self.node = node


class CallGraph:
    """Caller/callee indexes over every function in the program."""

    def __init__(self, program: ProgramModel):
        self.program = program
        self._callees: Dict[str, List[CallSite]] = {}
        self._callers: Dict[str, List[CallSite]] = {}
        for fn in program.functions.values():
            for call in self._calls_in(fn.node):
                callee = self.resolve(fn, call)
                if callee is None:
                    continue
                site = CallSite(fn, callee, call)
                self._callees.setdefault(fn.key, []).append(site)
                self._callers.setdefault(callee.key, []).append(site)

    @staticmethod
    def _calls_in(node: ast.AST) -> List[ast.Call]:
        return [n for n in ast.walk(node) if isinstance(n, ast.Call)]

    def callees(self, key: str) -> List[CallSite]:
        return self._callees.get(key, [])

    def callers(self, key: str) -> List[CallSite]:
        return self._callers.get(key, [])

    # ------------------------------------------------------------- resolution

    def resolve(self, caller: FunctionInfo,
                call: ast.Call) -> Optional[FunctionInfo]:
        func = call.func
        module = caller.module
        # self.method(...)
        if isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name) \
                and func.value.id == "self" and caller.cls is not None:
            return self.program.resolve_method(caller.cls, func.attr)
        # bare name: module function, from-import, or local class ctor
        if isinstance(func, ast.Name):
            return self._resolve_bare(module, func.id)
        # dotted: alias/module-prefixed function or class ctor
        name = dotted_name(func)
        if name is None:
            return None
        return self._resolve_dotted(module, name)

    def _resolve_bare(self, module: ModuleInfo,
                      name: str) -> Optional[FunctionInfo]:
        fn = self.program.functions.get(f"{module.name}:{name}")
        if fn is not None and fn.cls is None:
            return fn
        ctor = self._class_init(module, name)
        if ctor is not None:
            return ctor
        origin = module.imports.get(name)
        if origin is None:
            return None
        return self._by_origin(origin)

    def _resolve_dotted(self, module: ModuleInfo,
                        name: str) -> Optional[FunctionInfo]:
        first, _, rest = name.partition(".")
        if not rest:
            return None
        origin = module.imports.get(first)
        canonical = f"{origin}.{rest}" if origin else name
        return self._by_origin(canonical)

    def _by_origin(self, origin: str) -> Optional[FunctionInfo]:
        """``pkg.mod.func`` or ``pkg.mod.Class`` -> FunctionInfo."""
        mod_name, _, member = origin.rpartition(".")
        if not member:
            return None
        target = self.program.by_name.get(mod_name)
        if target is None:
            return None
        fn = self.program.functions.get(f"{target.name}:{member}")
        if fn is not None and fn.cls is None:
            return fn
        return self._class_init(target, member)

    def _class_init(self, module: ModuleInfo,
                    name: str) -> Optional[FunctionInfo]:
        cls = self.program.classes.get(f"{module.name}:{name}")
        if cls is None:
            return None
        return self.program.resolve_method(cls, "__init__")
