"""Stochastic optimizers for the numpy autodiff engine.

The paper trains NeuTraj with Adam (§V-B); SGD with momentum is provided for
tests and ablations. Both operate on the ``Parameter`` objects yielded by a
``Module`` and consume gradients accumulated by ``Tensor.backward``.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from .module import Parameter


def grads_finite(parameters: Iterable[Parameter]) -> bool:
    """True when every accumulated gradient is NaN/Inf-free.

    The training guardrails call this between ``backward`` and
    ``optimizer.step`` so a poisoned batch can be skipped before it
    corrupts the parameters (and, through Adam's moments, every step
    after it).
    """
    for p in parameters:
        if p.grad is not None and not np.all(np.isfinite(p.grad)):
            return False
    return True


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in-place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging divergence).
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm > 0:
        scale = max_norm / (total + 1e-12)
        for p in params:
            p.grad *= scale
    return total


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, parameters: Iterable[Parameter]):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def state_dict(self) -> dict:
        """Internal state (slot arrays + counters) for checkpointing.

        Stateless optimizers return an empty dict; Adam/SGD override the
        ``_state_arrays`` hooks below.
        """
        return {"slots": {name: [a.copy() for a in arrays]
                          for name, arrays in self._state_arrays().items()},
                "scalars": self._state_scalars()}

    def load_state_dict(self, state: dict) -> None:
        """Restore state produced by :meth:`state_dict` (strict shapes)."""
        slots = state.get("slots", {})
        own = self._state_arrays()
        if set(slots) != set(own):
            raise ValueError(f"optimizer state mismatch: got {sorted(slots)}, "
                             f"expected {sorted(own)}")
        for name, arrays in own.items():
            incoming = slots[name]
            if len(incoming) != len(arrays):
                raise ValueError(
                    f"optimizer slot {name!r} has {len(incoming)} arrays, "
                    f"expected {len(arrays)}")
            for target, value in zip(arrays, incoming):
                value = np.asarray(value, dtype=target.dtype)
                if value.shape != target.shape:
                    raise ValueError(f"optimizer slot {name!r} shape "
                                     f"{value.shape} != {target.shape}")
                target[...] = value
        self._load_state_scalars(state.get("scalars", {}))

    def _state_arrays(self) -> dict:
        return {}

    def _state_scalars(self) -> dict:
        return {}

    def _load_state_scalars(self, scalars: dict) -> None:
        pass


class SGD(Optimizer):
    """SGD with optional classical momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data = p.data - self.lr * v
            else:
                p.data = p.data - self.lr * p.grad

    def _state_arrays(self) -> dict:
        return {"velocity": self._velocity}


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.001,
                 betas=(0.9, 0.999), eps: float = 1e-8):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._step
        bias2 = 1.0 - b2 ** self._step
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            m *= b1
            m += (1 - b1) * p.grad
            v *= b2
            v += (1 - b2) * p.grad ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _state_arrays(self) -> dict:
        return {"m": self._m, "v": self._v}

    def _state_scalars(self) -> dict:
        return {"step": self._step}

    def _load_state_scalars(self, scalars: dict) -> None:
        self._step = int(scalars.get("step", 0))
