"""Tests for Trajectory / TrajectoryDataset containers."""

import numpy as np
import pytest

from repro.datasets import Trajectory, TrajectoryDataset, pad_batch
from repro.exceptions import InvalidTrajectoryError


class TestTrajectory:
    def test_basic_construction(self):
        t = Trajectory([[0.0, 0.0], [1.0, 1.0]], traj_id=3)
        assert len(t) == 2
        assert t.traj_id == 3

    def test_rejects_wrong_shape(self):
        with pytest.raises(InvalidTrajectoryError):
            Trajectory([[1.0, 2.0, 3.0]])

    def test_rejects_1d(self):
        with pytest.raises(InvalidTrajectoryError):
            Trajectory([1.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(InvalidTrajectoryError):
            Trajectory(np.zeros((0, 2)))

    def test_rejects_nan(self):
        with pytest.raises(InvalidTrajectoryError):
            Trajectory([[0.0, np.nan]])

    def test_rejects_inf(self):
        with pytest.raises(InvalidTrajectoryError):
            Trajectory([[0.0, np.inf]])

    def test_points_are_immutable(self):
        t = Trajectory([[0.0, 0.0], [1.0, 1.0]])
        with pytest.raises(ValueError):
            t.points[0, 0] = 5.0

    def test_bbox(self):
        t = Trajectory([[1.0, 2.0], [-1.0, 5.0], [0.0, 0.0]])
        assert t.bbox == (-1.0, 0.0, 1.0, 5.0)

    def test_path_length(self):
        t = Trajectory([[0.0, 0.0], [3.0, 4.0], [3.0, 4.0]])
        assert t.length == pytest.approx(5.0)

    def test_single_point_length_zero(self):
        assert Trajectory([[1.0, 1.0]]).length == 0.0

    def test_equality_and_hash(self):
        a = Trajectory([[0.0, 0.0], [1.0, 1.0]])
        b = Trajectory([[0.0, 0.0], [1.0, 1.0]], traj_id=9)
        c = Trajectory([[0.0, 0.0], [2.0, 2.0]])
        assert a == b  # id not part of equality
        assert hash(a) == hash(b)
        assert a != c

    def test_downsample(self):
        t = Trajectory(np.arange(20.0).reshape(10, 2))
        d = t.downsample(3)
        assert len(d) == 4  # indices 0, 3, 6, 9
        np.testing.assert_allclose(d.points[-1], t.points[-1])

    def test_downsample_keeps_last(self):
        t = Trajectory(np.arange(22.0).reshape(11, 2))
        d = t.downsample(3)
        np.testing.assert_allclose(d.points[-1], t.points[-1])

    def test_downsample_rejects_zero_step(self):
        with pytest.raises(ValueError):
            Trajectory([[0.0, 0.0], [1.0, 1.0]]).downsample(0)


class TestTrajectoryDataset:
    def _make(self, lengths):
        return TrajectoryDataset([
            Trajectory(np.random.default_rng(i).normal(size=(n, 2)), traj_id=i)
            for i, n in enumerate(lengths)
        ])

    def test_len_iter_getitem(self):
        ds = self._make([3, 4, 5])
        assert len(ds) == 3
        assert [len(t) for t in ds] == [3, 4, 5]
        assert len(ds[1]) == 4

    def test_slice_returns_dataset(self):
        ds = self._make([3, 4, 5])
        assert isinstance(ds[:2], TrajectoryDataset)
        assert len(ds[:2]) == 2

    def test_index_array(self):
        ds = self._make([3, 4, 5])
        sub = ds[np.array([2, 0])]
        assert [t.traj_id for t in sub] == [2, 0]

    def test_rejects_non_trajectory(self):
        with pytest.raises(TypeError):
            TrajectoryDataset([np.zeros((3, 2))])

    def test_lengths(self):
        np.testing.assert_array_equal(self._make([3, 7]).lengths, [3, 7])

    def test_bbox_covers_all(self):
        ds = TrajectoryDataset([
            Trajectory([[0.0, 0.0], [1.0, 1.0]]),
            Trajectory([[5.0, -2.0], [6.0, 3.0]]),
        ])
        assert ds.bbox == (0.0, -2.0, 6.0, 3.0)

    def test_empty_bbox_raises(self):
        with pytest.raises(ValueError):
            TrajectoryDataset([]).bbox

    def test_filter_min_points(self):
        ds = self._make([3, 10, 20])
        assert len(ds.filter_min_points(10)) == 2

    def test_filter_bbox(self):
        ds = TrajectoryDataset([
            Trajectory([[0.5, 0.5], [0.6, 0.6]]),
            Trajectory([[5.0, 5.0], [6.0, 6.0]]),
        ])
        assert len(ds.filter_bbox(0.0, 0.0, 1.0, 1.0)) == 1

    def test_split_sizes(self, rng):
        ds = self._make([5] * 100)
        train, val, test = ds.split((0.2, 0.1, 0.7), rng)
        assert len(train) == 20
        assert len(val) == 10
        assert len(test) == 70

    def test_split_disjoint(self, rng):
        ds = self._make([5] * 50)
        a, b = ds.split((0.5, 0.5), rng)
        ids_a = {t.traj_id for t in a}
        ids_b = {t.traj_id for t in b}
        assert not ids_a & ids_b
        assert len(ids_a | ids_b) == 50

    def test_split_rejects_over_one(self, rng):
        with pytest.raises(ValueError):
            self._make([5] * 10).split((0.8, 0.8), rng)

    def test_sample_without_replacement(self, rng):
        ds = self._make([5] * 30)
        sub = ds.sample(10, rng)
        ids = [t.traj_id for t in sub]
        assert len(ids) == len(set(ids)) == 10

    def test_sample_too_many_raises(self, rng):
        with pytest.raises(ValueError):
            self._make([5] * 3).sample(10, rng)


class TestPadBatch:
    def test_shapes_and_mask(self):
        trajs = [Trajectory(np.ones((3, 2))), Trajectory(np.ones((5, 2)))]
        coords, lengths, mask = pad_batch(trajs)
        assert coords.shape == (2, 5, 2)
        np.testing.assert_array_equal(lengths, [3, 5])
        assert mask[0, :3].all() and not mask[0, 3:].any()
        assert mask[1].all()

    def test_padding_is_zero(self):
        trajs = [Trajectory(np.ones((2, 2))), Trajectory(np.ones((4, 2)))]
        coords, _, _ = pad_batch(trajs)
        np.testing.assert_allclose(coords[0, 2:], 0.0)
