"""Tests for the timing harness."""

import time

import pytest

from repro.eval import Timing, measure, speedup


def test_measure_counts_repetitions():
    calls = []
    t = measure(lambda: calls.append(1), repetitions=5)
    assert len(calls) == 5
    assert t.repetitions == 5


def test_warmup_not_measured_in_reps():
    calls = []
    measure(lambda: calls.append(1), repetitions=2, warmup=3)
    assert len(calls) == 5


def test_per_call_division():
    t = Timing(seconds=1.0, repetitions=4)
    assert t.per_call == 0.25


def test_measure_positive_duration():
    t = measure(lambda: time.sleep(0.001), repetitions=3)
    assert t.per_call >= 0.001


def test_rejects_zero_repetitions():
    with pytest.raises(ValueError):
        measure(lambda: None, repetitions=0)


def test_speedup():
    base = Timing(seconds=10.0, repetitions=1)
    fast = Timing(seconds=1.0, repetitions=1)
    assert speedup(base, fast) == 10.0


def test_str_format():
    assert str(Timing(seconds=0.5, repetitions=1)) == "0.5000s"
