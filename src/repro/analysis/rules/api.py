"""api-hygiene: small API landmines that generic review keeps missing.

* **Mutable default arguments** (``def f(x=[])``, ``=``{}``, ``=set()``,
  ``=list()``, ...) — shared across calls, the classic aliasing bug.
  Default to ``None`` and materialise inside the function.
* **``assert`` for runtime validation** in ``src/`` — asserts vanish
  under ``python -O``; library code must raise typed exceptions from
  :mod:`repro.exceptions` (or the stdlib ones) instead. pytest-style
  code (tests, benchmarks) sets ``flag_asserts: False`` — there the
  assert *is* the reporting mechanism.
"""

from __future__ import annotations

import ast
from typing import List

from . import register
from .base import ModuleContext, Rule

_MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "bytearray",
    "collections.OrderedDict", "collections.defaultdict",
    "collections.deque", "collections.Counter",
})

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set,
                     ast.ListComp, ast.DictComp, ast.SetComp)


@register
class ApiHygiene(Rule):
    rule_id = "api-hygiene"
    description = ("no mutable default arguments; no assert for runtime "
                   "validation in library code")
    default_options = {"flag_asserts": True}

    def check(self, ctx: ModuleContext) -> List:
        flag_asserts = ctx.options.get("flag_asserts", True)
        out = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out.extend(self._check_defaults(ctx, node))
            elif flag_asserts and isinstance(node, ast.Assert):
                out.append(ctx.finding(
                    self.rule_id, node,
                    "assert used for runtime validation; asserts vanish "
                    "under -O — raise a typed exception instead"))
        return out

    def _check_defaults(self, ctx: ModuleContext, fn) -> List:
        out = []
        defaults = list(fn.args.defaults) \
            + [d for d in fn.args.kw_defaults if d is not None]
        for default in defaults:
            if self._is_mutable(ctx, default):
                out.append(ctx.finding(
                    self.rule_id, default,
                    f"mutable default argument in {fn.name}(); the object "
                    f"is shared across calls — default to None and build "
                    f"it inside"))
        return out

    @staticmethod
    def _is_mutable(ctx: ModuleContext, node: ast.AST) -> bool:
        if isinstance(node, _MUTABLE_LITERALS):
            return True
        if isinstance(node, ast.Call):
            name = ctx.resolve_call_name(node.func)
            return name in _MUTABLE_CALLS
        return False
