"""Spatial Attention Memory (SAM) and the SAM-augmented LSTM (paper §IV).

The SAM module is a grid-based external memory: a tensor ``M`` of shape
(P, Q, d) holding one embedding per grid cell of the discretised space.
The augmented recurrent unit adds a fourth *spatial* gate ``s_t`` and, at
each step,

* **reads** (Eq. 4): scans the (2w+1)² window of grid cells around the
  current input cell, attends over them with the intermediate cell state
  and mixes the result back into the cell state, and
* **writes** (Eq. 5): stores the new cell state into the current grid cell,
  gated by ``sigma(s_t)``.

Following the released implementation, the memory is *external state*:
reads treat stored embeddings as constants and writes store detached
values — gradients flow through the attention weights and the read
projection, not through history.

Two stabilisations (both ablatable) keep long CPU trainings healthy; we
found the literal equations drift otherwise (cell-state magnitudes past 10,
saturating ``tanh`` and costing ~20 HR@10 points on our workloads):

* the spatial gate's bias starts at ``SPATIAL_GATE_BIAS`` (negative), so
  the additive memory path opens only where training finds it useful —
  the standard highway/GRU-style initialisation for additive gates;
* writes store ``tanh(c_t)`` (``bounded=True``), bounding the stored
  embeddings to the same range the attention reader was designed for.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from . import init
from .layers import Linear
from .module import Module, Parameter
from .tensor import Tensor, concat, unstack, where

#: Initial bias of the spatial gate: strongly negative so the memory path
#: starts nearly closed and opens only where it reduces the loss.
SPATIAL_GATE_BIAS = -4.0


class SpatialMemory:
    """Grid-based memory tensor ``M`` with windowed gather and gated scatter.

    Parameters
    ----------
    grid_shape:
        (P, Q) number of grid cells along each axis.
    hidden_size:
        Width ``d`` of each stored cell embedding.
    bandwidth:
        Scan half-width ``w``; reads return the (2w+1)² surrounding cells.
    bounded:
        Store ``tanh(values)`` on writes (default True), keeping cell
        embeddings in (-1, 1) regardless of cell-state drift.
    """

    def __init__(self, grid_shape: Tuple[int, int], hidden_size: int,
                 bandwidth: int = 2, bounded: bool = True):
        if bandwidth < 0:
            raise ValueError("bandwidth must be >= 0")
        self.grid_shape = (int(grid_shape[0]), int(grid_shape[1]))
        self.hidden_size = int(hidden_size)
        self.bandwidth = int(bandwidth)
        self.bounded = bool(bounded)
        p, q = self.grid_shape
        self.data = np.zeros((p, q, self.hidden_size), dtype=np.float64)
        offsets = np.arange(-bandwidth, bandwidth + 1, dtype=np.int64)
        ox, oy = np.meshgrid(offsets, offsets, indexing="ij")
        # (K, 2) window offsets in row-major scan order, K = (2w+1)^2.
        self._window = np.stack([ox.ravel(), oy.ravel()], axis=1)

    @property
    def window_size(self) -> int:
        return len(self._window)

    def reset(self) -> None:
        """Zero the memory (used between training runs / datasets)."""
        self.data[:] = 0.0

    def copy(self) -> "SpatialMemory":
        clone = SpatialMemory(self.grid_shape, self.hidden_size,
                              self.bandwidth, bounded=self.bounded)
        clone.data = self.data.copy()
        return clone

    def gather(self, cells: np.ndarray) -> np.ndarray:
        """Read the scan windows around a batch of grid cells.

        Parameters
        ----------
        cells:
            Integer array (B, 2) of (gx, gy) cell coordinates.

        Returns
        -------
        (B, K, d) array of the surrounding grid-cell embeddings; positions
        outside the grid read as zeros.
        """
        cells = np.asarray(cells, dtype=int)
        coords = cells[:, None, :] + self._window[None, :, :]  # (B, K, 2)
        p, q = self.grid_shape
        gx = coords[..., 0]
        gy = coords[..., 1]
        valid = (gx >= 0) & (gx < p) & (gy >= 0) & (gy < q)
        # One flat ``take`` instead of a (gx, gy) double fancy index: this
        # gather runs once per recurrent step and is the read hot spot.
        flat = np.clip(gx, 0, p - 1) * q + np.clip(gy, 0, q - 1)
        window = self.data.reshape(p * q, self.hidden_size).take(
            flat.ravel(), axis=0).reshape(*flat.shape, self.hidden_size)
        window[~valid] = 0.0
        return window

    def write(self, cells: np.ndarray, values: np.ndarray, gates: np.ndarray,
              mask: Optional[np.ndarray] = None) -> None:
        """Gated sparse update ``M(g) = sig(s)*c + (1-sig(s))*M(g)`` (Eq. 5).

        Writes follow batch order, matching the per-trajectory semantics of
        the paper (a later sample in the batch sees earlier writes to the
        same cell). The update is a vectorised scatter: samples hitting
        *distinct* cells are blended in one fancy-indexed assignment, and
        duplicate cells are resolved by last-writer chaining — round ``r``
        applies the ``r``-th writer of every duplicated cell, so the chained
        result is bit-identical to the sequential loop.
        """
        cells = np.asarray(cells, dtype=int)
        values = np.asarray(values, dtype=np.float64)
        if self.bounded:
            values = np.tanh(values)
        gate_weight = _sigmoid(np.asarray(gates, dtype=np.float64))
        p, q = self.grid_shape
        valid = ((cells[:, 0] >= 0) & (cells[:, 0] < p)
                 & (cells[:, 1] >= 0) & (cells[:, 1] < q))
        if mask is not None:
            valid &= np.asarray(mask, dtype=bool)
        rows = np.flatnonzero(valid)
        if rows.size == 0:
            return
        gx = cells[rows, 0]
        gy = cells[rows, 1]
        flat = gx * q + gy
        # Stable sort groups duplicate cells while preserving batch order
        # inside each group; ``rank`` is each row's position in its group.
        order = np.argsort(flat, kind="stable")
        sorted_flat = flat[order]
        group_start = np.flatnonzero(
            np.concatenate([[True], sorted_flat[1:] != sorted_flat[:-1]]))
        group_id = np.cumsum(
            np.concatenate([[True], sorted_flat[1:] != sorted_flat[:-1]])) - 1
        rank = np.arange(len(sorted_flat), dtype=np.intp) - group_start[group_id]
        for r in range(int(rank.max()) + 1):
            sel = order[rank == r]  # one writer per cell -> scatter is safe
            g = gate_weight[rows[sel]]
            self.data[gx[sel], gy[sel]] = (
                g * values[rows[sel]]
                + (1.0 - g) * self.data[gx[sel], gy[sel]])

    def occupancy(self) -> float:
        """Fraction of grid cells holding a non-zero embedding."""
        nonzero = np.any(self.data != 0.0, axis=-1)
        return float(nonzero.mean())


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Same stable one-exp logistic as the autodiff ops.
    e = np.exp(-np.abs(x))
    pos = 1.0 / (1.0 + e)
    return np.where(x >= 0, pos, e * pos)


class SAMLSTMCell(Module):
    """SAM-augmented LSTM step (paper Eq. 1-6).

    Produces four sigmoid gates ``[f, i, s, o]`` from the coordinate input
    and previous hidden state, forms the intermediate cell state, augments it
    with the attention read from :class:`SpatialMemory` scaled by the spatial
    gate, writes the result back, and emits the hidden state.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        self.input_size = input_size
        self.hidden_size = hidden_size
        d = hidden_size
        self.w_gates = Parameter(init.xavier_uniform((4 * d, input_size), rng))
        self.u_gates = Parameter(init.orthogonal((4 * d, d), rng))
        bias = init.lstm_forget_bias(init.zeros(4 * d), d)
        bias[2 * d:3 * d] = SPATIAL_GATE_BIAS
        self.b_gates = Parameter(bias)
        self.w_cand = Parameter(init.xavier_uniform((d, input_size), rng))
        self.u_cand = Parameter(init.orthogonal((d, d), rng))
        self.b_cand = Parameter(init.zeros(d))
        # Attention read projection W_his: concat([c_hat, mix]) -> d.
        self.read_proj = Linear(2 * d, d, rng)

    def forward(self, x: Tensor, grid_cells: np.ndarray, h_prev: Tensor,
                c_prev: Tensor, memory: SpatialMemory,
                write: bool = True, step_mask: Optional[np.ndarray] = None
                ) -> Tuple[Tensor, Tensor]:
        d = self.hidden_size
        gates = (x @ self.w_gates.transpose()
                 + h_prev @ self.u_gates.transpose() + self.b_gates).sigmoid()
        f_t = gates[:, 0 * d:1 * d]
        i_t = gates[:, 1 * d:2 * d]
        s_t = gates[:, 2 * d:3 * d]
        o_t = gates[:, 3 * d:4 * d]
        cand = (x @ self.w_cand.transpose()
                + h_prev @ self.u_cand.transpose() + self.b_cand).tanh()
        c_hat = f_t * c_prev + i_t * cand

        c_his = self.read(c_hat, grid_cells, memory)
        c_t = c_hat + s_t * c_his
        if write:
            memory.write(grid_cells, c_t.data, s_t.data, mask=step_mask)
        h_t = o_t * c_t.tanh()
        return h_t, c_t

    def project_inputs(self, inputs: np.ndarray) -> Tuple[list, list]:
        """Hoisted input projections for a whole (B, T, in) sequence.

        One ``(B·T, in) @ W`` matmul per weight (biases folded in) instead
        of one per timestep; returns per-step (B, 4d) and (B, d) tensors.
        """
        batch, steps, _ = inputs.shape
        flat = Tensor(inputs.reshape(batch * steps, -1))
        x_gates = (flat @ self.w_gates.transpose() + self.b_gates
                   ).reshape(batch, steps, 4 * self.hidden_size
                             ).transpose(1, 0, 2)
        x_cand = (flat @ self.w_cand.transpose() + self.b_cand
                  ).reshape(batch, steps, self.hidden_size).transpose(1, 0, 2)
        return unstack(x_gates), unstack(x_cand)

    def step(self, x_gates_t: Tensor, x_cand_t: Tensor,
             grid_cells: np.ndarray, h_prev: Tensor, c_prev: Tensor,
             memory: SpatialMemory, write: bool = True,
             step_mask: Optional[np.ndarray] = None) -> Tuple[Tensor, Tensor]:
        """Fused step on pre-projected inputs (see :meth:`project_inputs`).

        When ``step_mask`` is given the padded-step carry (``h``/``c`` keep
        their previous values where the mask is False) is folded into the
        fused core instead of costing two extra ``where`` tape nodes.
        """
        window = memory.gather(grid_cells)
        h_t, c_t, s_t = self.step_core(x_gates_t, x_cand_t, h_prev, c_prev,
                                       window, step_mask=step_mask)
        if write:
            memory.write(grid_cells, c_t.data, s_t, mask=step_mask)
        return h_t, c_t

    def read(self, c_hat: Tensor, grid_cells: np.ndarray,
             memory: SpatialMemory) -> Tensor:
        """Attention read (§IV-C1): scan, attend, mix, project."""
        window = Tensor(memory.gather(grid_cells))  # (B, K, d), constant
        # Attention scores: (B, K, d) @ (B, d, 1) -> (B, K).
        scores = (window @ c_hat.reshape(c_hat.shape[0], c_hat.shape[1], 1)
                  ).reshape(window.shape[0], window.shape[1])
        attn = scores.softmax(axis=-1)
        # mix = G^T A: (B, d, K) @ (B, K, 1) -> (B, d).
        mix = (window.transpose(0, 2, 1)
               @ attn.reshape(attn.shape[0], attn.shape[1], 1)
               ).reshape(c_hat.shape)
        cat = concat([c_hat, mix], axis=-1)
        return self.read_proj(cat).tanh()

    def step_core(self, x_gates_t: Tensor, x_cand_t: Tensor, h_prev: Tensor,
                  c_prev: Tensor, window: np.ndarray,
                  step_mask: Optional[np.ndarray] = None
                  ) -> Tuple[Tensor, Tensor, np.ndarray]:
        """Recurrent projections → gates → candidate → read → states, fused.

        Computes the whole recurrence core — recurrent matmuls, sigmoid
        gate slab, candidate ``tanh``, intermediate cell state, attention
        read over ``window`` and the output states — in raw numpy with a
        hand-written backward, so each timestep adds two tape nodes
        (``c_t``, ``h_t``) instead of ~20. Forward runs the exact numpy
        operations of the legacy per-step path, keeping the two
        bit-identical. ``window`` is a constant: reads do not
        backpropagate into stored history.

        ``step_mask`` (B,) folds the padded-step carry into the same two
        nodes: rows with a False mask emit ``h_prev``/``c_prev`` unchanged
        and route their gradients straight back to the previous states,
        exactly as the standalone ``where`` carry would.

        Returns ``(h_t, c_t, s_t_data)`` — the spatial-gate values are
        needed by the caller for the memory write.
        """
        u_gates, u_cand = self.u_gates, self.u_cand
        weight, bias = self.read_proj.weight, self.read_proj.bias
        batch, d = c_prev.shape
        h_data = h_prev.data
        pre = x_gates_t.data + h_data @ u_gates.data.transpose()
        cand_pre = x_cand_t.data + h_data @ u_cand.data.transpose()
        slab = _sigmoid(pre)
        f_t = slab[:, 0 * d:1 * d]
        i_t = slab[:, 1 * d:2 * d]
        s_t = slab[:, 2 * d:3 * d]
        o_t = slab[:, 3 * d:4 * d]
        cand = np.tanh(cand_pre)
        c_hat = f_t * c_prev.data + i_t * cand

        scores = (window @ c_hat.reshape(batch, d, 1)
                  ).reshape(batch, window.shape[1])
        shifted = scores - scores.max(axis=-1, keepdims=True)
        e = np.exp(shifted)
        attn = e / e.sum(axis=-1, keepdims=True)
        mix = (window.transpose(0, 2, 1)
               @ attn.reshape(batch, -1, 1)).reshape(batch, d)
        cat = np.concatenate([c_hat, mix], axis=-1)
        c_his = np.tanh(cat @ weight.data.transpose() + bias.data)
        c_t_data = c_hat + s_t * c_his
        tanh_ct = np.tanh(c_t_data)
        h_t_data = o_t * tanh_ct
        if step_mask is not None:
            carry = ~np.asarray(step_mask, dtype=bool)[:, None]
            c_t_data = np.where(carry, c_prev.data, c_t_data)
            h_t_data = np.where(carry, h_prev.data, h_t_data)
        else:
            carry = None

        def backward_c(grad: np.ndarray) -> None:
            if carry is not None:
                if c_prev.requires_grad:
                    c_prev._accumulate(np.where(carry, grad, 0.0))
                grad = np.where(carry, 0.0, grad)
            g_s = grad * c_his * s_t * (1.0 - s_t)
            g_read = grad * s_t * (1.0 - c_his * c_his)
            if bias.requires_grad:
                bias._accumulate(g_read.sum(axis=0))
            if weight.requires_grad:
                weight._accumulate(g_read.transpose() @ cat)
            g_cat = g_read @ weight.data
            g_mix = g_cat[:, d:]
            g_attn = (window @ g_mix.reshape(batch, d, 1)
                      ).reshape(batch, -1)
            dot = (g_attn * attn).sum(axis=-1, keepdims=True)
            g_scores = attn * (g_attn - dot)
            g_c_hat = grad + g_cat[:, :d] + (
                window.transpose(0, 2, 1)
                @ g_scores.reshape(batch, -1, 1)).reshape(batch, d)
            # (B, 3d) gradient of the [f, i, s] block of ``pre``.
            g_fis = np.concatenate(
                [g_c_hat * c_prev.data * f_t * (1.0 - f_t),
                 g_c_hat * cand * i_t * (1.0 - i_t),
                 g_s], axis=-1)
            g_cand_pre = g_c_hat * i_t * (1.0 - cand * cand)
            if x_gates_t.requires_grad:
                x_gates_t._accumulate_into((Ellipsis, slice(0, 3 * d)), g_fis)
            if x_cand_t.requires_grad:
                x_cand_t._accumulate(g_cand_pre)
            if h_prev.requires_grad:
                h_prev._accumulate(g_fis @ u_gates.data[:3 * d]
                                   + g_cand_pre @ u_cand.data)
            if u_gates.requires_grad:
                u_gates._accumulate_into(slice(0, 3 * d),
                                         g_fis.transpose() @ h_data)
            if u_cand.requires_grad:
                u_cand._accumulate(g_cand_pre.transpose() @ h_data)
            if c_prev.requires_grad:
                c_prev._accumulate(g_c_hat * f_t)

        c_t = Tensor._make(
            c_t_data,
            (x_gates_t, x_cand_t, h_prev, c_prev, u_gates, u_cand,
             weight, bias),
            backward_c)

        def backward_h(grad: np.ndarray) -> None:
            if carry is not None:
                if h_prev.requires_grad:
                    h_prev._accumulate(np.where(carry, grad, 0.0))
                grad = np.where(carry, 0.0, grad)
            g_o = grad * tanh_ct * o_t * (1.0 - o_t)
            if x_gates_t.requires_grad:
                x_gates_t._accumulate_into((Ellipsis, slice(3 * d, 4 * d)),
                                           g_o)
            if h_prev.requires_grad:
                h_prev._accumulate(g_o @ u_gates.data[3 * d:])
            if u_gates.requires_grad:
                u_gates._accumulate_into(slice(3 * d, 4 * d),
                                         g_o.transpose() @ h_data)
            if c_t.requires_grad:
                c_t._accumulate(grad * o_t * (1.0 - tanh_ct * tanh_ct))

        h_t = Tensor._make(h_t_data, (x_gates_t, h_prev, u_gates, c_t),
                           backward_h)
        return h_t, c_t, s_t


class SAMLSTM(Module):
    """Run a :class:`SAMLSTMCell` over padded (coords, grid-cells) sequences.

    ``forward`` consumes coordinates (B, T, input_size), integer grid cells
    (B, T, 2) and a boolean mask (B, T). Memory writes happen only when
    ``update_memory`` is True (training); inference is read-only so that
    embeddings are deterministic.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator, fused: bool = True):
        self.hidden_size = hidden_size
        self.cell = SAMLSTMCell(input_size, hidden_size, rng)
        self.fused = fused

    def forward(self, inputs: np.ndarray, grid_cells: np.ndarray,
                mask: np.ndarray, memory: SpatialMemory,
                update_memory: bool = False, return_sequence: bool = False):
        inputs = np.asarray(inputs, dtype=np.float64)
        grid_cells = np.asarray(grid_cells, dtype=int)
        mask = np.asarray(mask, dtype=bool)
        batch, steps, _ = inputs.shape
        h = Tensor(np.zeros((batch, self.hidden_size), dtype=np.float64))
        c = Tensor(np.zeros((batch, self.hidden_size), dtype=np.float64))
        if self.fused:
            x_gates, x_cand = self.cell.project_inputs(inputs)
        outputs = []
        for t in range(steps):
            step_mask = mask[:, t]
            if self.fused:
                # The padded-step carry is folded into the fused core.
                h, c = self.cell.step(
                    x_gates[t], x_cand[t], grid_cells[:, t, :], h, c, memory,
                    write=update_memory, step_mask=step_mask)
            else:
                h_new, c_new = self.cell(
                    Tensor(inputs[:, t, :]), grid_cells[:, t, :], h, c,
                    memory, write=update_memory, step_mask=step_mask)
                h = where(step_mask[:, None], h_new, h)
                c = where(step_mask[:, None], c_new, c)
            if return_sequence:
                outputs.append(h)
        if return_sequence:
            return h, outputs
        return h
