"""Evaluation: search-quality metrics, kNN primitives, timing harness."""

from .metrics import (distortion, hitting_ratio, mean_over_queries, recall_at,
                      refined_top)
from .knn import (brute_force_knn, embedding_distance_matrix, embedding_knn,
                  rerank_with_exact, sketch_knn, top_k_from_distances)
from .protocol import SearchQuality, evaluate_ranking, rankings_from_matrix
from .timing import Timing, measure, speedup

__all__ = [
    "distortion", "hitting_ratio", "mean_over_queries", "recall_at",
    "refined_top",
    "brute_force_knn", "embedding_distance_matrix", "embedding_knn",
    "rerank_with_exact", "sketch_knn", "top_k_from_distances",
    "SearchQuality", "evaluate_ranking", "rankings_from_matrix",
    "Timing", "measure", "speedup",
]
