"""Efficiency experiments: online search time (Tables IV & V) and offline
training/embedding time (Table VI)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..datasets import Grid, PortoConfig, Trajectory, generate_porto
from ..eval import (Timing, embedding_knn, measure as time_call,
                    rerank_with_exact, top_k_from_distances)
from ..index import (GridInvertedIndex, RTree, search_embedding, search_exact)
from ..measures import get_measure
from .common import ap_comparator, train_variant
from .workloads import ExperimentScale, Workload, build_workload, current_scale


@dataclass(frozen=True)
class SearchTiming:
    """Per-query search cost of one method at one database size."""

    method: str
    db_size: int
    seconds_per_query: float


def _porto_database(size: int, scale: ExperimentScale,
                    seed: int = 5) -> List[Trajectory]:
    ds = generate_porto(
        PortoConfig(num_trajectories=size, min_points=10,
                    max_points=scale.max_points), seed=seed)
    return list(ds)


def db_sizes_for_scale(scale: Optional[ExperimentScale] = None) -> List[int]:
    """Scaled stand-ins for the paper's 1k/5k/10k/200k sub-corpora."""
    scale = scale or current_scale()
    return {"smoke": [50, 100],
            "small": [100, 300, 1000],
            "medium": [200, 1000, 3000]}[scale.name]


def run_search_time(measure_name: str, workload: Workload,
                    db_sizes: Optional[Sequence[int]] = None,
                    num_queries: int = 5, k: int = 50
                    ) -> List[SearchTiming]:
    """Table IV row group for one measure: BruteForce / AP / NeuTraj.

    NeuTraj and AP follow the paper's protocol: database sketches and
    embeddings are precomputed; the per-query cost covers query
    sketch/embedding, the linear scan, and exact re-ranking of the top-k.
    ERP has no AP row (dash in the paper).
    """
    scale = workload.scale
    db_sizes = list(db_sizes or db_sizes_for_scale(scale))
    measure = get_measure(measure_name)
    model = train_variant("neutraj", workload, measure_name)
    plain = train_variant("nt_no_sam", workload, measure_name)
    has_ap = measure_name != "erp"
    approx = ap_comparator(measure_name, workload) if has_ap else None

    results: List[SearchTiming] = []
    for size in db_sizes:
        database = _porto_database(size, scale)
        queries = database[:num_queries]

        def brute():
            for q in queries:
                distances = np.array([measure(q, t) for t in database])
                top_k_from_distances(distances, k)

        timing = time_call(brute)
        results.append(SearchTiming("BruteForce", size,
                                    timing.seconds / num_queries))

        if has_ap:
            sketches = [approx.preprocess(t.points) for t in database]

            def ap_search():
                for q in queries:
                    qs = approx.preprocess(q.points)
                    distances = np.array([
                        approx.signature_distance(qs, s) for s in sketches])
                    cand = top_k_from_distances(distances, k)
                    rerank_with_exact(q, database, cand, measure, k)

            timing = time_call(ap_search)
            results.append(SearchTiming("AP", size,
                                        timing.seconds / num_queries))

        for name, m in (("NT-No-SAM", plain), ("NeuTraj", model)):
            db_emb = m.embed(database)

            def neural_search(m=m, db_emb=db_emb):
                for q in queries:
                    q_emb = m.embed([q])[0]
                    cand = embedding_knn(q_emb, db_emb, k)
                    rerank_with_exact(q, database, cand, measure, k)

            timing = time_call(neural_search)
            results.append(SearchTiming(name, size,
                                        timing.seconds / num_queries))
    return results


@dataclass(frozen=True)
class IndexedTiming:
    """Table V cell: per-query time plus candidate count under an index."""

    index_name: str
    method: str
    db_size: int
    seconds_per_query: float
    involved: float  # mean candidate count


def run_indexed_search_time(workload: Workload,
                            db_sizes: Optional[Sequence[int]] = None,
                            num_queries: int = 5, k: int = 50
                            ) -> List[IndexedTiming]:
    """Table V: Fréchet search under an R-tree and a grid inverted index."""
    scale = workload.scale
    db_sizes = list(db_sizes or db_sizes_for_scale(scale))
    measure = get_measure("frechet")
    model = train_variant("neutraj", workload, "frechet")
    approx = ap_comparator("frechet", workload)

    results: List[IndexedTiming] = []
    for size in db_sizes:
        database = _porto_database(size, scale)
        queries = database[:num_queries]
        margin = 2.0 * scale.cell_size
        indexes = {
            "rtree": RTree.from_trajectories(database),
            "grid": GridInvertedIndex.from_trajectories(
                database, Grid(workload.bbox, scale.cell_size * 4)),
        }
        for index_name, index in indexes.items():
            involved: List[int] = []

            def brute():
                for q in queries:
                    r = search_exact(index, q, database, measure, k,
                                     margin=margin)
                    involved.append(r.num_candidates)

            timing = time_call(brute)
            results.append(IndexedTiming(index_name, "BruteForce", size,
                                         timing.seconds / num_queries,
                                         float(np.mean(involved))))

            sketches = [approx.preprocess(t.points) for t in database]

            def ap_search():
                from ..index import search_approx
                for q in queries:
                    search_approx(index, q, database, approx, sketches, k,
                                  margin=margin)

            timing = time_call(ap_search)
            results.append(IndexedTiming(index_name, "AP", size,
                                         timing.seconds / num_queries,
                                         float(np.mean(involved))))

            db_emb = model.embed(database)

            def neural():
                for q in queries:
                    q_emb = model.embed([q])[0]
                    search_embedding(index, q, q_emb, db_emb, k,
                                     margin=margin)

            timing = time_call(neural)
            results.append(IndexedTiming(index_name, "NeuTraj", size,
                                         timing.seconds / num_queries,
                                         float(np.mean(involved))))
    return results


@dataclass(frozen=True)
class TrainingCost:
    """Table VI row: offline training and bulk-embedding cost."""

    method: str
    seconds_per_epoch: float
    epochs_to_converge: int
    total_seconds: float
    embed_seconds: float
    embed_count: int


def run_training_time(workload: Workload, measure_name: str = "frechet",
                      embed_count: Optional[int] = None
                      ) -> List[TrainingCost]:
    """Table VI: per-epoch/total training time + bulk embedding time."""
    scale = workload.scale
    embed_count = embed_count or 4 * len(workload.database)
    bulk = _porto_database(embed_count, scale, seed=9)
    rows: List[TrainingCost] = []
    for variant in ("siamese", "neutraj", "nt_no_sam", "nt_no_ws"):
        model = train_variant(variant, workload, measure_name)
        history = model.history
        timing = time_call(lambda: model.embed(bulk, batch_size=256))
        rows.append(TrainingCost(
            method=variant,
            seconds_per_epoch=history.total_seconds / history.num_epochs,
            epochs_to_converge=history.epochs_to_converge(rel_tol=0.05),
            total_seconds=history.total_seconds,
            embed_seconds=timing.seconds,
            embed_count=embed_count,
        ))
    return rows
