"""Shared machinery for the per-table/figure experiment runners.

Provides the four trained model variants (NeuTraj, NT-No-SAM, NT-No-WS,
Siamese), the AP comparator per measure, and helpers producing the ranked
candidate lists each evaluation consumes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..approx import AnchorHausdorff, LSHCurveDistance
from ..approx.base import ApproximateMeasure
from ..core import NeuTraj, NeuTrajConfig, SiameseTraj
from ..core.model import MetricModel
from ..dataquality import SanitizeConfig, sanitize_dataset
from ..exceptions import CorruptArtifactError
from ..eval import rankings_from_matrix, top_k_from_distances
from .workloads import Workload

VARIANTS = ("neutraj", "nt_no_sam", "nt_no_ws", "siamese")


def make_model(variant: str, config: NeuTrajConfig) -> MetricModel:
    """Instantiate a model variant from a base NeuTraj config."""
    if variant == "neutraj":
        return NeuTraj(config)
    if variant == "nt_no_sam":
        return NeuTraj(config.ablated(use_sam=False))
    if variant == "nt_no_ws":
        return NeuTraj(config.ablated(use_weighted_sampling=False))
    if variant == "siamese":
        return SiameseTraj(config)
    raise KeyError(f"unknown variant {variant!r}; choose from {VARIANTS}")


def train_variant(variant: str, workload: Workload, measure: str,
                  config: Optional[NeuTrajConfig] = None,
                  cache: bool = True, num_seeds: Optional[int] = None,
                  sanitize: Optional[SanitizeConfig] = None
                  ) -> MetricModel:
    """Train a variant on the workload's seeds.

    The seed distance matrix comes from the workload cache; trained models
    (weights + training history) are additionally cached on disk keyed by
    (variant, workload, config, seed count, sanitize config) so repeated
    benchmark invocations skip identical trainings. ``num_seeds`` trains
    on a prefix of the seed pool (the Fig. 6 sweep).

    ``sanitize`` runs the seed pool through
    :func:`repro.dataquality.sanitize_dataset` before training:
    unrepairable seeds are dropped and, whenever any seed changed, the
    cached distance matrix is recomputed on the cleaned pool (cached
    distances describe the dirty trajectories, not the repaired ones).
    """
    config = config or workload.scale.neutraj_config(measure)
    path = _model_cache_path(variant, workload, measure, config, num_seeds,
                             sanitize)
    cls = SiameseTraj if variant == "siamese" else NeuTraj
    if cache and path is not None and path.exists():
        try:
            return cls.load(path)
        except (CorruptArtifactError, OSError):
            path.unlink(missing_ok=True)  # corrupt/partial cache entry
    seeds = workload.seeds
    matrix = workload.seed_distances(measure)
    if num_seeds is not None:
        seeds = seeds[:num_seeds]
        matrix = matrix[:num_seeds, :num_seeds]
    if sanitize is not None:
        cleaned, report = sanitize_dataset(seeds, sanitize)
        seeds = list(cleaned)
        if report.modified:
            from ..measures import pairwise_distances
            from .workloads import _measure_for
            matrix = pairwise_distances(seeds,
                                        _measure_for(measure, workload.bbox))
    model = make_model(variant, config)
    model.fit(seeds, distance_matrix=matrix)
    if cache and path is not None:
        path.parent.mkdir(parents=True, exist_ok=True)
        model.save(path)
    return model


def _model_cache_path(variant: str, workload: Workload, measure: str,
                      config: NeuTrajConfig,
                      num_seeds: Optional[int] = None,
                      sanitize: Optional[SanitizeConfig] = None):
    if workload._cache_dir is None:
        return None
    import hashlib
    blob = repr(sorted(config.__dict__.items())) + f"|seeds={num_seeds}"
    if sanitize is not None:
        blob += "|sanitize=" + repr(sorted(sanitize.__dict__.items()))
    digest = hashlib.sha1(blob.encode()).hexdigest()[:12]
    name = (f"model-{variant}-{workload.dataset_name}-"
            f"{workload.scale.name}-{measure}-{digest}.npz")
    return workload._cache_dir / name


def ap_comparator(measure: str, workload: Workload) -> ApproximateMeasure:
    """The paper's AP baseline for a measure (ERP has none).

    Fréchet and DTW use the *literal* [12] algorithm — LSH collision-ladder
    distance estimates — because that is what the paper compared against.
    The repository also ships stronger approximators (GridFrechet, GridDTW,
    FastDTW) which outperform the LSH by a wide margin at our scale; see
    DESIGN.md "Divergences".
    """
    if measure in ("frechet", "dtw"):
        return LSHCurveDistance(base_resolution=workload.scale.cell_size,
                                levels=8, num_offsets=4, seed=0,
                                target=measure)
    if measure == "hausdorff":
        return AnchorHausdorff(workload.bbox, num_anchors=32, seed=0)
    raise KeyError(f"no AP baseline for measure {measure!r}")


def quality_ks(workload: Workload) -> tuple:
    """(k_small, k_large) clamped to the database size.

    The paper uses (10, 50); tiny smoke/test workloads clamp down so the
    protocol stays well-defined.
    """
    n = len(workload.database)
    k_large = min(50, n)
    k_small = min(10, k_large)
    return k_small, k_large


def evaluate_quality(workload: Workload, measure: str,
                     rankings: Sequence) -> "SearchQuality":
    """Score rankings against the workload's ground truth with clamped ks."""
    from ..eval import evaluate_ranking
    k_small, k_large = quality_ks(workload)
    return evaluate_ranking(workload.ground_truth(measure), rankings,
                            k_small=k_small, k_large=k_large)


def model_rankings(model: MetricModel, workload: Workload,
                   k: int = 50) -> List[np.ndarray]:
    """Top-k database rankings per query via embedding search."""
    database_emb = model.embed(workload.database)
    return [model.top_k(q, database_emb, k) for q in workload.queries]


def ap_rankings(approx: ApproximateMeasure, workload: Workload,
                k: int = 50) -> List[np.ndarray]:
    """Top-k rankings per query via the AP sketch distance."""
    sketches = [approx.preprocess(t.points) for t in workload.database]
    rankings = []
    for query in workload.queries:
        query_sketch = approx.preprocess(query.points)
        distances = np.array([
            approx.signature_distance(query_sketch, sketch)
            for sketch in sketches
        ])
        rankings.append(top_k_from_distances(distances, k))
    return rankings


def exact_rankings(workload: Workload, measure: str,
                   k: int = 50) -> List[np.ndarray]:
    """Ground-truth rankings from the cached exact cross-distances."""
    return rankings_from_matrix(workload.ground_truth(measure), k=k)


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[str]]) -> str:
    """Plain-text table renderer used by every benchmark's output."""
    widths = [max(len(str(headers[i])),
                  max((len(str(r[i])) for r in rows), default=0))
              for i in range(len(headers))]
    def fmt(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))
    lines = [title, fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)
