"""Tests for the LRU result cache and the content-hash keys."""

import numpy as np
import pytest

from repro.serving import LRUCache, result_key, trajectory_fingerprint


def test_put_get_roundtrip():
    cache = LRUCache(capacity=4)
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert cache.get("missing") is None
    assert cache.get("missing", default="x") == "x"
    assert len(cache) == 1


def test_lru_eviction_order():
    cache = LRUCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")          # refresh a; b is now least recent
    cache.put("c", 3)       # evicts b
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert cache.evictions == 1


def test_hit_miss_accounting():
    cache = LRUCache(capacity=4)
    cache.put("a", 1)
    cache.get("a")
    cache.get("a")
    cache.get("nope")
    stats = cache.stats()
    assert stats["hits"] == 2
    assert stats["misses"] == 1
    assert stats["hit_rate"] == pytest.approx(2 / 3)


def test_capacity_zero_disables_caching():
    cache = LRUCache(capacity=0)
    cache.put("a", 1)
    assert cache.get("a") is None
    assert len(cache) == 0


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        LRUCache(capacity=-1)


def test_clear():
    cache = LRUCache(capacity=8)
    for i in range(5):
        cache.put(i, i)
    assert cache.clear() == 5
    assert len(cache) == 0


def test_fingerprint_is_content_based():
    a = np.array([[0.0, 1.0], [2.0, 3.0]])
    b = np.array([[0.0, 1.0], [2.0, 3.0]])  # equal content, distinct object
    assert trajectory_fingerprint(a) == trajectory_fingerprint(b)
    # Non-contiguous views hash the same as their contiguous copy.
    wide = np.arange(12, dtype=np.float64).reshape(2, 6)
    view = wide[:, ::3]
    assert trajectory_fingerprint(view) == trajectory_fingerprint(view.copy())


def test_fingerprint_sensitive_to_content_shape_dtype():
    a = np.array([[0.0, 1.0], [2.0, 3.0]])
    assert trajectory_fingerprint(a) != trajectory_fingerprint(a + 1)
    assert trajectory_fingerprint(a) != trajectory_fingerprint(a.reshape(4, 1))
    assert (trajectory_fingerprint(a)
            != trajectory_fingerprint(a.astype(np.float32)))


def test_result_key_components():
    points = np.array([[0.0, 0.0], [1.0, 1.0]])
    base = result_key(points, 5, "dtw", 0)
    assert base == result_key(points.copy(), 5, "dtw", 0)
    assert base != result_key(points, 6, "dtw", 0)       # different k
    assert base != result_key(points, 5, "frechet", 0)   # different measure
    assert base != result_key(points, 5, "dtw", 1)       # store mutated
