"""Tests for the incremental EmbeddingStore."""

import numpy as np
import pytest

from repro import NeuTraj, NeuTrajConfig, PortoConfig, generate_porto
from repro.core.store import EmbeddingStore
from repro.exceptions import NotFittedError


@pytest.fixture(scope="module")
def world():
    ds = generate_porto(PortoConfig(num_trajectories=40, min_points=8,
                                    max_points=14), seed=31)
    seeds = list(ds)[:20]
    rest = list(ds)[20:]
    model = NeuTraj(NeuTrajConfig(measure="hausdorff", embedding_dim=8,
                                  epochs=2, sampling_num=3, batch_anchors=8,
                                  cell_size=500.0, seed=0))
    model.fit(seeds)
    return model, rest


def test_requires_fitted_model():
    with pytest.raises(NotFittedError):
        EmbeddingStore(NeuTraj(NeuTrajConfig()))


def test_add_assigns_sequential_ids(world):
    model, items = world
    store = EmbeddingStore(model)
    first = store.add(items[:5])
    second = store.add(items[5:8])
    assert first == [0, 1, 2, 3, 4]
    assert second == [5, 6, 7]
    assert len(store) == 8


def test_add_empty_is_noop(world):
    model, _ = world
    store = EmbeddingStore(model)
    assert store.add([]) == []
    assert len(store) == 0


def test_query_returns_inserted_item_first(world):
    model, items = world
    store = EmbeddingStore(model)
    ids = store.add(items[:10])
    found, distances = store.query(items[3], k=3)
    assert found[0] == ids[3]
    assert distances[0] == pytest.approx(0.0, abs=1e-9)
    assert np.all(np.diff(distances) >= -1e-12)


def test_query_matches_model_topk(world):
    model, items = world
    store = EmbeddingStore(model)
    store.add(items)
    emb = model.embed(items)
    expected = model.top_k(items[0], emb, 5)
    found, _ = store.query(items[0], k=5)
    np.testing.assert_array_equal(found, expected)


def test_query_empty_store_raises(world):
    model, items = world
    store = EmbeddingStore(model)
    with pytest.raises(NotFittedError):
        store.query(items[0], k=3)


def test_query_clamps_k(world):
    model, items = world
    store = EmbeddingStore(model)
    store.add(items[:3])
    found, _ = store.query(items[0], k=100)
    assert len(found) == 3


def test_remove(world):
    model, items = world
    store = EmbeddingStore(model)
    ids = store.add(items[:6])
    assert store.remove([ids[1], ids[4], 999]) == 2
    assert len(store) == 4
    found, _ = store.query(items[1], k=10)
    assert ids[1] not in found


def test_ids_continue_after_remove(world):
    model, items = world
    store = EmbeddingStore(model)
    store.add(items[:3])
    store.remove([0, 1, 2])
    new = store.add(items[3:5])
    assert new == [3, 4]


def test_query_radius(world):
    model, items = world
    store = EmbeddingStore(model)
    store.add(items[:10])
    ids, distances = store.query_radius(items[2], radius=1e-9)
    assert 2 in ids  # itself
    all_ids, _ = store.query_radius(items[2], radius=1e9)
    assert len(all_ids) == 10


def test_query_radius_rejects_negative(world):
    model, items = world
    store = EmbeddingStore(model)
    store.add(items[:3])
    with pytest.raises(ValueError):
        store.query_radius(items[0], radius=-1.0)


def test_embeddings_view_readonly(world):
    model, items = world
    store = EmbeddingStore(model)
    store.add(items[:3])
    with pytest.raises(ValueError):
        store.embeddings[0, 0] = 5.0


def test_save_load_roundtrip(world, tmp_path):
    model, items = world
    store = EmbeddingStore(model)
    store.add(items[:7])
    store.remove([2])
    path = tmp_path / "store.npz"
    store.save(path)
    loaded = EmbeddingStore.load(path, model)
    assert len(loaded) == 6
    assert loaded.ids == store.ids
    found_a, _ = store.query(items[0], k=4)
    found_b, _ = loaded.query(items[0], k=4)
    np.testing.assert_array_equal(found_a, found_b)
    # New inserts continue from the persisted id counter.
    assert loaded.add(items[7:8]) == [7]


def test_save_load_roundtrips_id_state_exactly(world, tmp_path):
    """_next_id/_ids survive save/load bit-for-bit, even after removals."""
    model, items = world
    store = EmbeddingStore(model)
    store.add(items[:5])
    store.remove([0, 4])          # holes at both ends
    path = tmp_path / "store.npz"
    store.save(path)
    loaded = EmbeddingStore.load(path, model)
    assert loaded.ids == [1, 2, 3]
    assert loaded.next_id == 5
    # Insert-after-load continues the counter; ids are never reused.
    assert loaded.add(items[5:7]) == [5, 6]
    assert len(set(loaded.ids)) == len(loaded.ids)


def test_save_load_roundtrip_empty_store(world, tmp_path):
    model, items = world
    store = EmbeddingStore(model)
    store.add(items[:2])
    store.remove([0, 1])
    path = tmp_path / "store.npz"
    store.save(path)
    loaded = EmbeddingStore.load(path, model)
    assert len(loaded) == 0
    assert loaded.next_id == 2    # counter survives an empty table
    assert loaded.add(items[2:3]) == [2]


def test_save_lands_at_exact_path(world, tmp_path):
    """Paths without a .npz suffix are honoured (np.savez would append)."""
    model, items = world
    store = EmbeddingStore(model)
    store.add(items[:2])
    path = tmp_path / "store.bin"
    store.save(path)
    assert path.exists()
    assert not path.with_suffix(".bin.npz").exists()
    loaded = EmbeddingStore.load(path, model)
    assert loaded.ids == store.ids


def test_load_legacy_file_never_reuses_ids(world, tmp_path):
    """Files without next_id (or with a stale one) floor the counter."""
    model, items = world
    store = EmbeddingStore(model)
    store.add(items[:4])
    legacy = tmp_path / "legacy.npz"
    np.savez_compressed(legacy, embeddings=store.embeddings,
                        ids=np.array(store.ids, dtype=np.int64))
    loaded = EmbeddingStore.load(legacy, model)
    assert loaded.next_id == 4
    assert loaded.add(items[4:5]) == [4]
    stale = tmp_path / "stale.npz"
    np.savez_compressed(stale, embeddings=store.embeddings,
                        ids=np.array(store.ids, dtype=np.int64),
                        next_id=np.array(1))  # lies: ids 0..3 are live
    loaded = EmbeddingStore.load(stale, model)
    assert loaded.next_id == 4


def test_load_rejects_corrupt_id_state(world, tmp_path):
    model, items = world
    store = EmbeddingStore(model)
    store.add(items[:3])
    dupes = tmp_path / "dupes.npz"
    np.savez_compressed(dupes, embeddings=store.embeddings,
                        ids=np.array([0, 1, 1], dtype=np.int64),
                        next_id=np.array(3))
    with pytest.raises(ValueError, match="duplicate"):
        EmbeddingStore.load(dupes, model)
    short = tmp_path / "short.npz"
    np.savez_compressed(short, embeddings=store.embeddings,
                        ids=np.array([0, 1], dtype=np.int64),
                        next_id=np.array(3))
    with pytest.raises(ValueError, match="mismatch"):
        EmbeddingStore.load(short, model)


def test_query_embedding_matches_query(world):
    model, items = world
    store = EmbeddingStore(model)
    store.add(items[:10])
    emb = model.embed([items[2]])[0]
    ids_a, dist_a = store.query(items[2], k=4)
    ids_b, dist_b = store.query_embedding(emb, k=4)
    np.testing.assert_array_equal(ids_a, ids_b)
    np.testing.assert_allclose(dist_a, dist_b, atol=1e-12)
    ids_c, _ = store.top_k(items[2], k=4)
    np.testing.assert_array_equal(ids_a, ids_c)


@pytest.mark.parametrize("bad_k", [0, -1, -100])
def test_query_rejects_non_positive_k(world, bad_k):
    model, items = world
    store = EmbeddingStore(model)
    store.add(items[:3])
    emb = model.embed([items[0]])[0]
    with pytest.raises(ValueError, match="k"):
        store.query(items[0], k=bad_k)
    with pytest.raises(ValueError, match="k"):
        store.query_embedding(emb, k=bad_k)
    with pytest.raises(ValueError, match="k"):
        store.top_k(items[0], k=bad_k)


@pytest.mark.parametrize("bad_k", [1.5, "3", None, True])
def test_query_rejects_non_integer_k(world, bad_k):
    model, items = world
    store = EmbeddingStore(model)
    store.add(items[:3])
    with pytest.raises(ValueError, match="k"):
        store.query(items[0], k=bad_k)


def test_query_accepts_numpy_integer_k(world):
    model, items = world
    store = EmbeddingStore(model)
    store.add(items[:5])
    found, _ = store.query(items[0], k=np.int64(3))
    assert len(found) == 3


def test_k_validated_before_empty_store_check(world):
    """A bad k is a caller bug even when the store is empty."""
    model, items = world
    store = EmbeddingStore(model)
    with pytest.raises(ValueError, match="k"):
        store.query(items[0], k=0)


def test_internal_ids_are_int64_ndarray(world):
    model, items = world
    store = EmbeddingStore(model)
    store.add(items[:4])
    assert isinstance(store._ids, np.ndarray)
    assert store._ids.dtype == np.int64
    store.remove([1, 2])
    assert store._ids.dtype == np.int64
    assert store.ids == [0, 3]         # public API stays a python list
    ids, _ = store.query(items[0], k=2)
    assert ids.dtype == np.int64


def test_query_embedding_rejects_bad_shape(world):
    model, items = world
    store = EmbeddingStore(model)
    store.add(items[:3])
    with pytest.raises(ValueError, match="shape"):
        store.query_embedding(np.zeros(3), k=2)


def test_load_rejects_dim_mismatch(world, tmp_path):
    model, items = world
    store = EmbeddingStore(model)
    store.add(items[:2])
    path = tmp_path / "store.npz"
    store.save(path)
    other = NeuTraj(NeuTrajConfig(measure="hausdorff", embedding_dim=4,
                                  epochs=1, sampling_num=3, batch_anchors=8,
                                  cell_size=500.0, seed=0))
    other.fit(items[:10])
    with pytest.raises(ValueError):
        EmbeddingStore.load(path, other)


# ------------------------------------------------- corruption injection (PR 3)

@pytest.mark.faults
@pytest.mark.parametrize("mode", ["flip", "truncate", "zero"])
def test_load_rejects_byte_corruption_with_typed_error(world, tmp_path, mode):
    """Any byte-level damage to the saved npz must surface as
    CorruptArtifactError (which is also a ValueError for old call sites),
    never as a half-loaded store or a raw numpy internal error."""
    from repro.exceptions import CorruptArtifactError
    from repro.testing import CorruptionSpec

    model, rest = world
    store = EmbeddingStore(model)
    store.add(rest[:6])
    path = tmp_path / "store.npz"
    store.save(path)
    CorruptionSpec(mode=mode, length=24).apply(path)
    with pytest.raises(CorruptArtifactError):
        EmbeddingStore.load(path, model)
    with pytest.raises(ValueError):  # backwards-compatible contract
        EmbeddingStore.load(path, model)


@pytest.mark.faults
def test_load_missing_file_is_not_corruption(world, tmp_path):
    model, _ = world
    with pytest.raises(FileNotFoundError):
        EmbeddingStore.load(tmp_path / "nope.npz", model)


# --------------------------------------------------- model-less (search-only)


def test_modelless_store_requires_dim():
    with pytest.raises(ValueError):
        EmbeddingStore(None)


def test_modelless_store_add_embeddings_and_query_embedding():
    rng = np.random.default_rng(3)
    store = EmbeddingStore(None, dim=8)
    emb = rng.standard_normal((6, 8)).astype(np.float32)
    assigned = store.add_embeddings(emb)
    assert assigned == [0, 1, 2, 3, 4, 5]
    ids, dist = store.query_embedding(emb[2], k=1)
    assert int(ids[0]) == 2
    assert dist[0] == pytest.approx(0.0, abs=1e-6)


def test_modelless_store_explicit_ids_and_next_id():
    rng = np.random.default_rng(3)
    store = EmbeddingStore(None, dim=4)
    store.add_embeddings(rng.standard_normal((2, 4)), ids=[10, 40])
    assert store.next_id == 41
    auto = store.add_embeddings(rng.standard_normal((1, 4)))
    assert auto == [41]


def test_modelless_store_rejects_trajectory_entry_points(world):
    _, items = world
    store = EmbeddingStore(None, dim=8)
    store.add_embeddings(np.zeros((1, 8)))
    with pytest.raises(NotFittedError):
        store.add(items[:1])
    with pytest.raises(NotFittedError):
        store.query(items[0], k=1)


def test_add_embeddings_validation():
    store = EmbeddingStore(None, dim=4)
    with pytest.raises(ValueError):  # wrong dim
        store.add_embeddings(np.zeros((2, 5)))
    with pytest.raises(ValueError):  # not 2-D
        store.add_embeddings(np.zeros(4))
    store.add_embeddings(np.zeros((1, 4)), ids=[7])
    with pytest.raises(ValueError):  # id already present
        store.add_embeddings(np.ones((1, 4)), ids=[7])
    with pytest.raises(ValueError):  # duplicate within batch
        store.add_embeddings(np.ones((2, 4)), ids=[8, 8])
    with pytest.raises(ValueError):  # negative id
        store.add_embeddings(np.ones((1, 4)), ids=[-2])


def test_dim_conflicts_with_model(world):
    model, _ = world
    with pytest.raises(ValueError):
        EmbeddingStore(model, dim=99)


def test_modelless_load_roundtrip(world, tmp_path):
    model, items = world
    store = EmbeddingStore(model)
    store.add(items[:5])
    store.save(tmp_path / "s.npz")
    reloaded = EmbeddingStore.load(tmp_path / "s.npz", None)
    assert reloaded.model is None
    assert len(reloaded) == 5
    ids, _ = reloaded.query_embedding(store.embeddings[3], k=1)
    assert int(ids[0]) == 3
