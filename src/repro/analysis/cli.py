"""``python -m repro lint`` / ``python -m repro analyze`` CLI entry points.

Both commands share the engine, pragma, and baseline machinery; ``lint``
runs the per-file rules, ``analyze`` the whole-program rules (lockset,
tape-shape, resource-leak). They also share one baseline file — each
command grandfathers and expires only entries belonging to its own rule
namespace, so ``lint --write-baseline`` cannot silently drop ``analyze``
debt or vice versa.

Exit codes: ``0`` clean (no non-baselined findings), ``1`` findings,
``2`` usage or I/O error. ``--json`` emits a machine-readable report;
``--write-baseline`` (re)generates the baseline from the current
findings, which both grandfathers new debt explicitly and expires stale
entries. ``lint --stale-pragmas`` audits suppressions instead: it runs
*both* engines and reports every ``# repro: disable`` pragma and every
baseline entry that no longer suppresses anything.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional, Set, Tuple

from .baseline import load_baseline, write_baseline
from .config import AnalysisConfig, default_config, relaxed_config
from .engine import (AnalysisResult, analyze_paths, analyze_program_paths)
from .rules import all_program_rules, all_rules

DEFAULT_BASELINE = "analysis-baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Project-specific static analysis (tape, dtype, "
                    "determinism, lock & exception discipline).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--relaxed", action="store_true",
                        help="use the relaxed (benchmarks) profile: "
                             "determinism and dtype rules off")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help=f"baseline file (default: {DEFAULT_BASELINE}; "
                             f"missing file = empty baseline)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file entirely")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from current findings "
                             "and exit 0")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit a JSON report instead of text")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    parser.add_argument("--stale-pragmas", action="store_true",
                        help="audit suppressions: report pragmas and "
                             "baseline entries that no longer suppress "
                             "any finding (runs both lint and analyze "
                             "rules); exit 1 if any are stale")
    return parser


def _build_analyze_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description="Whole-program analysis: interprocedural lockset "
                    "races, tape shape/dtype abstract interpretation, "
                    "resource-leak tracking.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze "
                             "(default: src)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help=f"baseline file (default: {DEFAULT_BASELINE}; "
                             f"missing file = empty baseline)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file entirely")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite this command's baseline entries "
                             "from current findings and exit 0")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit a JSON report instead of text")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered whole-program rules and exit")
    parser.add_argument("--cache", default=None, metavar="PATH",
                        help="incremental cache file: modules whose import "
                             "neighborhood is unchanged reuse their "
                             "previous findings")
    parser.add_argument("--max-seconds", type=float, default=None,
                        help="fail (exit 2) if the run exceeds this "
                             "wall-clock budget")
    return parser


def _print_report(result: AnalysisResult, as_json: bool) -> None:
    if as_json:
        payload = {
            "findings": [f.to_json() for f in result.findings],
            "grandfathered": [f.to_json() for f in result.grandfathered],
            "stale_baseline": result.stale_baseline,
            "suppressed": result.suppressed,
            "files_checked": result.files_checked,
            "cached_modules": result.cached_modules,
            "clean": result.clean,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return
    for finding in result.findings:
        print(finding.format())
    for entry in result.stale_baseline:
        print(f"stale baseline entry ({entry.get('rule')}) for "
              f"{entry.get('path')}: fixed or moved — regenerate with "
              f"--write-baseline", file=sys.stderr)
    print(result.summary(), file=sys.stderr)


def _filter_stale(result: AnalysisResult, namespace: Set[str]) -> None:
    """Keep only stale-baseline entries owned by this command's rules.

    The two commands share one baseline file; an ``analyze`` entry is not
    stale just because ``lint`` (which never runs those rules) produced
    no matching finding.
    """
    result.stale_baseline = [entry for entry in result.stale_baseline
                             if entry.get("rule") in namespace]


def _split_keep(baseline: Dict[str, Dict],
                namespace: Set[str]) -> List[Dict]:
    """Baseline entries owned by the *other* command, passed through on
    ``--write-baseline``."""
    return [entry for entry in baseline.values()
            if entry.get("rule") not in namespace]


def _stale_pragma_audit(paths: List[str], baseline: Dict[str, Dict],
                        as_json: bool) -> int:
    """Run both engines, report pragmas/baseline entries nothing needs."""
    lint_result = analyze_paths(paths, config=default_config(),
                                baseline=baseline)
    program_result = analyze_program_paths(paths, config=default_config(),
                                           baseline=baseline)
    used: Set[Tuple[str, int, bool]] = set()
    for result in (lint_result, program_result):
        for path, index in result.pragma_indexes.items():
            for entry in index.entries:
                if entry.used:
                    used.add((path, entry.source_line, entry.is_file))
    stale_pragmas: Dict[Tuple[str, int, bool], Tuple[str, "object"]] = {}
    for result in (lint_result, program_result):
        for path, entry in result.stale_pragmas():
            key = (path, entry.source_line, entry.is_file)
            if key not in used:
                stale_pragmas.setdefault(key, (path, entry))
    # a baseline entry is stale only if *neither* engine matched it
    lint_stale = {e["fingerprint"]: e for e in lint_result.stale_baseline}
    program_stale = {e["fingerprint"]: e
                     for e in program_result.stale_baseline}
    stale_entries = [entry for fp, entry in sorted(lint_stale.items())
                     if fp in program_stale]

    if as_json:
        payload = {
            "stale_pragmas": [
                {"path": path, "line": entry.source_line,
                 "pragma": entry.text}
                for path, entry in
                (stale_pragmas[k] for k in sorted(stale_pragmas))],
            "stale_baseline": stale_entries,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for key in sorted(stale_pragmas):
            path, entry = stale_pragmas[key]
            print(f"{path}:{entry.source_line}: stale pragma "
                  f"`{entry.text}` suppresses nothing")
        for entry in stale_entries:
            print(f"stale baseline entry ({entry.get('rule')}) for "
                  f"{entry.get('path')}: no current finding matches")
        print(f"{len(stale_pragmas)} stale pragma(s), "
              f"{len(stale_entries)} stale baseline entr(y/ies)",
              file=sys.stderr)
    return 1 if (stale_pragmas or stale_entries) else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, rule_cls in all_rules().items():
            print(f"{rule_id:<20} {rule_cls.description}")
        return 0

    try:
        baseline = {} if args.no_baseline else load_baseline(args.baseline)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.stale_pragmas:
        try:
            return _stale_pragma_audit(args.paths, baseline, args.as_json)
        except (FileNotFoundError, OSError) as exc:
            print(str(exc), file=sys.stderr)
            return 2

    config: AnalysisConfig = (relaxed_config() if args.relaxed
                              else default_config())
    if args.rules:
        wanted = tuple(r.strip() for r in args.rules.split(",") if r.strip())
        unknown = set(wanted) - set(all_rules())
        if unknown:
            print(f"unknown rule(s): {sorted(unknown)}", file=sys.stderr)
            return 2
        config.rules = wanted

    try:
        result = analyze_paths(args.paths, config=config, baseline=baseline)
    except (FileNotFoundError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    _filter_stale(result, set(all_rules()))

    if args.write_baseline:
        count = write_baseline(args.baseline,
                               result.findings + result.grandfathered,
                               keep=_split_keep(baseline,
                                                set(all_rules())))
        print(f"wrote {count} entr(y/ies) to {args.baseline}",
              file=sys.stderr)
        return 0

    _print_report(result, args.as_json)
    return 0 if result.clean else 1


def analyze_main(argv: Optional[List[str]] = None) -> int:
    parser = _build_analyze_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, rule_cls in all_program_rules().items():
            print(f"{rule_id:<20} {rule_cls.description}")
        return 0

    try:
        baseline = {} if args.no_baseline else load_baseline(args.baseline)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    started = time.monotonic()
    try:
        result = analyze_program_paths(args.paths, config=default_config(),
                                       baseline=baseline,
                                       cache_path=args.cache)
    except (FileNotFoundError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    elapsed = time.monotonic() - started
    _filter_stale(result, set(all_program_rules()))

    if args.write_baseline:
        count = write_baseline(args.baseline,
                               result.findings + result.grandfathered,
                               keep=_split_keep(baseline,
                                                set(all_program_rules())))
        print(f"wrote {count} entr(y/ies) to {args.baseline}",
              file=sys.stderr)
        return 0

    _print_report(result, args.as_json)
    if args.max_seconds is not None and elapsed > args.max_seconds:
        print(f"analyze took {elapsed:.1f}s, over the --max-seconds "
              f"{args.max_seconds:.1f}s budget", file=sys.stderr)
        return 2
    return 0 if result.clean else 1


if __name__ == "__main__":
    raise SystemExit(main())
