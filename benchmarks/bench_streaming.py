"""Streaming-ingest benchmark: sustained rate, freshness, crash recovery.

Three sections, each with functional hard gates (checked by
``check_bench_regression.py --only streaming``) plus loose wall-clock
numbers for trend-watching:

* **ingest** — a fault-injected Porto fleet replay (duplicates, reorder,
  drops) pushed through a :class:`StreamIngestor` with synchronous
  incremental re-embedding, so each batch is *queryable when its ack
  returns*: the per-batch ack latency distribution IS the
  point-to-queryable freshness. Hard gates: the replayed window absorbs
  every pathology (counters add up) and a reopen recovers a
  fingerprint-identical window — zero acked-point loss.
* **incremental** — the O(new points) claim: extending a long segment's
  prefix state by a small tail must beat re-encoding the whole segment
  from scratch by at least ``incremental_speedup_floor``. (The two paths
  are bit-identical — asserted, not timed.)
* **recovery** — kill/resume time: constructing an ingester over the
  ingest section's WAL (full replay + window re-encode), which is the
  restart path after a crash.

Timing comparisons against the committed ``BENCH_streaming.json`` use
the loosened durability threshold (fsync latency on shared runners).

Run with ``PYTHONPATH=src python benchmarks/bench_streaming.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_streaming.json"

CONFIG = {
    "embedding_dim": 16,
    "num_sources": 16,
    "min_points": 16,
    "max_points": 32,
    "batch_size": 16,
    "duplicate_fraction": 0.05,
    "reorder_fraction": 0.10,
    "drop_fraction": 0.02,
    "long_segment_points": 512,
    "incremental_tail_points": 16,
    "incremental_repeats": 3,
    "incremental_speedup_floor": 4.0,
    "seed": 2026,
}


def _encoder(config: dict):
    from repro.core.config import NeuTrajConfig
    from repro.core.encoder import TrajectoryEncoder
    from repro.datasets import Grid
    from repro.datasets.grid import CoordinateNormalizer

    grid = Grid((0.0, 0.0, 1000.0, 1000.0), cell_size=100.0)
    normalizer = CoordinateNormalizer(mean=[500.0, 500.0],
                                      std=[250.0, 250.0])
    cfg = NeuTrajConfig(embedding_dim=config["embedding_dim"], use_sam=True,
                        cell_size=100.0, seed=config["seed"])
    return TrajectoryEncoder(grid, normalizer, cfg,
                             np.random.default_rng(config["seed"]))


def _stream_config():
    from repro.streaming import StreamConfig, WindowConfig

    return StreamConfig(
        window=WindowConfig(lateness_s=1e6, ttl_s=1e9, reorder_buffer=32,
                            max_segment_points=64),
        sync_encode=True, admission_limit=64)


def _arrivals(config: dict):
    from repro.datasets.porto import (PortoConfig, StreamReplayConfig,
                                      generate_porto, replay_stream)

    dataset = generate_porto(
        PortoConfig(num_trajectories=config["num_sources"],
                    min_points=config["min_points"],
                    max_points=config["max_points"], extent=1000.0),
        seed=config["seed"])
    replay = StreamReplayConfig(
        duplicate_fraction=config["duplicate_fraction"],
        reorder_fraction=config["reorder_fraction"],
        drop_fraction=config["drop_fraction"])
    return replay_stream(dataset, replay, seed=config["seed"])[0]


def _ingest_section(directory: Path, config: dict) -> dict:
    from repro.streaming import StreamIngestor

    encoder = _encoder(config)
    arrivals = _arrivals(config)
    batch = config["batch_size"]
    ingestor = StreamIngestor(encoder, directory, _stream_config())

    ack_latencies = []
    started = time.perf_counter()
    accepted = 0
    for start in range(0, len(arrivals), batch):
        t0 = time.perf_counter()
        result = ingestor.ingest(arrivals[start:start + batch])
        ack_latencies.append(time.perf_counter() - t0)
        accepted += result.accepted
    elapsed = time.perf_counter() - started

    stats = ingestor.stats()
    window = stats["window"]
    counters_add_up = (window["applied"] + window["buffered"]
                       == accepted == stats["accepted_total"])
    fingerprint = ingestor._window.state_fingerprint()
    ingestor.close()

    # Zero acked loss: a reopen (pure WAL replay here) must land on the
    # same window state.
    reopened = StreamIngestor(encoder, directory, _stream_config())
    durable_ok = reopened._window.state_fingerprint() == fingerprint
    reopened.close()

    lat = np.sort(np.asarray(ack_latencies))
    return {
        "arrivals": len(arrivals),
        "accepted": accepted,
        "points_per_s": len(arrivals) / elapsed,
        "freshness_p50_s": float(lat[len(lat) // 2]),
        "freshness_p99_s": float(lat[min(int(len(lat) * 0.99),
                                         len(lat) - 1)]),
        "counters_add_up": bool(counters_add_up),
        "durable_ok": bool(durable_ok),
    }


def _incremental_section(config: dict) -> dict:
    encoder = _encoder(config)
    rng = np.random.default_rng(config["seed"] + 1)
    n = config["long_segment_points"]
    tail = config["incremental_tail_points"]
    points = rng.uniform(50.0, 950.0, size=(n, 2))

    prefix = encoder.encode_prefix(points[:n - tail])
    incremental_s, full_s = [], []
    extended = None
    for _ in range(config["incremental_repeats"]):
        t0 = time.perf_counter()
        extended = encoder.extend_prefix(prefix, points[n - tail:])
        incremental_s.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        full = encoder.encode_prefix(points)
        full_s.append(time.perf_counter() - t0)
    bit_identical = bool(np.array_equal(extended.embedding, full.embedding))

    best_inc, best_full = min(incremental_s), min(full_s)
    return {
        "segment_points": n,
        "tail_points": tail,
        "incremental_s": best_inc,
        "full_reencode_s": best_full,
        "speedup": best_full / best_inc,
        "bit_identical": bit_identical,
    }


def _recovery_section(directory: Path, config: dict) -> dict:
    from repro.streaming import StreamIngestor

    encoder = _encoder(config)
    started = time.perf_counter()
    ingestor = StreamIngestor(encoder, directory, _stream_config())
    recovery_s = time.perf_counter() - started
    stats = ingestor.stats()
    ingestor.close()
    return {
        "recovery_s": recovery_s,
        "recovered_points": stats["recovered_points"],
        "window_points": stats["window"]["window_points"],
        "segments": stats["window"]["segments"],
    }


def run_all(config=CONFIG) -> dict:
    results = {}
    with tempfile.TemporaryDirectory(prefix="bench-streaming-") as tmp:
        wal_dir = Path(tmp) / "stream"
        results["ingest"] = _ingest_section(wal_dir, config)
        entry = results["ingest"]
        print(f"  ingest: {entry['points_per_s']:.0f} points/s acked "
              f"(freshness p99 {entry['freshness_p99_s'] * 1e3:.1f} ms), "
              f"durable_ok={entry['durable_ok']}")
        results["incremental"] = _incremental_section(config)
        entry = results["incremental"]
        print(f"  incremental: {entry['speedup']:.1f}x over full re-encode "
              f"({entry['tail_points']} of {entry['segment_points']} points, "
              f"bit_identical={entry['bit_identical']})")
        results["recovery"] = _recovery_section(wal_dir, config)
        entry = results["recovery"]
        print(f"  recovery: {entry['recovery_s']:.3f}s for "
              f"{entry['recovered_points']} points / "
              f"{entry['segments']} segments")
    return {
        "schema": "repro.bench_streaming.v1",
        "config": dict(config),
        "cpu_count": os.cpu_count() or 1,
        "results": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    report = run_all()
    results = report["results"]
    ok = (results["ingest"]["durable_ok"]
          and results["ingest"]["counters_add_up"]
          and results["incremental"]["bit_identical"]
          and results["incremental"]["speedup"]
          >= CONFIG["incremental_speedup_floor"])
    args.output.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {args.output}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
