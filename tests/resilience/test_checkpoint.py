"""Unit tests for the crash-safe checkpoint manager."""

import json

import numpy as np
import pytest

from repro.exceptions import CheckpointError
from repro.resilience import CHECKPOINT_SCHEMA, CheckpointManager
from repro.resilience.checkpoint import MANIFEST_NAME
from repro.testing import CorruptionSpec, corrupt_bytes

pytestmark = pytest.mark.faults


def _arrays(seed):
    rng = np.random.default_rng(seed)
    return {"w": rng.normal(size=(4, 3)), "b": rng.normal(size=3)}


def test_save_load_roundtrip_exact(tmp_path):
    manager = CheckpointManager(tmp_path / "ckpts")
    arrays = _arrays(0)
    manager.save(3, arrays, {"loss": 0.5})
    loaded = manager.load_latest()
    assert loaded.step == 3
    assert loaded.meta["loss"] == 0.5
    assert loaded.meta["schema"] == CHECKPOINT_SCHEMA
    for name, value in arrays.items():
        assert np.array_equal(loaded.arrays[name], value)


def test_latest_wins_and_pruning(tmp_path):
    manager = CheckpointManager(tmp_path / "ckpts", keep=2)
    for step in range(5):
        manager.save(step, _arrays(step), {})
    assert manager.load_latest().step == 4
    assert manager.steps() == [3, 4]
    # pruned files are really gone
    assert sorted(p.name for p in (tmp_path / "ckpts").glob("ckpt-*.npz")) \
        == ["ckpt-00000003.npz", "ckpt-00000004.npz"]


def test_keep_zero_keeps_everything(tmp_path):
    manager = CheckpointManager(tmp_path / "ckpts", keep=0)
    for step in range(4):
        manager.save(step, _arrays(step), {})
    assert manager.steps() == [0, 1, 2, 3]


def test_no_temp_files_left_behind(tmp_path):
    manager = CheckpointManager(tmp_path / "ckpts")
    manager.save(0, _arrays(0), {})
    leftovers = [p for p in (tmp_path / "ckpts").iterdir()
                 if ".tmp-" in p.name]
    assert leftovers == []


@pytest.mark.parametrize("mode", ["flip", "truncate", "zero"])
def test_corrupt_newest_falls_back_to_older(tmp_path, mode):
    manager = CheckpointManager(tmp_path / "ckpts")
    manager.save(1, _arrays(1), {"tag": "old"})
    manager.save(2, _arrays(2), {"tag": "new"})
    CorruptionSpec(mode=mode, length=32).apply(
        tmp_path / "ckpts" / "ckpt-00000002.npz")
    loaded = manager.load_latest()
    assert loaded.step == 1
    assert loaded.meta["tag"] == "old"
    assert len(manager.last_skipped) == 1
    assert "ckpt-00000002.npz" in manager.last_skipped[0]


def test_all_corrupt_means_fresh_start(tmp_path):
    manager = CheckpointManager(tmp_path / "ckpts")
    manager.save(0, _arrays(0), {})
    corrupt_bytes(tmp_path / "ckpts" / "ckpt-00000000.npz", mode="truncate",
                  offset=10)
    assert manager.load_latest() is None
    assert manager.last_skipped


def test_torn_manifest_does_not_strand_good_files(tmp_path):
    manager = CheckpointManager(tmp_path / "ckpts")
    manager.save(7, _arrays(7), {"tag": "survivor"})
    (tmp_path / "ckpts" / MANIFEST_NAME).write_text("{ torn json")
    fresh = CheckpointManager(tmp_path / "ckpts")
    loaded = fresh.load_latest()
    assert loaded is not None and loaded.step == 7


def test_manifest_sha_detects_silent_swap(tmp_path):
    """A file replaced after manifesting (same length, valid npz) is
    rejected by the hash check, not trusted."""
    manager = CheckpointManager(tmp_path / "ckpts")
    manager.save(1, _arrays(1), {})
    manager.save(2, _arrays(2), {})
    path2 = tmp_path / "ckpts" / "ckpt-00000002.npz"
    path1 = tmp_path / "ckpts" / "ckpt-00000001.npz"
    path2.write_bytes(path1.read_bytes())  # valid npz, wrong bytes
    loaded = manager.load_latest()
    assert loaded.step == 1
    assert any("sha256" in s for s in manager.last_skipped)


def test_load_step_has_no_fallback(tmp_path):
    manager = CheckpointManager(tmp_path / "ckpts")
    manager.save(5, _arrays(5), {})
    corrupt_bytes(tmp_path / "ckpts" / "ckpt-00000005.npz")
    with pytest.raises(CheckpointError):
        manager.load_step(5)
    with pytest.raises(CheckpointError, match="no checkpoint"):
        manager.load_step(99)


def test_invalid_inputs_rejected(tmp_path):
    with pytest.raises(CheckpointError):
        CheckpointManager(tmp_path, keep=-1)
    manager = CheckpointManager(tmp_path / "ckpts")
    with pytest.raises(CheckpointError):
        manager.save(-1, _arrays(0), {})
    with pytest.raises(CheckpointError, match="reserved"):
        manager.save(0, {"meta/json": np.zeros(1)}, {})


def test_unknown_schema_rejected(tmp_path):
    manager = CheckpointManager(tmp_path / "ckpts")
    path = manager.save(0, _arrays(0), {})
    # rewrite with a bogus schema but a fresh valid npz
    blob = dict(np.load(path, allow_pickle=False))
    meta = json.loads(str(blob["meta/json"]))
    meta["schema"] = "repro.checkpoint.v999"
    blob["meta/json"] = np.array(json.dumps(meta))
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **blob)
    # manifest hash now mismatches AND schema is wrong; both paths skip it
    assert manager.load_latest() is None
