"""Tests for the Siamese LSTM baseline."""

import numpy as np
import pytest

from repro import NeuTrajConfig, SiameseTraj
from repro.datasets import PortoConfig, generate_porto

CFG = NeuTrajConfig(measure="hausdorff", embedding_dim=8, epochs=2,
                    sampling_num=3, batch_anchors=8, cell_size=500.0, seed=0)


@pytest.fixture(scope="module")
def seeds():
    ds = generate_porto(PortoConfig(num_trajectories=25, min_points=8,
                                    max_points=16), seed=21)
    return list(ds)


def test_forces_plain_lstm_and_uniform_sampling():
    model = SiameseTraj(NeuTrajConfig(use_sam=True,
                                      use_weighted_sampling=True))
    assert not model.config.use_sam
    assert not model.config.use_weighted_sampling


def test_fit_and_embed(seeds):
    model = SiameseTraj(CFG)
    history = model.fit(seeds)
    assert history.num_epochs == 2
    emb = model.embed(seeds)
    assert emb.shape == (25, 8)
    assert np.all(np.isfinite(emb))


def test_loss_finite_and_decreasing_tendency(seeds):
    model = SiameseTraj(CFG.ablated(epochs=4))
    history = model.fit(seeds)
    losses = history.losses
    assert all(np.isfinite(losses))
    assert losses[-1] <= losses[0] * 2  # no divergence


def test_pairs_per_epoch_override(seeds):
    model = SiameseTraj(CFG)
    history = model.fit(seeds, pairs_per_epoch=10)
    assert history.num_epochs == 2


def test_deterministic(seeds):
    a = SiameseTraj(CFG)
    a.fit(seeds)
    b = SiameseTraj(CFG)
    b.fit(seeds)
    np.testing.assert_allclose(a.embed(seeds), b.embed(seeds))


def test_rejects_too_few_seeds(seeds):
    with pytest.raises(ValueError):
        SiameseTraj(CFG).fit(seeds[:1])


def test_shares_inference_api(seeds, tmp_path):
    model = SiameseTraj(CFG)
    model.fit(seeds)
    assert 0.0 < model.similarity(seeds[0], seeds[1]) <= 1.0
    emb = model.embed(seeds)
    top = model.top_k(seeds[2], emb, k=3)
    assert top[0] == 2
    path = tmp_path / "siamese.npz"
    model.save(path)
    loaded = SiameseTraj.load(path)
    np.testing.assert_allclose(loaded.embed(seeds), model.embed(seeds))
