"""Finding objects produced by the static-analysis rules.

A :class:`Finding` pins one rule violation to a ``file:line:col`` location.
Its :attr:`~Finding.fingerprint` hashes the rule id, the file path and the
*text* of the offending line (not its number), so baseline entries survive
unrelated edits that shift line numbers but expire when the flagged code
itself changes or disappears.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    line_text: str = ""

    @property
    def fingerprint(self) -> str:
        """Stable identity used by the baseline (rule + path + line text)."""
        digest = hashlib.sha1()
        for part in (self.rule, self.path, self.line_text.strip()):
            digest.update(part.encode("utf-8", "replace"))
            digest.update(b"\x00")
        return digest.hexdigest()

    def format(self) -> str:
        """Human-readable ``path:line:col: rule-id: message`` line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def to_json(self) -> Dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }
