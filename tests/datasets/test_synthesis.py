"""Tests for the shared trajectory-synthesis helpers."""

import numpy as np
import pytest

from repro.datasets import synthesis


class TestInterpolatePath:
    def test_endpoint_preservation(self):
        way = np.array([[0.0, 0.0], [10.0, 0.0]])
        out = synthesis.interpolate_path(way, 5)
        np.testing.assert_allclose(out[0], [0.0, 0.0])
        np.testing.assert_allclose(out[-1], [10.0, 0.0])

    def test_uniform_spacing_on_line(self):
        way = np.array([[0.0, 0.0], [9.0, 0.0]])
        out = synthesis.interpolate_path(way, 10)
        np.testing.assert_allclose(np.diff(out[:, 0]), 1.0)

    def test_count(self):
        way = np.array([[0.0, 0.0], [1.0, 2.0], [5.0, 5.0]])
        assert len(synthesis.interpolate_path(way, 17)) == 17

    def test_degenerate_zero_length(self):
        way = np.array([[1.0, 1.0], [1.0, 1.0]])
        out = synthesis.interpolate_path(way, 4)
        assert len(out) == 4
        np.testing.assert_allclose(out, 1.0)

    def test_rejects_single_waypoint(self):
        with pytest.raises(ValueError):
            synthesis.interpolate_path(np.array([[0.0, 0.0]]), 5)

    def test_rejects_single_output_point(self):
        with pytest.raises(ValueError):
            synthesis.interpolate_path(np.zeros((2, 2)), 1)


class TestJitter:
    def test_zero_noise_is_copy(self, rng):
        pts = rng.normal(size=(5, 2))
        out = synthesis.jitter(pts, 0.0, rng)
        np.testing.assert_array_equal(out, pts)
        assert out is not pts

    def test_noise_scale(self, rng):
        pts = np.zeros((10000, 2))
        out = synthesis.jitter(pts, 3.0, rng)
        assert out.std() == pytest.approx(3.0, rel=0.05)


class TestSmoothing:
    def test_chaikin_keeps_endpoints(self, rng):
        way = rng.normal(size=(5, 2))
        out = synthesis.smooth_polyline(way, passes=3)
        np.testing.assert_allclose(out[0], way[0])
        np.testing.assert_allclose(out[-1], way[-1])

    def test_chaikin_grows_points(self, rng):
        way = rng.normal(size=(5, 2))
        assert len(synthesis.smooth_polyline(way, passes=2)) > len(way)

    def test_short_polyline_passthrough(self):
        way = np.array([[0.0, 0.0], [1.0, 1.0]])
        np.testing.assert_allclose(synthesis.smooth_polyline(way), way)


class TestTrimAndWaypoints:
    def test_trim_bounds(self, rng):
        pts = np.arange(40.0).reshape(20, 2)
        out = synthesis.trim_route(pts, rng, max_trim_frac=0.3)
        assert 2 <= len(out) <= 20

    def test_random_waypoints_inside_bbox(self, rng):
        pts = synthesis.random_waypoints((10.0, 20.0, 30.0, 40.0), 100, rng)
        assert pts[:, 0].min() >= 10.0 and pts[:, 0].max() <= 30.0
        assert pts[:, 1].min() >= 20.0 and pts[:, 1].max() <= 40.0
