"""Unit tests for the four exact measures against hand-computed values and
naive reference implementations."""

import numpy as np
import pytest

from repro.measures import (DTWDistance, ERPDistance, FrechetDistance,
                            HausdorffDistance, available_measures, get_measure,
                            point_distances)

LINE = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
SHIFTED = np.array([[0.0, 1.0], [1.0, 1.0], [2.0, 1.0]])


def naive_dtw(a, b):
    n, m = len(a), len(b)
    table = np.full((n + 1, m + 1), np.inf)
    table[0, 0] = 0.0
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            d = np.linalg.norm(a[i - 1] - b[j - 1])
            table[i, j] = d + min(table[i - 1, j], table[i, j - 1],
                                  table[i - 1, j - 1])
    return table[n, m]


def naive_frechet(a, b):
    n, m = len(a), len(b)
    memo = {}

    def rec(i, j):
        if (i, j) in memo:
            return memo[(i, j)]
        d = np.linalg.norm(a[i] - b[j])
        if i == 0 and j == 0:
            out = d
        elif i == 0:
            out = max(rec(0, j - 1), d)
        elif j == 0:
            out = max(rec(i - 1, 0), d)
        else:
            out = max(min(rec(i - 1, j), rec(i, j - 1), rec(i - 1, j - 1)), d)
        memo[(i, j)] = out
        return out

    return rec(n - 1, m - 1)


def naive_erp(a, b, gap):
    n, m = len(a), len(b)
    table = np.full((n + 1, m + 1), np.inf)
    table[0, 0] = 0.0
    for i in range(1, n + 1):
        table[i, 0] = table[i - 1, 0] + np.linalg.norm(a[i - 1] - gap)
    for j in range(1, m + 1):
        table[0, j] = table[0, j - 1] + np.linalg.norm(b[j - 1] - gap)
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            table[i, j] = min(
                table[i - 1, j - 1] + np.linalg.norm(a[i - 1] - b[j - 1]),
                table[i - 1, j] + np.linalg.norm(a[i - 1] - gap),
                table[i, j - 1] + np.linalg.norm(b[j - 1] - gap))
    return table[n, m]


class TestRegistry:
    def test_available(self):
        assert available_measures() == ["dtw", "edr", "erp", "frechet",
                                        "hausdorff", "lcss", "sspd"]

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            get_measure("nope")

    def test_metric_flags(self):
        assert not get_measure("dtw").is_metric
        assert get_measure("frechet").is_metric
        assert get_measure("hausdorff").is_metric
        assert get_measure("erp").is_metric

    def test_callable_accepts_trajectory(self, tiny_trajectories):
        measure = get_measure("hausdorff")
        assert measure(tiny_trajectories[0], tiny_trajectories[1]) == 1.0


class TestPointDistances:
    def test_known(self):
        d = point_distances(np.array([[0.0, 0.0]]), np.array([[3.0, 4.0]]))
        assert d[0, 0] == pytest.approx(5.0)

    def test_shape(self):
        d = point_distances(np.zeros((3, 2)), np.zeros((5, 2)))
        assert d.shape == (3, 5)


class TestDTW:
    def test_parallel_lines(self):
        assert DTWDistance().distance(LINE, SHIFTED) == pytest.approx(3.0)

    def test_identical_is_zero(self):
        assert DTWDistance().distance(LINE, LINE) == 0.0

    def test_matches_naive(self, rng):
        dtw = DTWDistance()
        for _ in range(10):
            a = rng.normal(size=(rng.integers(2, 12), 2))
            b = rng.normal(size=(rng.integers(2, 12), 2))
            assert dtw.distance(a, b) == pytest.approx(naive_dtw(a, b))

    def test_different_lengths(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 0.0], [0.5, 0.0], [1.0, 0.0]])
        # Perfect warp alignment: 0 + 0.5 + 0 = 0.5.
        assert DTWDistance().distance(a, b) == pytest.approx(0.5)

    def test_window_constrains(self, rng):
        a = rng.normal(size=(20, 2))
        b = rng.normal(size=(20, 2))
        unconstrained = DTWDistance().distance(a, b)
        constrained = DTWDistance(window=1).distance(a, b)
        assert constrained >= unconstrained - 1e-12

    def test_window_rejects_negative(self):
        with pytest.raises(ValueError):
            DTWDistance(window=-1)

    def test_single_points_rejected(self):
        # Sub-segment inputs are degenerate everywhere; see
        # tests/measures/test_degenerate.py for the full matrix.
        from repro.exceptions import InvalidTrajectoryError
        a = np.array([[0.0, 0.0]])
        b = np.array([[3.0, 4.0]])
        with pytest.raises(InvalidTrajectoryError):
            DTWDistance().distance(a, b)


class TestFrechet:
    def test_parallel_lines(self):
        assert FrechetDistance().distance(LINE, SHIFTED) == pytest.approx(1.0)

    def test_identical_is_zero(self):
        assert FrechetDistance().distance(LINE, LINE) == 0.0

    def test_matches_naive(self, rng):
        frechet = FrechetDistance()
        for _ in range(10):
            a = rng.normal(size=(rng.integers(2, 12), 2))
            b = rng.normal(size=(rng.integers(2, 12), 2))
            assert frechet.distance(a, b) == pytest.approx(naive_frechet(a, b))

    def test_at_least_endpoint_distances(self, rng):
        """Fréchet >= max(d(a0,b0), d(aN,bM)) — endpoints must pair up."""
        frechet = FrechetDistance()
        a = rng.normal(size=(8, 2))
        b = rng.normal(size=(6, 2))
        lower = max(np.linalg.norm(a[0] - b[0]), np.linalg.norm(a[-1] - b[-1]))
        assert frechet.distance(a, b) >= lower - 1e-12

    def test_reversal_usually_increases(self):
        a = np.array([[0.0, 0.0], [5.0, 0.0]])
        assert (FrechetDistance().distance(a, a[::-1].copy())
                > FrechetDistance().distance(a, a))


class TestHausdorff:
    def test_parallel_lines(self):
        assert HausdorffDistance().distance(LINE, SHIFTED) == pytest.approx(1.0)

    def test_order_invariant(self, rng):
        """Hausdorff treats trajectories as point sets."""
        h = HausdorffDistance()
        a = rng.normal(size=(10, 2))
        b = rng.normal(size=(8, 2))
        shuffled = a[rng.permutation(10)]
        assert h.distance(a, b) == pytest.approx(h.distance(shuffled, b))

    def test_directed_le_symmetric(self, rng):
        h = HausdorffDistance()
        a = rng.normal(size=(7, 2))
        b = rng.normal(size=(9, 2))
        assert h.directed(a, b) <= h.distance(a, b) + 1e-12

    def test_subset_directed_zero(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 0.0], [1.0, 0.0], [5.0, 5.0]])
        assert HausdorffDistance().directed(a, b) == 0.0


class TestERP:
    def test_matches_naive_origin_gap(self, rng):
        erp = ERPDistance()
        for _ in range(10):
            a = rng.normal(size=(rng.integers(2, 10), 2))
            b = rng.normal(size=(rng.integers(2, 10), 2))
            assert erp.distance(a, b) == pytest.approx(
                naive_erp(a, b, np.zeros(2)))

    def test_matches_naive_custom_gap(self, rng):
        gap = np.array([2.0, -1.0])
        erp = ERPDistance(gap=gap)
        a = rng.normal(size=(6, 2))
        b = rng.normal(size=(9, 2))
        assert erp.distance(a, b) == pytest.approx(naive_erp(a, b, gap))

    def test_identical_is_zero(self, rng):
        a = rng.normal(size=(5, 2))
        assert ERPDistance().distance(a, a) == pytest.approx(0.0)

    def test_rejects_bad_gap(self):
        with pytest.raises(ValueError):
            ERPDistance(gap=[1.0, 2.0, 3.0])

    def test_gap_deletion_cost(self):
        """Points near the gap origin delete cheaply instead of matching."""
        a = np.array([[0.1, 0.0], [5.0, 0.0], [5.1, 0.0]])
        b = np.array([[5.0, 0.0], [5.1, 0.0]])
        # delete (0.1,0) = |(0.1,0)| = 0.1, match the rest exactly = 0.
        assert ERPDistance().distance(a, b) == pytest.approx(0.1)
