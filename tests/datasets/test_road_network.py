"""Tests for the road-network zero-shot trajectory simulator."""

import networkx as nx
import numpy as np
import pytest

from repro.datasets import (RoadNetworkConfig, build_road_network,
                            generate_zero_shot_seeds, simulate_walks)


def test_network_is_connected():
    graph = build_road_network(RoadNetworkConfig(grid_nodes=8), seed=0)
    assert nx.is_connected(graph)


def test_network_node_positions_within_extent():
    cfg = RoadNetworkConfig(grid_nodes=6, extent=1000.0, node_jitter=0.1)
    graph = build_road_network(cfg, seed=1)
    pos = nx.get_node_attributes(graph, "pos")
    coords = np.array(list(pos.values()))
    spacing = 1000.0 / 5
    assert coords.min() > -spacing  # jitter can push slightly past 0
    assert coords.max() < 1000.0 + spacing


def test_network_deterministic():
    a = build_road_network(RoadNetworkConfig(grid_nodes=6), seed=2)
    b = build_road_network(RoadNetworkConfig(grid_nodes=6), seed=2)
    assert sorted(a.edges) == sorted(b.edges)


def test_edges_removed_and_shortcuts_added():
    cfg = RoadNetworkConfig(grid_nodes=10, removal_fraction=0.2,
                            shortcut_fraction=0.0)
    graph = build_road_network(cfg, seed=3)
    full = nx.grid_2d_graph(10, 10)
    assert graph.number_of_edges() < full.number_of_edges()


def test_walks_count_and_lengths():
    graph = build_road_network(RoadNetworkConfig(grid_nodes=6), seed=0)
    ds = simulate_walks(graph, 20, min_points=10, max_points=30, seed=1)
    assert len(ds) == 20
    assert ds.lengths.min() >= 10 and ds.lengths.max() <= 30


def test_walks_follow_network_geometry():
    """Walk points should stay near the road graph (within noise + spacing)."""
    cfg = RoadNetworkConfig(grid_nodes=8, extent=700.0, node_jitter=0.0)
    graph = build_road_network(cfg, seed=4)
    ds = simulate_walks(graph, 5, noise_std=5.0, seed=5)
    pos = np.array(list(nx.get_node_attributes(graph, "pos").values()))
    for traj in ds:
        # Every trajectory point is within one lattice spacing of some node.
        d = np.linalg.norm(traj.points[:, None, :] - pos[None, :, :], axis=2)
        assert d.min(axis=1).max() < 100.0 + 15.0


def test_zero_shot_bundle():
    graph, seeds = generate_zero_shot_seeds(num_trajectories=12, seed=0)
    assert nx.is_connected(graph)
    assert len(seeds) == 12


def test_walks_deterministic():
    graph = build_road_network(RoadNetworkConfig(grid_nodes=5), seed=0)
    a = simulate_walks(graph, 6, seed=7)
    b = simulate_walks(graph, 6, seed=7)
    for ta, tb in zip(a, b):
        np.testing.assert_array_equal(ta.points, tb.points)
