"""Futures-based micro-batcher for the encoder hot path.

The encoder is far cheaper per trajectory when it runs on a padded batch
than on single items (the recurrence is vectorised across the batch
dimension), but online clients arrive one request at a time. The
:class:`MicroBatcher` bridges the two: callers ``submit()`` individual
trajectories and immediately get a :class:`~concurrent.futures.Future`;
a single worker thread coalesces whatever is queued — waiting at most
``max_wait_s`` after the first item for stragglers, dispatching early the
moment ``max_batch_size`` items are pending — and resolves each future
with its own row of the batched encoder output.

Failure isolation: when a batched call raises, the worker retries each
item of the batch individually so the exception lands only on the
future(s) whose input actually caused it; items that succeed alone still
get results.

Robustness contract (see DESIGN.md "Operational robustness"):

* ``submit`` accepts an optional monotonic **deadline**; an item whose
  deadline has already passed when its batch is assembled is failed with
  :class:`~repro.exceptions.DeadlineExceededError` instead of wasting
  encoder time on an answer nobody is waiting for.
* ``close`` never strands a caller: with ``drain=True`` (default) queued
  work is finished first, and anything still pending when the drain
  times out — or everything queued, with ``drain=False`` — is failed
  with a clear :class:`~repro.exceptions.ServiceClosedError` rather than
  leaving futures hanging forever. ``submit`` after close raises the
  same typed error.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from typing import Any, Callable, Deque, List, Optional, Sequence, Tuple

from ..exceptions import DeadlineExceededError, ServiceClosedError

__all__ = ["MicroBatcher", "BatcherClosedError"]

_LOG = logging.getLogger(__name__)


class BatcherClosedError(ServiceClosedError):
    """Raised when submitting to (or draining from) a closed batcher."""


def _fail_future(future: "Future", exc: BaseException) -> None:
    """Set an exception on a future unless it already completed/cancelled."""
    if not future.set_running_or_notify_cancel():
        return
    try:
        future.set_exception(exc)
    except InvalidStateError:  # pragma: no cover - lost benign race
        pass


class MicroBatcher:
    """Coalesce concurrent single-item requests into batched calls.

    Parameters
    ----------
    batch_fn:
        ``batch_fn(items) -> sequence`` mapping a list of N inputs to N
        per-item results, order-aligned. For the serving layer this is the
        padded batch encoder returning an (N, d) array.
    max_batch_size:
        Dispatch immediately once this many items are pending.
    max_wait_s:
        After the first item of a batch arrives, wait at most this long
        for more before dispatching a partial batch. 0 dispatches
        whatever is queued without waiting.
    on_batch:
        Optional ``on_batch(batch_size, seconds)`` observer, called after
        every dispatched batch (success or failure) — the metrics hook.
    """

    def __init__(self, batch_fn: Callable[[List[Any]], Sequence],
                 max_batch_size: int = 16, max_wait_s: float = 0.002,
                 on_batch: Optional[Callable[[int, float], None]] = None,
                 name: str = "micro-batcher"):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        self._batch_fn = batch_fn
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self._on_batch = on_batch
        self._lock = threading.Lock()
        self._has_work = threading.Condition(self._lock)
        self._queue: "Deque[Tuple[Any, Future, Optional[float]]]" = deque()
        self._closed = False
        self._batches_dispatched = 0
        self._items_dispatched = 0
        self._deadline_expired = 0
        self._worker = threading.Thread(target=self._run, name=name,
                                        daemon=True)
        self._worker.start()

    # ------------------------------------------------------------- client API

    def submit(self, item: Any,
               deadline: Optional[float] = None) -> "Future":
        """Enqueue one item; returns the future of its per-item result.

        ``deadline`` is an absolute :func:`time.monotonic` timestamp; when
        the worker assembles the item's batch after that instant, the
        future fails with :class:`DeadlineExceededError` instead of being
        encoded.
        """
        future: "Future" = Future()
        with self._lock:
            if self._closed:
                raise BatcherClosedError("batcher is closed")
            self._queue.append((item, future, deadline))
            self._has_work.notify()
        return future

    def __call__(self, item: Any, timeout: Optional[float] = None,
                 deadline: Optional[float] = None) -> Any:
        """Convenience: submit and block for the result."""
        return self.submit(item, deadline=deadline).result(timeout=timeout)

    def close(self, timeout: Optional[float] = 10.0,
              drain: bool = True) -> None:
        """Stop accepting work and shut the worker down.

        With ``drain=True`` queued items are still dispatched, then the
        worker is joined for up to ``timeout`` seconds; anything *still*
        queued afterwards (a wedged ``batch_fn``) is failed with
        :class:`ServiceClosedError`. With ``drain=False`` every queued
        future fails immediately — the fast path for emergency shutdown.
        Either way no caller is left waiting on a future forever.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending: List[Tuple[Any, Future, Optional[float]]] = []
            if not drain:
                pending = list(self._queue)
                self._queue.clear()
            self._has_work.notify_all()
        for _, future, _ in pending:
            _fail_future(future, ServiceClosedError(
                "service shut down before this request was processed"))
        self._worker.join(timeout=timeout)
        with self._lock:
            leftovers = list(self._queue)
            self._queue.clear()
        for _, future, _ in leftovers:
            _fail_future(future, ServiceClosedError(
                "service shut down before this request was processed"))

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def stats(self) -> dict:
        with self._lock:
            batches = self._batches_dispatched
            items = self._items_dispatched
            expired = self._deadline_expired
        return {
            "batches": batches,
            "items": items,
            "mean_batch_size": (items / batches) if batches else 0.0,
            "max_batch_size": self.max_batch_size,
            "max_wait_s": self.max_wait_s,
            "deadline_expired": expired,
        }

    # ---------------------------------------------------------------- worker

    def _collect(self) -> "List[Tuple[Any, Future, Optional[float]]]":
        """Block until work exists, then gather one batch (deadline-aware).

        Returns an empty list only when the batcher is closed and fully
        drained.
        """
        with self._lock:
            while not self._queue and not self._closed:
                self._has_work.wait()
            if not self._queue:
                return []
            batch = [self._queue.popleft()]
            deadline = time.monotonic() + self.max_wait_s
            while len(batch) < self.max_batch_size:
                if self._queue:
                    batch.append(self._queue.popleft())
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._closed:
                    break
                self._has_work.wait(timeout=remaining)
                if not self._queue and (self._closed
                                        or time.monotonic() >= deadline):
                    break
            return batch

    def _run(self) -> None:
        while True:
            batch = self._collect()
            if not batch:
                return
            self._dispatch(batch)

    def _dispatch(self,
                  batch: "List[Tuple[Any, Future, Optional[float]]]") -> None:
        now = time.monotonic()
        expired = [(item, fut) for item, fut, dl in batch
                   if dl is not None and now > dl]
        for _, fut in expired:
            _fail_future(fut, DeadlineExceededError(
                "request deadline expired before encoding started"))
        if expired:
            with self._lock:
                self._deadline_expired += len(expired)
        live = [(item, fut) for item, fut, dl in batch
                if not (dl is not None and now > dl)
                and fut.set_running_or_notify_cancel()]
        if not live:
            return
        start = time.monotonic()
        items = [item for item, _ in live]
        try:
            results = self._batch_fn(items)
            if len(results) != len(items):
                raise RuntimeError(
                    f"batch_fn returned {len(results)} results for "
                    f"{len(items)} items")
        except BaseException as exc:  # noqa: BLE001 — forwarded to futures
            self._resolve_individually(live, exc)
        else:
            for (_, fut), result in zip(live, results):
                try:
                    fut.set_result(result)
                except InvalidStateError:  # pragma: no cover - benign race
                    pass
        finally:
            elapsed = time.monotonic() - start
            with self._lock:
                self._batches_dispatched += 1
                self._items_dispatched += len(live)
            if self._on_batch is not None:
                try:
                    self._on_batch(len(live), elapsed)
                except Exception:  # observer bugs must not kill the worker
                    _LOG.exception("micro-batcher on_batch observer raised")

    def _resolve_individually(self, live: "List[Tuple[Any, Future]]",
                              batch_exc: BaseException) -> None:
        """Batched call failed: isolate the failure to the offending items."""
        if len(live) == 1:
            live[0][1].set_exception(batch_exc)
            return
        for item, fut in live:
            try:
                results = self._batch_fn([item])
                if len(results) != 1:
                    raise RuntimeError(
                        f"batch_fn returned {len(results)} results for 1 item")
            except BaseException as exc:  # noqa: BLE001
                fut.set_exception(exc)
            else:
                fut.set_result(results[0])
