"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``
    Train a small NeuTraj on synthetic Porto-like data and run a top-k
    search (the quickstart, self-contained).
``measures``
    List the registered trajectory measures.
``experiment <name>``
    Regenerate one of the paper's tables/figures (``table2`` .. ``fig10``)
    at the scale given by ``--scale`` (smoke/small/medium).
"""

from __future__ import annotations

import argparse
import os
import sys


def _cmd_demo(args: argparse.Namespace) -> int:
    import numpy as np

    from . import NeuTraj, NeuTrajConfig, PortoConfig, generate_porto

    dataset = generate_porto(
        PortoConfig(num_trajectories=args.size, min_points=10,
                    max_points=25), seed=0)
    rng = np.random.default_rng(0)
    seeds_ds, rest = dataset.split((0.3, 0.7), rng)
    seeds, database = list(seeds_ds), list(rest)
    print(f"training NeuTraj({args.measure}) on {len(seeds)} seeds ...")
    model = NeuTraj(NeuTrajConfig(measure=args.measure, embedding_dim=16,
                                  epochs=args.epochs, sampling_num=5,
                                  batch_anchors=10, cell_size=400.0, seed=0))
    history = model.fit(seeds)
    print(f"done in {history.total_seconds:.1f}s "
          f"(final loss {history.losses[-1]:.4f})")
    embeddings = model.embed(database)
    top = model.top_k(database[0], embeddings, k=5)
    print(f"top-5 neighbours of trajectory 0: {top.tolist()}")
    return 0


def _cmd_measures(args: argparse.Namespace) -> int:
    from .measures import available_measures, get_measure

    for name in available_measures():
        measure = get_measure(name)
        kind = "metric" if measure.is_metric else "non-metric"
        print(f"{name:<12} {kind}")
    return 0


_EXPERIMENTS = {
    "table2": ("bench_table2_performance.py", "performance comparison"),
    "table3": ("bench_table3_ablation.py", "ablation study"),
    "table4": ("bench_table4_search_time.py", "online search time"),
    "table5": ("bench_table5_indexed_search.py", "indexed search time"),
    "table6": ("bench_table6_training_time.py", "offline training time"),
    "table7": ("bench_table7_case_study.py", "case study"),
    "fig5": ("bench_fig5_convergence.py", "convergence curves"),
    "fig6": ("bench_fig6_training_size.py", "training-size sweep"),
    "fig7": ("bench_fig7_embedding_dim.py", "embedding-dim sweep"),
    "fig8": ("bench_fig8_scan_width.py", "scan-width sweep"),
    "fig9": ("bench_fig9_clustering.py", "clustering comparison"),
    "fig10": ("bench_fig10_zero_shot.py", "zero-shot learning"),
}


def _cmd_experiment(args: argparse.Namespace) -> int:
    import subprocess
    from pathlib import Path

    try:
        bench_file, description = _EXPERIMENTS[args.name]
    except KeyError:
        print(f"unknown experiment {args.name!r}; "
              f"choose from {sorted(_EXPERIMENTS)}", file=sys.stderr)
        return 2
    bench_path = Path(__file__).resolve().parents[2] / "benchmarks" / bench_file
    if not bench_path.exists():
        print(f"benchmark file not found: {bench_path}", file=sys.stderr)
        return 2
    print(f"running {args.name} ({description}) at scale={args.scale} ...")
    env = dict(os.environ, REPRO_SCALE=args.scale)
    return subprocess.call(
        [sys.executable, "-m", "pytest", str(bench_path),
         "--benchmark-only", "-q"], env=env)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="NeuTraj reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="train + search on synthetic data")
    demo.add_argument("--measure", default="frechet")
    demo.add_argument("--size", type=int, default=120)
    demo.add_argument("--epochs", type=int, default=3)
    demo.set_defaults(func=_cmd_demo)

    measures = sub.add_parser("measures", help="list registered measures")
    measures.set_defaults(func=_cmd_measures)

    experiment = sub.add_parser("experiment",
                                help="regenerate a paper table/figure")
    experiment.add_argument("name", choices=sorted(_EXPERIMENTS))
    experiment.add_argument("--scale", default="smoke",
                            choices=["smoke", "small", "medium"])
    experiment.set_defaults(func=_cmd_experiment)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
