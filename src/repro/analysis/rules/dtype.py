"""dtype-discipline: float64 is canonical in the numeric packages.

The autodiff engine, the exact measures and their caches all assume
float64 (`Tensor.__init__` coerces, cache keys hash float64 bytes, and
the fused kernels' bit-identical guarantees only hold in one precision).
A stray float32 array entering a kernel would silently change results;
an array built *without* an explicit dtype inherits whatever its input
happened to be. Inside the configured packages this rule flags:

* numpy array constructors (``zeros``/``ones``/``empty``/``full``/
  ``array``/``asarray``/...) with **no** explicit ``dtype`` — spell it,
  even for int/bool arrays: explicitness is the discipline;
* an explicit **non-float64 floating** dtype anywhere (``float32``,
  ``float16``, ``half``, ``single``) in constructors or ``.astype``.

Integer and bool dtypes are fine when explicit (indices and masks are
legitimate); ``*_like`` constructors are exempt (they deliberately
inherit their prototype's dtype).
"""

from __future__ import annotations

import ast
from typing import List, Optional

from . import register
from .base import ModuleContext, Rule, dotted_name

#: Constructor -> 0-based positional index where dtype may be passed.
_CTOR_DTYPE_POS = {
    "zeros": 1,
    "ones": 1,
    "empty": 1,
    "full": 2,
    "array": 1,
    "asarray": 1,
    "ascontiguousarray": 1,
    "asfortranarray": 1,
    "fromiter": 1,
    "frombuffer": 1,
    "arange": 4,
}

_BAD_FLOAT_NAMES = frozenset({"float32", "float16", "half", "single",
                              "csingle", "complex64"})


def _dtype_expr_name(node: ast.AST) -> Optional[str]:
    """Best-effort name of a dtype expression (``np.float32`` -> float32)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    name = dotted_name(node)
    if name:
        return name.split(".")[-1]
    return None


@register
class DtypeDiscipline(Rule):
    rule_id = "dtype-discipline"
    description = ("numpy constructors in repro.nn/repro.measures must "
                   "state an explicit dtype; floating dtypes must be "
                   "float64")
    default_options = {"packages": ()}

    def check(self, ctx: ModuleContext) -> List:
        packages = ctx.options.get("packages", ())
        if packages and not any(p in ctx.rel_path for p in packages):
            return []
        out = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            out.extend(self._check_constructor(ctx, node))
            out.extend(self._check_astype(ctx, node))
        return out

    def _check_constructor(self, ctx: ModuleContext, node: ast.Call) -> List:
        name = ctx.resolve_call_name(node.func)
        if not name or not name.startswith("numpy."):
            return []
        ctor = name[len("numpy."):]
        if ctor not in _CTOR_DTYPE_POS:
            return []
        dtype_expr = self._explicit_dtype(node, _CTOR_DTYPE_POS[ctor])
        if dtype_expr is None:
            return [ctx.finding(
                self.rule_id, node,
                f"np.{ctor}() without an explicit dtype; float64 is "
                f"canonical here — spell dtype= (even for int/bool "
                f"arrays)")]
        return self._check_dtype_value(ctx, node, dtype_expr)

    def _check_astype(self, ctx: ModuleContext, node: ast.Call) -> List:
        if not isinstance(node.func, ast.Attribute) \
                or node.func.attr != "astype":
            return []
        dtype_expr = self._explicit_dtype(node, 0)
        if dtype_expr is None:
            return []
        return self._check_dtype_value(ctx, node, dtype_expr)

    def _check_dtype_value(self, ctx: ModuleContext, node: ast.Call,
                           dtype_expr: ast.AST) -> List:
        dtype_name = _dtype_expr_name(dtype_expr)
        if dtype_name in _BAD_FLOAT_NAMES:
            return [ctx.finding(
                self.rule_id, node,
                f"non-canonical floating dtype {dtype_name!r}; the "
                f"engine/measures contract is float64 end to end")]
        return []

    @staticmethod
    def _explicit_dtype(node: ast.Call, pos: int) -> Optional[ast.AST]:
        for keyword in node.keywords:
            if keyword.arg == "dtype":
                return keyword.value
        if len(node.args) > pos:
            return node.args[pos]
        return None
