"""Tests for the futures-based micro-batcher.

Covers the ISSUE checklist explicitly: deadline flush, max-size flush,
exception propagation to the right future, and concurrent-client
determinism (same results as serial).
"""

import threading
import time

import pytest

from repro.serving import BatcherClosedError, MicroBatcher


def doubler(items):
    return [x * 2 for x in items]


def test_single_item_roundtrip():
    with MicroBatcher(doubler, max_batch_size=8, max_wait_s=0.001) as batcher:
        assert batcher.submit(21).result(timeout=5) == 42
        assert batcher(5, timeout=5) == 10


def test_max_size_flush_dispatches_before_deadline():
    """A full batch must dispatch immediately, not wait out max_wait_s."""
    sizes = []
    with MicroBatcher(doubler, max_batch_size=4, max_wait_s=30.0,
                      on_batch=lambda n, s: sizes.append(n)) as batcher:
        start = time.monotonic()
        futures = [batcher.submit(i) for i in range(4)]
        results = [f.result(timeout=5) for f in futures]
        elapsed = time.monotonic() - start
    assert results == [0, 2, 4, 6]
    assert elapsed < 5.0  # nowhere near the 30 s deadline
    assert sum(sizes) == 4
    assert max(sizes) <= 4


def test_deadline_flush_dispatches_partial_batch():
    """A partial batch must dispatch once max_wait_s expires."""
    sizes = []
    with MicroBatcher(doubler, max_batch_size=100, max_wait_s=0.05,
                      on_batch=lambda n, s: sizes.append(n)) as batcher:
        futures = [batcher.submit(i) for i in range(3)]
        results = [f.result(timeout=5) for f in futures]
    assert results == [0, 2, 4]
    assert sizes and sum(sizes) == 3
    assert max(sizes) < 100  # flushed by deadline, never filled


def test_zero_wait_dispatches_immediately():
    with MicroBatcher(doubler, max_batch_size=100, max_wait_s=0.0) as batcher:
        start = time.monotonic()
        assert batcher(1, timeout=5) == 2
        assert time.monotonic() - start < 1.0


def failing_on_none(items):
    if any(x is None for x in items):
        raise ValueError("cannot encode None")
    return [x * 2 for x in items]


def test_exception_lands_on_the_right_future():
    """A poison item in a batch fails only its own future."""
    with MicroBatcher(failing_on_none, max_batch_size=8,
                      max_wait_s=0.2) as batcher:
        good_a = batcher.submit(1)
        poison = batcher.submit(None)
        good_b = batcher.submit(3)
        assert good_a.result(timeout=5) == 2
        assert good_b.result(timeout=5) == 6
        with pytest.raises(ValueError, match="cannot encode None"):
            poison.result(timeout=5)


def test_exception_single_item_batch():
    with MicroBatcher(failing_on_none, max_batch_size=1,
                      max_wait_s=0.0) as batcher:
        with pytest.raises(ValueError):
            batcher(None, timeout=5)
        # The worker survives a failed batch.
        assert batcher(2, timeout=5) == 4


def test_wrong_result_count_is_an_error():
    with MicroBatcher(lambda items: [], max_batch_size=4,
                      max_wait_s=0.01) as batcher:
        futures = [batcher.submit(i) for i in range(3)]
        for future in futures:
            with pytest.raises(RuntimeError, match="results"):
                future.result(timeout=5)


def test_concurrent_clients_match_serial():
    """Many threads through shared batches == serial one-at-a-time."""
    per_client = 25
    clients = 8
    results = {}

    def client(client_id, batcher):
        got = [batcher(client_id * 1000 + i, timeout=10)
               for i in range(per_client)]
        results[client_id] = got

    with MicroBatcher(doubler, max_batch_size=16, max_wait_s=0.002) as batcher:
        threads = [threading.Thread(target=client, args=(c, batcher))
                   for c in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        stats = batcher.stats()

    for client_id in range(clients):
        expected = [(client_id * 1000 + i) * 2 for i in range(per_client)]
        assert results[client_id] == expected
    assert stats["items"] == clients * per_client
    # Coalescing actually happened: fewer batches than items.
    assert stats["batches"] < stats["items"]
    assert stats["mean_batch_size"] > 1.0


def test_submit_after_close_raises():
    batcher = MicroBatcher(doubler, max_batch_size=4, max_wait_s=0.001)
    batcher.close()
    assert batcher.closed
    with pytest.raises(BatcherClosedError):
        batcher.submit(1)
    batcher.close()  # idempotent


def test_close_drains_pending_work():
    slow_started = threading.Event()

    def slow_doubler(items):
        slow_started.set()
        time.sleep(0.05)
        return [x * 2 for x in items]

    batcher = MicroBatcher(slow_doubler, max_batch_size=1, max_wait_s=0.0)
    futures = [batcher.submit(i) for i in range(3)]
    slow_started.wait(timeout=5)
    batcher.close()
    assert [f.result(timeout=5) for f in futures] == [0, 2, 4]


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        MicroBatcher(doubler, max_batch_size=0)
    with pytest.raises(ValueError):
        MicroBatcher(doubler, max_wait_s=-1.0)


# ------------------------------------------------- robustness contract (PR 3)

def test_expired_deadline_fails_future_without_encoding():
    calls = []

    def recording(items):
        calls.append(list(items))
        return [x * 2 for x in items]

    batcher = MicroBatcher(recording, max_batch_size=4, max_wait_s=0.0)
    try:
        from repro.exceptions import DeadlineExceededError
        future = batcher.submit(7, deadline=time.monotonic() - 1.0)
        with pytest.raises(DeadlineExceededError):
            future.result(timeout=5)
        assert batcher.stats()["deadline_expired"] == 1
        assert 7 not in [x for batch in calls for x in batch]
        # a live deadline still goes through
        assert batcher(3, timeout=5,
                       deadline=time.monotonic() + 30.0) == 6
    finally:
        batcher.close()


def test_mixed_deadlines_only_drop_the_expired_item():
    blocker = threading.Event()

    def gated(items):
        blocker.wait(timeout=5)
        return [x * 2 for x in items]

    batcher = MicroBatcher(gated, max_batch_size=2, max_wait_s=10.0)
    try:
        from repro.exceptions import DeadlineExceededError
        dead = batcher.submit(1, deadline=time.monotonic() + 0.01)
        time.sleep(0.05)  # let the deadline lapse while queued
        live = batcher.submit(2, deadline=time.monotonic() + 30.0)
        blocker.set()
        assert live.result(timeout=5) == 4
        with pytest.raises(DeadlineExceededError):
            dead.result(timeout=5)
    finally:
        batcher.close()


def test_close_without_drain_fails_pending_futures():
    from repro.exceptions import ServiceClosedError

    started = threading.Event()
    release = threading.Event()

    def gated(items):
        started.set()
        release.wait(timeout=5)
        return [x * 2 for x in items]

    batcher = MicroBatcher(gated, max_batch_size=1, max_wait_s=0.0)
    first = batcher.submit(0)           # occupies the worker
    started.wait(timeout=5)
    queued = [batcher.submit(i) for i in range(1, 4)]
    release.set()
    batcher.close(drain=False)
    for future in queued:
        with pytest.raises(ServiceClosedError):
            future.result(timeout=5)
    # BatcherClosedError subclasses the service-level typed error
    assert issubclass(BatcherClosedError, ServiceClosedError)
    with pytest.raises(ServiceClosedError):
        batcher.submit(99)
    # the in-flight item may finish or fail, but it must resolve
    assert first.done() or first.result(timeout=5) == 0


def test_close_with_wedged_worker_does_not_strand_futures():
    """A batch_fn that never returns must not leave queued callers hanging."""
    from repro.exceptions import ServiceClosedError

    stuck = threading.Event()

    def wedged(items):
        stuck.set()
        time.sleep(60.0)
        return [x * 2 for x in items]

    batcher = MicroBatcher(wedged, max_batch_size=1, max_wait_s=0.0)
    batcher.submit(0)
    stuck.wait(timeout=5)
    queued = batcher.submit(1)
    batcher.close(timeout=0.2)          # drain gives up quickly
    with pytest.raises(ServiceClosedError):
        queued.result(timeout=5)
