"""IVF approximate-nearest-neighbour index over embedding vectors.

The embedding store's exact search is an O(N·d) scan per query — fine at
thousands of trajectories, hopeless at millions. This module implements
the classic inverted-file (IVF) design from scratch:

* a **coarse quantizer** — seeded k-means over the stored embeddings
  partitions them into ``nlist`` cells; a query ranks the ``nlist``
  centroids (cheap) and scans only the ``nprobe`` nearest cells, so it
  touches roughly ``nprobe/nlist`` of the database;
* optional **int8 scalar quantization** of cell residuals
  (``vector - centroid``), shrinking the scanned bytes 4x; the
  approximate ranking is then repaired by an **exact rerank** of the top
  candidates against the stored float32 vectors;
* a **memory-mapped on-disk layout** — one contiguous ``data.bin``
  (centroids, per-cell offsets, ids, codes, vectors) described by a
  sha256-carrying ``MANIFEST.json``, so a million-embedding index opens
  lazily and survives restarts;
* **incremental maintenance** — inserts append to in-memory per-cell
  overflow lists, deletes tombstone ids, and :meth:`IVFIndex.compact`
  folds both back into the contiguous base arrays.

Determinism: k-means is seeded (``IVFConfig.seed``) and ties in every
ranking break on row order, so the same build inputs always produce the
same index and the same answers.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.atomicio import atomic_replace, atomic_write_text
from ..exceptions import ConfigurationError, CorruptArtifactError

PathLike = Union[str, Path]

__all__ = ["IVFConfig", "IVFIndex", "kmeans", "auto_nlist"]

MANIFEST_NAME = "MANIFEST.json"
DATA_NAME = "data.bin"
IVF_SCHEMA = "repro.ivf.v1"

#: Rows per chunk for blocked centroid-assignment matmuls: bounds the
#: temporary (chunk × nlist) distance matrix to a few hundred MB even at
#: nlist=4096.
_ASSIGN_CHUNK = 16384


def auto_nlist(count: int) -> int:
    """Default cell count for a database of ``count`` vectors (~sqrt(N))."""
    if count <= 0:
        return 1
    return int(np.clip(round(np.sqrt(count)), 1, 4096))


@dataclass
class IVFConfig:
    """Build/search parameters of an :class:`IVFIndex`.

    Attributes
    ----------
    nlist:
        Number of k-means cells. 0 picks :func:`auto_nlist` at build
        time.
    nprobe:
        Cells scanned per query. Recall/latency dial: higher probes more
        of the database.
    quantize:
        Store int8 residual codes and scan those instead of the float32
        vectors (4x fewer scanned bytes); exact rerank repairs the
        ranking.
    rerank:
        With ``quantize``, how many approximate candidates are reranked
        exactly, as a multiple of ``k`` (floored at 32 candidates).
    train_sample:
        Max vectors fed to k-means (assignment still covers everything).
    kmeans_iters:
        Lloyd iterations.
    seed:
        RNG seed for k-means init (all randomness flows through it).
    """

    nlist: int = 0
    nprobe: int = 8
    quantize: bool = True
    rerank: int = 4
    train_sample: int = 65536
    kmeans_iters: int = 10
    seed: int = 0

    def __post_init__(self) -> None:
        if self.nlist < 0:
            raise ConfigurationError("nlist must be >= 0 (0 = auto)")
        if self.nprobe < 1:
            raise ConfigurationError("nprobe must be >= 1")
        if self.rerank < 1:
            raise ConfigurationError("rerank must be >= 1")
        if self.train_sample < 1:
            raise ConfigurationError("train_sample must be >= 1")
        if self.kmeans_iters < 1:
            raise ConfigurationError("kmeans_iters must be >= 1")


def _chunked_assign(vectors: np.ndarray, centroids: np.ndarray
                    ) -> np.ndarray:
    """Nearest-centroid id per vector, in bounded-memory chunks.

    Uses the ``|x|^2 + |c|^2 - 2 x·c`` expansion so the inner loop is one
    GEMM per chunk instead of a broadcasted (N, nlist, d) temporary.
    """
    cent_sq = (centroids * centroids).sum(axis=1)
    out = np.empty(vectors.shape[0], dtype=np.int64)
    for start in range(0, vectors.shape[0], _ASSIGN_CHUNK):
        chunk = vectors[start:start + _ASSIGN_CHUNK]
        scores = chunk @ centroids.T
        scores *= -2.0
        scores += cent_sq[None, :]
        # |x|^2 is constant per row — argmin does not need it.
        out[start:start + _ASSIGN_CHUNK] = np.argmin(scores, axis=1)
    return out


def kmeans(vectors: np.ndarray, k: int, rng: np.random.Generator,
           iters: int = 10) -> np.ndarray:
    """Seeded Lloyd k-means; returns (k, d) float32 centroids.

    Initialisation samples ``k`` distinct rows; empty cells are reseeded
    from the data so every centroid stays live. Deterministic for a
    given generator state.
    """
    vectors = np.ascontiguousarray(vectors, dtype=np.float32)
    n = vectors.shape[0]
    if n == 0:
        raise ValueError("cannot run k-means on an empty vector set")
    k = min(k, n)
    centroids = vectors[rng.choice(n, size=k, replace=False)].copy()
    for _ in range(iters):
        assign = _chunked_assign(vectors, centroids)
        counts = np.bincount(assign, minlength=k)
        sums = np.zeros_like(centroids)
        np.add.at(sums, assign, vectors)
        live = counts > 0
        centroids[live] = sums[live] / counts[live, None]
        dead = np.flatnonzero(~live)
        if dead.size:
            centroids[dead] = vectors[rng.choice(n, size=dead.size,
                                                 replace=False)]
    return centroids


def _as_vectors(vectors: np.ndarray, dim: Optional[int] = None
                ) -> np.ndarray:
    out = np.ascontiguousarray(vectors, dtype=np.float32)
    if out.ndim != 2:
        raise ValueError(f"expected a 2-D vector table, got shape "
                         f"{out.shape}")
    if dim is not None and out.shape[1] != dim:
        raise ValueError(f"expected dimensionality {dim}, got "
                         f"{out.shape[1]}")
    return out


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


@dataclass
class _SearchStats:
    """Cumulative search-side counters (read via :meth:`IVFIndex.stats`)."""

    queries: int = 0
    candidates_scanned: int = 0
    cells_probed: int = 0
    reranked: int = 0


class IVFIndex:
    """Inverted-file ANN index with int8 residual codes and exact rerank.

    Build one with :meth:`build`, reopen a saved one with :meth:`load`.
    ``search`` answers top-k; ``add``/``remove`` maintain the index
    incrementally (per-cell append + tombstones) until :meth:`compact`
    or :meth:`save` folds the deltas back into the contiguous arrays.
    """

    def __init__(self, dim: int, config: Optional[IVFConfig] = None):
        if dim < 1:
            raise ConfigurationError("dim must be >= 1")
        self.dim = dim
        self.config = config or IVFConfig()
        self._centroids = np.zeros((0, dim), dtype=np.float32)
        self._scales = np.zeros(0, dtype=np.float32)
        # Contiguous base arrays: rows sorted by cell, bounds[c]:bounds[c+1]
        # is cell c's slice. May be np.memmap views after `load(mmap=True)`.
        self._bounds = np.zeros(1, dtype=np.int64)
        self._ids = np.zeros(0, dtype=np.int64)
        self._vectors = np.zeros((0, dim), dtype=np.float32)
        self._codes = np.zeros((0, dim), dtype=np.int8)
        # Incremental state: per-cell overflow appends + tombstoned ids.
        self._pending_ids: Dict[int, List[int]] = {}
        self._pending_vectors: Dict[int, List[np.ndarray]] = {}
        self._tombstones: set = set()
        self._search_stats = _SearchStats()

    # -------------------------------------------------------------- properties

    @property
    def nlist(self) -> int:
        return self._centroids.shape[0]

    @property
    def ntotal(self) -> int:
        """Rows held (base + pending), including tombstoned ones."""
        return int(self._ids.shape[0]) + sum(
            len(v) for v in self._pending_ids.values())

    @property
    def live_count(self) -> int:
        """Rows a search can return (``ntotal`` minus tombstones)."""
        return self.ntotal - len(self._tombstones)

    @property
    def pending_count(self) -> int:
        return sum(len(v) for v in self._pending_ids.values())

    @property
    def is_trained(self) -> bool:
        return self.nlist > 0

    def __len__(self) -> int:
        return self.live_count

    # ------------------------------------------------------------------- build

    @classmethod
    def build(cls, ids: np.ndarray, vectors: np.ndarray,
              config: Optional[IVFConfig] = None) -> "IVFIndex":
        """Train the quantizer on ``vectors`` and index every row."""
        config = config or IVFConfig()
        vectors = _as_vectors(vectors)
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        if ids.shape != (vectors.shape[0],):
            raise ValueError(
                f"ids shape {ids.shape} does not match {vectors.shape[0]} "
                f"vectors")
        if np.unique(ids).size != ids.size:
            raise ValueError("index ids must be unique")
        index = cls(vectors.shape[1], config)
        if vectors.shape[0] == 0:
            return index
        rng = np.random.default_rng(config.seed)
        nlist = config.nlist or auto_nlist(vectors.shape[0])
        nlist = min(nlist, vectors.shape[0])
        sample = vectors
        if vectors.shape[0] > config.train_sample:
            pick = rng.choice(vectors.shape[0], size=config.train_sample,
                              replace=False)
            sample = vectors[np.sort(pick)]
        index._centroids = kmeans(sample, nlist, rng,
                                  iters=config.kmeans_iters)
        index._install(ids, vectors,
                       _chunked_assign(vectors, index._centroids))
        return index

    def _install(self, ids: np.ndarray, vectors: np.ndarray,
                 assign: np.ndarray) -> None:
        """Lay out rows contiguously by cell and (re)encode residuals."""
        order = np.argsort(assign, kind="stable")
        assign = assign[order]
        self._ids = np.ascontiguousarray(ids[order])
        self._vectors = np.ascontiguousarray(vectors[order])
        counts = np.bincount(assign, minlength=self.nlist)
        self._bounds = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)])
        if self.config.quantize:
            self._encode_cells()
        else:
            self._codes = np.zeros((0, self.dim), dtype=np.int8)
            self._scales = np.zeros(0, dtype=np.float32)

    def _encode_cells(self) -> None:
        """Per-cell int8 codes: ``round(residual / scale)``, symmetric."""
        self._codes = np.empty_like(self._vectors, dtype=np.int8)
        self._scales = np.ones(self.nlist, dtype=np.float32)
        for cell in range(self.nlist):
            lo, hi = self._bounds[cell], self._bounds[cell + 1]
            if hi <= lo:
                continue
            residual = self._vectors[lo:hi] - self._centroids[cell][None, :]
            peak = float(np.abs(residual).max())
            scale = (peak / 127.0) if peak > 0 else 1.0
            self._scales[cell] = scale
            np.clip(np.rint(residual / scale), -127, 127,
                    out=residual)
            self._codes[lo:hi] = residual.astype(np.int8)

    # ------------------------------------------------------------------ search

    def _probe_order(self, query: np.ndarray, nprobe: int) -> np.ndarray:
        """The ``nprobe`` nearest cell ids, nearest first."""
        diffs = self._centroids - query[None, :]
        cell_d = (diffs * diffs).sum(axis=1)
        nprobe = min(nprobe, self.nlist)
        probe = np.argpartition(cell_d, nprobe - 1)[:nprobe]
        return probe[np.argsort(cell_d[probe], kind="stable")]

    def _cell_candidates(self, cell: int, query: np.ndarray
                         ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(row ids, approx sq-distances, rows-for-rerank) for one cell.

        With quantization on, distances come from decoded int8 residuals;
        otherwise they are exact. Pending (not yet compacted) rows are
        always scanned at full precision.
        """
        lo, hi = int(self._bounds[cell]), int(self._bounds[cell + 1])
        ids = [np.asarray(self._ids[lo:hi])]
        if self.config.quantize and hi > lo:
            decoded = self._codes[lo:hi].astype(np.float32)
            decoded *= self._scales[cell]
            decoded += self._centroids[cell][None, :]
            diffs = decoded - query[None, :]
            vectors = [np.asarray(self._vectors[lo:hi])]
        else:
            vectors = [np.asarray(self._vectors[lo:hi])]
            diffs = vectors[0] - query[None, :]
        sq = [(diffs * diffs).sum(axis=1)]
        if cell in self._pending_ids:
            pend_vecs = np.stack(self._pending_vectors[cell])
            pend_diffs = pend_vecs - query[None, :]
            ids.append(np.asarray(self._pending_ids[cell], dtype=np.int64))
            sq.append((pend_diffs * pend_diffs).sum(axis=1))
            vectors.append(pend_vecs)
        return (np.concatenate(ids), np.concatenate(sq),
                np.concatenate(vectors))

    def search(self, query: np.ndarray, k: int,
               nprobe: Optional[int] = None
               ) -> Tuple[np.ndarray, np.ndarray]:
        """Top-k ``(ids, L2 distances)`` over the ``nprobe`` nearest cells.

        Distances are exact (float32 arithmetic) for every returned row:
        quantized scans rerank the ``config.rerank * k`` best approximate
        candidates against the stored vectors before answering.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        query = np.ascontiguousarray(query, dtype=np.float32)
        if query.shape != (self.dim,):
            raise ValueError(f"expected query of shape ({self.dim},), got "
                             f"{query.shape}")
        if not self.is_trained or self.live_count == 0:
            return (np.zeros(0, dtype=np.int64), np.zeros(0))
        probe = self._probe_order(query, nprobe or self.config.nprobe)
        cand_ids, cand_sq, cand_vecs = zip(
            *(self._cell_candidates(int(c), query) for c in probe))
        ids = np.concatenate(cand_ids)
        sq = np.concatenate(cand_sq)
        vectors = np.concatenate(cand_vecs)
        if self._tombstones:
            live = ~np.isin(ids, np.fromiter(
                self._tombstones, dtype=np.int64,
                count=len(self._tombstones)))
            ids, sq, vectors = ids[live], sq[live], vectors[live]
        stats = self._search_stats
        stats.queries += 1
        stats.cells_probed += probe.size
        stats.candidates_scanned += int(ids.size)
        if ids.size == 0:
            return (np.zeros(0, dtype=np.int64), np.zeros(0))
        if self.config.quantize:
            keep = min(max(self.config.rerank * k, 32), ids.size)
            top = np.argpartition(sq, keep - 1)[:keep]
            diffs = vectors[top] - query[None, :]
            sq = (diffs * diffs).sum(axis=1)
            ids = ids[top]
            stats.reranked += int(keep)
        k = min(k, ids.size)
        best = np.argpartition(sq, k - 1)[:k]
        best = best[np.lexsort((ids[best], sq[best]))]
        return (ids[best].astype(np.int64),
                np.sqrt(sq[best].astype(np.float64)))

    def search_radius(self, query: np.ndarray, radius: float
                      ) -> Tuple[np.ndarray, np.ndarray]:
        """All ``(ids, distances)`` within ``radius`` in the probed cells.

        Approximate by construction: rows whose cell is not among the
        ``nprobe`` nearest are never seen, exactly like :meth:`search`.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        query = np.ascontiguousarray(query, dtype=np.float32)
        if not self.is_trained or self.live_count == 0:
            return (np.zeros(0, dtype=np.int64), np.zeros(0))
        probe = self._probe_order(query, self.config.nprobe)
        out_ids: List[np.ndarray] = []
        out_d: List[np.ndarray] = []
        stats = self._search_stats
        stats.queries += 1
        stats.cells_probed += probe.size
        for cell in probe:
            ids, sq, vectors = self._cell_candidates(int(cell), query)
            stats.candidates_scanned += int(ids.size)
            if self.config.quantize and ids.size:
                # Radius answers are exact over the probed cells: always
                # recompute against the stored vectors.
                diffs = vectors - query[None, :]
                sq = (diffs * diffs).sum(axis=1)
            dist = np.sqrt(sq.astype(np.float64))
            hit = dist <= radius
            out_ids.append(ids[hit])
            out_d.append(dist[hit])
        ids = np.concatenate(out_ids) if out_ids else np.zeros(0, np.int64)
        dist = np.concatenate(out_d) if out_d else np.zeros(0)
        if self._tombstones and ids.size:
            live = ~np.isin(ids, np.fromiter(
                self._tombstones, dtype=np.int64,
                count=len(self._tombstones)))
            ids, dist = ids[live], dist[live]
        order = np.lexsort((ids, dist))
        return ids[order].astype(np.int64), dist[order]

    # -------------------------------------------------------------- mutation

    def add(self, ids: Sequence[int], vectors: np.ndarray) -> None:
        """Append rows to their nearest cells (no retraining).

        New rows live in per-cell overflow lists (scanned at full
        precision) until :meth:`compact` folds them into the base
        arrays.
        """
        vectors = _as_vectors(vectors, dim=self.dim)
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        if ids.shape != (vectors.shape[0],):
            raise ValueError("ids/vectors length mismatch")
        if vectors.shape[0] == 0:
            return
        if not self.is_trained:
            raise ConfigurationError(
                "cannot add to an untrained index; use IVFIndex.build")
        assign = _chunked_assign(vectors, self._centroids)
        for row, cell in enumerate(assign):
            cell = int(cell)
            self._pending_ids.setdefault(cell, []).append(int(ids[row]))
            self._pending_vectors.setdefault(cell, []).append(
                vectors[row].copy())
            self._tombstones.discard(int(ids[row]))

    def remove(self, ids: Sequence[int]) -> int:
        """Tombstone rows by id; returns how many live rows were hit."""
        drop = {int(i) for i in ids}
        if not drop:
            return 0
        removed = 0
        # Pending rows can be dropped outright — they are plain lists.
        for cell in list(self._pending_ids):
            cell_ids = self._pending_ids[cell]
            keep = [i for i, row_id in enumerate(cell_ids)
                    if row_id not in drop]
            removed += len(cell_ids) - len(keep)
            if len(keep) < len(cell_ids):
                self._pending_ids[cell] = [cell_ids[i] for i in keep]
                self._pending_vectors[cell] = [
                    self._pending_vectors[cell][i] for i in keep]
                if not self._pending_ids[cell]:
                    del self._pending_ids[cell]
                    del self._pending_vectors[cell]
        # Base rows are immutable (possibly mmap) — tombstone them.
        if self._ids.size:
            drop_arr = np.fromiter(drop, dtype=np.int64, count=len(drop))
            hit = np.asarray(self._ids)[np.isin(self._ids, drop_arr)]
            fresh = {int(i) for i in hit} - self._tombstones
            removed += len(fresh)
            self._tombstones |= fresh
        return removed

    def compact(self) -> "IVFIndex":
        """Fold pending appends and tombstones into the base arrays.

        Rewrites the contiguous per-cell layout in memory (detaching
        from any mmap backing) and re-encodes int8 codes; centroids are
        untouched. Returns ``self``.
        """
        ids, vectors, assign = self._materialise_live()
        self._pending_ids.clear()
        self._pending_vectors.clear()
        self._tombstones.clear()
        self._install(ids, vectors, assign)
        return self

    def _materialise_live(self
                          ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(ids, vectors, cell assignment) of every live row, base-first."""
        parts_ids = [np.asarray(self._ids)]
        parts_vecs = [np.asarray(self._vectors)]
        cell_of_base = np.repeat(
            np.arange(self.nlist, dtype=np.int64),
            np.diff(self._bounds))
        parts_assign = [cell_of_base]
        for cell in sorted(self._pending_ids):
            parts_ids.append(np.asarray(self._pending_ids[cell],
                                        dtype=np.int64))
            parts_vecs.append(np.stack(self._pending_vectors[cell]))
            parts_assign.append(np.full(len(self._pending_ids[cell]), cell,
                                        dtype=np.int64))
        ids = np.concatenate(parts_ids)
        vectors = (np.concatenate(parts_vecs) if ids.size else
                   np.zeros((0, self.dim), dtype=np.float32))
        assign = np.concatenate(parts_assign)
        if self._tombstones:
            live = ~np.isin(ids, np.fromiter(
                self._tombstones, dtype=np.int64,
                count=len(self._tombstones)))
            ids, vectors, assign = ids[live], vectors[live], assign[live]
        return ids, np.ascontiguousarray(vectors, dtype=np.float32), assign

    # ----------------------------------------------------------- persistence

    def _array_plan(self) -> List[Tuple[str, np.ndarray]]:
        arrays = [("centroids", self._centroids),
                  ("scales", self._scales),
                  ("bounds", self._bounds),
                  ("ids", self._ids),
                  ("vectors", self._vectors)]
        if self.config.quantize:
            arrays.append(("codes", self._codes))
        return arrays

    def save(self, path: PathLike) -> Path:
        """Write the index directory (``data.bin`` + ``MANIFEST.json``).

        Pending appends and tombstones are compacted first, so a saved
        index is always in contiguous form. Both files are written via
        temp-file + atomic rename.
        """
        if self.pending_count or self._tombstones:
            self.compact()
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        data_path = path / DATA_NAME
        tmp = data_path.with_name(DATA_NAME + f".tmp-{os.getpid()}")
        manifest_arrays = {}
        offset = 0
        with open(tmp, "wb") as handle:
            for name, array in self._array_plan():
                array = np.ascontiguousarray(array)
                raw = array.tobytes()
                handle.write(raw)
                manifest_arrays[name] = {
                    "offset": offset,
                    "dtype": str(array.dtype),
                    "shape": list(array.shape),
                }
                offset += len(raw)
        atomic_replace(tmp, data_path)
        manifest = {
            "schema": IVF_SCHEMA,
            "dim": self.dim,
            "nlist": self.nlist,
            "count": int(self._ids.shape[0]),
            "config": {
                "nlist": self.config.nlist,
                "nprobe": self.config.nprobe,
                "quantize": self.config.quantize,
                "rerank": self.config.rerank,
                "train_sample": self.config.train_sample,
                "kmeans_iters": self.config.kmeans_iters,
                "seed": self.config.seed,
            },
            "data": {"file": DATA_NAME, "bytes": offset,
                     "sha256": _sha256_file(data_path)},
            "arrays": manifest_arrays,
        }
        atomic_write_text(path / MANIFEST_NAME,
                          json.dumps(manifest, indent=2, sort_keys=True)
                          + "\n")
        return path

    @classmethod
    def load(cls, path: PathLike, mmap: bool = True,
             verify: bool = True) -> "IVFIndex":
        """Reopen a saved index.

        ``mmap=True`` (default) maps ``data.bin`` read-only so a large
        index costs no up-front reads; ``verify=True`` checks the
        manifest's sha256 first (which does read the file once — pass
        ``verify=False`` to keep a cold open lazy).
        """
        path = Path(path)
        manifest_path = path / MANIFEST_NAME
        if not manifest_path.exists():
            raise CorruptArtifactError(f"no {MANIFEST_NAME} in {path}")
        try:
            manifest = json.loads(manifest_path.read_text())
        except (ValueError, OSError) as exc:
            raise CorruptArtifactError(
                f"unreadable IVF manifest in {path}: {exc}") from exc
        if manifest.get("schema") != IVF_SCHEMA:
            raise CorruptArtifactError(
                f"unsupported IVF schema {manifest.get('schema')!r} "
                f"(expected {IVF_SCHEMA})")
        data_path = path / manifest["data"]["file"]
        if not data_path.exists():
            raise CorruptArtifactError(f"IVF data file missing: {data_path}")
        if data_path.stat().st_size != manifest["data"]["bytes"]:
            raise CorruptArtifactError(
                f"IVF data file truncated: {data_path.stat().st_size} "
                f"bytes != manifest {manifest['data']['bytes']}")
        if verify and _sha256_file(data_path) != manifest["data"]["sha256"]:
            raise CorruptArtifactError(
                f"IVF data file corrupted (sha256 mismatch): {data_path}")
        config = IVFConfig(**manifest["config"])
        index = cls(int(manifest["dim"]), config)

        def read_array(name: str) -> np.ndarray:
            meta = manifest["arrays"][name]
            shape = tuple(meta["shape"])
            if mmap:
                return np.memmap(data_path, dtype=np.dtype(meta["dtype"]),
                                 mode="r", offset=int(meta["offset"]),
                                 shape=shape)
            count = int(np.prod(shape, dtype=np.int64))
            return np.fromfile(data_path, dtype=np.dtype(meta["dtype"]),
                               count=count,
                               offset=int(meta["offset"])).reshape(shape)

        try:
            index._centroids = read_array("centroids")
            index._scales = read_array("scales")
            index._bounds = read_array("bounds")
            index._ids = read_array("ids")
            index._vectors = read_array("vectors")
            if config.quantize:
                index._codes = read_array("codes")
        except (KeyError, ValueError, OSError) as exc:
            raise CorruptArtifactError(
                f"cannot map IVF arrays from {path}: {exc}") from exc
        if index._ids.shape[0] != int(manifest["count"]):
            raise CorruptArtifactError(
                f"IVF manifest count {manifest['count']} != mapped "
                f"{index._ids.shape[0]} rows")
        return index

    # ------------------------------------------------------------------ stats

    def stats(self) -> Dict:
        """JSON-friendly snapshot: layout facts + cumulative search work."""
        counts = np.diff(self._bounds) if self.nlist else np.zeros(0)
        stats = self._search_stats
        return {
            "kind": "ivf",
            "dim": self.dim,
            "nlist": self.nlist,
            "nprobe": self.config.nprobe,
            "quantize": self.config.quantize,
            "ntotal": self.ntotal,
            "live": self.live_count,
            "pending": self.pending_count,
            "tombstones": len(self._tombstones),
            "cell_min": int(counts.min()) if counts.size else 0,
            "cell_mean": float(counts.mean()) if counts.size else 0.0,
            "cell_max": int(counts.max()) if counts.size else 0,
            "queries": stats.queries,
            "candidates_scanned": stats.candidates_scanned,
            "cells_probed": stats.cells_probed,
            "reranked": stats.reranked,
        }
