"""Seeded crash-chaos schedules for the streaming ingester.

Each schedule combines a kill at a WAL append checkpoint with transport
pathologies (reorder / duplicates / drops / lateness from the replay
generator) and optional source flaps (a batch redelivered wholesale).
The ingester runs in a child process so the SIGKILL is real; the parent
then checks the durable contract:

* **zero acked loss** — the recovered window state must sit at or past
  the last batch whose ``ingest()`` returned (batch-atomic: the state
  equals the window fingerprint at *some* batch boundary >= the acked
  one);
* **convergence** — after a second, uninterrupted run over the same
  offered sequence, the state equals the uninterrupted oracle exactly,
  and every live segment's embedding is bit-identical to a from-scratch
  ``encode_prefix``.
"""

import multiprocessing
import os
import signal

import numpy as np
import pytest

from repro.datasets.porto import (PortoConfig, StreamReplayConfig,
                                  generate_porto, replay_stream)
from repro.streaming import (SlidingWindowStore, StreamConfig,
                             StreamIngestor, WindowConfig)
from repro.testing.faults import KillAtWALPoint

from tests.streaming.conftest import make_encoder

pytestmark = [pytest.mark.streaming, pytest.mark.faults]

_POINTS = ("after_write", "before_fsync", "after_fsync")
_BATCH = 6


def _schedule(seed):
    """One deterministic fault schedule per seed."""
    return {
        "seed": seed,
        "point": _POINTS[seed % 3],
        "nth": 1 + (seed // 3) % 4,
        "flap": seed % 2 == 0,
        "snapshot_every": 15 if seed % 5 == 0 else 0,
        "fsync_window_ms": 2.0 if seed % 3 == 1 else 0.0,
        "replay": StreamReplayConfig(
            drop_fraction=0.05 if seed % 4 == 0 else 0.0,
            duplicate_fraction=0.1 if seed % 2 == 1 else 0.0,
            reorder_fraction=0.15 if seed % 3 != 2 else 0.0,
            reorder_span=3,
            late_fraction=0.03 if seed % 7 == 0 else 0.0),
    }


def _config(sched):
    return StreamConfig(
        window=WindowConfig(lateness_s=5.0, ttl_s=1e9, reorder_buffer=4,
                            max_segment_points=8),
        sync_encode=True, snapshot_every=sched["snapshot_every"],
        fsync_window_ms=sched["fsync_window_ms"], admission_limit=64)


def _offered_batches(sched):
    """The exact batch sequence the child offers (flap replays one)."""
    dataset = generate_porto(
        PortoConfig(num_trajectories=4, min_points=8, max_points=14,
                    extent=1000.0), seed=sched["seed"])
    arrivals, _ = replay_stream(dataset, sched["replay"],
                                seed=sched["seed"])
    batches = [arrivals[i:i + _BATCH]
               for i in range(0, len(arrivals), _BATCH)]
    if sched["flap"] and len(batches) > 4:
        # A reconnecting source re-delivers an old batch mid-stream;
        # dedup must absorb the whole thing.
        batches.insert(4, list(batches[1]))
    return batches


def _oracle_fingerprints(sched, batches):
    """Window fingerprint after each batch boundary, uninterrupted."""
    window = SlidingWindowStore(_config(sched).window)
    fingerprints = [window.state_fingerprint()]
    for batch in batches:
        for point in batch:
            window.apply(point)
        fingerprints.append(window.state_fingerprint())
    return fingerprints


def _child(sched, directory, marker_dir, ack_log):
    encoder = make_encoder(seed=0)
    hook = KillAtWALPoint(sched["point"], marker_dir, nth=sched["nth"],
                          max_kills=1)
    ingestor = StreamIngestor(encoder, directory, _config(sched),
                              wal_hook=hook)
    with open(ack_log, "a") as log:
        for i, batch in enumerate(_offered_batches(sched)):
            ingestor.ingest(batch)
            log.write(f"{i}\n")
            log.flush()
            os.fsync(log.fileno())
    ingestor.close()


def _acked_batches(ack_log):
    if not os.path.exists(ack_log):
        return -1
    acked = -1
    with open(ack_log) as log:
        for line in log:
            line = line.strip()
            if line.isdigit():
                acked = max(acked, int(line))
    return acked


def _run_child(sched, directory, marker_dir, ack_log):
    ctx = multiprocessing.get_context("fork")
    process = ctx.Process(target=_child,
                          args=(sched, directory, marker_dir, ack_log))
    process.start()
    process.join(120)
    assert not process.is_alive(), "chaos child wedged"
    return process.exitcode


def _check_embeddings_bit_identical(ingestor, encoder):
    segments = ingestor.window_segments()
    ids, embeddings = ingestor.window_embeddings()
    assert sorted(ids.tolist()) == sorted(segments)
    for row, sid in enumerate(ids.tolist()):
        oracle = encoder.encode_prefix(segments[sid])
        assert np.array_equal(embeddings[row], oracle.embedding), \
            f"segment {sid}: recovered embedding diverged from re-encoding"


@pytest.mark.parametrize("seed", range(20))
def test_kill_schedule_loses_no_acked_points(tmp_path, seed):
    sched = _schedule(seed)
    durable = tmp_path / "durable"
    durable.mkdir()
    marker_dir = str(tmp_path / "markers")
    ack_log = str(tmp_path / "acked.log")
    batches = _offered_batches(sched)
    fingerprints = _oracle_fingerprints(sched, batches)
    encoder = make_encoder(seed=0)

    exitcode = _run_child(sched, durable, marker_dir, ack_log)
    assert exitcode == -signal.SIGKILL, \
        f"schedule never fired (exit {exitcode})"
    acked = _acked_batches(ack_log)
    assert acked < len(batches) - 1  # died before finishing

    # Recover in-process and pin the state to a batch boundary >= acked.
    recovered = StreamIngestor(encoder, durable, _config(sched))
    fingerprint = recovered._window.state_fingerprint()
    try:
        matched = fingerprints.index(fingerprint) - 1
    except ValueError:
        pytest.fail("recovered state matches no batch boundary "
                    "(half-applied batch)")
    assert matched >= acked, \
        f"acked batch {acked} lost: recovered only through {matched}"
    _check_embeddings_bit_identical(recovered, encoder)
    recovered.close()

    # Second run re-offers everything; the exhausted kill schedule is
    # inert (marker file), so it completes and converges.
    exitcode = _run_child(sched, durable, marker_dir, ack_log)
    assert exitcode == 0
    final = StreamIngestor(encoder, durable, _config(sched))
    assert final._window.state_fingerprint() == fingerprints[-1], \
        "recovered run did not converge to the uninterrupted window state"
    _check_embeddings_bit_identical(final, encoder)
    final.close()
