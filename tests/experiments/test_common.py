"""Tests for experiment common helpers (variants, caching, rankings)."""

import dataclasses

import numpy as np
import pytest

from repro.approx import AnchorHausdorff, LSHCurveDistance
from repro.core import NeuTraj, SiameseTraj
from repro.dataquality import SanitizeConfig
from repro.datasets import Trajectory
from repro.experiments import (ap_comparator, ap_rankings, format_table,
                               make_model, model_rankings, train_variant)
from repro.experiments.workloads import ExperimentScale, build_workload

TINY = ExperimentScale(name="tiny", num_trajectories=50, seed_fraction=0.4,
                       num_queries=4, embedding_dim=8, epochs=2,
                       sampling_num=3, batch_anchors=8, cell_size=500.0,
                       max_points=14)


@pytest.fixture(scope="module")
def workload():
    return build_workload("porto", scale=TINY, cache=False)


class TestMakeModel:
    def test_variants(self):
        cfg = TINY.neutraj_config("frechet")
        assert isinstance(make_model("neutraj", cfg), NeuTraj)
        assert isinstance(make_model("siamese", cfg), SiameseTraj)
        no_sam = make_model("nt_no_sam", cfg)
        assert not no_sam.config.use_sam
        no_ws = make_model("nt_no_ws", cfg)
        assert not no_ws.config.use_weighted_sampling
        assert no_ws.config.use_sam

    def test_unknown_variant(self):
        with pytest.raises(KeyError):
            make_model("transformer", TINY.neutraj_config("dtw"))


class TestTrainVariant:
    def test_trains_and_embeds(self, workload):
        model = train_variant("neutraj", workload, "hausdorff")
        emb = model.embed(workload.database)
        assert emb.shape == (len(workload.database), TINY.embedding_dim)

    def test_disk_cache_roundtrip(self, workload, tmp_path):
        workload._cache_dir = tmp_path
        try:
            first = train_variant("nt_no_sam", workload, "hausdorff")
            cached = train_variant("nt_no_sam", workload, "hausdorff")
            np.testing.assert_allclose(cached.embed(workload.queries),
                                       first.embed(workload.queries))
            assert any(p.name.startswith("model-nt_no_sam")
                       for p in tmp_path.glob("*.npz"))
        finally:
            workload._cache_dir = None

    def test_sanitize_repairs_dirty_seeds(self, workload):
        # Inject a teleport spike into one seed; sanitize removes exactly
        # that point, so training on the repaired pool matches training on
        # the original clean pool.
        xmin, ymin, xmax, ymax = workload.bbox
        span = max(xmax - xmin, ymax - ymin)
        spiked = workload.seeds[0].points.copy()
        spiked = np.insert(spiked, 1, spiked[1] + span * 1e3, axis=0)
        dirty = dataclasses.replace(workload, seeds=[
            Trajectory(spiked, traj_id=workload.seeds[0].traj_id),
            *workload.seeds[1:],
        ])
        repaired = train_variant("neutraj", dirty, "hausdorff", cache=False,
                                 sanitize=SanitizeConfig(max_jump=span * 10))
        clean = train_variant("neutraj", workload, "hausdorff", cache=False)
        np.testing.assert_allclose(repaired.embed(workload.queries),
                                   clean.embed(workload.queries))

    def test_sanitize_changes_cache_key(self, workload, tmp_path):
        workload._cache_dir = tmp_path
        try:
            train_variant("neutraj", workload, "hausdorff")
            train_variant("neutraj", workload, "hausdorff",
                          sanitize=SanitizeConfig(max_jump=1e9))
            models = [p for p in tmp_path.glob("model-neutraj*.npz")]
            assert len(models) == 2  # distinct digests, no cache collision
        finally:
            workload._cache_dir = None

    def test_cache_false_retrains(self, workload, tmp_path):
        workload._cache_dir = tmp_path
        try:
            model = train_variant("neutraj", workload, "hausdorff",
                                  cache=False)
            assert model.history is not None  # history only exists on fit
            assert not any(p.name.startswith("model-neutraj")
                           for p in tmp_path.glob("*.npz"))
        finally:
            workload._cache_dir = None


class TestApComparator:
    def test_per_measure(self, workload):
        assert isinstance(ap_comparator("frechet", workload),
                          LSHCurveDistance)
        assert isinstance(ap_comparator("dtw", workload), LSHCurveDistance)
        assert isinstance(ap_comparator("hausdorff", workload),
                          AnchorHausdorff)

    def test_erp_has_none(self, workload):
        with pytest.raises(KeyError):
            ap_comparator("erp", workload)


class TestRankings:
    def test_model_rankings_shape(self, workload):
        model = train_variant("neutraj", workload, "hausdorff")
        rankings = model_rankings(model, workload, k=10)
        assert len(rankings) == len(workload.queries)
        assert all(len(r) == 10 for r in rankings)
        for r in rankings:
            assert len(set(r.tolist())) == 10

    def test_ap_rankings_shape(self, workload):
        approx = ap_comparator("hausdorff", workload)
        rankings = ap_rankings(approx, workload, k=10)
        assert len(rankings) == len(workload.queries)
        assert all(len(r) == 10 for r in rankings)


class TestFormatTable:
    def test_renders_aligned(self):
        text = format_table("Title", ["a", "bb"], [["1", "2"], ["33", "4"]])
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_empty_rows(self):
        text = format_table("T", ["col"], [])
        assert "col" in text
