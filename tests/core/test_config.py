"""Tests for NeuTrajConfig validation."""

import pytest

from repro.core.config import NeuTrajConfig
from repro.exceptions import ConfigurationError


def test_defaults_are_valid():
    cfg = NeuTrajConfig()
    assert cfg.measure == "frechet"
    assert cfg.use_sam and cfg.use_weighted_sampling


@pytest.mark.parametrize("field,value", [
    ("embedding_dim", 0),
    ("bandwidth", -1),
    ("cell_size", 0.0),
    ("sampling_num", 0),
    ("batch_anchors", 0),
    ("epochs", 0),
    ("learning_rate", 0.0),
    ("incremental_seeds", 1.5),
    ("incremental_seeds", -0.1),
    ("alpha", 0.0),
])
def test_invalid_values_rejected(field, value):
    with pytest.raises(ConfigurationError):
        NeuTrajConfig(**{field: value})


def test_alpha_none_allowed():
    assert NeuTrajConfig(alpha=None).alpha is None


def test_ablated_copies():
    cfg = NeuTrajConfig(embedding_dim=64)
    no_sam = cfg.ablated(use_sam=False)
    assert not no_sam.use_sam
    assert no_sam.embedding_dim == 64
    assert cfg.use_sam  # original untouched


def test_ablated_validates():
    with pytest.raises(ConfigurationError):
        NeuTrajConfig().ablated(epochs=-1)
