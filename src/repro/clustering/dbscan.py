"""DBSCAN over a precomputed distance matrix (paper §VII-F).

The paper clusters trajectories with DBSCAN twice — once on exact pairwise
distances, once on embedding distances — and compares the partitions. Since
both runs operate on distance matrices, this implementation takes the
matrix directly (no spatial pruning needed at experiment scale).
"""

from __future__ import annotations

from collections import deque

import numpy as np

NOISE = -1
_UNVISITED = -2


def dbscan(distance_matrix: np.ndarray, eps: float,
           min_points: int) -> np.ndarray:
    """Cluster by density reachability.

    Parameters
    ----------
    distance_matrix:
        Symmetric (N, N) pairwise distances.
    eps:
        Neighbourhood radius.
    min_points:
        Minimum neighbourhood size (including the point itself) for a core
        point.

    Returns
    -------
    Integer labels (N,) with clusters numbered from 0; noise points get -1.
    """
    d = np.asarray(distance_matrix, dtype=np.float64)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise ValueError("distance matrix must be square")
    if eps < 0:
        raise ValueError("eps must be non-negative")
    if min_points < 1:
        raise ValueError("min_points must be >= 1")
    n = d.shape[0]
    neighbours = [np.flatnonzero(d[i] <= eps) for i in range(n)]
    is_core = np.array([len(nb) >= min_points for nb in neighbours])

    labels = np.full(n, _UNVISITED, dtype=int)
    cluster = 0
    for start in range(n):
        if labels[start] != _UNVISITED or not is_core[start]:
            continue
        labels[start] = cluster
        queue = deque(neighbours[start])
        while queue:
            point = queue.popleft()
            if labels[point] == NOISE:
                labels[point] = cluster  # border point adopted by cluster
            if labels[point] != _UNVISITED:
                continue
            labels[point] = cluster
            if is_core[point]:
                queue.extend(neighbours[point])
        cluster += 1
    labels[labels == _UNVISITED] = NOISE
    return labels


def num_clusters(labels: np.ndarray) -> int:
    """Number of clusters (noise excluded)."""
    labels = np.asarray(labels)
    return int(len(set(labels[labels != NOISE])))
