"""Tests for the trajectory encoder wrapper."""

import numpy as np
import pytest

from repro.core.config import NeuTrajConfig
from repro.core.encoder import TrajectoryEncoder
from repro.datasets import Grid, Trajectory
from repro.datasets.grid import CoordinateNormalizer


def _encoder(use_sam: bool, seed: int = 0, dim: int = 8):
    grid = Grid((0.0, 0.0, 1000.0, 1000.0), cell_size=100.0)
    normalizer = CoordinateNormalizer(mean=[500.0, 500.0], std=[250.0, 250.0])
    cfg = NeuTrajConfig(embedding_dim=dim, use_sam=use_sam, cell_size=100.0,
                        seed=seed)
    return TrajectoryEncoder(grid, normalizer, cfg,
                             np.random.default_rng(seed))


@pytest.fixture
def trajectories(rng):
    return [Trajectory(rng.uniform(100, 900, size=(n, 2)))
            for n in (5, 9, 3)]


@pytest.mark.parametrize("use_sam", [True, False])
def test_encode_shape(use_sam, trajectories):
    enc = _encoder(use_sam)
    out = enc.encode(trajectories)
    assert out.shape == (3, 8)


@pytest.mark.parametrize("use_sam", [True, False])
def test_embed_matches_encode(use_sam, trajectories):
    enc = _encoder(use_sam)
    np.testing.assert_allclose(enc.embed(trajectories),
                               enc.encode(trajectories).data)


def test_embed_batching_consistent(trajectories):
    enc = _encoder(True)
    full = enc.embed(trajectories, batch_size=128)
    small = enc.embed(trajectories, batch_size=1)
    np.testing.assert_allclose(full, small)


def test_embed_empty_returns_zero_rows():
    enc = _encoder(False)
    out = enc.embed([])
    assert out.shape == (0, 8)


def test_sam_flag(trajectories):
    assert _encoder(True).uses_sam
    assert not _encoder(False).uses_sam


def test_inference_is_memory_readonly(trajectories):
    enc = _encoder(True)
    enc.embed(trajectories)
    assert enc.memory.occupancy() == 0.0


def test_training_encode_writes_memory(trajectories):
    enc = _encoder(True)
    enc.encode(trajectories, update_memory=True)
    assert enc.memory.occupancy() > 0.0


def test_reset_memory(trajectories):
    enc = _encoder(True)
    enc.encode(trajectories, update_memory=True)
    enc.reset_memory()
    assert enc.memory.occupancy() == 0.0


def test_deterministic_across_instances(trajectories):
    a = _encoder(True, seed=3)
    b = _encoder(True, seed=3)
    np.testing.assert_allclose(a.embed(trajectories), b.embed(trajectories))


def test_embedding_order_independent_when_readonly(trajectories):
    enc = _encoder(True)
    fwd = enc.embed(trajectories)
    rev = enc.embed(list(reversed(trajectories)))
    np.testing.assert_allclose(fwd, rev[::-1])
