"""resource-leak: handle lifetime tracking on non-exception paths.

Every acquisition of an OS-backed resource — ``open``/``os.open`` file
handles, ``mmap.mmap`` maps, ``multiprocessing.Pipe()`` connection pairs,
``Process`` handles, ``os.pipe()`` fd pairs — must reach a release
(``close``/``join``/``terminate``/…) or be acquired by a ``with``
statement on every **non-exception** path. The sharded serving tier
leaks silently otherwise: a worker that early-returns past ``conn.close``
pins the pipe fd for the life of the parent.

The tracker is deliberately a *must-leak* detector, tuned for zero false
positives rather than completeness:

* any escape ends tracking — storing into ``self.x`` or a container,
  returning/yielding the handle, passing it to a call, aliasing it, or
  capturing it in a nested ``def``/``lambda`` transfers ownership to
  code this rule cannot see;
* an ``if``/``else`` join keeps a handle tracked only when it is still
  open (and unescaped) in **both** branches;
* ``try`` bodies are analysed on the non-exception path (body →
  ``else`` → ``finally``); releases inside ``except`` handlers also
  count, so cleanup-in-handler never trips the rule.

What survives all of that and is still open at a ``return`` or at the
end of the function leaks on a path that raises nothing — the report
anchors at the acquisition site.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from . import register_program
from .base import ProgramRule

#: Canonical call targets that hand back one closable handle.
_SINGLE_ACQUIRERS = frozenset({
    "open", "io.open", "os.open", "os.fdopen", "gzip.open", "bz2.open",
    "lzma.open", "mmap.mmap", "tempfile.NamedTemporaryFile",
    "tempfile.TemporaryFile", "socket.socket",
})

#: Last-segment names that hand back a handle regardless of the prefix
#: (``multiprocessing.Pipe``, ``ctx.Pipe``, ``self._mp.Process``...).
_SUFFIX_ACQUIRERS = frozenset({"Pipe", "Process"})

#: Call targets returning a *pair* of handles to unpack.
_PAIR_ACQUIRERS = frozenset({"os.pipe"})

_RELEASE_METHODS = frozenset({
    "close", "join", "terminate", "kill", "release", "shutdown", "stop",
})

#: ``os.close(fd)``-style releases taking the handle as first argument.
_RELEASE_CALLS = frozenset({"os.close"})


class _Handle:
    __slots__ = ("name", "node", "what")

    def __init__(self, name: str, node: ast.AST, what: str):
        self.name = name
        self.node = node
        self.what = what


class _Tracker:
    """Statement-level handle tracking through one function body."""

    def __init__(self, rule, program, module, fn):
        self.rule = rule
        self.program = program
        self.module = module
        self.fn = fn
        self.leaks: Dict[Tuple[int, int, str], _Handle] = {}
        #: inside an ``except`` handler: an exception path, whose exits
        #: never count as leaks (the acquisition may not have happened).
        self._in_handler = False

    def run(self) -> List:
        env: Dict[str, _Handle] = {}
        self._stmts(self.fn.node.body, env)
        self._record_exit(env)
        findings = []
        for handle in self.leaks.values():
            findings.append(self.program.finding(
                self.module, self.rule.rule_id, handle.node,
                f"{handle.what} `{handle.name}` acquired here never "
                f"reaches close()/join() on a non-exception path (and "
                f"never escapes this function); use a `with` block or "
                f"close it before every return"))
        return findings

    def _record_exit(self, env: Dict[str, _Handle]) -> None:
        if self._in_handler:
            return
        for handle in env.values():
            key = (getattr(handle.node, "lineno", 0),
                   getattr(handle.node, "col_offset", 0), handle.name)
            self.leaks[key] = handle

    # ------------------------------------------------------------ statements

    def _stmts(self, stmts, env: Dict[str, _Handle]) -> None:
        for stmt in stmts:
            self._stmt(stmt, env)

    def _stmt(self, stmt, env: Dict[str, _Handle]) -> None:
        if isinstance(stmt, ast.Assign):
            self._assign(stmt.targets, stmt.value, stmt, env)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign([stmt.target], stmt.value, stmt, env)
        elif isinstance(stmt, ast.AugAssign):
            self._escape_in(stmt.value, env)
        elif isinstance(stmt, ast.Expr):
            self._expr_stmt(stmt.value, env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._escape_in(stmt.value, env)
            self._record_exit(env)
            if not self._in_handler:
                # the rest of this block is unreachable; inside a
                # handler the env copy must survive untouched so a bare
                # `return` is not mistaken for a release on the main
                # path.
                env.clear()
        elif isinstance(stmt, ast.If):
            then_env = dict(env)
            else_env = dict(env)
            self._stmts(stmt.body, then_env)
            self._stmts(stmt.orelse, else_env)
            env.clear()
            # must-leak join: open only when open on both branches
            for name, handle in then_env.items():
                if name in else_env:
                    env[name] = handle
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._escape_in(stmt.iter, env)
            self._stmts(stmt.body, env)
            self._stmts(stmt.orelse, env)
        elif isinstance(stmt, ast.While):
            self._escape_in(stmt.test, env)
            self._stmts(stmt.body, env)
            self._stmts(stmt.orelse, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                # `with open(...)` is the blessed form: never tracked.
                if not self._acquisition(item.context_expr):
                    self._escape_in(item.context_expr, env)
            self._stmts(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            self._stmts(stmt.body, env)
            for handler in stmt.handlers:
                # Handlers run on exception paths we do not report, but
                # cleanup there still counts: anything the handler
                # releases or escapes stops being tracked on the main
                # path too (else close-in-except would be a false
                # positive).
                handler_env = dict(env)
                was_in_handler = self._in_handler
                self._in_handler = True
                self._stmts(handler.body, handler_env)
                self._in_handler = was_in_handler
                for name in list(env):
                    if name not in handler_env:
                        del env[name]
            self._stmts(stmt.orelse, env)
            self._stmts(stmt.finalbody, env)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.Lambda)):
            self._escape_captured(stmt, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            pass  # exception paths are out of scope
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._escape_in(child, env)

    def _assign(self, targets, value, stmt, env) -> None:
        acquisition = self._acquisition(value)
        if acquisition is not None:
            what, pair = acquisition
            for target in targets:
                if isinstance(target, ast.Name):
                    env[target.id] = _Handle(target.id, stmt, what)
                elif pair and isinstance(target, (ast.Tuple, ast.List)) \
                        and all(isinstance(e, ast.Name)
                                for e in target.elts):
                    for element in target.elts:
                        env[element.id] = _Handle(element.id, stmt, what)
                # any other target shape: handle escapes immediately
            return
        self._escape_in(value, env)
        for target in targets:
            for node in ast.walk(target):
                if isinstance(node, ast.Name):
                    env.pop(node.id, None)

    def _expr_stmt(self, value, env) -> None:
        if isinstance(value, ast.Call):
            func = value.func
            # h.close() / proc.join() on a tracked handle releases it
            if isinstance(func, ast.Attribute) \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id in env:
                if func.attr in _RELEASE_METHODS:
                    env.pop(func.value.id, None)
                # other methods on the handle (start, fileno, send)
                # keep it tracked; only args escape.
                for argument in value.args:
                    self._escape_in(argument, env)
                for keyword in value.keywords:
                    self._escape_in(keyword.value, env)
                return
            # os.close(fd)
            resolved = self.module.resolve_name(func) or ""
            if resolved in _RELEASE_CALLS and value.args \
                    and isinstance(value.args[0], ast.Name):
                env.pop(value.args[0].id, None)
                return
        self._escape_in(value, env)

    # -------------------------------------------------------------- escapes

    def _escape_in(self, node, env) -> None:
        """Any tracked name referenced under ``node`` escapes."""
        if node is None or not env:
            return
        for child in ast.walk(node):
            if isinstance(child, ast.Name):
                env.pop(child.id, None)

    def _escape_captured(self, stmt, env) -> None:
        self._escape_in(stmt, env)

    # --------------------------------------------------------- acquisitions

    def _acquisition(self, node) -> Optional[Tuple[str, bool]]:
        """``(kind, is_pair)`` when ``node`` acquires a handle."""
        if not isinstance(node, ast.Call):
            return None
        resolved = self.module.resolve_name(node.func)
        if resolved is None:
            return None
        if resolved in _SINGLE_ACQUIRERS:
            return resolved.rsplit(".", 1)[-1] + " handle", False
        if resolved in _PAIR_ACQUIRERS:
            return "pipe fd", True
        suffix = resolved.rsplit(".", 1)[-1]
        if suffix in _SUFFIX_ACQUIRERS:
            if suffix == "Pipe":
                return "Pipe connection", True
            return "Process handle", False
        return None


@register_program
class ResourceLeakRule(ProgramRule):
    rule_id = "resource-leak"
    description = ("Pipe/Process/file/mmap handles must reach close/join "
                   "or a with-block on every non-exception path")
    default_options: Dict = {}

    def check_module(self, program, callgraph, module, options):
        findings = []
        for fn in program.functions.values():
            if fn.module is not module:
                continue
            tracker = _Tracker(self, program, module, fn)
            findings.extend(tracker.run())
        return findings
