"""Tests for dataset persistence (npz / csv)."""

import numpy as np
import pytest

from repro.datasets import (Trajectory, TrajectoryDataset, load_csv, load_npz,
                            save_csv, save_npz)


@pytest.fixture
def dataset(rng):
    return TrajectoryDataset([
        Trajectory(rng.normal(size=(n, 2)) * 100, traj_id=i)
        for i, n in enumerate([3, 7, 12])
    ])


def test_npz_roundtrip(dataset, tmp_path):
    path = tmp_path / "data.npz"
    save_npz(dataset, path)
    loaded = load_npz(path)
    assert len(loaded) == len(dataset)
    for orig, back in zip(dataset, loaded):
        np.testing.assert_allclose(back.points, orig.points)
        assert back.traj_id == orig.traj_id


def test_npz_roundtrip_without_ids(tmp_path):
    ds = TrajectoryDataset([Trajectory([[0.0, 0.0], [1.0, 1.0]])])
    path = tmp_path / "noid.npz"
    save_npz(ds, path)
    assert load_npz(path)[0].traj_id is None


def test_csv_roundtrip(dataset, tmp_path):
    path = tmp_path / "data.csv"
    save_csv(dataset, path)
    loaded = load_csv(path)
    assert len(loaded) == len(dataset)
    for orig, back in zip(dataset, loaded):
        np.testing.assert_allclose(back.points, orig.points, atol=1e-5)
        assert back.traj_id == orig.traj_id


def test_csv_header(dataset, tmp_path):
    path = tmp_path / "data.csv"
    save_csv(dataset, path)
    with open(path) as handle:
        assert handle.readline().strip() == "traj_id,point_index,x,y"


def test_csv_assigns_position_as_missing_id(tmp_path):
    ds = TrajectoryDataset([Trajectory([[0.0, 0.0], [1.0, 1.0]])])
    path = tmp_path / "noid.csv"
    save_csv(ds, path)
    assert load_csv(path)[0].traj_id == 0


DIRTY_CSV = """traj_id,point_index,x,y
0,0,0.0,0.0
0,1,1.0,1.0
not-a-number,0,2.0,2.0
1,0,3.0
1,1,4.0,abc
1,2,5.0,5.0
1,3,6.0,6.0
2,0,nan,7.0
2,1,8.0,8.0
"""


def test_csv_skips_malformed_rows_and_logs(tmp_path, caplog):
    path = tmp_path / "dirty.csv"
    path.write_text(DIRTY_CSV)
    with caplog.at_level("WARNING", logger="repro.datasets.io"):
        loaded = load_csv(path)
    # Trajectory 0 is clean; trajectory 1 keeps its 2 valid points
    # (short row + non-numeric y dropped); trajectory 2 has a NaN point
    # and fails validation, so it is dropped entirely.
    assert [t.traj_id for t in loaded] == [0, 1]
    assert len(loaded[1]) == 2
    np.testing.assert_allclose(loaded[1].points, [[5.0, 5.0], [6.0, 6.0]])
    assert any("skipped 3 malformed rows" in r.message for r in caplog.records)
    assert any("dropped 1 invalid trajectories" in r.message
               for r in caplog.records)


def test_csv_strict_raises_on_first_bad_row(tmp_path):
    path = tmp_path / "dirty.csv"
    path.write_text(DIRTY_CSV)
    with pytest.raises(ValueError, match="malformed row"):
        load_csv(path, strict=True)


def test_npz_lenient_skips_invalid(tmp_path):
    from repro.exceptions import InvalidTrajectoryError

    ds = TrajectoryDataset([Trajectory([[0.0, 0.0], [1.0, 1.0]], traj_id=0),
                            Trajectory([[2.0, 2.0], [3.0, 3.0]], traj_id=1)])
    path = tmp_path / "data.npz"
    save_npz(ds, path)
    # Corrupt one coordinate to NaN, in place, to simulate a bad producer.
    with np.load(path) as data:
        arrays = {k: data[k].copy() for k in data.files}
    arrays["flat"][0, 0] = np.nan
    np.savez_compressed(path, **arrays)
    with pytest.raises(InvalidTrajectoryError):
        load_npz(path)
    loaded = load_npz(path, strict=False)
    assert [t.traj_id for t in loaded] == [1]
