"""Inline suppression pragmas.

Syntax (inside any ``#`` comment)::

    # repro: disable=<rule-id>[,<rule-id>...]      suppress on this line
    # repro: disable-file=<rule-id>[,...]          suppress in whole file

A line pragma suppresses matching findings anchored to its own physical
line. When the pragma comment is the *only* content of its line, it also
covers the line directly below it, so multi-line statements (and lines too
long to carry a trailing comment) can be annotated from above. The rule
list may be ``all`` to suppress every rule.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Set

_LINE_RE = re.compile(r"#\s*repro:\s*disable=([A-Za-z0-9_\-, ]+)")
_FILE_RE = re.compile(r"#\s*repro:\s*disable-file=([A-Za-z0-9_\-, ]+)")

#: Wildcard rule name accepted in pragma lists.
ALL_RULES = "all"


def _parse_rule_list(raw: str) -> FrozenSet[str]:
    return frozenset(part.strip() for part in raw.split(",") if part.strip())


class PragmaIndex:
    """Per-file index of suppression pragmas, queried per finding."""

    def __init__(self, line_rules: Dict[int, FrozenSet[str]],
                 file_rules: FrozenSet[str]):
        self._line_rules = line_rules
        self._file_rules = file_rules

    @classmethod
    def from_source(cls, source: str) -> "PragmaIndex":
        line_rules: Dict[int, Set[str]] = {}
        file_rules: Set[str] = set()
        for lineno, text in enumerate(source.splitlines(), start=1):
            file_match = _FILE_RE.search(text)
            if file_match:
                file_rules |= _parse_rule_list(file_match.group(1))
            line_match = _LINE_RE.search(text)
            if not line_match:
                continue
            rules = _parse_rule_list(line_match.group(1))
            line_rules.setdefault(lineno, set()).update(rules)
            before_comment = text[:text.index("#")].strip()
            if not before_comment:  # standalone comment: covers the next line
                line_rules.setdefault(lineno + 1, set()).update(rules)
        return cls({line: frozenset(rules)
                    for line, rules in line_rules.items()},
                   frozenset(file_rules))

    def suppresses(self, rule: str, line: int) -> bool:
        if ALL_RULES in self._file_rules or rule in self._file_rules:
            return True
        rules = self._line_rules.get(line)
        if rules is None:
            return False
        return ALL_RULES in rules or rule in rules

    @property
    def empty(self) -> bool:
        return not self._line_rules and not self._file_rules
