"""Clean negative: a shape joined at a branch must not be guessed at.

``hidden`` is ``(4, 8)`` on one branch and ``(4, 6)`` on the other; the
join is ``(4, T)`` and the following matmul against ``(8, 3)`` is *not*
provably wrong, so the tape-shape rule stays silent.
"""

import numpy as np

from repro.nn.tensor import Tensor  # opts this module into tape-shape


def branch_blend(flag):
    if flag:
        hidden = np.zeros((4, 8))
    else:
        hidden = np.zeros((4, 6))
    weights = np.zeros((8, 3))
    return Tensor(np.matmul(hidden, weights))
