"""Tests for the SSPD segment-path measure."""

import numpy as np
import pytest

from repro.measures import SSPDDistance, get_measure
from repro.measures.sspd import point_to_segments


class TestPointToSegments:
    def test_point_on_polyline_zero(self):
        line = np.array([[0.0, 0.0], [10.0, 0.0]])
        d = point_to_segments(np.array([[5.0, 0.0]]), line)
        assert d[0] == pytest.approx(0.0)

    def test_perpendicular_distance(self):
        line = np.array([[0.0, 0.0], [10.0, 0.0]])
        d = point_to_segments(np.array([[5.0, 3.0]]), line)
        assert d[0] == pytest.approx(3.0)

    def test_beyond_endpoint_uses_endpoint(self):
        line = np.array([[0.0, 0.0], [10.0, 0.0]])
        d = point_to_segments(np.array([[14.0, 3.0]]), line)
        assert d[0] == pytest.approx(5.0)

    def test_interior_of_segment_beats_vertices(self):
        """The segment interior matters: vertex-only distance would be
        larger for a point across the middle of a long segment."""
        line = np.array([[0.0, 0.0], [100.0, 0.0]])
        d = point_to_segments(np.array([[50.0, 1.0]]), line)
        assert d[0] == pytest.approx(1.0)
        vertex_only = min(np.linalg.norm([50.0, 1.0]),
                          np.linalg.norm([50.0 - 100.0, 1.0]))
        assert d[0] < vertex_only

    def test_single_vertex_polyline(self):
        d = point_to_segments(np.array([[3.0, 4.0]]), np.array([[0.0, 0.0]]))
        assert d[0] == pytest.approx(5.0)

    def test_degenerate_zero_length_segment(self):
        line = np.array([[1.0, 1.0], [1.0, 1.0]])
        d = point_to_segments(np.array([[4.0, 5.0]]), line)
        assert d[0] == pytest.approx(5.0)

    def test_multiple_points_shape(self, rng):
        pts = rng.normal(size=(7, 2))
        line = rng.normal(size=(5, 2))
        assert point_to_segments(pts, line).shape == (7,)


class TestSSPD:
    def test_identical_zero(self, rng):
        a = rng.normal(size=(8, 2))
        assert SSPDDistance().distance(a, a) == pytest.approx(0.0)

    def test_symmetric(self, rng):
        sspd = SSPDDistance()
        a = rng.normal(size=(8, 2))
        b = rng.normal(size=(5, 2))
        assert sspd.distance(a, b) == pytest.approx(sspd.distance(b, a))

    def test_parallel_lines(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        b = a + [0.0, 1.0]
        assert SSPDDistance().distance(a, b) == pytest.approx(1.0)

    def test_robust_to_resampling(self, rng):
        """Densifying one trajectory barely changes SSPD (unlike DTW)."""
        from repro.datasets import Trajectory, resample
        from repro.measures import get_measure
        walk = np.cumsum(rng.normal(size=(15, 2)), axis=0)
        other = walk + rng.normal(scale=0.2, size=walk.shape)
        dense = resample(Trajectory(other), 60).points
        sspd = SSPDDistance()
        before = sspd.distance(walk, other)
        after = sspd.distance(walk, dense)
        assert after == pytest.approx(before, abs=0.3)
        dtw = get_measure("dtw")
        assert (abs(dtw.distance(walk, dense) - dtw.distance(walk, other))
                > abs(after - before))

    def test_spd_one_sided(self):
        sspd = SSPDDistance()
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 2.0], [1.0, 2.0], [1.0, 50.0]])
        # a's points are 2 away from b's polyline; b has a far excursion.
        assert sspd.spd(a, b) == pytest.approx(2.0)
        assert sspd.spd(b, a) > sspd.spd(a, b)

    def test_registered(self):
        assert get_measure("sspd").name == "sspd"
        assert not get_measure("sspd").is_metric

    def test_trains_neutraj(self, small_dataset):
        from repro import NeuTraj, NeuTrajConfig
        from repro.measures import pairwise_distances
        seeds = list(small_dataset)[:15]
        matrix = pairwise_distances(seeds, SSPDDistance())
        model = NeuTraj(NeuTrajConfig(measure="sspd", embedding_dim=8,
                                      epochs=1, sampling_num=3,
                                      batch_anchors=8, cell_size=500.0,
                                      seed=0))
        history = model.fit(seeds, distance_matrix=matrix)
        assert np.isfinite(history.losses).all()
