"""Measure interface and registry.

NeuTraj is *generic*: any trajectory measure can guide training (paper §I).
Measures implement :class:`TrajectoryMeasure` and register under a string
name so experiment configs can select them (``get_measure("dtw")``).
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Type

import numpy as np

from ..exceptions import InvalidTrajectoryError


def check_pair(a, b) -> None:
    """Reject degenerate measure inputs with a typed error, up front.

    Every measure's :meth:`TrajectoryMeasure.distance` calls this first.
    Without it each kernel failed its own way on empty or single-point
    inputs — ``inf``, ``1.0``, NaN warnings, ``IndexError`` — so callers
    could not tell garbage data from a real distance. A trajectory needs
    at least one segment (two points) to be compared; shorter inputs and
    non-``(L, 2)`` shapes raise :class:`InvalidTrajectoryError`. Repair
    rather than reject via :mod:`repro.dataquality` when the data is
    merely dirty.
    """
    for arr in (a, b):
        try:
            arr = np.asarray(arr, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise InvalidTrajectoryError(
                f"trajectory is not a numeric point array: {exc}") from exc
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise InvalidTrajectoryError(
                f"expected an (L, 2) point array, got shape {arr.shape}")
        if arr.shape[0] < 2:
            raise InvalidTrajectoryError(
                f"trajectory must have >= 2 points to be measured, "
                f"got {arr.shape[0]}")


def point_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All-pairs Euclidean distances between two point sequences.

    Parameters
    ----------
    a, b:
        Arrays of shape (n, 2) and (m, 2).

    Returns
    -------
    (n, m) distance matrix.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt((diff * diff).sum(axis=-1))


class TrajectoryMeasure:
    """Base class: a distance function over point arrays.

    Sub-classes implement :meth:`distance` on raw (L, 2) arrays; the
    convenience ``__call__`` also accepts :class:`~repro.datasets.Trajectory`.
    """

    #: registry name, set by subclasses
    name: str = ""
    #: True when the measure is a metric (symmetric + triangle inequality)
    is_metric: bool = True

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        raise NotImplementedError

    def distance_many(self, pairs_a: Sequence[np.ndarray],
                      pairs_b: Sequence[np.ndarray]) -> np.ndarray:
        """Distances for aligned lists of pairs: ``out[k] = d(a[k], b[k])``.

        The default loops over :meth:`distance`; measures with batched
        kernels (see :mod:`repro.measures._batch`) override this with an
        element-wise-identical vectorised implementation. The chunked
        distance-matrix driver calls this on each work unit.
        """
        return np.array([self.distance(np.asarray(a, dtype=np.float64),
                                       np.asarray(b, dtype=np.float64))
                         for a, b in zip(pairs_a, pairs_b)], dtype=np.float64)

    def cache_token(self) -> str:
        """Stable string identifying the measure *and* its parameters.

        Used by the distance-matrix ``.npz`` cache key, so two instances
        that compute different distances must produce different tokens.
        """
        parts = [type(self).__name__, self.name]
        for key, value in sorted(vars(self).items()):
            if isinstance(value, np.ndarray):
                value = value.tobytes().hex()
            parts.append(f"{key}={value!r}")
        return "|".join(parts)

    def __call__(self, a, b) -> float:
        a = getattr(a, "points", a)
        b = getattr(b, "points", b)
        try:
            a = np.asarray(a, dtype=np.float64)
            b = np.asarray(b, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise InvalidTrajectoryError(
                f"trajectory is not a numeric point array: {exc}") from exc
        return self.distance(a, b)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


_REGISTRY: Dict[str, Callable[..., TrajectoryMeasure]] = {}


def register_measure(name: str):
    """Class decorator adding a measure to the registry under ``name``."""

    def decorator(cls: Type[TrajectoryMeasure]) -> Type[TrajectoryMeasure]:
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def get_measure(name: str, **kwargs) -> TrajectoryMeasure:
    """Instantiate a registered measure by name (e.g. ``"frechet"``)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown measure {name!r}; available: {sorted(_REGISTRY)}") from None
    return factory(**kwargs)


def available_measures() -> list:
    """Names of all registered measures."""
    return sorted(_REGISTRY)
