"""Inline suppression pragmas.

Syntax (inside any ``#`` comment)::

    # repro: disable=<rule-id>[,<rule-id>...]      suppress on this line
    # repro: disable-file=<rule-id>[,...]          suppress in whole file

A line pragma suppresses matching findings anchored to its own physical
line. When the pragma comment is the *only* content of its line, it also
covers the line directly below it, so multi-line statements (and lines too
long to carry a trailing comment) can be annotated from above. The rule
list may be ``all`` to suppress every rule.

Each pragma is tracked as a :class:`PragmaEntry`; :meth:`PragmaIndex.
suppresses` marks the entries that actually fired, which is what
``lint --stale-pragmas`` uses to report suppressions that no longer
suppress anything.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, List, Tuple

_LINE_RE = re.compile(r"#\s*repro:\s*disable=([A-Za-z0-9_\-, ]+)")
_FILE_RE = re.compile(r"#\s*repro:\s*disable-file=([A-Za-z0-9_\-, ]+)")

#: Wildcard rule name accepted in pragma lists.
ALL_RULES = "all"


def _parse_rule_list(raw: str) -> FrozenSet[str]:
    return frozenset(part.strip() for part in raw.split(",") if part.strip())


class PragmaEntry:
    """One pragma comment: where it lives, what it suppresses, whether it
    ever fired during the run that built its index."""

    __slots__ = ("source_line", "rules", "is_file", "used")

    def __init__(self, source_line: int, rules: FrozenSet[str],
                 is_file: bool):
        self.source_line = source_line
        self.rules = rules
        self.is_file = is_file
        self.used = False

    def matches(self, rule: str) -> bool:
        return ALL_RULES in self.rules or rule in self.rules

    @property
    def text(self) -> str:
        kind = "disable-file" if self.is_file else "disable"
        return f"# repro: {kind}={','.join(sorted(self.rules))}"


class PragmaIndex:
    """Per-file index of suppression pragmas, queried per finding."""

    def __init__(self, entries: List[PragmaEntry],
                 coverage: Dict[int, List[PragmaEntry]]):
        self.entries = entries
        self._coverage = coverage  # finding line -> line-pragma entries
        self._file_entries = [e for e in entries if e.is_file]

    @classmethod
    def from_source(cls, source: str) -> "PragmaIndex":
        entries: List[PragmaEntry] = []
        coverage: Dict[int, List[PragmaEntry]] = {}
        for lineno, standalone, text in cls._comments(source):
            file_match = _FILE_RE.search(text)
            if file_match:
                entries.append(PragmaEntry(
                    lineno, _parse_rule_list(file_match.group(1)),
                    is_file=True))
            line_match = _LINE_RE.search(text)
            if not line_match:
                continue
            entry = PragmaEntry(lineno,
                                _parse_rule_list(line_match.group(1)),
                                is_file=False)
            entries.append(entry)
            coverage.setdefault(lineno, []).append(entry)
            if standalone:  # standalone comment: covers the next line
                coverage.setdefault(lineno + 1, []).append(entry)
        return cls(entries, coverage)

    @staticmethod
    def _comments(source: str) -> List[Tuple[int, bool, str]]:
        """``(lineno, is_standalone, text)`` for each real comment token.

        Tokenizing (rather than regex-scanning raw lines) keeps pragma
        syntax *inside string literals* — docstrings that document the
        pragma, error messages that suggest it — from registering as
        live suppressions. Falls back to a line scan only if the file
        does not tokenize (the engine only builds an index for files
        that already parsed, so this is a cold path).
        """
        lines = source.splitlines()
        try:
            tokens = list(tokenize.generate_tokens(
                io.StringIO(source).readline))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            out = []
            for lineno, text in enumerate(lines, start=1):
                if "#" in text:
                    standalone = not text[:text.index("#")].strip()
                    out.append((lineno, standalone, text))
            return out
        out = []
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            lineno, col = token.start
            before = lines[lineno - 1][:col] if lineno <= len(lines) else ""
            out.append((lineno, not before.strip(), token.string))
        return out

    def suppresses(self, rule: str, line: int) -> bool:
        hit = False
        for entry in self._file_entries:
            if entry.matches(rule):
                entry.used = True
                hit = True
        if hit:
            return True
        for entry in self._coverage.get(line, ()):
            if entry.matches(rule):
                entry.used = True
                hit = True
        return hit

    def unused(self) -> List[PragmaEntry]:
        """Entries that suppressed nothing during this index's run."""
        return [entry for entry in self.entries if not entry.used]

    @property
    def empty(self) -> bool:
        return not self.entries
