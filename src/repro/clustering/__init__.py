"""Density clustering and partition-quality metrics."""

from .dbscan import NOISE, dbscan, num_clusters
from .metrics import (adjusted_rand_index, contingency_table,
                      homogeneity_completeness_v)

__all__ = [
    "NOISE", "dbscan", "num_clusters",
    "adjusted_rand_index", "contingency_table", "homogeneity_completeness_v",
]
