"""Tests for the ranking / margin / MSE losses (paper Eq. 8-9)."""

import numpy as np
import pytest

from repro.core.loss import (dissimilar_loss, mse_pair_loss, ranking_loss,
                             similar_loss)
from repro.core.sampling import rank_weights
from repro.nn.tensor import Tensor


def test_similar_loss_zero_at_perfect_fit():
    truth = np.array([0.5, 0.3, 0.1])
    loss = similar_loss(Tensor(truth.copy()), truth, rank_weights(3))
    assert loss.item() == pytest.approx(0.0)


def test_similar_loss_weighted_by_rank():
    truth = np.zeros(2)
    w = rank_weights(2)
    # Error of 1 on rank-1 position costs w[0]; on rank-2 costs w[1] < w[0].
    first = similar_loss(Tensor([1.0, 0.0]), truth, w).item()
    second = similar_loss(Tensor([0.0, 1.0]), truth, w).item()
    assert first == pytest.approx(w[0])
    assert second == pytest.approx(w[1])
    assert first > second


def test_dissimilar_loss_one_sided():
    truth = np.array([0.5])
    w = rank_weights(1)
    # Predicted below truth: already separated -> zero loss.
    below = dissimilar_loss(Tensor([0.2]), truth, w).item()
    above = dissimilar_loss(Tensor([0.9]), truth, w).item()
    assert below == 0.0
    assert above == pytest.approx(w[0] * 0.4 ** 2)


def test_dissimilar_loss_gradient_flows_only_when_violating():
    truth = np.array([0.5, 0.5])
    w = rank_weights(2)
    pred = Tensor(np.array([0.9, 0.1]), requires_grad=True)
    dissimilar_loss(pred, truth, w).backward()
    assert pred.grad[0] != 0.0
    assert pred.grad[1] == 0.0


def test_ranking_loss_is_sum():
    w = rank_weights(2)
    s_pred = Tensor([0.4, 0.2])
    d_pred = Tensor([0.8, 0.1])
    s_truth = np.array([0.5, 0.25])
    d_truth = np.array([0.3, 0.2])
    total = ranking_loss(s_pred, s_truth, d_pred, d_truth, w).item()
    expected = (similar_loss(s_pred, s_truth, w).item()
                + dissimilar_loss(d_pred, d_truth, w).item())
    assert total == pytest.approx(expected)


def test_mse_pair_loss_mean():
    pred = Tensor([1.0, 3.0])
    truth = np.array([0.0, 0.0])
    assert mse_pair_loss(pred, truth).item() == pytest.approx(5.0)


def test_losses_are_differentiable():
    w = rank_weights(3)
    pred = Tensor(np.array([0.5, 0.4, 0.3]), requires_grad=True)
    truth = np.array([0.6, 0.2, 0.9])
    similar_loss(pred, truth, w).backward()
    assert pred.grad is not None
    np.testing.assert_allclose(pred.grad, 2 * w * (pred.data - truth))
