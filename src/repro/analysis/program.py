"""Whole-program model: module graph, class/field database, lock inventory.

``python -m repro lint`` reasons about one file at a time; the
whole-program rules (``lockset``, ``tape-shape``, ``resource-leak``) need
to see *across* files and methods. This module builds the shared
substrate they all consume:

* :class:`ModuleInfo` — one parsed module with its dotted name, source
  hash (the key of the incremental analyze cache) and import map;
* :class:`ClassInfo` / :class:`FunctionInfo` — a database of every class,
  method and module-level function, with per-class field and lock
  inventories (``self._x = threading.Lock()`` and Condition aliases such
  as ``self._cond = threading.Condition(self._mu)`` canonicalise to the
  underlying lock attribute);
* :class:`ProgramModel` — the container, plus the subclass map used to
  resolve inherited ``self.``-method dispatch.

The model is purely syntactic (no imports are executed) and cheap to
build — parsing dominates — which is what makes per-module caching in
:func:`repro.analysis.engine.analyze_program_paths` honest: every rule
packaged here derives its findings from a single module's AST plus this
program-wide index.
"""

from __future__ import annotations

import ast
import hashlib
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .findings import Finding

#: Canonical dotted names that construct a mutual-exclusion lock.
LOCK_FACTORIES = frozenset({
    "threading.Lock", "threading.RLock", "threading.Semaphore",
    "threading.BoundedSemaphore", "multiprocessing.Lock",
    "multiprocessing.RLock",
})

#: Condition variables wrap a lock; holding one holds the other.
CONDITION_FACTORIES = frozenset({"threading.Condition"})


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_name_for(rel_path: str) -> str:
    """Dotted module name for a file path (``src/`` prefixes stripped)."""
    parts = list(Path(rel_path).with_suffix("").parts)
    if "src" in parts:
        parts = parts[len(parts) - 1 - parts[::-1].index("src"):]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _import_map(tree: ast.AST) -> Dict[str, str]:
    """Local name -> canonical dotted origin (absolute imports only)."""
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    mapping[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    mapping[root] = root
        elif isinstance(node, ast.ImportFrom) and node.module \
                and not node.level:
            for alias in node.names:
                local = alias.asname or alias.name
                mapping[local] = f"{node.module}.{alias.name}"
    return mapping


class ModuleInfo:
    """One parsed module of the program."""

    def __init__(self, rel_path: str, source: str, tree: ast.Module):
        self.rel_path = rel_path
        self.name = module_name_for(rel_path)
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.imports = _import_map(tree)
        self.sha256 = hashlib.sha256(source.encode("utf-8",
                                                   "replace")).hexdigest()
        self.classes: List["ClassInfo"] = []
        self.functions: List["FunctionInfo"] = []

    def resolve_name(self, node: ast.AST) -> Optional[str]:
        """Dotted name with import aliases canonicalised."""
        name = dotted_name(node)
        if name is None:
            return None
        first, _, rest = name.partition(".")
        origin = self.imports.get(first)
        if origin is None:
            return name
        return f"{origin}.{rest}" if rest else origin

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class FunctionInfo:
    """A module-level function or a method."""

    def __init__(self, module: ModuleInfo, node: ast.AST,
                 cls: Optional["ClassInfo"] = None):
        self.module = module
        self.node = node
        self.name = node.name
        self.cls = cls

    @property
    def qualname(self) -> str:
        if self.cls is not None:
            return f"{self.cls.name}.{self.name}"
        return self.name

    @property
    def key(self) -> str:
        """Globally unique id: ``module.dotted.name:Class.method``."""
        return f"{self.module.name}:{self.qualname}"

    @property
    def docstring(self) -> str:
        return ast.get_docstring(self.node, clean=True) or ""


class ClassInfo:
    """A class with its method table, field writes and lock inventory."""

    def __init__(self, module: ModuleInfo, node: ast.ClassDef):
        self.module = module
        self.node = node
        self.name = node.name
        self.bases = [b for b in (dotted_name(base) for base in node.bases)
                      if b]
        self.methods: Dict[str, FunctionInfo] = {}
        #: lock-like attribute -> canonical lock attribute. A plain
        #: ``self._lock = threading.Lock()`` maps to itself; a Condition
        #: built over an existing lock maps to that lock's attribute.
        self.lock_attrs: Dict[str, str] = {}
        #: attributes assigned anywhere (``self.x = ...`` targets).
        self.fields: Dict[str, List[ast.AST]] = {}

    @property
    def key(self) -> str:
        return f"{self.module.name}:{self.name}"

    def canonical_lock(self, attr: str) -> Optional[str]:
        return self.lock_attrs.get(attr)

    def _index(self) -> None:
        for stmt in self.node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.methods[stmt.name] = FunctionInfo(self.module, stmt,
                                                       cls=self)
        # Field and lock inventory: every `self.<attr> = <value>` in any
        # method (nested defs included — a closure still writes the field).
        pending_conditions: List[Tuple[str, ast.Call]] = []
        for fn in self.methods.values():
            for node in ast.walk(fn.node):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                value = node.value
                for target in targets:
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        continue
                    self.fields.setdefault(target.attr, []).append(node)
                    if not isinstance(value, ast.Call):
                        continue
                    factory = self.module.resolve_name(value.func)
                    if factory in LOCK_FACTORIES:
                        self.lock_attrs[target.attr] = target.attr
                    elif factory in CONDITION_FACTORIES:
                        pending_conditions.append((target.attr, value))
        for attr, call in pending_conditions:
            underlying = attr
            if call.args:
                arg = call.args[0]
                if isinstance(arg, ast.Attribute) \
                        and isinstance(arg.value, ast.Name) \
                        and arg.value.id == "self" \
                        and arg.attr in self.lock_attrs:
                    underlying = self.lock_attrs[arg.attr]
            self.lock_attrs[attr] = underlying


class ProgramModel:
    """The whole-program database the analyze rules run against."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}      # rel_path -> module
        self.by_name: Dict[str, ModuleInfo] = {}      # dotted name -> module
        self.classes: Dict[str, ClassInfo] = {}       # key -> class
        self.functions: Dict[str, FunctionInfo] = {}  # key -> function
        #: class name (unqualified) -> ClassInfo list; resolves bases.
        self._by_class_name: Dict[str, List[ClassInfo]] = {}

    # -------------------------------------------------------------- building

    @classmethod
    def from_sources(cls, sources: Iterable[Tuple[str, str]]
                     ) -> "ProgramModel":
        """Build from ``(rel_path, source)`` pairs; unparseable files are
        skipped here (the engine reports them as ``syntax-error``)."""
        program = cls()
        for rel_path, source in sources:
            try:
                tree = ast.parse(source, filename=rel_path)
            except SyntaxError:
                continue
            program.add_module(ModuleInfo(rel_path, source, tree))
        return program

    def add_module(self, module: ModuleInfo) -> None:
        self.modules[module.rel_path] = module
        self.by_name[module.name] = module
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = FunctionInfo(module, stmt)
                module.functions.append(fn)
                self.functions[fn.key] = fn
            elif isinstance(stmt, ast.ClassDef):
                info = ClassInfo(module, stmt)
                info._index()
                module.classes.append(info)
                self.classes[info.key] = info
                self._by_class_name.setdefault(info.name, []).append(info)
                for method in info.methods.values():
                    self.functions[method.key] = method

    # ------------------------------------------------------------- resolution

    def resolve_class(self, name: str,
                      from_module: ModuleInfo) -> Optional[ClassInfo]:
        """A class by (possibly unqualified) name, as seen from a module."""
        simple = name.rsplit(".", 1)[-1]
        candidates = self._by_class_name.get(simple, [])
        if not candidates:
            return None
        for candidate in candidates:
            if candidate.module is from_module:
                return candidate
        if len(candidates) == 1:
            return candidates[0]
        return None

    def resolve_method(self, cls: ClassInfo, method: str,
                       _depth: int = 0) -> Optional[FunctionInfo]:
        """``cls``'s own method or the nearest base-class definition."""
        if method in cls.methods:
            return cls.methods[method]
        if _depth > 8:  # defensive: cyclic base declarations
            return None
        for base in cls.bases:
            base_cls = self.resolve_class(base, cls.module)
            if base_cls is not None and base_cls is not cls:
                found = self.resolve_method(base_cls, method, _depth + 1)
                if found is not None:
                    return found
        return None

    def subclasses_of(self, cls: ClassInfo) -> List[ClassInfo]:
        """Direct and transitive subclasses known to the program."""
        out: List[ClassInfo] = []
        frontier = [cls]
        seen = {cls.key}
        while frontier:
            current = frontier.pop()
            for candidate in self.classes.values():
                if candidate.key in seen:
                    continue
                for base in candidate.bases:
                    resolved = self.resolve_class(base, candidate.module)
                    if resolved is current:
                        seen.add(candidate.key)
                        out.append(candidate)
                        frontier.append(candidate)
                        break
        return out

    def iter_classes(self) -> Iterator[ClassInfo]:
        return iter(self.classes.values())

    # --------------------------------------------------------------- findings

    def finding(self, module: ModuleInfo, rule_id: str, node: ast.AST,
                message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(rule=rule_id, path=module.rel_path, line=lineno,
                       col=col + 1, message=message,
                       line_text=module.line_text(lineno))
