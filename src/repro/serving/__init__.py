"""Online serving layer: bundles, micro-batching, caching, metrics, HTTP.

Turns a trained :class:`~repro.core.model.MetricModel` plus its
:class:`~repro.core.store.EmbeddingStore` into the long-lived query
service the paper's deployment pattern (§VI-A) describes: embed the
database once, then answer ad-hoc similarity queries online in
O(L + N·d).

Quickstart::

    from repro.serving import SimilarityService, save_bundle

    save_bundle("bundle/", model, store, probes=seeds[:4])
    service = SimilarityService.from_bundle("bundle/")
    result = service.top_k(query_trajectory, k=10)

or over HTTP: ``python -m repro serve --bundle bundle/ --port 8080``.
"""

from .batching import BatcherClosedError, MicroBatcher
from .bundle import (Bundle, BundleError, BUNDLE_SCHEMA, load_bundle,
                     load_bundle_model, save_bundle)
from .cache import LRUCache, result_key, trajectory_fingerprint
from .http import ServingHTTPServer, make_server, serve
from .metrics import Counter, Histogram, MetricsRegistry
from .router import group_by_shard, merge_top_k
from .service import ServingConfig, SimilarityService, TopKResult
from .sharding import ShardedConfig, ShardedService, ShardRequestError

__all__ = [
    "BatcherClosedError", "MicroBatcher",
    "Bundle", "BundleError", "BUNDLE_SCHEMA", "load_bundle",
    "load_bundle_model", "save_bundle",
    "LRUCache", "result_key", "trajectory_fingerprint",
    "ServingHTTPServer", "make_server", "serve",
    "Counter", "Histogram", "MetricsRegistry",
    "group_by_shard", "merge_top_k",
    "ServingConfig", "SimilarityService", "TopKResult",
    "ShardedConfig", "ShardedService", "ShardRequestError",
]
