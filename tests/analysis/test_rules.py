"""Fixture tests for every built-in rule: each must fire on a minimal
violating snippet and go quiet under its suppression pragma."""

import textwrap

import pytest

from repro.analysis import AnalysisConfig, all_rules, analyze_source


def run(source, rel_path="src/repro/serving/example.py", **options):
    config = AnalysisConfig(options=options)
    return analyze_source(textwrap.dedent(source), rel_path, config)


def rules_of(findings):
    return [f.rule for f in findings]


def test_registry_has_the_seven_project_rules():
    assert set(all_rules()) == {
        "api-hygiene", "determinism", "dtype-discipline",
        "durability-discipline", "exception-hygiene", "lock-discipline",
        "tape-discipline",
    }
    for rule_id, rule_cls in all_rules().items():
        assert rule_cls.rule_id == rule_id
        assert rule_cls.description


# ------------------------------------------------------------ tape-discipline

TAPE_MUTATION = """\
    def corrupt(tensor):
        tensor.data[0] = 1.0
"""


def test_tape_rule_fires_on_data_write():
    findings = run(TAPE_MUTATION, rel_path="src/repro/core/x.py")
    assert rules_of(findings) == ["tape-discipline"]
    assert findings[0].line == 2
    assert ".data" in findings[0].message


def test_tape_rule_fires_on_grad_augassign_and_inplace_calls():
    source = """\
        import numpy as np

        def corrupt(tensor, grad):
            tensor.grad += grad
            tensor.data.fill(0.0)
            np.add.at(tensor.data, [0], 1.0)
    """
    findings = run(source, rel_path="src/repro/core/x.py")
    assert rules_of(findings) == ["tape-discipline"] * 3


def test_tape_rule_allows_engine_internals():
    findings = run(TAPE_MUTATION, rel_path="src/repro/nn/tensor.py")
    assert findings == []


def test_tape_rule_requires_no_grad_entry_point():
    source = """\
        def embed(self, batch):
            return self.encoder(batch)
    """
    entry = {"repro/core/encoder.py": ("embed",)}
    findings = run(source, rel_path="src/repro/core/encoder.py",
                   **{"tape-discipline": {"entry_points": entry}})
    assert "no_grad" in findings[0].message

    fixed = """\
        def embed(self, batch):
            with no_grad():
                return self.encoder(batch)
    """
    assert run(fixed, rel_path="src/repro/core/encoder.py",
               **{"tape-discipline": {"entry_points": entry}}) == []


def test_tape_rule_pragma_suppresses():
    source = """\
        def restore(tensor, saved):
            tensor.data = saved  # repro: disable=tape-discipline
    """
    assert run(source, rel_path="src/repro/core/x.py") == []


# ----------------------------------------------------------- dtype-discipline

DTYPE_PACKAGES = {"dtype-discipline": {"packages": ("repro/measures/",)}}


def test_dtype_rule_fires_on_missing_dtype():
    source = """\
        import numpy as np
        table = np.zeros((4, 4))
    """
    findings = run(source, rel_path="src/repro/measures/x.py",
                   **DTYPE_PACKAGES)
    assert rules_of(findings) == ["dtype-discipline"]
    assert "explicit dtype" in findings[0].message


def test_dtype_rule_fires_on_float32():
    source = """\
        import numpy as np
        a = np.zeros(3, dtype=np.float32)
        b = a.astype("float16")
    """
    findings = run(source, rel_path="src/repro/measures/x.py",
                   **DTYPE_PACKAGES)
    assert rules_of(findings) == ["dtype-discipline"] * 2


def test_dtype_rule_accepts_explicit_float64_int_and_like_ctors():
    source = """\
        import numpy as np
        a = np.zeros(3, dtype=np.float64)
        b = np.arange(5, dtype=np.intp)
        c = np.zeros_like(a)
        d = a.astype(np.float64)
    """
    assert run(source, rel_path="src/repro/measures/x.py",
               **DTYPE_PACKAGES) == []


def test_dtype_rule_scoped_to_configured_packages():
    source = """\
        import numpy as np
        table = np.zeros((4, 4))
    """
    assert run(source, rel_path="src/repro/serving/x.py",
               **DTYPE_PACKAGES) == []


def test_dtype_rule_pragma_suppresses():
    source = """\
        import numpy as np
        key = np.asarray("abc")  # repro: disable=dtype-discipline
    """
    assert run(source, rel_path="src/repro/measures/x.py",
               **DTYPE_PACKAGES) == []


# ---------------------------------------------------------------- determinism

def test_determinism_rule_fires_on_global_rngs():
    source = """\
        import random
        import numpy as np

        np.random.seed(0)
        x = np.random.rand(3)
        random.shuffle([1, 2])
    """
    findings = run(source)
    assert rules_of(findings) == ["determinism"] * 3


def test_determinism_rule_fires_on_wall_clock():
    source = """\
        import time
        deadline = time.time() + 5.0
    """
    findings = run(source)
    assert rules_of(findings) == ["determinism"]
    assert "monotonic" in findings[0].message


def test_determinism_rule_accepts_default_rng_and_monotonic():
    source = """\
        import time
        import numpy as np

        rng = np.random.default_rng(0)
        x = rng.normal(size=3)
        start = time.monotonic()
    """
    assert run(source) == []


def test_determinism_rule_pragma_suppresses():
    source = """\
        import time
        created = time.time()  # repro: disable=determinism
    """
    assert run(source) == []


def test_determinism_standalone_pragma_covers_next_line():
    source = """\
        import time
        # metadata stamp, not a deadline  # repro: disable=determinism
        created = time.time()
    """
    assert run(source) == []


# ------------------------------------------------------------ lock-discipline

LOCKED_CLASS = """\
    import threading

    class Service:
        def __init__(self):
            self._lock = threading.Lock()
            self._count = 0

        def bump(self):
            {body}
"""


def test_lock_rule_fires_on_unguarded_write():
    source = LOCKED_CLASS.format(body="self._count += 1")
    findings = run(source)
    assert rules_of(findings) == ["lock-discipline"]
    assert "self._lock" in findings[0].message


def test_lock_rule_accepts_guarded_write_and_public_attrs():
    source = LOCKED_CLASS.format(
        body="with self._lock:\n                self._count += 1")
    assert run(source) == []
    # Public attributes and lock-free classes are out of scope.
    assert run(LOCKED_CLASS.format(body="self.count = 1")) == []
    assert run("class Free:\n    def f(self):\n        self._x = 1\n") == []


def test_lock_rule_honours_lock_held_docstring():
    source = LOCKED_CLASS.format(
        body='"""Caller must hold ``self._lock``."""\n'
             "            self._count += 1")
    assert run(source) == []


def test_lock_rule_pragma_suppresses():
    source = LOCKED_CLASS.format(
        body="self._count += 1  # repro: disable=lock-discipline")
    assert run(source) == []


# --------------------------------------------------------- exception-hygiene

def test_exception_rule_fires_on_silent_broad_catch_and_bare_except():
    source = """\
        def f():
            try:
                work()
            except Exception:
                pass
            try:
                work()
            except:
                pass
    """
    findings = run(source)
    assert rules_of(findings) == ["exception-hygiene"] * 2
    assert "bare" in findings[1].message


@pytest.mark.parametrize("handler", [
    "except ValueError:\n                pass",              # narrowed
    "except Exception:\n                raise",              # re-raises
    "except Exception as exc:\n                note(exc)",   # uses exc
    "except Exception:\n                log.exception('x')",  # records
])
def test_exception_rule_accepts_handled_catches(handler):
    source = f"""\
        def f():
            try:
                work()
            {handler}
    """
    assert run(source) == []


def test_exception_rule_pragma_suppresses():
    source = """\
        def f():
            try:
                work()
            except Exception:  # repro: disable=exception-hygiene
                pass
    """
    assert run(source) == []


def test_exception_rule_whitelists_typed_wrap_first_class():
    source = """\
        from repro.exceptions import CheckpointError

        def f():
            try:
                work()
            except Exception as exc:
                raise CheckpointError("bad") from exc
            try:
                work()
            except Exception:
                raise CheckpointError("bad")
    """
    assert run(source) == []


def test_exception_rule_flags_unchained_foreign_raise():
    # `raise ValueError(...)` without `from` drops the real traceback —
    # only typed project exceptions are blessed unchained.
    source = """\
        def f():
            try:
                work()
            except Exception:
                raise ValueError("bad")
    """
    findings = run(source)
    assert rules_of(findings) == ["exception-hygiene"]


def test_exception_rule_ignores_deferred_raise_in_nested_def():
    # A raise inside a nested def is deferred code, not handling.
    source = """\
        def f():
            try:
                work()
            except Exception:
                def poison():
                    raise
                callbacks.append(poison)
    """
    findings = run(source)
    assert rules_of(findings) == ["exception-hygiene"]


# ----------------------------------------------------------------- api-hygiene

def test_api_rule_fires_on_mutable_defaults_and_assert():
    source = """\
        def f(x=[], y={}, z=dict()):
            assert x, "boom"
    """
    findings = run(source)
    assert rules_of(findings) == ["api-hygiene"] * 4


def test_api_rule_accepts_none_defaults_and_raises():
    source = """\
        def f(x=None, y=(), n=3):
            if not x:
                raise ValueError("boom")
    """
    assert run(source) == []


def test_api_rule_flag_asserts_off_keeps_mutable_default_check():
    source = """\
        def f(x=[]):
            assert x
    """
    findings = run(source, **{"api-hygiene": {"flag_asserts": False}})
    assert rules_of(findings) == ["api-hygiene"]  # only the default fires
    assert "mutable default" in findings[0].message


def test_api_rule_pragma_suppresses():
    source = """\
        def f(x):
            assert x  # repro: disable=api-hygiene
    """
    assert run(source) == []


# ------------------------------------------------------- durability-discipline

def test_durability_rule_fires_on_rename_and_stray_replace():
    source = """\
        import os

        def publish(tmp, dst):
            os.rename(tmp, dst)
            os.replace(tmp, dst)
    """
    findings = run(source)
    assert rules_of(findings) == ["durability-discipline"] * 2
    assert "atomic_replace" in findings[0].message
    assert "atomicio" in findings[1].message


def test_durability_rule_resolves_import_aliases():
    source = """\
        from os import rename as mv

        def publish(tmp, dst):
            mv(tmp, dst)
    """
    assert rules_of(run(source)) == ["durability-discipline"]


def test_durability_rule_allows_replace_inside_atomicio():
    source = """\
        import os

        def atomic_replace(tmp, dst):
            os.replace(tmp, dst)
    """
    assert run(source, rel_path="src/repro/core/atomicio.py") == []


def test_durability_rule_fires_on_unsynced_append_outside_wal():
    source = """\
        def handle(wal, ids):
            wal.append(1, ids, sync=False)
    """
    findings = run(source)
    assert rules_of(findings) == ["durability-discipline"]
    assert "sync=False" in findings[0].message
    # The WAL module itself may defer its own syncs ...
    assert run(source, rel_path="src/repro/serving/wal.py") == []
    # ... and the relaxed option waives the check (benchmarks profile).
    assert run(source, **{"durability-discipline":
                          {"flag_unsynced_appends": False}}) == []


def test_durability_rule_ignores_plain_list_appends():
    source = """\
        def collect(out, item):
            out.append(item)
            out.append(item, sync=True)
    """
    assert run(source) == []


def test_durability_rule_pragma_suppresses():
    source = """\
        import os

        def publish(tmp, dst):
            os.rename(tmp, dst)  # repro: disable=durability-discipline
    """
    assert run(source) == []


# ------------------------------------------------------------------- pragmas

def test_disable_file_pragma_and_all_wildcard():
    source = """\
        # repro: disable-file=determinism
        import time

        def f():
            a = time.time()
            b = time.time()
    """
    assert run(source) == []

    source_all = """\
        def f(x=[]):
            y = x  # repro: disable=all
            assert y  # repro: disable=all
    """
    findings = run(source_all)
    assert rules_of(findings) == ["api-hygiene"]  # the default survives
    assert findings[0].line == 1
