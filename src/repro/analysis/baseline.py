"""Committed baseline of grandfathered findings.

The baseline is a JSON file listing findings that existed when a rule was
introduced and are accepted for now. ``lint`` subtracts baselined findings
from its failure count, so CI stays green while the debt is visible; an
entry whose flagged line is fixed (or whose file is deleted) becomes
*stale* and is reported so the file can be re-generated with
``--write-baseline`` and shrink over time.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from .findings import Finding

PathLike = Union[str, Path]

BASELINE_VERSION = 1


def load_baseline(path: PathLike) -> Dict[str, Dict]:
    """Fingerprint-keyed baseline entries; ``{}`` when the file is absent."""
    path = Path(path)
    if not path.exists():
        return {}
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise ValueError(f"unreadable baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) \
            or payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has unsupported format "
            f"(expected version {BASELINE_VERSION})")
    entries = {}
    for entry in payload.get("findings", []):
        fingerprint = entry.get("fingerprint")
        if fingerprint:
            entries[str(fingerprint)] = entry
    return entries


def write_baseline(path: PathLike, findings: Iterable[Finding],
                   keep: Iterable[Dict] = ()) -> int:
    """Write (or rewrite) the baseline from findings; returns entry count.

    ``keep`` passes through existing entries verbatim — ``lint`` and
    ``analyze`` share one baseline file, so each command regenerates only
    its own rules' entries and keeps the other command's.
    """
    entries: Dict[str, Dict] = {}
    for entry in keep:
        fingerprint = entry.get("fingerprint")
        if fingerprint:
            entries[str(fingerprint)] = entry
    for finding in findings:
        entries[finding.fingerprint] = {
            "rule": finding.rule,
            "path": finding.path,
            "message": finding.message,
            "fingerprint": finding.fingerprint,
        }
    ordered = sorted(entries.values(),
                     key=lambda e: (e["path"], e["rule"], e["fingerprint"]))
    payload = {"version": BASELINE_VERSION, "findings": ordered}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n")
    return len(ordered)


def split_by_baseline(findings: Iterable[Finding],
                      baseline: Dict[str, Dict]
                      ) -> Tuple[List[Finding], List[Finding], List[Dict]]:
    """Partition findings into (new, grandfathered) and list stale entries."""
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    seen = set()
    for finding in findings:
        if finding.fingerprint in baseline:
            grandfathered.append(finding)
            seen.add(finding.fingerprint)
        else:
            new.append(finding)
    stale = [entry for fingerprint, entry in sorted(baseline.items())
             if fingerprint not in seen]
    return new, grandfathered, stale
