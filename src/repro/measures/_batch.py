"""Batched (many-pairs-at-once) kernels for the alignment measures.

The anti-diagonal DP in :mod:`repro.measures._dp` already turns the O(n*m)
Python loop of one pair into O(n+m) vectorised steps, but computing a seed
distance matrix still pays that per-diagonal numpy dispatch overhead once
per *pair*. These kernels stack a whole chunk of pairs into padded
(P, n, m) cost volumes and sweep the identical recurrence over all pairs at
once, so the dispatch overhead is paid once per diagonal per *chunk* —
this is where the distance-matrix driver's single-core speedup comes from.

Three implementation choices keep the sweep fast:

* pairs are sorted by length before being split into blocks, so padding
  waste inside each block stays small (results are returned in input
  order);
* the DP keeps three *rolling diagonal buffers* instead of the full table,
  so every read/write in the hot loop is a contiguous slice rather than an
  advanced-indexing gather;
* the cost volume is pre-gathered into diagonal-major layout once per
  block, so the per-diagonal loop does no fancy indexing at all.

Bit-exactness: every cell of every pair sees exactly the same operands and
the same elementwise operations as the per-pair kernels (padding lives
strictly *after* each pair's true region and DP dependencies only flow
forward), so the results are element-wise identical to calling
``measure.distance`` pair by pair. The equivalence tests in
``tests/measures/test_matrix.py`` assert this for all four paper measures.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

_INF = np.inf

#: Cap on padded DP cells (P * n * m) per internal block, keeping the
#: transient cost volumes within ~100 MB even for long trajectories.
MAX_BLOCK_CELLS = 4_000_000


def pad_stack(points_list: Sequence[np.ndarray]
              ) -> Tuple[np.ndarray, np.ndarray]:
    """Stack variable-length (L_i, 2) arrays into (P, L_max, 2) + lengths."""
    lengths = np.array([len(p) for p in points_list], dtype=int)
    max_len = int(lengths.max()) if len(lengths) else 0
    out = np.zeros((len(points_list), max_len, 2), dtype=np.float64)
    for idx, pts in enumerate(points_list):
        out[idx, :len(pts)] = pts
    return out, lengths


def batched_point_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """(P, n, m) Euclidean cost volumes for stacked point sequences.

    Elementwise-identical to ``point_distances`` per pair: ``dx² + dy²``
    is the same two-term sum the (…, 2)-axis reduction performs.
    """
    dx = a[:, :, None, 0] - b[:, None, :, 0]
    dy = a[:, :, None, 1] - b[:, None, :, 1]
    dx *= dx
    dy *= dy
    dx += dy
    return np.sqrt(dx, out=dx)


def _blocks(lengths_a: np.ndarray, lengths_b: np.ndarray):
    """Split a (sorted) pair list into blocks bounded by padded-cell volume."""
    total = len(lengths_a)
    start = 0
    while start < total:
        stop = start
        max_n = max_m = 1
        while stop < total:
            new_n = max(max_n, int(lengths_a[stop]))
            new_m = max(max_m, int(lengths_b[stop]))
            if stop > start and (stop - start + 1) * new_n * new_m > MAX_BLOCK_CELLS:
                break
            max_n, max_m = new_n, new_m
            stop += 1
        yield start, stop
        start = stop


def _run_blocked(points_a: List[np.ndarray], points_b: List[np.ndarray],
                 kernel) -> np.ndarray:
    """Sort pairs by size, evaluate per block, return in input order."""
    la = np.array([len(p) for p in points_a], dtype=int)
    lb = np.array([len(p) for p in points_b], dtype=int)
    order = np.lexsort((lb, la))
    out = np.empty(len(points_a), dtype=np.float64)
    for start, stop in _blocks(la[order], lb[order]):
        rows = order[start:stop]
        a, block_la = pad_stack([points_a[r] for r in rows])
        b, block_lb = pad_stack([points_b[r] for r in rows])
        out[rows] = kernel(a, b, block_la, block_lb)
    return out


def _diagonal_layout(n: int, m: int
                     ) -> Tuple[np.ndarray, np.ndarray, List[Tuple[int, int, int]]]:
    """Diagonal-major enumeration of an (n, m) cost matrix.

    Returns row indices, column indices, and per-diagonal metadata
    ``(i_lo, i_hi, offset)`` for table diagonals ``k = 2 .. n+m`` where the
    interior cells are ``i in [i_lo, i_hi]``, ``j = k - i`` and the cost
    entries ``cost[i-1, k-i-1]`` live at ``offset`` in the gathered layout.
    """
    rows, cols, spans = [], [], []
    offset = 0
    for k in range(2, n + m + 1):
        i_lo = max(1, k - m)
        i_hi = min(n, k - 1)
        i = np.arange(i_lo, i_hi + 1, dtype=np.intp)
        rows.append(i - 1)
        cols.append(k - i - 1)
        spans.append((i_lo, i_hi, offset))
        offset += len(i)
    if rows:
        return np.concatenate(rows), np.concatenate(cols), spans
    return np.zeros(0, dtype=int), np.zeros(0, dtype=int), spans


def _sweep(cost: np.ndarray, la: np.ndarray, lb: np.ndarray, combine,
           init_diag=None, result_init=None) -> np.ndarray:
    """Shared rolling-buffer anti-diagonal sweep.

    Parameters
    ----------
    cost:
        (P, n, m) local-cost volume.
    la, lb:
        True lengths per pair; the result is each pair's table entry at
        ``(la, lb)``.
    combine:
        ``combine(up, left, diag, cost_slice) -> new diagonal values``,
        mirroring the per-pair recurrence exactly.
    init_diag:
        Optional ``init_diag(cur, k)`` hook writing boundary cells of
        diagonal ``k`` (used by ERP's cumulative gap boundary).
    result_init:
        (P,) initial results covering the degenerate ``la + lb < 2``
        boundary cases; defaults to +inf with 0 where both are empty.
    """
    pairs, n, m = cost.shape
    rows, cols, spans = _diagonal_layout(n, m)
    cost_diag = cost[:, rows, cols]  # one gather; the sweep only slices

    if result_init is None:
        result = np.where((la == 0) & (lb == 0), 0.0,
                          np.full(len(la), _INF, dtype=np.float64))
    else:
        result = np.asarray(result_init, dtype=np.float64).copy()
    interior = (la > 0) & (lb > 0)
    ends = la + lb

    width = n + 1
    prev2 = np.full((pairs, width), _INF, dtype=np.float64)
    prev = np.full((pairs, width), _INF, dtype=np.float64)
    cur = np.full((pairs, width), _INF, dtype=np.float64)
    prev2[:, 0] = 0.0  # table[0, 0]
    if init_diag is not None:
        init_diag(prev2, 0)
        init_diag(prev, 1)

    for k in range(2, n + m + 1):
        i_lo, i_hi, offset = spans[k - 2]
        span = i_hi - i_lo + 1
        cur.fill(_INF)
        # table[i-1, j] / table[i, j-1] / table[i-1, j-1] as contiguous
        # slices of the two previous diagonals.
        up = prev[:, i_lo - 1:i_hi]
        left = prev[:, i_lo:i_hi + 1]
        diag = prev2[:, i_lo - 1:i_hi]
        cur[:, i_lo:i_hi + 1] = combine(
            up, left, diag, cost_diag[:, offset:offset + span], k)
        if init_diag is not None:
            init_diag(cur, k)
        captured = np.nonzero((ends == k) & interior)[0]
        if len(captured):
            result[captured] = cur[captured, la[captured]]
        prev2, prev, cur = prev, cur, prev2
    return result


def dtw_many(points_a: Sequence[np.ndarray], points_b: Sequence[np.ndarray],
             window: Optional[int] = None) -> np.ndarray:
    """Batched DTW distances; matches ``DTWDistance.distance`` per pair."""

    def kernel(a, b, la, lb):
        cost = batched_point_distances(a, b)
        if window is not None:
            n, m = cost.shape[1], cost.shape[2]
            i = np.arange(n, dtype=np.int64)[None, :, None]
            j = np.arange(m, dtype=np.int64)[None, None, :]
            # Per-pair band scaled by the *true* lengths, as in the serial path.
            band = (np.abs(i * lb[:, None, None] - j * la[:, None, None])
                    > window * np.maximum(la, lb)[:, None, None])
            cost = np.where(band, _INF, cost)

        def combine(up, left, diag, cost_slice, k):
            return np.minimum(np.minimum(up, left), diag) + cost_slice

        return _sweep(cost, la, lb, combine)

    return _run_blocked(list(points_a), list(points_b), kernel)


def frechet_many(points_a: Sequence[np.ndarray],
                 points_b: Sequence[np.ndarray]) -> np.ndarray:
    """Batched discrete Fréchet distances."""

    def kernel(a, b, la, lb):
        cost = batched_point_distances(a, b)

        def combine(up, left, diag, cost_slice, k):
            return np.maximum(cost_slice, np.minimum(np.minimum(up, left), diag))

        return _sweep(cost, la, lb, combine)

    return _run_blocked(list(points_a), list(points_b), kernel)


def erp_many(points_a: Sequence[np.ndarray], points_b: Sequence[np.ndarray],
             gap: np.ndarray) -> np.ndarray:
    """Batched ERP distances against a fixed gap point."""
    gap = np.asarray(gap, dtype=np.float64)

    def kernel(a, b, la, lb):
        cost = batched_point_distances(a, b)
        n, m = cost.shape[1], cost.shape[2]
        gap_a = np.linalg.norm(a - gap, axis=2)  # (P, n)
        gap_b = np.linalg.norm(b - gap, axis=2)  # (P, m)
        # cum_a[i] = table[i, 0], cum_b[j] = table[0, j] (cumulative gaps).
        cum_a = np.concatenate([np.zeros((len(a), 1), dtype=np.float64),
                                np.cumsum(gap_a, axis=1)], axis=1)
        cum_b = np.concatenate([np.zeros((len(b), 1), dtype=np.float64),
                                np.cumsum(gap_b, axis=1)], axis=1)

        def init_diag(cur, k):
            if 1 <= k <= n:
                cur[:, k] = cum_a[:, k]  # table[k, 0]
            if 1 <= k <= m:
                cur[:, 0] = cum_b[:, k]  # table[0, k]

        def combine(up, left, diag, cost_slice, k):
            i_lo = max(1, k - m)
            i_hi = min(n, k - 1)
            match = diag + cost_slice
            delete = up + gap_a[:, i_lo - 1:i_hi]
            # gap_b[j - 1] with j = k - i runs backwards as i increases.
            insert = left + gap_b[:, k - 1 - i_hi:k - i_lo][:, ::-1]
            return np.minimum(np.minimum(match, delete), insert)

        # Degenerate pairs finish on the boundary (one side empty).
        result_init = np.full(len(a), _INF, dtype=np.float64)
        empty_a, empty_b = la == 0, lb == 0
        result_init[empty_a] = cum_b[empty_a, lb[empty_a]]
        result_init[empty_b] = cum_a[empty_b, la[empty_b]]
        result_init[empty_a & empty_b] = 0.0
        return _sweep(cost, la, lb, combine, init_diag=init_diag,
                      result_init=result_init)

    return _run_blocked(list(points_a), list(points_b), kernel)


def hausdorff_many(points_a: Sequence[np.ndarray],
                   points_b: Sequence[np.ndarray]) -> np.ndarray:
    """Batched symmetric Hausdorff distances."""

    def kernel(a, b, la, lb):
        cost = batched_point_distances(a, b)
        n, m = cost.shape[1], cost.shape[2]
        row_pad = np.arange(n, dtype=np.int64)[None, :] >= la[:, None]
        col_pad = np.arange(m, dtype=np.int64)[None, :] >= lb[:, None]
        masked = np.where(col_pad[:, None, :], _INF, cost)
        forward = np.where(row_pad, -_INF, masked.min(axis=2)).max(axis=1)
        masked = np.where(row_pad[:, :, None], _INF, cost)
        backward = np.where(col_pad, -_INF, masked.min(axis=1)).max(axis=1)
        return np.maximum(forward, backward)

    return _run_blocked(list(points_a), list(points_b), kernel)
