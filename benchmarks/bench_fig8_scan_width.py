"""Figure 8 — HR@10 versus SAM scan width w.

Expected shape (paper): quality first improves as w grows (more history is
readable) and then flattens or dips when irrelevant cells enter the window.
"""

import pytest

from repro.experiments import (format_table, run_scan_width_sweep,
                               train_variant)

WIDTHS = (0, 1, 2)


@pytest.fixture(scope="module")
def fig8(porto_workload):
    return run_scan_width_sweep(porto_workload, widths=WIDTHS)


def test_fig8_scan_width(benchmark, fig8, porto_workload, report,
                         strict_shapes):
    # Kernel: a single SAM read — the operation whose cost grows with w.
    import numpy as np
    from repro.nn.tensor import Tensor
    model = train_variant("neutraj", porto_workload, "frechet")
    cell = model.encoder.rnn.cell
    memory = model.encoder.memory
    c_hat = Tensor(np.zeros((4, model.config.embedding_dim)))
    cells = np.full((4, 2), 5)
    benchmark(lambda: cell.read(c_hat, cells, memory))

    rows = [["neutraj"] + [f"{fig8[w]:.4f}" for w in WIDTHS]]
    report("fig8_scan_width",
           format_table("Fig 8: HR@10 vs scan width w (Fréchet)",
                        ["variant"] + [f"w={w}" for w in WIDTHS], rows))

    if strict_shapes:
        series = [fig8[w] for w in WIDTHS]
        # A positive scan width should be at least as good as w=0 somewhere.
        assert max(series[1:]) >= series[0] - 0.05
