"""Tests for the batched masked LSTM."""

import numpy as np
import pytest

from repro.nn.rnn import LSTM, LSTMCell, lengths_to_mask
from repro.nn.tensor import Tensor, numerical_gradient


def test_lengths_to_mask():
    mask = lengths_to_mask(np.array([3, 1]), max_len=4)
    expected = np.array([[True, True, True, False],
                         [True, False, False, False]])
    np.testing.assert_array_equal(mask, expected)


def test_lengths_to_mask_infers_max():
    mask = lengths_to_mask(np.array([2, 5]))
    assert mask.shape == (2, 5)


def test_cell_output_shapes(rng):
    cell = LSTMCell(2, 8, rng)
    h, c = cell(Tensor(np.zeros((3, 2))), Tensor(np.zeros((3, 8))),
                Tensor(np.zeros((3, 8))))
    assert h.shape == (3, 8)
    assert c.shape == (3, 8)


def test_cell_hidden_bounded(rng):
    cell = LSTMCell(2, 8, rng)
    h, _ = cell(Tensor(rng.normal(size=(5, 2)) * 100),
                Tensor(np.zeros((5, 8))), Tensor(np.zeros((5, 8))))
    assert np.all(np.abs(h.data) <= 1.0)


def test_final_state_equals_state_at_length(rng):
    """Padded steps must not change the final state."""
    lstm = LSTM(2, 6, rng)
    seq = rng.normal(size=(1, 5, 2))
    # Full run over 3 steps only.
    short = lstm(seq[:, :3, :], np.ones((1, 3), dtype=bool))
    # Same 3 valid steps followed by 2 masked-out (garbage) steps.
    garbage = seq.copy()
    garbage[:, 3:, :] = 1e6
    padded = lstm(garbage, lengths_to_mask(np.array([3]), 5))
    np.testing.assert_allclose(short.data, padded.data)


def test_batch_matches_individual_runs(rng):
    lstm = LSTM(2, 6, rng)
    a = rng.normal(size=(4, 2))
    b = rng.normal(size=(7, 2))
    coords = np.zeros((2, 7, 2))
    coords[0, :4] = a
    coords[1, :7] = b
    mask = lengths_to_mask(np.array([4, 7]), 7)
    batched = lstm(coords, mask).data
    solo_a = lstm(a[None, :, :], np.ones((1, 4), dtype=bool)).data
    solo_b = lstm(b[None, :, :], np.ones((1, 7), dtype=bool)).data
    np.testing.assert_allclose(batched[0], solo_a[0])
    np.testing.assert_allclose(batched[1], solo_b[0])


def test_return_sequence_length(rng):
    lstm = LSTM(2, 4, rng)
    final, outputs = lstm(np.zeros((2, 5, 2)), np.ones((2, 5), dtype=bool),
                          return_sequence=True)
    assert len(outputs) == 5
    np.testing.assert_allclose(outputs[-1].data, final.data)


def test_deterministic_given_seed():
    a = LSTM(2, 4, np.random.default_rng(42))
    b = LSTM(2, 4, np.random.default_rng(42))
    x = np.random.default_rng(0).normal(size=(2, 3, 2))
    mask = np.ones((2, 3), dtype=bool)
    np.testing.assert_allclose(a(x, mask).data, b(x, mask).data)


def test_bptt_gradient_matches_numerical(rng):
    lstm = LSTM(2, 5, rng)
    coords = rng.normal(size=(2, 4, 2))
    mask = lengths_to_mask(np.array([4, 2]), 4)
    param = lstm.cell.u_cand
    base = param.data.copy()

    out = (lstm(coords, mask) ** 2).sum()
    lstm.zero_grad()
    out.backward()
    analytic = param.grad.copy()

    def evaluate(arr):
        param.data = arr
        return float((lstm(coords, mask).data ** 2).sum())

    numeric = numerical_gradient(evaluate, base.copy())
    param.data = base
    err = np.max(np.abs(analytic - numeric)) / max(1.0, np.max(np.abs(numeric)))
    assert err < 1e-6


def test_fused_matches_legacy_forward(rng):
    """The hoisted-projection fast path equals the per-step reference."""
    fused = LSTM(2, 6, np.random.default_rng(11), fused=True)
    legacy = LSTM(2, 6, np.random.default_rng(11), fused=False)
    coords = rng.normal(size=(3, 7, 2))
    mask = lengths_to_mask(np.array([7, 5, 2]), 7)
    out_f, seq_f = fused(coords, mask, return_sequence=True)
    out_l, seq_l = legacy(coords, mask, return_sequence=True)
    np.testing.assert_allclose(out_f.data, out_l.data, atol=1e-12)
    for step_f, step_l in zip(seq_f, seq_l):
        np.testing.assert_allclose(step_f.data, step_l.data, atol=1e-12)


def test_fused_matches_legacy_gradients(rng):
    coords = rng.normal(size=(2, 5, 2))
    mask = lengths_to_mask(np.array([5, 3]), 5)
    grads = {}
    for fused in (True, False):
        lstm = LSTM(2, 4, np.random.default_rng(13), fused=fused)
        loss = (lstm(coords, mask) ** 2).sum()
        lstm.zero_grad()
        loss.backward()
        grads[fused] = {name: p.grad.copy()
                        for name, p in lstm.named_parameters()}
    assert grads[True].keys() == grads[False].keys()
    for name in grads[True]:
        np.testing.assert_allclose(grads[True][name], grads[False][name],
                                   atol=1e-12, err_msg=name)


def test_forget_bias_initialised_to_one(rng):
    cell = LSTMCell(2, 4, rng)
    np.testing.assert_allclose(cell.b_gates.data[:4], 1.0)
    np.testing.assert_allclose(cell.b_gates.data[4:], 0.0)
