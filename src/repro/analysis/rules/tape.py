"""tape-discipline: protect the autodiff tape from out-of-band mutation.

The tape engine (:mod:`repro.nn.tensor`) records backward closures that
capture ``Tensor.data`` arrays *by reference*; any code that mutates a
``.data`` or ``.grad`` buffer after the forward pass silently corrupts
gradients (the classic autograd "don't mutate arrays the tape saw"
failure). Outside the whitelisted engine internals this rule flags:

* assignments to ``<expr>.data`` / ``<expr>.grad`` (plain, augmented,
  and slice/index writes);
* in-place mutator calls on them (``.fill``, ``.sort``, ``np.add.at``,
  ...).

It also checks that configured inference entry points (``embed``) enter
``no_grad()`` somewhere in their body, so bulk inference can never start
taping by accident.
"""

from __future__ import annotations

import ast
from typing import List

from . import register
from .base import ModuleContext, Rule, dotted_name

_TAPE_ATTRS = frozenset({"data", "grad"})

#: ndarray methods that mutate in place.
_INPLACE_METHODS = frozenset({"fill", "sort", "resize", "partition",
                              "put", "setfield"})

#: numpy functions whose first argument is mutated in place.
_INPLACE_FUNCS = frozenset({"numpy.add.at", "numpy.subtract.at",
                            "numpy.multiply.at", "numpy.put",
                            "numpy.copyto", "numpy.place", "numpy.putmask"})


def _tape_attr(node: ast.AST) -> str:
    """The ``data``/``grad`` attribute a (possibly subscripted) expr hits."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute) and node.attr in _TAPE_ATTRS:
        return node.attr
    return ""


@register
class TapeDiscipline(Rule):
    rule_id = "tape-discipline"
    description = ("no Tensor.data/.grad mutation outside engine internals; "
                   "inference entry points must run under no_grad()")
    default_options = {
        "allowed_paths": ("repro/nn/",),
        "entry_points": {},
    }

    def check(self, ctx: ModuleContext) -> List:
        findings = []
        allowed = ctx.options.get("allowed_paths", ())
        if not any(fragment in ctx.rel_path for fragment in allowed):
            findings.extend(self._mutations(ctx))
        findings.extend(self._entry_points(ctx))
        return findings

    # ------------------------------------------------------------- mutations

    def _mutations(self, ctx: ModuleContext) -> List:
        out = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    attr = _tape_attr(target)
                    if attr:
                        out.append(self._mutation_finding(ctx, node, attr))
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                attr = _tape_attr(node.target)
                if attr:
                    out.append(self._mutation_finding(ctx, node, attr))
            elif isinstance(node, ast.Call):
                out.extend(self._call_mutation(ctx, node))
        return out

    def _call_mutation(self, ctx: ModuleContext, node: ast.Call) -> List:
        name = ctx.resolve_call_name(node.func)
        if name in _INPLACE_FUNCS and node.args:
            attr = _tape_attr(node.args[0])
            if attr:
                return [ctx.finding(
                    self.rule_id, node,
                    f"{name}() mutates a tensor .{attr} buffer in place; "
                    f"the tape may hold a reference to it")]
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in _INPLACE_METHODS:
            attr = _tape_attr(node.func.value)
            if attr:
                return [ctx.finding(
                    self.rule_id, node,
                    f".{node.func.attr}() mutates a tensor .{attr} buffer "
                    f"in place; the tape may hold a reference to it")]
        return []

    def _mutation_finding(self, ctx: ModuleContext, node: ast.AST,
                          attr: str):
        return ctx.finding(
            self.rule_id, node,
            f"write to a .{attr} buffer outside the autodiff engine; "
            f"arrays recorded on the tape must not be mutated "
            f"(use tensor ops, or detach/copy first)")

    # ---------------------------------------------------------- entry points

    def _entry_points(self, ctx: ModuleContext) -> List:
        out = []
        entry_points = ctx.options.get("entry_points", {})
        for suffix, names in entry_points.items():
            if not ctx.rel_path.endswith(suffix):
                continue
            wanted = set(names)
            for node in ast.walk(ctx.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                        and node.name in wanted \
                        and not self._enters_no_grad(node):
                    out.append(ctx.finding(
                        self.rule_id, node,
                        f"inference entry point {node.name}() never enters "
                        f"no_grad(); bulk inference would build a tape"))
        return out

    @staticmethod
    def _enters_no_grad(fn: ast.AST) -> bool:
        for node in ast.walk(fn):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    expr = expr.func
                name = dotted_name(expr)
                if name and name.split(".")[-1] == "no_grad":
                    return True
        return False
