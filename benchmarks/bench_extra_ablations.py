"""Extra ablations beyond the paper (design choices called out in DESIGN.md).

* similarity-transform sharpness (alpha scale),
* row-normalised (paper text) vs exponential (released code) targets,
* sampling size n,
* rank-weighting (reciprocal 1/l vs uniform would require a code change, so
  we probe its sensitivity through sampling_num instead).
"""

import pytest

from repro.core.similarity import suggest_alpha
from repro.eval import evaluate_ranking
from repro.experiments import format_table, model_rankings, train_variant


def _hr10(workload, config):
    model = train_variant("neutraj", workload, "frechet", config=config)
    rankings = model_rankings(model, workload)
    return evaluate_ranking(workload.ground_truth("frechet"), rankings).hr10


@pytest.fixture(scope="module")
def alpha_sweep(porto_workload):
    matrix = porto_workload.seed_distances("frechet")
    out = {}
    for sharpness in (1.5, 4.0):
        alpha = suggest_alpha(matrix, sharpness=sharpness)
        config = porto_workload.scale.neutraj_config("frechet", alpha=alpha)
        out[sharpness] = _hr10(porto_workload, config)
    return out


@pytest.fixture(scope="module")
def normalization_ablation(porto_workload):
    base = porto_workload.scale.neutraj_config("frechet")
    return {
        "exponential": _hr10(porto_workload, base),
        "row_normalized": _hr10(porto_workload,
                                base.ablated(row_normalize=True)),
    }


@pytest.fixture(scope="module")
def sampling_num_sweep(porto_workload):
    out = {}
    for n in (3, 10):
        config = porto_workload.scale.neutraj_config("frechet",
                                                     sampling_num=n)
        out[n] = _hr10(porto_workload, config)
    return out


def test_extra_ablations(benchmark, alpha_sweep, normalization_ablation,
                         sampling_num_sweep, porto_workload, report,
                         strict_shapes):
    model = train_variant("neutraj", porto_workload, "frechet")
    benchmark(lambda: model.embed(porto_workload.queries))

    rows = ([["alpha sharpness", str(k), f"{v:.4f}"]
             for k, v in alpha_sweep.items()]
            + [["similarity transform", k, f"{v:.4f}"]
               for k, v in normalization_ablation.items()]
            + [["sampling_num n", str(k), f"{v:.4f}"]
               for k, v in sampling_num_sweep.items()])
    report("extra_ablations",
           format_table("Extra ablations (Fréchet, Porto-like): HR@10",
                        ["knob", "value", "HR@10"], rows))

    if not strict_shapes:
        return
    # The released-code exponential transform should not lose to the
    # row-normalised variant (this motivated our default; see DESIGN.md).
    assert (normalization_ablation["exponential"]
            >= normalization_ablation["row_normalized"] - 0.05)
    # Extreme sharpness hurts.
    assert alpha_sweep[1.5] >= alpha_sweep[4.0] - 0.05
