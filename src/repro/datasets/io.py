"""Dataset persistence: npz (compact) and CSV (interchange) formats."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

import numpy as np

from .trajectory import Trajectory, TrajectoryDataset

PathLike = Union[str, Path]


def save_npz(dataset: TrajectoryDataset, path: PathLike) -> None:
    """Save a dataset as flat coordinate array + offsets (self-describing)."""
    points = [t.points for t in dataset]
    lengths = np.array([len(p) for p in points], dtype=np.int64)
    ids = np.array([-1 if t.traj_id is None else t.traj_id for t in dataset],
                   dtype=np.int64)
    flat = (np.concatenate(points, axis=0) if points
            else np.zeros((0, 2)))
    np.savez_compressed(path, flat=flat, lengths=lengths, ids=ids)


def load_npz(path: PathLike) -> TrajectoryDataset:
    """Load a dataset written by :func:`save_npz`."""
    with np.load(path) as data:
        flat = data["flat"]
        lengths = data["lengths"]
        ids = data["ids"]
    offsets = np.concatenate([[0], np.cumsum(lengths)])
    trajectories = []
    for i, (start, stop) in enumerate(zip(offsets[:-1], offsets[1:])):
        traj_id = None if ids[i] < 0 else int(ids[i])
        trajectories.append(Trajectory(flat[start:stop], traj_id=traj_id))
    return TrajectoryDataset(trajectories)


def save_csv(dataset: TrajectoryDataset, path: PathLike) -> None:
    """Write ``traj_id,point_index,x,y`` rows (one point per row)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["traj_id", "point_index", "x", "y"])
        for i, traj in enumerate(dataset):
            traj_id = traj.traj_id if traj.traj_id is not None else i
            for j, (x, y) in enumerate(traj.points):
                writer.writerow([traj_id, j, f"{x:.6f}", f"{y:.6f}"])


def load_csv(path: PathLike) -> TrajectoryDataset:
    """Load a dataset written by :func:`save_csv` (rows must be grouped)."""
    groups: dict[int, list[tuple[float, float]]] = {}
    order: list[int] = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            traj_id = int(row["traj_id"])
            if traj_id not in groups:
                groups[traj_id] = []
                order.append(traj_id)
            groups[traj_id].append((float(row["x"]), float(row["y"])))
    return TrajectoryDataset(
        [Trajectory(np.array(groups[tid]), traj_id=tid) for tid in order])
