"""``python -m repro lint`` — the CI entry point of the analyzer.

Exit codes: ``0`` clean (no non-baselined findings), ``1`` findings,
``2`` usage or I/O error. ``--json`` emits a machine-readable report;
``--write-baseline`` (re)generates the baseline from the current
findings, which both grandfathers new debt explicitly and expires stale
entries.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .baseline import load_baseline, write_baseline
from .config import AnalysisConfig, default_config, relaxed_config
from .engine import AnalysisResult, analyze_paths
from .rules import all_rules

DEFAULT_BASELINE = "analysis-baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Project-specific static analysis (tape, dtype, "
                    "determinism, lock & exception discipline).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--relaxed", action="store_true",
                        help="use the relaxed (benchmarks) profile: "
                             "determinism and dtype rules off")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help=f"baseline file (default: {DEFAULT_BASELINE}; "
                             f"missing file = empty baseline)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file entirely")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from current findings "
                             "and exit 0")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit a JSON report instead of text")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    return parser


def _print_report(result: AnalysisResult, as_json: bool) -> None:
    if as_json:
        payload = {
            "findings": [f.to_json() for f in result.findings],
            "grandfathered": [f.to_json() for f in result.grandfathered],
            "stale_baseline": result.stale_baseline,
            "suppressed": result.suppressed,
            "files_checked": result.files_checked,
            "clean": result.clean,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return
    for finding in result.findings:
        print(finding.format())
    for entry in result.stale_baseline:
        print(f"stale baseline entry ({entry.get('rule')}) for "
              f"{entry.get('path')}: fixed or moved — regenerate with "
              f"--write-baseline", file=sys.stderr)
    print(result.summary(), file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, rule_cls in all_rules().items():
            print(f"{rule_id:<20} {rule_cls.description}")
        return 0

    config: AnalysisConfig = (relaxed_config() if args.relaxed
                              else default_config())
    if args.rules:
        wanted = tuple(r.strip() for r in args.rules.split(",") if r.strip())
        unknown = set(wanted) - set(all_rules())
        if unknown:
            print(f"unknown rule(s): {sorted(unknown)}", file=sys.stderr)
            return 2
        config.rules = wanted

    try:
        baseline = {} if args.no_baseline else load_baseline(args.baseline)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    try:
        result = analyze_paths(args.paths, config=config, baseline=baseline)
    except (FileNotFoundError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.write_baseline:
        count = write_baseline(args.baseline,
                               result.findings + result.grandfathered)
        print(f"wrote {count} entr(y/ies) to {args.baseline}",
              file=sys.stderr)
        return 0

    _print_report(result, args.as_json)
    return 0 if result.clean else 1


if __name__ == "__main__":
    raise SystemExit(main())
