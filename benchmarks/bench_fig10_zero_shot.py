"""Figure 10 — zero-shot learning from road-network random walks.

Train NeuTraj on synthetic road-network trajectories and evaluate on the
real (Geolife-like) workload. Expected shape (paper): the zero-shot model
retains a large fraction of the best model's quality (paper: ~0.7 recall
across measures) despite never seeing a real trajectory.
"""

import pytest

from repro.datasets import generate_zero_shot_seeds
from repro.experiments import format_table, run_zero_shot

MEASURES = ("frechet", "hausdorff", "erp", "dtw")


@pytest.fixture(scope="module")
def fig10(geolife_workload):
    return run_zero_shot(geolife_workload, measures=MEASURES)


def test_fig10_zero_shot(benchmark, fig10, report, strict_shapes):
    # Kernel: simulating a batch of road-network seed trajectories.
    benchmark(lambda: generate_zero_shot_seeds(num_trajectories=20, seed=1))

    rows = [[m, f"{r.best_hr10:.4f}", f"{r.zero_hr10:.4f}",
             f"{r.best_r10_at_50:.4f}", f"{r.zero_r10_at_50:.4f}"]
            for m, r in fig10.items()]
    report("fig10_zero_shot",
           format_table("Fig 10: zero-shot learning on Geolife-like data",
                        ["measure", "best HR@10", "zero HR@10",
                         "best R10@50", "zero R10@50"], rows))

    if not strict_shapes:
        return
    for measure, result in fig10.items():
        # Zero-shot is usable: retains a meaningful share of best recall.
        assert result.zero_r10_at_50 > 0.25 * result.best_r10_at_50, measure
        # And plausibly below (or equal to) the ceiling.
        assert result.zero_hr10 <= result.best_hr10 + 0.15, measure
