"""Trajectory data structures, grid discretisation and synthetic workloads."""

from .trajectory import Trajectory, TrajectoryDataset, pad_batch
from .grid import Grid, CoordinateNormalizer
from .porto import PortoConfig, generate_porto
from .geolife import GeolifeConfig, generate_geolife
from .road_network import (RoadNetworkConfig, build_road_network,
                           simulate_walks, generate_zero_shot_seeds)
from .simplify import douglas_peucker, resample, simplify
from .noise import add_outliers, drop_points, jitter_gps, resample_rate
from .io import save_npz, load_npz, save_csv, load_csv

__all__ = [
    "Trajectory", "TrajectoryDataset", "pad_batch",
    "Grid", "CoordinateNormalizer",
    "PortoConfig", "generate_porto",
    "GeolifeConfig", "generate_geolife",
    "RoadNetworkConfig", "build_road_network", "simulate_walks",
    "generate_zero_shot_seeds",
    "douglas_peucker", "resample", "simplify",
    "add_outliers", "drop_points", "jitter_gps", "resample_rate",
    "save_npz", "load_npz", "save_csv", "load_csv",
]
