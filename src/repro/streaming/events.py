"""Streaming event vocabulary and its WAL codec.

A :class:`StreamPoint` is one GPS fix from one source (vehicle): the
source's id, the source-assigned sequence number, the event timestamp
(seconds, *event time* — assigned by the source, never by our clock) and
the raw coordinates.

Durability reuses the shard WAL's record framing unchanged: a batch of
accepted points becomes one ``OP_INSERT`` record whose "embedding" rows
are ``[source_id, seq, t, x, y]`` (:data:`STREAM_WAL_DIM` columns) and
whose ids are the ingester's global accept counter. Integer ids and
sequence numbers round-trip exactly through float64 up to 2**53, far
beyond any window this tier holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..serving.wal import OP_INSERT, WALRecord

__all__ = ["STREAM_WAL_DIM", "StreamPoint", "points_to_record",
           "points_from_record"]

#: Columns of a point row in a streaming WAL record.
STREAM_WAL_DIM = 5

#: Sequence numbers and source ids must survive the float64 round-trip.
_MAX_EXACT_INT = 2 ** 53


@dataclass(frozen=True, order=True)
class StreamPoint:
    """One sequence-numbered, event-timestamped fix from one source.

    Ordering is lexicographic ``(source_id, seq, t, x, y)``, which makes
    per-source event order the natural sort order in tests.
    """

    source_id: int
    seq: int
    t: float
    x: float
    y: float

    def __post_init__(self) -> None:
        if not 0 <= self.source_id < _MAX_EXACT_INT:
            raise ValueError(f"source_id {self.source_id} out of range")
        if not 1 <= self.seq < _MAX_EXACT_INT:
            raise ValueError(f"seq must be >= 1, got {self.seq}")
        if not (np.isfinite(self.t) and np.isfinite(self.x)
                and np.isfinite(self.y)):
            raise ValueError("t/x/y must be finite")

    @property
    def coords(self) -> np.ndarray:
        """The (2,) coordinate array."""
        return np.array([self.x, self.y], dtype=np.float64)


def points_to_record(points: Sequence[StreamPoint],
                     first_accept_id: int) -> Tuple[np.ndarray, np.ndarray]:
    """Encode accepted points as one WAL insert payload.

    Returns ``(ids, rows)`` for ``ShardWAL.append(OP_INSERT, ids, rows)``:
    ids are the global accept counter ``first_accept_id ..``, rows are the
    (n, :data:`STREAM_WAL_DIM`) point fields.
    """
    n = len(points)
    ids = np.arange(first_accept_id, first_accept_id + n, dtype=np.int64)
    rows = np.empty((n, STREAM_WAL_DIM), dtype=np.float64)
    for i, point in enumerate(points):
        rows[i] = (point.source_id, point.seq, point.t, point.x, point.y)
    return ids, rows


def points_from_record(record: WALRecord) -> List[StreamPoint]:
    """Decode a streaming WAL record back into points (replay path)."""
    if record.op != OP_INSERT or record.embeddings is None:
        raise ValueError(f"not a streaming insert record (op {record.op})")
    rows = record.embeddings
    if rows.ndim != 2 or rows.shape[1] != STREAM_WAL_DIM:
        raise ValueError(
            f"streaming WAL rows must have {STREAM_WAL_DIM} columns, "
            f"got shape {rows.shape}")
    return [StreamPoint(source_id=int(row[0]), seq=int(row[1]),
                        t=float(row[2]), x=float(row[3]), y=float(row[4]))
            for row in rows]
