"""Seeded leak: one end of a Pipe never closed on the success path.

``handshake`` closes the child connection but returns with ``parent``
still open and never escaped — the fd is pinned for the life of the
process. ``handshake_clean`` releases both ends and must stay silent.
"""

from multiprocessing import Pipe


def handshake(payload):
    parent, child = Pipe()
    child.send(payload)
    child.close()
    return payload


def handshake_clean(payload):
    parent, child = Pipe()
    try:
        child.send(payload)
    finally:
        parent.close()
        child.close()
    return payload
