"""Tests for the Table II evaluation protocol."""

import numpy as np
import pytest

from repro.eval import (SearchQuality, evaluate_ranking,
                        rankings_from_matrix, top_k_from_distances)


@pytest.fixture
def exact(rng):
    return rng.uniform(1.0, 100.0, size=(6, 80))


def test_perfect_rankings_score_one(exact):
    perfect = [top_k_from_distances(row, 50) for row in exact]
    q = evaluate_ranking(exact, perfect)
    assert q.hr10 == 1.0
    assert q.hr50 == 1.0
    assert q.r10_at_50 == 1.0
    assert q.delta_h10 == pytest.approx(0.0)
    assert q.delta_r10 == pytest.approx(0.0)


def test_random_rankings_score_low(exact):
    rng = np.random.default_rng(0)
    random_rankings = [rng.permutation(80)[:50] for _ in range(6)]
    q = evaluate_ranking(exact, random_rankings)
    assert q.hr10 < 0.6
    assert q.delta_h10 > 0.0


def test_reversed_rankings_are_worst(exact):
    worst = [top_k_from_distances(-row, 50) for row in exact]
    q = evaluate_ranking(exact, worst)
    assert q.hr10 == 0.0


def test_delta_r10_le_delta_h10(exact):
    """Re-ranking the top-50 by exact distance can only improve the top-10."""
    rng = np.random.default_rng(1)
    noisy = [top_k_from_distances(row + rng.normal(scale=20.0, size=80), 50)
             for row in exact]
    q = evaluate_ranking(exact, noisy)
    assert q.delta_r10 <= q.delta_h10 + 1e-9


def test_requires_one_ranking_per_query(exact):
    with pytest.raises(ValueError):
        evaluate_ranking(exact, [np.arange(50)])


def test_requires_k_large_entries(exact):
    with pytest.raises(ValueError):
        evaluate_ranking(exact, [np.arange(10)] * 6)


def test_rankings_from_matrix(exact):
    rankings = rankings_from_matrix(exact, k=50)
    assert len(rankings) == 6
    q = evaluate_ranking(exact, rankings)
    assert q.hr10 == 1.0


def test_row_format():
    q = SearchQuality(hr10=0.5, hr50=0.6, r10_at_50=0.7, delta_h10=12.3,
                      delta_r10=4.5)
    row = q.row()
    assert "HR@10=0.5000" in row
    assert "12/4" in row.replace(" ", "")
