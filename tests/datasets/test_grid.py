"""Tests for grid discretisation and coordinate normalisation."""

import numpy as np
import pytest

from repro.datasets import Grid, Trajectory, TrajectoryDataset
from repro.datasets.grid import CoordinateNormalizer


class TestGrid:
    def test_shape_from_bbox(self):
        grid = Grid((0.0, 0.0, 100.0, 50.0), cell_size=10.0)
        assert grid.shape == (10, 5)
        assert grid.num_cells == 50

    def test_shape_rounds_up(self):
        grid = Grid((0.0, 0.0, 95.0, 45.0), cell_size=10.0)
        assert grid.shape == (10, 5)

    def test_rejects_bad_cell_size(self):
        with pytest.raises(ValueError):
            Grid((0, 0, 1, 1), cell_size=0.0)

    def test_rejects_degenerate_bbox(self):
        with pytest.raises(ValueError):
            Grid((0, 0, 0, 1), cell_size=1.0)

    def test_to_cells_known(self):
        grid = Grid((0.0, 0.0, 100.0, 100.0), cell_size=10.0)
        cells = grid.to_cells(np.array([[5.0, 5.0], [15.0, 95.0]]))
        np.testing.assert_array_equal(cells, [[0, 0], [1, 9]])

    def test_to_cells_clips_outside(self):
        grid = Grid((0.0, 0.0, 100.0, 100.0), cell_size=10.0)
        cells = grid.to_cells(np.array([[-50.0, 500.0]]))
        np.testing.assert_array_equal(cells, [[0, 9]])

    def test_cell_center_roundtrip(self):
        grid = Grid((0.0, 0.0, 100.0, 100.0), cell_size=10.0)
        pts = np.array([[12.0, 37.0], [88.0, 3.0]])
        centers = grid.cell_center(grid.to_cells(pts))
        # Center is within half a cell of the original point.
        assert np.all(np.abs(centers - pts) <= 5.0)

    def test_discretize_trajectory(self):
        grid = Grid((0.0, 0.0, 10.0, 10.0), cell_size=1.0)
        t = Trajectory([[0.5, 0.5], [2.5, 3.5]])
        np.testing.assert_array_equal(grid.discretize(t), [[0, 0], [2, 3]])

    def test_for_dataset_with_margin(self):
        ds = TrajectoryDataset([Trajectory([[0.0, 0.0], [10.0, 10.0]])])
        grid = Grid.for_dataset(ds, cell_size=1.0, margin=5.0)
        assert grid.bbox == (-5.0, -5.0, 15.0, 15.0)

    def test_batched_to_cells(self):
        grid = Grid((0.0, 0.0, 10.0, 10.0), cell_size=1.0)
        batch = np.zeros((2, 3, 2)) + 4.5
        cells = grid.to_cells(batch)
        assert cells.shape == (2, 3, 2)
        assert np.all(cells == 4)


class TestCoordinateNormalizer:
    def test_fit_transform_standardises(self, rng):
        pts = rng.normal(loc=[100.0, -50.0], scale=[5.0, 20.0], size=(500, 2))
        trajs = [Trajectory(pts[i:i + 50]) for i in range(0, 500, 50)]
        norm = CoordinateNormalizer.fit(trajs)
        z = norm.transform(pts)
        np.testing.assert_allclose(z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(z.std(axis=0), 1.0, atol=1e-10)

    def test_inverse_transform_roundtrip(self, rng):
        norm = CoordinateNormalizer(mean=[10.0, 20.0], std=[2.0, 4.0])
        pts = rng.normal(size=(20, 2))
        np.testing.assert_allclose(
            norm.inverse_transform(norm.transform(pts)), pts)

    def test_zero_std_guard(self):
        norm = CoordinateNormalizer(mean=[0.0, 0.0], std=[0.0, 1.0])
        out = norm.transform(np.array([[3.0, 3.0]]))
        assert np.all(np.isfinite(out))

    def test_batched_transform(self):
        norm = CoordinateNormalizer(mean=[1.0, 1.0], std=[2.0, 2.0])
        batch = np.ones((2, 3, 2))
        np.testing.assert_allclose(norm.transform(batch), 0.0)
