"""Trajectory and dataset containers.

A trajectory is an ordered sequence of 2-D points (paper §III-A: time stamps
are ignored; only shape matters). The dataset container offers the split /
filter / batching helpers the experiments need.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import InvalidTrajectoryError


class Trajectory:
    """An immutable sequence of 2-D points.

    Parameters
    ----------
    points:
        Array-like of shape (L, 2) with ``L >= 1`` finite coordinates.
    traj_id:
        Optional integer identifier (kept through filtering/splitting so
        results can be traced back to the source dataset).
    """

    __slots__ = ("points", "traj_id")

    def __init__(self, points, traj_id: Optional[int] = None):
        arr = np.asarray(points, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise InvalidTrajectoryError(
                f"expected shape (L, 2), got {arr.shape}")
        if arr.shape[0] < 1:
            raise InvalidTrajectoryError("trajectory must have at least one point")
        if not np.all(np.isfinite(arr)):
            raise InvalidTrajectoryError("trajectory contains non-finite coordinates")
        arr.setflags(write=False)
        self.points = arr
        self.traj_id = traj_id

    def __len__(self) -> int:
        return self.points.shape[0]

    def __eq__(self, other) -> bool:
        return (isinstance(other, Trajectory)
                and self.points.shape == other.points.shape
                and np.array_equal(self.points, other.points))

    def __hash__(self) -> int:
        return hash((self.points.shape, self.points.tobytes()))

    def __repr__(self) -> str:
        return f"Trajectory(len={len(self)}, id={self.traj_id})"

    @property
    def bbox(self) -> Tuple[float, float, float, float]:
        """Axis-aligned bounding box (xmin, ymin, xmax, ymax)."""
        mins = self.points.min(axis=0)
        maxs = self.points.max(axis=0)
        return float(mins[0]), float(mins[1]), float(maxs[0]), float(maxs[1])

    @property
    def length(self) -> float:
        """Total path length (sum of segment lengths)."""
        if len(self) < 2:
            return 0.0
        return float(np.linalg.norm(np.diff(self.points, axis=0), axis=1).sum())

    def downsample(self, step: int) -> "Trajectory":
        """Keep every ``step``-th point (always keeping the last point)."""
        if step < 1:
            raise ValueError("step must be >= 1")
        idx = list(range(0, len(self), step))
        if idx[-1] != len(self) - 1:
            idx.append(len(self) - 1)
        return Trajectory(self.points[idx], traj_id=self.traj_id)


class TrajectoryDataset:
    """A list of trajectories with batching and split helpers."""

    def __init__(self, trajectories: Iterable[Trajectory]):
        self.trajectories: List[Trajectory] = list(trajectories)
        for i, t in enumerate(self.trajectories):
            if not isinstance(t, Trajectory):
                raise TypeError(f"item {i} is not a Trajectory: {type(t)!r}")

    def __len__(self) -> int:
        return len(self.trajectories)

    def __iter__(self) -> Iterator[Trajectory]:
        return iter(self.trajectories)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return TrajectoryDataset(self.trajectories[index])
        if isinstance(index, (list, np.ndarray)):
            return TrajectoryDataset([self.trajectories[int(i)] for i in index])
        return self.trajectories[index]

    def __repr__(self) -> str:
        return f"TrajectoryDataset(n={len(self)})"

    @property
    def bbox(self) -> Tuple[float, float, float, float]:
        """Bounding box covering every trajectory."""
        if not self.trajectories:
            raise ValueError("empty dataset has no bounding box")
        boxes = np.array([t.bbox for t in self.trajectories])
        return (float(boxes[:, 0].min()), float(boxes[:, 1].min()),
                float(boxes[:, 2].max()), float(boxes[:, 3].max()))

    @property
    def lengths(self) -> np.ndarray:
        return np.array([len(t) for t in self.trajectories], dtype=int)

    def filter_min_points(self, min_points: int) -> "TrajectoryDataset":
        """Drop trajectories with fewer than ``min_points`` records (§VII-A1)."""
        return TrajectoryDataset(
            [t for t in self.trajectories if len(t) >= min_points])

    def filter_bbox(self, xmin: float, ymin: float, xmax: float, ymax: float
                    ) -> "TrajectoryDataset":
        """Keep trajectories fully inside the given box (center-area crop)."""
        kept = []
        for t in self.trajectories:
            bx0, by0, bx1, by1 = t.bbox
            if bx0 >= xmin and by0 >= ymin and bx1 <= xmax and by1 <= ymax:
                kept.append(t)
        return TrajectoryDataset(kept)

    def split(self, fractions: Sequence[float], rng: np.random.Generator
              ) -> List["TrajectoryDataset"]:
        """Random disjoint splits, e.g. ``(0.2, 0.1, 0.7)`` per the paper.

        Fractions must sum to at most 1; the split sizes are rounded down and
        any remainder goes to the last split.
        """
        total = sum(fractions)
        if total > 1.0 + 1e-9:
            raise ValueError(f"fractions sum to {total} > 1")
        n = len(self)
        order = rng.permutation(n)
        sizes = [int(f * n) for f in fractions]
        sizes[-1] = n - sum(sizes[:-1]) if abs(total - 1.0) < 1e-9 else sizes[-1]
        out, start = [], 0
        for size in sizes:
            idx = order[start:start + size]
            out.append(self[idx])
            start += size
        return out

    def sample(self, n: int, rng: np.random.Generator) -> "TrajectoryDataset":
        """Sample ``n`` trajectories without replacement."""
        if n > len(self):
            raise ValueError(f"cannot sample {n} from {len(self)}")
        idx = rng.choice(len(self), size=n, replace=False)
        return self[idx]

    def point_arrays(self) -> List[np.ndarray]:
        return [t.points for t in self.trajectories]


def pad_batch(trajectories: Sequence[Trajectory]
              ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pad a batch into (coords (B,T,2), lengths (B,), mask (B,T))."""
    lengths = np.array([len(t) for t in trajectories], dtype=int)
    max_len = int(lengths.max())
    coords = np.zeros((len(trajectories), max_len, 2))
    for i, t in enumerate(trajectories):
        coords[i, :len(t)] = t.points
    mask = np.arange(max_len)[None, :] < lengths[:, None]
    return coords, lengths, mask
