"""StreamIngestor behaviour: durable acks, recovery, backpressure, query."""

import threading
import time

import numpy as np
import pytest

from repro.applications import detect_online_anomalies
from repro.exceptions import ServiceClosedError, ServiceOverloadedError
from repro.streaming import StreamConfig, StreamIngestor, WindowConfig

from tests.streaming.conftest import in_order_points, make_encoder

pytestmark = pytest.mark.streaming

_SYNC = StreamConfig(window=WindowConfig(lateness_s=30.0, ttl_s=1e9,
                                         reorder_buffer=8,
                                         max_segment_points=6),
                     sync_encode=True)


def _shuffled_fleet(rng, sources=3, n=14):
    points = []
    for source in range(1, sources + 1):
        points.extend(in_order_points(source, n, seed=source))
    rng.shuffle(points)
    return points


def test_ingest_classifies_and_acks_durably(tmp_path, encoder):
    ingestor = StreamIngestor(encoder, tmp_path, _SYNC)
    points = in_order_points(1, 6)
    result = ingestor.ingest(points + points[:2])  # tail re-offered
    assert result.applied == 6 and result.duplicates == 2
    assert result.accepted == 6
    assert result.lsn == 1  # one WAL record per ingest batch
    assert ingestor.ingest([]).lsn is None
    stats = ingestor.stats()
    assert stats["accepted_total"] == 6
    assert stats["window"]["window_points"] == 6
    ingestor.close()
    with pytest.raises(ServiceClosedError):
        ingestor.ingest(points)


def test_incremental_embeddings_are_bit_identical(tmp_path, encoder):
    """The tentpole invariant, end to end through the ingester."""
    rng = np.random.default_rng(0)
    ingestor = StreamIngestor(encoder, tmp_path, _SYNC)
    points = _shuffled_fleet(rng)
    for start in range(0, len(points), 5):
        ingestor.ingest(points[start:start + 5])
    segments = ingestor.window_segments()
    ids, embeddings = ingestor.window_embeddings()
    assert sorted(ids.tolist()) == sorted(segments)
    for row, sid in enumerate(ids.tolist()):
        oracle = encoder.encode_prefix(segments[sid])
        assert np.array_equal(embeddings[row], oracle.embedding)
    ingestor.close()


def test_wal_append_failure_leaves_window_unmutated(tmp_path, encoder):
    """A failed WAL append must not ack, and must not poison the retry.

    Regression test: the window used to be mutated before the append,
    so after one transient WAL error the retried batch dedup'd away as
    duplicates, returned lsn=None, and the 'acked' points were lost on
    the next crash.
    """
    failures = {"left": 1}

    def flaky_hook(point):
        if point == "after_write" and failures["left"]:
            failures["left"] -= 1
            raise OSError("injected WAL append failure")

    ingestor = StreamIngestor(encoder, tmp_path, _SYNC, wal_hook=flaky_hook)
    points = in_order_points(1, 8)
    with pytest.raises(OSError):
        ingestor.ingest(points)
    # The failed batch left no trace: nothing applied, nothing acked.
    assert ingestor.stats()["window"]["window_points"] == 0
    assert ingestor.stats()["accepted_total"] == 0
    # The client retry is accepted in full — not absorbed as duplicates
    # of points that were never made durable.
    result = ingestor.ingest(points)
    assert result.applied == 8 and result.duplicates == 0
    assert result.lsn is not None
    fingerprint = ingestor._window.state_fingerprint()
    ingestor.close()

    # Crash recovery sees every acked point.
    recovered = StreamIngestor(encoder, tmp_path, _SYNC)
    assert recovered._window.state_fingerprint() == fingerprint
    assert recovered.stats()["window"]["window_points"] == 8
    recovered.close()


def test_wal_replay_recovers_identical_state(tmp_path, encoder):
    rng = np.random.default_rng(1)
    ingestor = StreamIngestor(encoder, tmp_path, _SYNC)
    for start in range(0, 42, 7):
        ingestor.ingest(_shuffled_fleet(rng)[start:start + 7])
    before = ingestor._window.state_fingerprint()
    ids_before, emb_before = ingestor.window_embeddings()
    ingestor.close()  # simulated crash: no snapshot was ever written

    recovered = StreamIngestor(encoder, tmp_path, _SYNC)
    assert recovered.stats()["recovered_points"] > 0
    assert recovered._window.state_fingerprint() == before
    ids_after, emb_after = recovered.window_embeddings()
    # Store row order depends on upsert history; the (id -> embedding)
    # mapping must be bit-identical.
    order_b, order_a = np.argsort(ids_before), np.argsort(ids_after)
    assert np.array_equal(ids_before[order_b], ids_after[order_a])
    assert np.array_equal(emb_before[order_b], emb_after[order_a])
    recovered.close()


def test_snapshot_truncates_wal_and_recovers(tmp_path, encoder):
    rng = np.random.default_rng(2)
    ingestor = StreamIngestor(encoder, tmp_path, _SYNC)
    points = _shuffled_fleet(rng)
    ingestor.ingest(points[:20])
    manifest = ingestor.snapshot()
    assert manifest["applied_lsn"] == 1
    ingestor.ingest(points[20:])  # lands in the WAL after the snapshot
    before = ingestor._window.state_fingerprint()
    total = ingestor.stats()["accepted_total"]
    ingestor.close()

    recovered = StreamIngestor(encoder, tmp_path, _SYNC)
    stats = recovered.stats()
    assert recovered._window.state_fingerprint() == before
    assert stats["accepted_total"] == total
    # Only the post-snapshot suffix was replayed from the WAL.
    assert stats["recovered_points"] < total
    recovered.close()


def test_auto_snapshot_every_n_accepted(tmp_path, encoder):
    config = StreamConfig(window=_SYNC.window, sync_encode=True,
                          snapshot_every=10)
    ingestor = StreamIngestor(encoder, tmp_path, config)
    for start in range(0, 28, 7):
        ingestor.ingest(in_order_points(1, 28)[start:start + 7])
    assert ingestor._durability.snapshot_path() is not None
    ingestor.close()


def test_eviction_drops_embeddings_and_ivf_entries(tmp_path, encoder):
    config = StreamConfig(
        window=WindowConfig(lateness_s=1.0, ttl_s=5.0, max_segment_points=64),
        sync_encode=True)
    ingestor = StreamIngestor(encoder, tmp_path, config,
                              backend="ivf", nlist=2, nprobe=2)
    ingestor.ingest(in_order_points(1, 8))          # t = 0..7
    assert ingestor.stats()["store_rows"] == 1
    result = ingestor.ingest(
        in_order_points(2, 4, t0=100.0))            # source 1 goes stale
    assert result.evicted_segments == 1
    ids, _ = ingestor.window_embeddings()
    assert len(ids) == 1  # evicted segment's embedding is gone
    answer = ingestor.query(np.asarray([[p.x, p.y] for p in
                                        in_order_points(2, 4, t0=100.0)]),
                            k=1)
    assert answer.segment_ids.tolist() == ids.tolist()
    assert ingestor.stats()["search"]["kind"] == "ivf"
    ingestor.close()


def test_query_reports_watermark_and_freshness(tmp_path, encoder):
    ingestor = StreamIngestor(encoder, tmp_path, _SYNC)
    ingestor.ingest(in_order_points(1, 10))
    answer = ingestor.query(np.array([[200.0, 300.0], [210.0, 310.0]]), k=1)
    assert not answer.degraded
    assert answer.watermark == pytest.approx(9.0 - 30.0)
    ingestor.close()


def test_online_anomaly_scores_live_window(tmp_path, encoder):
    ingestor = StreamIngestor(encoder, tmp_path, _SYNC)
    # 7 sources drawn from one seed family plus one distinct wanderer.
    for source in range(1, 8):
        ingestor.ingest(in_order_points(source, 6, seed=99))
    ingestor.ingest(in_order_points(8, 6, seed=1234))
    result = detect_online_anomalies(ingestor, k=3, quantile=0.8)
    assert len(result.segment_ids) == 8
    assert set(result.anomalies) <= set(result.segment_ids.tolist())
    assert not result.degraded
    with pytest.raises(ValueError):
        detect_online_anomalies(ingestor, quantile=1.5)
    ingestor.close()


# ------------------------------------------------------------- backpressure


def test_overload_defers_reembeds_and_keeps_serving(tmp_path, encoder):
    """2x encoder overload: shed/defer with bounded memory, still answer."""
    config = StreamConfig(
        window=WindowConfig(lateness_s=1e6, ttl_s=1e9, max_segment_points=4),
        sync_encode=False, encode_batch_size=2, encode_max_wait_s=0.001,
        max_pending_encodes=1, admission_limit=32)
    slow = {"calls": 0}

    def slow_encode():
        slow["calls"] += 1
        time.sleep(0.01)

    ingestor = StreamIngestor(encoder, tmp_path, config,
                              encode_hook=slow_encode)
    degraded_seen = False
    for source in range(1, 5):
        for start in range(0, 12, 4):
            result = ingestor.ingest(
                in_order_points(source, 12, seed=source)[start:start + 4])
            degraded_seen = degraded_seen or result.degraded
            # Deferred work never outgrows the live-segment count.
            stats = ingestor.stats()
            assert stats["dirty_segments"] <= stats["window"]["segments"]
            assert stats["inflight_encodes"] <= config.max_pending_encodes
    assert degraded_seen, "encoder lag never produced a degraded ack"

    # Queries keep working mid-lag and carry the freshness flag. The
    # encoder runs outside the ingester lock, so ingest no longer waits
    # on it at all — give the very first async encode a moment to land
    # before querying the table.
    deadline = time.monotonic() + 10.0
    while (ingestor.stats()["store_rows"] == 0
           and time.monotonic() < deadline):
        time.sleep(0.005)
    answer = ingestor.query(np.array([[500.0, 500.0], [510.0, 510.0]]), k=1)
    assert answer.segment_ids.shape == (1,)

    assert ingestor.catch_up(timeout_s=30.0)
    assert not ingestor.degraded
    # After catch-up the async path landed on the same bits as sync.
    segments = ingestor.window_segments()
    ids, embeddings = ingestor.window_embeddings()
    for row, sid in enumerate(ids.tolist()):
        oracle = encoder.encode_prefix(segments[sid])
        assert np.array_equal(embeddings[row], oracle.embedding)
    ingestor.close()


def test_admission_gate_sheds_concurrent_ingest(tmp_path, encoder):
    config = StreamConfig(window=_SYNC.window, sync_encode=True,
                          admission_limit=1)
    ingestor = StreamIngestor(encoder, tmp_path, config)
    barrier = threading.Barrier(3)
    outcomes = []

    def worker(source):
        barrier.wait()
        try:
            ingestor.ingest(in_order_points(source, 30, seed=source))
            outcomes.append("ok")
        except ServiceOverloadedError:
            outcomes.append("shed")

    threads = [threading.Thread(target=worker, args=(s,)) for s in (1, 2, 3)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert "ok" in outcomes
    shed_count = outcomes.count("shed")
    metric = ingestor.stats()
    assert metric["admission"]["limit"] == 1
    ingestor.close()
    # With limit=1 and a 3-way barrier, at least one call must shed.
    assert shed_count >= 1
