"""Tests for the extension measures EDR and LCSS."""

import numpy as np
import pytest

from repro.measures import EDRDistance, LCSSDistance, get_measure

LINE = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])


def naive_edr(a, b, eps):
    n, m = len(a), len(b)
    table = np.zeros((n + 1, m + 1))
    table[0, :] = np.arange(m + 1)
    table[:, 0] = np.arange(n + 1)
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            match = 0 if np.all(np.abs(a[i - 1] - b[j - 1]) <= eps) else 1
            table[i, j] = min(table[i - 1, j] + 1, table[i, j - 1] + 1,
                              table[i - 1, j - 1] + match)
    return table[n, m]


def naive_lcss(a, b, eps):
    n, m = len(a), len(b)
    table = np.zeros((n + 1, m + 1), dtype=int)
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            if np.all(np.abs(a[i - 1] - b[j - 1]) <= eps):
                table[i, j] = table[i - 1, j - 1] + 1
            else:
                table[i, j] = max(table[i - 1, j], table[i, j - 1])
    return table[n, m]


class TestEDR:
    def test_identical_is_zero(self):
        assert EDRDistance(epsilon=0.5).distance(LINE, LINE) == 0.0

    def test_matches_naive(self, rng):
        edr = EDRDistance(epsilon=0.8, normalize=False)
        for _ in range(10):
            a = rng.normal(size=(rng.integers(2, 10), 2))
            b = rng.normal(size=(rng.integers(2, 10), 2))
            assert edr.distance(a, b) == pytest.approx(naive_edr(a, b, 0.8))

    def test_normalized_in_unit_interval(self, rng):
        edr = EDRDistance(epsilon=0.5)
        for _ in range(5):
            a = rng.normal(size=(8, 2))
            b = rng.normal(size=(5, 2))
            assert 0.0 <= edr.distance(a, b) <= 1.0

    def test_epsilon_widens_matches(self, rng):
        a = rng.normal(size=(8, 2))
        b = a + 0.3
        strict = EDRDistance(epsilon=0.01, normalize=False).distance(a, b)
        loose = EDRDistance(epsilon=1.0, normalize=False).distance(a, b)
        assert loose <= strict

    def test_totally_disjoint_costs_max(self):
        a = np.zeros((3, 2))
        b = np.ones((4, 2)) * 100
        # Best strategy: substitute 3, insert 1 -> 4 edits = max(n, m).
        assert EDRDistance(epsilon=0.5,
                           normalize=False).distance(a, b) == 4.0

    def test_registry(self):
        assert isinstance(get_measure("edr", epsilon=2.0), EDRDistance)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            EDRDistance(epsilon=0.0)

    def test_not_metric_flag(self):
        assert not EDRDistance().is_metric


class TestLCSS:
    def test_identical_distance_zero(self):
        assert LCSSDistance(epsilon=0.5).distance(LINE, LINE) == 0.0

    def test_length_matches_naive(self, rng):
        lcss = LCSSDistance(epsilon=0.8)
        for _ in range(10):
            a = rng.normal(size=(rng.integers(2, 10), 2))
            b = rng.normal(size=(rng.integers(2, 10), 2))
            assert lcss.lcss_length(a, b) == naive_lcss(a, b, 0.8)

    def test_distance_in_unit_interval(self, rng):
        lcss = LCSSDistance(epsilon=0.5)
        a = rng.normal(size=(9, 2))
        b = rng.normal(size=(6, 2))
        assert 0.0 <= lcss.distance(a, b) <= 1.0

    def test_disjoint_distance_one(self):
        a = np.zeros((3, 2))
        b = np.ones((3, 2)) * 50
        assert LCSSDistance(epsilon=1.0).distance(a, b) == 1.0

    def test_delta_band_restricts(self, rng):
        a = rng.normal(size=(10, 2))
        b = np.concatenate([rng.normal(size=(5, 2)) + 50, a[:5]])
        free = LCSSDistance(epsilon=0.1).lcss_length(a, b)
        banded = LCSSDistance(epsilon=0.1, delta=1).lcss_length(a, b)
        assert banded <= free

    def test_subsequence_detected(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0], [3.0, 0.0]])
        b = a[[0, 2]]  # subsequence of a
        assert LCSSDistance(epsilon=0.1).lcss_length(a, b) == 2
        assert LCSSDistance(epsilon=0.1).distance(a, b) == 0.0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LCSSDistance(epsilon=-1.0)
        with pytest.raises(ValueError):
            LCSSDistance(epsilon=1.0, delta=-2)


def test_neutraj_trains_on_extension_measures(small_dataset):
    """The genericity claim: new registry measures train out of the box."""
    from repro import NeuTraj, NeuTrajConfig
    from repro.measures import pairwise_distances

    seeds = list(small_dataset)[:20]
    edr = get_measure("edr", epsilon=200.0)
    matrix = pairwise_distances(seeds, edr)
    model = NeuTraj(NeuTrajConfig(measure="edr", embedding_dim=8, epochs=2,
                                  sampling_num=3, batch_anchors=6,
                                  cell_size=500.0, seed=0))
    history = model.fit(seeds, distance_matrix=matrix)
    assert np.isfinite(history.losses).all()
    emb = model.embed(seeds)
    assert emb.shape == (20, 8)
