"""Bounded retries with exponential backoff (optionally jittered).

A tiny, dependency-free policy object shared by the precompute driver,
the streaming source supervisor and anything else that re-attempts flaky
work. Delays are deterministic by default (no jitter) so fault-injection
tests can reason about exact schedules; callers that fan many retriers
out against one dependency (per-source stream reconnects) opt into
jitter with a *seeded* generator, keeping determinism while decorrelating
the herd. The ``sleep`` hook is injectable for the same reason.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to re-attempt a failed unit of work, and how fast.

    Attributes
    ----------
    max_retries:
        Re-attempts after the first try (0 = fail immediately).
    base_delay_s:
        Delay before the first retry.
    multiplier:
        Exponential growth factor between consecutive retries.
    max_delay_s:
        Cap on any single delay, jittered or not.
    jitter:
        Fractional spread applied to each delay when an ``rng`` is
        supplied: the delay is scaled uniformly within ``1 ± jitter``.
        0 (the default) keeps schedules exact.
    """

    max_retries: int = 2
    base_delay_s: float = 0.1
    multiplier: float = 2.0
    max_delay_s: float = 5.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ConfigurationError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError("jitter must be in [0, 1)")

    def delay(self, attempt: int,
              rng: Optional[np.random.Generator] = None) -> float:
        """Backoff before retry number ``attempt`` (1-based).

        With ``jitter > 0`` and an ``rng``, the exponential delay is
        scaled by a uniform factor in ``[1 - jitter, 1 + jitter]`` and
        re-clamped, so ``max_delay_s`` caps the *jittered* delay too.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        duration = min(self.base_delay_s * self.multiplier ** (attempt - 1),
                       self.max_delay_s)
        if self.jitter and rng is not None:
            duration = min(
                duration * (1.0 + self.jitter * (2.0 * rng.random() - 1.0)),
                self.max_delay_s)
        return duration

    def should_retry(self, attempt: int) -> bool:
        """True when retry number ``attempt`` (1-based) is still allowed."""
        return attempt <= self.max_retries

    def sleep(self, attempt: int,
              sleep: Callable[[float], None] = time.sleep,
              rng: Optional[np.random.Generator] = None) -> float:
        """Sleep out the backoff for ``attempt``; returns the delay used."""
        duration = self.delay(attempt, rng=rng)
        if duration > 0:
            sleep(duration)
        return duration
