"""durability-discipline: acked state reaches disk through audited paths.

The durable serving tier promises "acked means fsynced, published means
atomic". That promise is easy to erode one call site at a time, so this
rule pins the two load-bearing mechanics to their audited homes:

* ``os.rename`` is banned outright: it is not atomic across filesystems
  and — unlike the project's helpers — nothing fsyncs the file before or
  the directory after, so a crash can publish a name that points at
  garbage. ``os.replace`` is better (same-filesystem atomicity) but is
  still only half of atomic publication, so it is confined to the
  atomic-write helpers (``repro.core.atomicio``); every other module
  renames through :func:`repro.core.atomicio.atomic_replace` or the
  ``atomic_write_*``/``atomic_savez`` wrappers, which do the fsync dance
  in one place.
* ``.append(..., sync=False)`` on a WAL is the "ack before fsync"
  foot-gun: the record is in the page cache, the caller acks the client,
  the machine dies, the acked write is gone. The keyword exists only so
  the WAL's own internals and benchmarks can measure the fsync cost
  delta; mutation handlers must never pass it, so any ``sync=False``
  keyword outside the WAL module itself is flagged.

Options: ``atomic_write_paths`` — path fragments whose files may call
``os.replace``; ``wal_paths`` — path fragments whose files may pass
``sync=False``. Benchmarks run under the relaxed profile, which waives
the ``sync=False`` check (measuring the unsynced append rate is the
point there) but keeps the rename bans.
"""

from __future__ import annotations

import ast
from typing import List

from . import register
from .base import ModuleContext, Rule


@register
class DurabilityDiscipline(Rule):
    rule_id = "durability-discipline"
    description = ("os.rename is banned, os.replace only inside the "
                   "atomic-write helpers, and WAL appends with sync=False "
                   "only inside the WAL module")
    default_options = {
        "atomic_write_paths": ("repro/core/atomicio.py",),
        "wal_paths": ("repro/serving/wal.py",),
        "flag_unsynced_appends": True,
    }

    def check(self, ctx: ModuleContext) -> List:
        opts = ctx.options
        in_atomicio = any(fragment in ctx.rel_path
                          for fragment in opts["atomic_write_paths"])
        in_wal = any(fragment in ctx.rel_path
                     for fragment in opts["wal_paths"])
        out = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.resolve_call_name(node.func)
            if name == "os.rename":
                out.append(ctx.finding(
                    self.rule_id, node,
                    "os.rename is not atomic publication; use "
                    "repro.core.atomicio.atomic_replace (fsyncs file and "
                    "directory) instead"))
            elif name == "os.replace" and not in_atomicio:
                out.append(ctx.finding(
                    self.rule_id, node,
                    "os.replace outside the atomic-write helpers skips the "
                    "fsync-before/fsync-after dance; go through "
                    "repro.core.atomicio"))
            elif (opts.get("flag_unsynced_appends", True) and not in_wal
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "append"):
                for keyword in node.keywords:
                    if keyword.arg == "sync" \
                            and isinstance(keyword.value, ast.Constant) \
                            and keyword.value.value is False:
                        out.append(ctx.finding(
                            self.rule_id, node,
                            "append(..., sync=False) acks before the fsync "
                            "— a crash loses the acknowledged write; only "
                            "the WAL module may defer its own syncs"))
        return out
