"""Result cache for the serving layer.

Online trajectory-similarity traffic is heavily skewed — popular routes are
queried again and again — so the service fronts the encoder with a small
LRU cache keyed by a content hash of the query. Keys incorporate the
trajectory's raw coordinate bytes (not object identity), the requested
``k``, the model's measure, and the store generation, so equal queries hit
regardless of where their arrays came from and every store mutation
implicitly invalidates all earlier entries.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Dict, Iterable, Optional, Tuple

import numpy as np

__all__ = ["LRUCache", "trajectory_fingerprint", "result_key"]


def trajectory_fingerprint(points: np.ndarray) -> str:
    """Content hash of a coordinate array (shape + dtype + bytes)."""
    arr = np.ascontiguousarray(points)
    digest = hashlib.sha1()
    digest.update(str(arr.shape).encode())
    digest.update(str(arr.dtype).encode())
    digest.update(arr.tobytes())
    return digest.hexdigest()


def result_key(points: np.ndarray, k: int, measure: str,
               generation: int) -> Tuple[str, int, str, int]:
    """Cache key for a top-k query against a specific store generation."""
    return (trajectory_fingerprint(points), int(k), measure, int(generation))


class LRUCache:
    """Thread-safe least-recently-used cache with hit/miss accounting.

    ``capacity=0`` disables caching entirely (every ``get`` is a miss and
    ``put`` is a no-op), which lets callers keep one code path.
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._data: "OrderedDict[Any, Any]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key: Any, default: Any = None) -> Any:
        with self._lock:
            if key in self._data:
                self._hits += 1
                self._data.move_to_end(key)
                return self._data[key]
            self._misses += 1
            return default

    def put(self, key: Any, value: Any) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self._evictions += 1

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        with self._lock:
            dropped = len(self._data)
            self._data.clear()
            return dropped

    def keys(self) -> Iterable[Any]:
        with self._lock:
            return list(self._data.keys())

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    @property
    def evictions(self) -> int:
        with self._lock:
            return self._evictions

    def stats(self) -> Dict[str, float]:
        with self._lock:
            total = self._hits + self._misses
            return {
                "size": len(self._data),
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_rate": (self._hits / total) if total else 0.0,
            }
