"""Downstream trajectory-mining applications built on NeuTraj embeddings.

These are the tasks the paper's introduction motivates NeuTraj with:
similarity join and anomaly detection both need (near-)all-pairs distances
and become tractable once pairs cost O(d) instead of O(L²).
"""

from .join import (JoinResult, calibrate_threshold, exact_join,
                   similarity_join)
from .anomaly import (AnomalyResult, OnlineAnomalyResult,
                      detect_anomalies, detect_online_anomalies,
                      knn_outlier_scores)

__all__ = [
    "JoinResult", "calibrate_threshold", "exact_join", "similarity_join",
    "AnomalyResult", "OnlineAnomalyResult", "detect_anomalies",
    "detect_online_anomalies", "knn_outlier_scores",
]
