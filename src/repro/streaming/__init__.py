"""Fault-tolerant continuous ingest over the O(L) encoder (ROADMAP item 3).

The paper's linear-time encoder is pitched for trajectories that *grow* —
points arriving continuously from a fleet of sources. This package turns
that pitch into a hardened subsystem:

* :mod:`~repro.streaming.events` — the wire vocabulary: per-source,
  sequence-numbered, event-timestamped points, plus their WAL codec.
* :mod:`~repro.streaming.window` — the deterministic sliding-window state
  machine: seq dedup, bounded reordering, watermark/TTL eviction.
* :mod:`~repro.streaming.ingest` — the orchestrator: WAL-durable acks,
  incremental (prefix-state) re-embedding through the micro-batcher,
  admission-gated backpressure with a deferred/degraded mode, snapshot +
  replay crash recovery, and online anomaly scores over the live window.
* :mod:`~repro.streaming.consumer` — per-source reconnect supervision
  (circuit breaker + jittered retry backoff).
"""

from .consumer import SourceSupervisor
from .events import STREAM_WAL_DIM, StreamPoint, points_from_record, points_to_record
from .ingest import IngestResult, StreamConfig, StreamIngestor
from .window import SlidingWindowStore, WindowConfig

__all__ = [
    "STREAM_WAL_DIM",
    "IngestResult",
    "SlidingWindowStore",
    "SourceSupervisor",
    "StreamConfig",
    "StreamIngestor",
    "StreamPoint",
    "WindowConfig",
    "points_from_record",
    "points_to_record",
]
