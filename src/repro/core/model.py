"""NeuTraj model: seed-guided neural metric learning (paper §III-B, §V).

:class:`NeuTraj` is the package's primary public API. Given a pool of seed
trajectories it (1) computes their exact pair-wise distances under the
configured measure, (2) transforms them into the normalised similarity
matrix ``S``, and (3) trains the SAM-augmented recurrent encoder with the
distance-weighted ranking loss so that
``g(T_i, T_j) = exp(-||E_i - E_j||) ~ S_ij``.

After training, embedding a trajectory is O(L) and comparing two embeddings
is O(d) — the linear-time similarity primitive of the title.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

import numpy as np

from ..datasets.grid import CoordinateNormalizer, Grid
from ..datasets.trajectory import Trajectory, TrajectoryDataset
from ..exceptions import CorruptArtifactError, NotFittedError, ReproError
from ..measures import get_measure, pairwise_distances
from .atomicio import atomic_savez
from ..nn.optim import Adam
from .config import NeuTrajConfig
from .encoder import TrajectoryEncoder
from .sampling import PairSampler
from ..exceptions import TrainingDivergedError
from .similarity import (distance_to_similarity, exponential_similarity,
                         suggest_alpha)
from .trainer import (DivergenceGuard, GuardrailConfig, TrainingHistory,
                      train_epoch)

PathLike = Union[str, Path]


class MetricModel:
    """Shared inference API for trained trajectory-embedding models."""

    def __init__(self, config: NeuTrajConfig):
        self.config = config
        self.encoder: Optional[TrajectoryEncoder] = None
        self.alpha: Optional[float] = None

    # ------------------------------------------------------------- inference

    def _require_fitted(self) -> TrajectoryEncoder:
        if self.encoder is None:
            raise NotFittedError(f"{type(self).__name__} is not fitted yet")
        return self.encoder

    def embed(self, trajectories: Sequence[Trajectory],
              batch_size: int = 128) -> np.ndarray:
        """Embed trajectories -> (B, d) array (O(L) per trajectory)."""
        return self._require_fitted().embed(trajectories, batch_size=batch_size)

    def distance(self, a: Trajectory, b: Trajectory) -> float:
        """Embedding-space Euclidean distance between two trajectories."""
        emb = self.embed([a, b])
        return float(np.linalg.norm(emb[0] - emb[1]))

    def similarity(self, a: Trajectory, b: Trajectory) -> float:
        """NeuTraj similarity ``g = exp(-||E_a - E_b||)`` in (0, 1]."""
        return float(np.exp(-self.distance(a, b)))

    def top_k(self, query: Trajectory, database_embeddings: np.ndarray,
              k: int) -> np.ndarray:
        """Indices of the k nearest database embeddings to ``query``."""
        query_emb = self.embed([query])[0]
        dists = np.linalg.norm(database_embeddings - query_emb, axis=1)
        k = min(k, len(dists))
        idx = np.argpartition(dists, k - 1)[:k]
        return idx[np.argsort(dists[idx], kind="stable")]

    # ----------------------------------------------------------- persistence

    def save(self, path: PathLike) -> None:
        """Serialise config + weights + grid/normaliser/memory to ``.npz``.

        Training history (when present) is stored too, so restored models
        can still report convergence statistics. The write goes through a
        temporary file and an atomic rename, making concurrent cache use
        safe.
        """
        encoder = self._require_fitted()
        payload = {f"param/{k}": v for k, v in encoder.state_dict().items()}
        payload["meta/config"] = np.array(
            json.dumps(self.config.__dict__), dtype=object)
        payload["meta/class"] = np.array(type(self).__name__, dtype=object)
        payload["meta/alpha"] = np.array(
            -1.0 if self.alpha is None else self.alpha)
        payload["grid/bbox"] = np.array(encoder.grid.bbox)
        payload["grid/cell_size"] = np.array(encoder.grid.cell_size)
        payload["norm/mean"] = encoder.normalizer.mean
        payload["norm/std"] = encoder.normalizer.std
        if encoder.memory is not None:
            payload["memory/data"] = encoder.memory.data
        history = getattr(self, "history", None)
        if history is not None and history.epochs:
            payload["history/losses"] = np.array(history.losses)
            payload["history/seconds"] = np.array(
                [e.seconds for e in history.epochs])
            payload["history/anchors"] = np.array(
                [e.num_anchors for e in history.epochs])
        atomic_savez(Path(path), compressed=True, **payload)

    @classmethod
    def load(cls, path: PathLike) -> "MetricModel":
        """Load a model saved by :meth:`save`.

        Truncated, bit-flipped or otherwise undecodable files raise a
        typed :class:`~repro.exceptions.CorruptArtifactError` instead of
        leaking zip/JSON internals (or silently deserialising garbage).
        """
        try:
            return cls._load(path)
        except (ReproError, FileNotFoundError):
            raise
        except Exception as exc:
            raise CorruptArtifactError(
                f"cannot load model from {path}: {exc}") from exc

    @classmethod
    def _load(cls, path: PathLike) -> "MetricModel":
        with np.load(path, allow_pickle=True) as data:
            config = NeuTrajConfig(**json.loads(str(data["meta/config"])))
            model = cls(config)
            grid = Grid(tuple(data["grid/bbox"]), float(data["grid/cell_size"]))
            normalizer = CoordinateNormalizer(data["norm/mean"], data["norm/std"])
            rng = np.random.default_rng(config.seed)
            encoder = TrajectoryEncoder(grid, normalizer, config, rng)
            state = {k[len("param/"):]: data[k] for k in data.files
                     if k.startswith("param/")}
            encoder.load_state_dict(state)
            if encoder.memory is not None and "memory/data" in data.files:
                # SpatialMemory is a plain buffer, not a tape
                # Tensor; restoring it wholesale is the supported
                # path.  # repro: disable=tape-discipline
                encoder.memory.data = data["memory/data"].copy()
            model.encoder = encoder
            alpha = float(data["meta/alpha"])
            model.alpha = None if alpha < 0 else alpha
            if "history/losses" in data.files:
                from .trainer import EpochStats, TrainingHistory
                losses = data["history/losses"]
                seconds = data["history/seconds"]
                anchors = data["history/anchors"]
                model.history = TrainingHistory(epochs=[
                    EpochStats(epoch=i, loss=float(l), seconds=float(s),
                               num_anchors=int(a))
                    for i, (l, s, a) in enumerate(zip(losses, seconds,
                                                      anchors))
                ])
        return model


class NeuTraj(MetricModel):
    """The NeuTraj model (paper's primary contribution).

    Examples
    --------
    >>> from repro import NeuTraj, NeuTrajConfig, generate_porto, PortoConfig
    >>> seeds = generate_porto(PortoConfig(num_trajectories=50), seed=0)
    >>> model = NeuTraj(NeuTrajConfig(measure="hausdorff", epochs=2,
    ...                               embedding_dim=16, sampling_num=5))
    >>> history = model.fit(seeds)
    >>> emb = model.embed(list(seeds))
    >>> emb.shape
    (50, 16)
    """

    def __init__(self, config: Optional[NeuTrajConfig] = None):
        super().__init__(config or NeuTrajConfig())
        self.history: Optional[TrainingHistory] = None
        self.similarity_matrix: Optional[np.ndarray] = None
        self.guard_report: Optional[dict] = None

    def fit(self, seeds: Union[TrajectoryDataset, Sequence[Trajectory]],
            distance_matrix: Optional[np.ndarray] = None,
            epoch_callback: Optional[Callable[[int, float], None]] = None,
            checkpoint_dir: Optional[PathLike] = None,
            checkpoint_every: int = 1, resume: bool = True,
            keep_checkpoints: int = 3,
            guardrails: Optional[GuardrailConfig] = None
            ) -> TrainingHistory:
        """Train on the seed pool.

        Parameters
        ----------
        seeds:
            The pool of seed trajectories (paper samples ~20% of the DB).
        distance_matrix:
            Precomputed exact (N, N) seed distances; computed with the
            configured measure when omitted (the quadratic offline step).
        epoch_callback:
            Invoked as ``callback(epoch, loss)`` after each epoch.
        checkpoint_dir:
            When set, an atomic sha256-manifested checkpoint (parameters,
            Adam moments, RNG/sampler state, loss history) is written
            there after each ``checkpoint_every``-th epoch via
            :class:`repro.resilience.CheckpointManager`, making the run
            crash-safe: re-calling ``fit`` with the same directory resumes
            from the last good checkpoint and produces bit-identical
            parameters and history to an uninterrupted run. Corrupt or
            truncated checkpoints are skipped in favour of the newest
            intact one.
        checkpoint_every:
            Epoch interval between checkpoints (default every epoch).
        resume:
            Set False to ignore existing checkpoints and retrain from
            scratch.
        keep_checkpoints:
            Newest checkpoints retained on disk (0 keeps all).
        guardrails:
            Divergence protection (:class:`~repro.core.GuardrailConfig`;
            default-enabled when omitted). Non-finite losses/gradients
            and EWMA loss spikes skip the batch's update; a skip run
            past the budget raises
            :class:`~repro.exceptions.TrainingDivergedError`, which —
            when ``checkpoint_dir`` is set and a good checkpoint exists
            — is answered by rolling parameters, optimizer moments and
            RNG state back to that checkpoint (bit-identical, the PR 3
            resume path) and re-running from there, at most
            ``guardrails.max_rollbacks`` times. Pass
            ``GuardrailConfig(enabled=False)`` for the exact unguarded
            path. ``self.guard_report`` holds the last run's skip
            statistics.
        """
        seed_list = list(seeds)
        if len(seed_list) <= self.config.sampling_num:
            raise ValueError(
                f"need more than sampling_num={self.config.sampling_num} seeds")
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)

        if distance_matrix is None:
            measure = get_measure(cfg.measure)
            distance_matrix = pairwise_distances(seed_list, measure)
        distance_matrix = np.asarray(distance_matrix, dtype=np.float64)
        if distance_matrix.shape != (len(seed_list), len(seed_list)):
            raise ValueError("distance matrix shape does not match seeds")

        self.alpha = cfg.alpha or suggest_alpha(distance_matrix)
        transform = (distance_to_similarity if cfg.row_normalize
                     else exponential_similarity)
        self.similarity_matrix = transform(distance_matrix, self.alpha)

        dataset = TrajectoryDataset(seed_list)
        grid = Grid.for_dataset(dataset, cfg.cell_size,
                                margin=cfg.cell_size * max(cfg.bandwidth, 1))
        normalizer = CoordinateNormalizer.fit(seed_list)
        self.encoder = TrajectoryEncoder(grid, normalizer, cfg, rng)

        sampler = PairSampler(self.similarity_matrix, cfg.sampling_num,
                              weighted=cfg.use_weighted_sampling, rng=rng)
        optimizer = Adam(self.encoder.parameters(), lr=cfg.learning_rate)

        manager = None
        if checkpoint_dir is not None:
            if checkpoint_every < 1:
                raise ValueError("checkpoint_every must be >= 1")
            from ..resilience.checkpoint import CheckpointManager
            manager = CheckpointManager(checkpoint_dir, keep=keep_checkpoints)

        history = TrainingHistory()
        start_epoch = 0
        if manager is not None and resume:
            checkpoint = manager.load_latest()
            if checkpoint is not None:
                from .trainer import unpack_training_checkpoint
                epoch_done, history = unpack_training_checkpoint(
                    checkpoint.arrays, checkpoint.meta, self.encoder,
                    optimizer, rng, cfg)
                start_epoch = epoch_done + 1

        guard_cfg = guardrails or GuardrailConfig()
        guard = DivergenceGuard(guard_cfg) if guard_cfg.enabled else None
        rollbacks = 0
        num_seeds = len(seed_list)
        epoch = start_epoch
        while epoch < cfg.epochs:
            anchors = self._epoch_anchors(num_seeds, epoch, rng)
            try:
                stats = train_epoch(self.encoder, seed_list, sampler,
                                    optimizer, anchors, cfg.batch_anchors,
                                    cfg.grad_clip, rng, epoch, guard=guard)
            except TrainingDivergedError:
                checkpoint = (manager.load_latest()
                              if manager is not None else None)
                if checkpoint is None or rollbacks >= guard_cfg.max_rollbacks:
                    self.guard_report = dict(guard.stats(),
                                             rollbacks=rollbacks)
                    raise
                from .trainer import unpack_training_checkpoint
                epoch_done, history = unpack_training_checkpoint(
                    checkpoint.arrays, checkpoint.meta, self.encoder,
                    optimizer, rng, cfg)
                rollbacks += 1
                guard = DivergenceGuard(guard_cfg)
                epoch = epoch_done + 1
                continue
            history.epochs.append(stats)
            if manager is not None and (
                    (epoch + 1) % checkpoint_every == 0
                    or epoch == cfg.epochs - 1):
                from .trainer import pack_training_checkpoint
                arrays, meta = pack_training_checkpoint(
                    self.encoder, optimizer, rng, history, epoch, cfg)
                manager.save(epoch, arrays, meta)
            if epoch_callback is not None:
                epoch_callback(epoch, stats.loss)
            epoch += 1
        self.history = history
        self.guard_report = (dict(guard.stats(), rollbacks=rollbacks)
                             if guard is not None else None)
        return history

    def _epoch_anchors(self, num_seeds: int, epoch: int,
                       rng: np.random.Generator) -> np.ndarray:
        """Anchor subset for the epoch (optional incremental curriculum)."""
        frac = self.config.incremental_seeds
        if frac <= 0 or self.config.epochs <= 1:
            return np.arange(num_seeds)
        progress = epoch / (self.config.epochs - 1)
        share = frac + (1.0 - frac) * progress
        count = max(self.config.sampling_num + 1,
                    int(round(share * num_seeds)))
        return np.arange(min(count, num_seeds))
