"""HTTP-level request validation and sanitize-mode behaviour.

Covers the explicit ``k`` bounds at request parsing (400, never 500) and
the end-to-end acceptance path: a server in sanitize mode answers top-k
on spiked / duplicated / out-of-grid queries with 200s and accurate
quality reports.
"""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serving import ServingConfig, SimilarityService, make_server


def _spin_up(service):
    srv = make_server(service)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    return srv, thread


def _tear_down(srv, thread, service):
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=10)
    service.close()


@pytest.fixture
def strict_server(serving_world, fresh_store):
    model, _ = serving_world
    service = SimilarityService(model, fresh_store,
                                ServingConfig(max_wait_ms=0.0))
    srv, thread = _spin_up(service)
    yield srv
    _tear_down(srv, thread, service)


@pytest.fixture
def sanitize_server(serving_world, fresh_store):
    model, _ = serving_world
    service = SimilarityService(
        model, fresh_store, ServingConfig(max_wait_ms=0.0, sanitize=True))
    srv, thread = _spin_up(service)
    yield srv
    _tear_down(srv, thread, service)


def _post(server, path, payload):
    data = json.dumps(payload).encode()
    request = urllib.request.Request(server.url + path, data=data)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode())


TRAJ = [[0.0, 0.0], [100.0, 100.0], [200.0, 200.0]]


class TestKValidation:
    @pytest.mark.parametrize("k", [0, -1, -100])
    def test_k_below_one_is_400(self, strict_server, k):
        status, body = _post(strict_server, "/v1/topk",
                             {"trajectory": TRAJ, "k": k})
        assert status == 400
        assert "k must be >= 1" in body["error"]

    def test_k_above_store_size_is_400(self, strict_server):
        status, body = _post(strict_server, "/v1/topk",
                             {"trajectory": TRAJ, "k": 17})  # store has 16
        assert status == 400
        assert "exceeds store size" in body["error"]

    def test_k_equal_store_size_is_200(self, strict_server):
        status, body = _post(strict_server, "/v1/topk",
                             {"trajectory": TRAJ, "k": 16})
        assert status == 200
        assert len(body["ids"]) == 16

    def test_k_not_integer_is_400(self, strict_server):
        for bad in ("5", 2.5, True, None):
            status, body = _post(strict_server, "/v1/topk",
                                 {"trajectory": TRAJ, "k": bad})
            assert status == 400, bad


class TestSanitizeOverHTTP:
    def _dirty(self, points, grid_bbox):
        dirty = [list(map(float, p)) for p in points]
        dirty.insert(2, list(dirty[2]))                  # duplicate
        xmin, ymin, xmax, ymax = grid_bbox
        dirty.insert(1, [xmax + (xmax - xmin), ymax])    # out-of-grid
        dirty.insert(1, [float("nan"), 0.0])             # dropout (json nan)
        return dirty

    def test_dirty_queries_answer_200_with_quality(self, sanitize_server,
                                                   serving_world):
        model, items = serving_world
        dirty = self._dirty(items[17].points.tolist(),
                            model.encoder.grid.bbox)
        status, body = _post(sanitize_server, "/v1/topk",
                             {"trajectory": dirty, "k": 3})
        assert status == 200
        assert len(body["ids"]) == 3
        quality = body["quality"]
        assert quality["action"] == "repaired"
        assert quality["nonfinite_dropped"] == 1
        assert quality["clamped_points"] >= 1
        assert quality["duplicates_collapsed"] >= 1

    def test_same_dirty_query_rejected_in_strict_mode(self, strict_server,
                                                      serving_world):
        model, items = serving_world
        dirty = self._dirty(items[17].points.tolist(),
                            model.encoder.grid.bbox)
        status, body = _post(strict_server, "/v1/topk",
                             {"trajectory": dirty, "k": 3})
        assert status == 400
        assert "error" in body

    def test_clean_query_reports_pass(self, sanitize_server, serving_world):
        _, items = serving_world
        status, body = _post(sanitize_server, "/v1/topk",
                             {"trajectory": items[16].points.tolist(),
                              "k": 2})
        assert status == 200
        assert body["quality"]["action"] == "pass"
        assert body["quality"]["clean"] is True

    def test_metrics_expose_sanitize_counters(self, sanitize_server,
                                              serving_world):
        model, items = serving_world
        dirty = self._dirty(items[18].points.tolist(),
                            model.encoder.grid.bbox)
        _post(sanitize_server, "/v1/topk", {"trajectory": dirty, "k": 1})
        request = urllib.request.Request(sanitize_server.url + "/metrics")
        with urllib.request.urlopen(request, timeout=30) as response:
            text = response.read().decode()
        assert "repro_sanitize_repaired_total 1" in text
