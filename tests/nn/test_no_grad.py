"""Tests for the no_grad inference mode."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, is_grad_enabled, no_grad


def test_enabled_by_default():
    assert is_grad_enabled()


def test_ops_inside_no_grad_detached():
    t = Tensor([1.0, 2.0], requires_grad=True)
    with no_grad():
        out = (t * 2).sum()
    assert not out.requires_grad
    with pytest.raises(RuntimeError):
        out.backward()


def test_restored_after_exit():
    t = Tensor([1.0], requires_grad=True)
    with no_grad():
        pass
    out = (t * 2).sum()
    out.backward()
    np.testing.assert_allclose(t.grad, [2.0])


def test_restored_after_exception():
    try:
        with no_grad():
            raise ValueError("boom")
    except ValueError:
        pass
    assert is_grad_enabled()


def test_nested_contexts():
    with no_grad():
        with no_grad():
            assert not is_grad_enabled()
        assert not is_grad_enabled()
    assert is_grad_enabled()


def test_forward_values_identical():
    t = Tensor(np.array([0.3, -0.7]), requires_grad=True)
    with_tape = (t.sigmoid() * t.tanh()).sum().item()
    with no_grad():
        without = (t.sigmoid() * t.tanh()).sum().item()
    assert with_tape == without


def test_leaf_requires_grad_untouched():
    with no_grad():
        t = Tensor([1.0], requires_grad=True)
    assert t.requires_grad  # explicit leaves keep their flag
