"""Engine, baseline and CLI behaviour: file walking, syntax errors,
baseline add/expire round-trips, JSON output and exit codes."""

import json

import pytest

from repro.analysis import (Finding, analyze_paths, analyze_source,
                            load_baseline, split_by_baseline, write_baseline)
from repro.analysis.cli import main as lint_main
from repro.analysis.engine import SYNTAX_ERROR_RULE

DIRTY = "import time\ndeadline = time.time() + 5\n"
CLEAN = "import time\nstart = time.monotonic()\n"


@pytest.fixture
def tree(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "dirty.py").write_text(DIRTY)
    (tmp_path / "pkg" / "clean.py").write_text(CLEAN)
    return tmp_path


# -------------------------------------------------------------------- engine

def test_analyze_paths_walks_directories(tree):
    result = analyze_paths([tree / "pkg"])
    assert result.files_checked == 2
    assert [f.rule for f in result.findings] == ["determinism"]
    assert not result.clean
    assert "2 file(s) checked" in result.summary()


def test_analyze_paths_rejects_non_python(tmp_path):
    (tmp_path / "notes.txt").write_text("hi")
    with pytest.raises(FileNotFoundError):
        analyze_paths([tmp_path / "notes.txt"])


def test_syntax_error_becomes_finding():
    findings = analyze_source("def broken(:\n", "src/x.py")
    assert [f.rule for f in findings] == [SYNTAX_ERROR_RULE]
    assert "cannot parse" in findings[0].message


def test_finding_format_and_fingerprint_stability():
    finding = Finding(rule="determinism", path="a.py", line=3, col=7,
                      message="m", line_text="  t = time.time()")
    assert finding.format() == "a.py:3:7: determinism: m"
    # The fingerprint tracks the line *text*, not its number.
    moved = Finding(rule="determinism", path="a.py", line=99, col=7,
                    message="m", line_text="t = time.time()")
    assert finding.fingerprint == moved.fingerprint
    edited = Finding(rule="determinism", path="a.py", line=3, col=7,
                     message="m", line_text="t = time.monotonic()")
    assert finding.fingerprint != edited.fingerprint


# ------------------------------------------------------------------ baseline

def test_baseline_round_trip_grandfathers_then_expires(tree, tmp_path):
    baseline_path = tmp_path / "baseline.json"
    first = analyze_paths([tree / "pkg"])
    write_baseline(baseline_path, first.findings)

    # Same findings now ride in the baseline: the run is clean.
    baseline = load_baseline(baseline_path)
    second = analyze_paths([tree / "pkg"], baseline=baseline)
    assert second.clean
    assert len(second.grandfathered) == 1
    assert second.stale_baseline == []

    # Fixing the flagged line expires the entry (reported as stale).
    (tree / "pkg" / "dirty.py").write_text(CLEAN)
    third = analyze_paths([tree / "pkg"], baseline=baseline)
    assert third.clean and not third.grandfathered
    assert [e["rule"] for e in third.stale_baseline] == ["determinism"]


def test_load_baseline_missing_and_malformed(tmp_path):
    assert load_baseline(tmp_path / "absent.json") == {}
    bad = tmp_path / "bad.json"
    bad.write_text("{\"version\": 999}")
    with pytest.raises(ValueError):
        load_baseline(bad)
    bad.write_text("not json")
    with pytest.raises(ValueError):
        load_baseline(bad)


def test_split_by_baseline_partitions():
    known = Finding(rule="r", path="a.py", line=1, col=1, message="m",
                    line_text="known")
    fresh = Finding(rule="r", path="a.py", line=2, col=1, message="m",
                    line_text="fresh")
    baseline = {known.fingerprint: {"rule": "r", "path": "a.py",
                                    "fingerprint": known.fingerprint},
                "gone": {"rule": "r", "path": "b.py", "fingerprint": "gone"}}
    new, grandfathered, stale = split_by_baseline([known, fresh], baseline)
    assert new == [fresh]
    assert grandfathered == [known]
    assert [e["fingerprint"] for e in stale] == ["gone"]


# ----------------------------------------------------------------------- CLI

def test_cli_exit_codes_and_json(tree, capsys):
    dirty = str(tree / "pkg" / "dirty.py")
    clean = str(tree / "pkg" / "clean.py")

    assert lint_main([clean, "--no-baseline"]) == 0
    assert lint_main([dirty, "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "determinism" in out

    assert lint_main([dirty, "--no-baseline", "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is False
    assert [f["rule"] for f in payload["findings"]] == ["determinism"]

    assert lint_main([str(tree / "nope.txt")]) == 2
    assert lint_main([dirty, "--rules", "not-a-rule"]) == 2


def test_cli_write_baseline_then_clean(tree):
    dirty = str(tree / "pkg" / "dirty.py")
    baseline = str(tree / "baseline.json")
    assert lint_main([dirty, "--baseline", baseline]) == 1
    assert lint_main([dirty, "--baseline", baseline,
                      "--write-baseline"]) == 0
    assert lint_main([dirty, "--baseline", baseline]) == 0
    # --no-baseline sees the debt again.
    assert lint_main([dirty, "--baseline", baseline, "--no-baseline"]) == 1


def test_cli_rules_selection_and_relaxed(tree):
    dirty = str(tree / "pkg" / "dirty.py")
    # Only the lock rule: the wall-clock read is out of scope.
    assert lint_main([dirty, "--no-baseline",
                      "--rules", "lock-discipline"]) == 0
    # The relaxed (benchmarks) profile drops determinism entirely.
    assert lint_main([dirty, "--no-baseline", "--relaxed"]) == 0


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("tape-discipline", "dtype-discipline", "determinism",
                    "lock-discipline", "exception-hygiene", "api-hygiene"):
        assert rule_id in out
