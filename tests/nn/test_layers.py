"""Tests for Linear, embedding similarity, and initializers."""

import numpy as np
import pytest

from repro.nn import init
from repro.nn.layers import Linear, embedding_similarity, euclidean_distance
from repro.nn.tensor import Tensor


class TestLinear:
    def test_shapes(self, rng):
        layer = Linear(3, 5, rng)
        out = layer(Tensor(np.zeros((4, 3))))
        assert out.shape == (4, 5)

    def test_zero_bias_at_init(self, rng):
        layer = Linear(3, 5, rng)
        np.testing.assert_allclose(layer.bias.data, 0.0)

    def test_no_bias_option(self, rng):
        layer = Linear(3, 5, rng, bias=False)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((2, 3))))
        np.testing.assert_allclose(out.data, 0.0)

    def test_matches_manual_affine(self, rng):
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_batched_input(self, rng):
        layer = Linear(3, 2, rng)
        out = layer(Tensor(np.zeros((5, 4, 3))))
        assert out.shape == (5, 4, 2)


class TestDistances:
    def test_euclidean_known_value(self):
        a = Tensor([[0.0, 0.0], [1.0, 1.0]])
        b = Tensor([[3.0, 4.0], [1.0, 1.0]])
        np.testing.assert_allclose(euclidean_distance(a, b).data, [5.0, 0.0],
                                   atol=1e-6)

    def test_similarity_identical_is_one(self):
        a = Tensor([[1.0, 2.0]])
        np.testing.assert_allclose(embedding_similarity(a, a).data, [1.0],
                                   atol=1e-6)

    def test_similarity_decreases_with_distance(self):
        a = Tensor([[0.0, 0.0]])
        near = Tensor([[0.1, 0.0]])
        far = Tensor([[5.0, 0.0]])
        assert (embedding_similarity(a, near).item()
                > embedding_similarity(a, far).item())

    def test_similarity_range(self, rng):
        a = Tensor(rng.normal(size=(10, 4)))
        b = Tensor(rng.normal(size=(10, 4)))
        values = embedding_similarity(a, b).data
        assert np.all(values > 0.0) and np.all(values <= 1.0)


class TestInit:
    def test_xavier_bound(self, rng):
        w = init.xavier_uniform((100, 50), rng)
        bound = np.sqrt(6.0 / 150)
        assert np.all(np.abs(w) <= bound)

    def test_orthogonal_columns(self, rng):
        w = init.orthogonal((8, 8), rng)
        np.testing.assert_allclose(w @ w.T, np.eye(8), atol=1e-10)

    def test_orthogonal_tall(self, rng):
        w = init.orthogonal((10, 4), rng)
        np.testing.assert_allclose(w.T @ w, np.eye(4), atol=1e-10)

    def test_orthogonal_rejects_1d(self, rng):
        with pytest.raises(ValueError):
            init.orthogonal((5,), rng)

    def test_forget_bias_slice(self):
        bias = init.lstm_forget_bias(np.zeros(12), hidden_size=4, value=2.0)
        np.testing.assert_allclose(bias[:4], 2.0)
        np.testing.assert_allclose(bias[4:], 0.0)
