"""Tests for the training-loop machinery."""

import numpy as np
import pytest

from repro.core.config import NeuTrajConfig
from repro.core.encoder import TrajectoryEncoder
from repro.core.sampling import PairSampler
from repro.core.similarity import distance_to_similarity, suggest_alpha
from repro.core.trainer import (EpochStats, TrainingHistory, anchor_batches,
                                train_epoch, training_step)
from repro.datasets import Grid, Trajectory, TrajectoryDataset
from repro.datasets.grid import CoordinateNormalizer
from repro.measures import get_measure, pairwise_distances
from repro.nn.optim import Adam


@pytest.fixture
def setup(rng):
    trajs = [Trajectory(rng.uniform(0, 1000, size=(rng.integers(5, 12), 2)))
             for _ in range(20)]
    matrix = pairwise_distances(trajs, get_measure("hausdorff"))
    similarity = distance_to_similarity(matrix, suggest_alpha(matrix))
    cfg = NeuTrajConfig(embedding_dim=8, sampling_num=3, cell_size=200.0)
    dataset = TrajectoryDataset(trajs)
    grid = Grid.for_dataset(dataset, cfg.cell_size, margin=cfg.cell_size)
    encoder = TrajectoryEncoder(grid, CoordinateNormalizer.fit(trajs), cfg,
                                np.random.default_rng(0))
    sampler = PairSampler(similarity, cfg.sampling_num, weighted=True,
                          rng=np.random.default_rng(1))
    return trajs, encoder, sampler, cfg


class TestAnchorBatches:
    def test_partition(self, rng):
        batches = anchor_batches(np.arange(10), 3, rng)
        assert [len(b) for b in batches] == [3, 3, 3, 1]
        flat = np.concatenate(batches)
        assert sorted(flat.tolist()) == list(range(10))

    def test_shuffled(self):
        batches = anchor_batches(np.arange(100), 100,
                                 np.random.default_rng(0))
        assert not np.array_equal(batches[0], np.arange(100))


class TestTrainingStep:
    def test_returns_finite_loss_and_updates(self, setup):
        trajs, encoder, sampler, cfg = setup
        optimizer = Adam(encoder.parameters(), lr=0.01)
        before = encoder.state_dict()
        batch = [sampler.sample(a) for a in (0, 1, 2)]
        loss = training_step(encoder, trajs, batch, optimizer, grad_clip=5.0)
        assert np.isfinite(loss) and loss >= 0.0
        after = encoder.state_dict()
        assert any(not np.allclose(before[k], after[k]) for k in before)

    def test_writes_memory(self, setup):
        trajs, encoder, sampler, cfg = setup
        optimizer = Adam(encoder.parameters(), lr=0.01)
        batch = [sampler.sample(0)]
        training_step(encoder, trajs, batch, optimizer, grad_clip=0.0)
        assert encoder.memory.occupancy() > 0.0

    def test_loss_decreases_over_repeated_steps(self, setup):
        trajs, encoder, sampler, cfg = setup
        optimizer = Adam(encoder.parameters(), lr=0.01)
        batch = [sampler.sample(a) for a in range(6)]
        first = training_step(encoder, trajs, batch, optimizer, grad_clip=5.0)
        last = first
        for _ in range(15):
            last = training_step(encoder, trajs, batch, optimizer,
                                 grad_clip=5.0)
        assert last < first


class TestTrainEpoch:
    def test_stats_fields(self, setup):
        trajs, encoder, sampler, cfg = setup
        optimizer = Adam(encoder.parameters(), lr=0.01)
        stats = train_epoch(encoder, trajs, sampler, optimizer,
                            np.arange(len(trajs)), batch_size=5,
                            grad_clip=5.0, rng=np.random.default_rng(0),
                            epoch=3)
        assert stats.epoch == 3
        assert stats.num_anchors == 20
        assert stats.seconds > 0.0
        assert np.isfinite(stats.loss)


class TestTrainingHistory:
    def _history(self, losses):
        return TrainingHistory(epochs=[
            EpochStats(epoch=i, loss=l, seconds=1.0, num_anchors=10)
            for i, l in enumerate(losses)
        ])

    def test_losses_and_totals(self):
        h = self._history([3.0, 2.0, 1.0])
        assert h.losses == [3.0, 2.0, 1.0]
        assert h.total_seconds == 3.0
        assert h.num_epochs == 3

    def test_epochs_to_converge(self):
        h = self._history([5.0, 1.05, 1.0, 1.0])
        assert h.epochs_to_converge(rel_tol=0.1) == 2
        assert h.epochs_to_converge(rel_tol=0.01) == 3

    def test_empty_history(self):
        assert TrainingHistory().epochs_to_converge() == 0
