"""Per-shard write-ahead durability: WAL, snapshots, recovery, tailing.

The sharded serving tier acknowledges ``insert``/``delete`` mutations
only after they are *durable*: the shard worker appends a checksummed
record to its write-ahead log and fsyncs before replying. A crash then
loses nothing acknowledged — recovery replays snapshot + WAL and the
rebuilt shard is id-identical to the pre-crash state.

Record framing (all little-endian)::

    magic u32 | payload_len u32 | crc32c(payload) u32 | payload
    payload := lsn u64 | opcode u8 | body
    body(insert) := n u32 | dim u32 | ids int64[n] | embeddings f64[n*dim]
    body(delete) := n u32 | ids int64[n]

Damage classification is the load-bearing decision: a scan that hits an
invalid record searches *forward* for any structurally valid record
(magic + length + crc + decode all pass). If one exists, the damage is
mid-log corruption and recovery raises :class:`WALCorruptionError` —
acknowledged writes would otherwise be silently dropped. If none
exists, the damage is a torn tail from a crash during append and is
repaired by truncating to the longest valid prefix.

crc32c (Castagnoli) is implemented here because the C extension package
is not available in this environment. Small buffers use a table-driven
byte loop; large buffers split into K blocks CRC'd simultaneously as a
numpy-vectorized state array, then folded with zero-byte shift tables
(CRC is linear over GF(2), so ``crc(A||B) = shift(crc(A), |B|) ^
crc(B)``).

Group commit: with ``fsync_window_ms == 0`` every ``append`` fsyncs
before returning (concurrent appenders piggyback on each other's
fsyncs). With a positive window, a committer thread fsyncs the batch
accumulated over each window and appenders block on a condition until
their LSN is durable. Either way the ack-after-fsync invariant holds —
``append(sync=True)`` never returns before its record is on disk; the
``durability-discipline`` lint rule bans ``sync=False`` outside this
module.
"""

from __future__ import annotations

import json
import logging
import os
import struct
import threading
import time
from hashlib import sha256
from pathlib import Path
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

import numpy as np

from ..core.atomicio import atomic_write_json, fsync_dir, fsync_file
from ..exceptions import (CorruptArtifactError, ServiceClosedError,
                          WALCorruptionError)

logger = logging.getLogger(__name__)

__all__ = ["crc32c", "encode_record", "decode_payload", "scan_buffer",
           "WALRecord", "ShardWAL", "WALTailer", "WALGapError",
           "ShardDurability", "sha256_file",
           "OP_INSERT", "OP_DELETE", "WAL_MAGIC"]


# --------------------------------------------------------------------------
# crc32c (Castagnoli, reflected polynomial 0x82F63B78)

_CRC_POLY = np.uint32(0x82F63B78)
_CRC_MASK = 0xFFFFFFFF


def _build_crc_table() -> np.ndarray:
    table = np.arange(256, dtype=np.uint32)
    for _ in range(8):
        odd = (table & np.uint32(1)).astype(bool)
        table >>= np.uint32(1)
        table[odd] ^= _CRC_POLY
    return table


_CRC_TABLE = _build_crc_table()
_CRC_TABLE_LIST = [int(x) for x in _CRC_TABLE]
_SCALAR_CUTOFF = 2048
_SHIFT_CACHE: Dict[int, List[List[int]]] = {}
_SHIFT_CACHE_MAX = 32


def _crc_update_scalar(crc: int, data) -> int:
    """Raw register update (no init/final conditioning), one byte at a time."""
    table = _CRC_TABLE_LIST
    for byte in data:
        crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFF]
    return crc


def _zero_shift_tables(m: int) -> List[List[int]]:
    """Byte-indexed tables applying the linear map 'feed m zero bytes'.

    ``L_m(v) = T0[v&FF] ^ T1[(v>>8)&FF] ^ T2[(v>>16)&FF] ^ T3[(v>>24)&FF]``
    holds because the CRC register update is GF(2)-linear in the register.
    """
    cached = _SHIFT_CACHE.get(m)
    if cached is not None:
        return cached
    vals = np.arange(256, dtype=np.uint32)
    states = np.concatenate([vals << np.uint32(8 * j) for j in range(4)])
    for _ in range(m):
        states = (states >> np.uint32(8)) ^ _CRC_TABLE[states & np.uint32(0xFF)]
    tables = [[int(x) for x in states[j * 256:(j + 1) * 256]]
              for j in range(4)]
    if len(_SHIFT_CACHE) >= _SHIFT_CACHE_MAX:
        _SHIFT_CACHE.clear()
    _SHIFT_CACHE[m] = tables
    return tables


def crc32c(data: bytes, value: int = 0) -> int:
    """crc32c of ``data``; ``value`` chains a previous result."""
    crc = (value ^ _CRC_MASK) & _CRC_MASK
    n = len(data)
    if n < _SCALAR_CUTOFF:
        return (_crc_update_scalar(crc, data) ^ _CRC_MASK) & _CRC_MASK
    blocks = max(8, min(1024, (int(n ** 0.5) // 8) * 8))
    m = n // blocks
    body = np.frombuffer(data, dtype=np.uint8,
                         count=blocks * m).reshape(blocks, m)
    cols = np.ascontiguousarray(body.T)
    states = np.zeros(blocks, dtype=np.uint32)
    for row in cols:
        states = (states >> np.uint32(8)) ^ _CRC_TABLE[(states ^ row)
                                                       & np.uint32(0xFF)]
    t0, t1, t2, t3 = _zero_shift_tables(m)
    for block_crc in (int(s) for s in states):
        crc = (t0[crc & 0xFF] ^ t1[(crc >> 8) & 0xFF]
               ^ t2[(crc >> 16) & 0xFF] ^ t3[crc >> 24]) ^ block_crc
    crc = _crc_update_scalar(crc, data[blocks * m:])
    return (crc ^ _CRC_MASK) & _CRC_MASK


# --------------------------------------------------------------------------
# Record codec

WAL_MAGIC = 0x57414C31
_MAGIC_BYTES = struct.pack("<I", WAL_MAGIC)
_HEADER = struct.Struct("<III")      # magic, payload length, crc32c(payload)
_PAYHEAD = struct.Struct("<QB")      # lsn, opcode
_INS_HEAD = struct.Struct("<II")     # n, dim
_DEL_HEAD = struct.Struct("<I")      # n
OP_INSERT = 1
OP_DELETE = 2
MAX_RECORD_BYTES = 1 << 28


class WALRecord(NamedTuple):
    lsn: int
    op: int
    ids: np.ndarray
    embeddings: Optional[np.ndarray]


def encode_record(lsn: int, op: int, ids,
                  embeddings=None) -> bytes:
    ids = np.ascontiguousarray(ids, dtype=np.int64)
    if op == OP_INSERT:
        emb = np.ascontiguousarray(embeddings, dtype=np.float64)
        if emb.ndim != 2 or emb.shape[0] != ids.shape[0]:
            raise ValueError("insert record needs one embedding row per id")
        body = (_INS_HEAD.pack(ids.shape[0], emb.shape[1])
                + ids.tobytes() + emb.tobytes())
    elif op == OP_DELETE:
        body = _DEL_HEAD.pack(ids.shape[0]) + ids.tobytes()
    else:
        raise ValueError(f"unknown WAL opcode {op!r}")
    payload = _PAYHEAD.pack(lsn, op) + body
    return _HEADER.pack(WAL_MAGIC, len(payload), crc32c(payload)) + payload


def decode_payload(payload: bytes) -> Optional[WALRecord]:
    """Decode a checksummed payload; ``None`` if structurally invalid."""
    try:
        lsn, op = _PAYHEAD.unpack_from(payload, 0)
        off = _PAYHEAD.size
        if op == OP_INSERT:
            n, dim = _INS_HEAD.unpack_from(payload, off)
            off += _INS_HEAD.size
            if dim == 0 or len(payload) - off != n * 8 + n * dim * 8:
                return None
            ids = np.frombuffer(payload, np.int64, n, off).copy()
            off += n * 8
            emb = np.frombuffer(payload, np.float64, n * dim,
                                off).reshape(n, dim).copy()
            return WALRecord(lsn, op, ids, emb)
        if op == OP_DELETE:
            (n,) = _DEL_HEAD.unpack_from(payload, off)
            off += _DEL_HEAD.size
            if len(payload) - off != n * 8:
                return None
            return WALRecord(lsn, op,
                             np.frombuffer(payload, np.int64, n, off).copy(),
                             None)
        return None
    except struct.error:
        return None


def _record_at(buf: bytes, off: int) -> Tuple[Optional[WALRecord], int]:
    """Parse one record at ``off``; ``(None, off)`` if invalid there."""
    if len(buf) - off < _HEADER.size:
        return None, off
    magic, length, crc = _HEADER.unpack_from(buf, off)
    if magic != WAL_MAGIC or length > MAX_RECORD_BYTES:
        return None, off
    end = off + _HEADER.size + length
    if end > len(buf):
        return None, off
    payload = buf[off + _HEADER.size:end]
    if crc32c(payload) != crc:
        return None, off
    record = decode_payload(payload)
    if record is None:
        return None, off
    return record, end


def _classify_damage(buf: bytes, damage_off: int) -> str:
    """'corrupt' if any valid record starts after the damage, else 'torn'."""
    idx = buf.find(_MAGIC_BYTES, damage_off + 1)
    while idx != -1:
        record, _ = _record_at(buf, idx)
        if record is not None:
            return "corrupt"
        idx = buf.find(_MAGIC_BYTES, idx + 1)
    return "torn"


def scan_buffer(buf: bytes):
    """Scan one segment's bytes.

    Returns ``(records, valid_end, damage)`` where ``damage`` is ``None``
    (clean to EOF), ``'torn'`` (trailing garbage, no valid record after
    it) or ``'corrupt'`` (a valid record follows the damage).
    """
    off = 0
    records: List[WALRecord] = []
    while off < len(buf):
        record, end = _record_at(buf, off)
        if record is None:
            return records, off, _classify_damage(buf, off)
        records.append(record)
        off = end
    return records, off, None


# --------------------------------------------------------------------------
# Segment files

_SEG_PREFIX = "wal-"
_SEG_SUFFIX = ".log"


def _segment_name(first_lsn: int) -> str:
    return f"{_SEG_PREFIX}{first_lsn:020d}{_SEG_SUFFIX}"


def _segment_first_lsn(path: Path) -> int:
    return int(path.name[len(_SEG_PREFIX):-len(_SEG_SUFFIX)])


def list_segments(directory: Path) -> List[Path]:
    return sorted(directory.glob(_SEG_PREFIX + "*" + _SEG_SUFFIX))


def sha256_file(path, chunk_bytes: int = 1 << 20) -> str:
    digest = sha256()
    with open(path, "rb") as handle:
        while True:
            block = handle.read(chunk_bytes)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()


class ShardWAL:
    """Append-only, crash-recoverable mutation log for one shard.

    Opening scans every segment: mid-log corruption raises
    :class:`WALCorruptionError`; a torn tail is truncated away (and
    fsynced) so the log ends at the longest valid prefix. The records
    that survived are available once via :meth:`drain_recovered` for
    replay onto the store.

    ``hook`` is a fault-injection seam: called with ``"after_write"``,
    ``"before_fsync"`` and ``"after_fsync"`` at those points of the
    append path (see ``repro.testing.faults.KillAtWALPoint``).
    """

    def __init__(self, directory, *, segment_bytes: int = 64 << 20,
                 fsync_window_ms: float = 0.0,
                 hook: Optional[Callable[[str], None]] = None):
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._segment_bytes = int(segment_bytes)
        self._window_s = float(fsync_window_ms) / 1000.0
        self._hook = hook
        self._mu = threading.Lock()
        self._cond = threading.Condition(self._mu)
        self._closed = False
        self._commit_error: Optional[BaseException] = None
        self._fsyncs = 0
        self._fsync_seconds = 0.0
        self._last_fsync_s = 0.0
        self._appended = 0
        self._recovered = self._open_and_repair()
        last = self._recovered[-1].lsn if self._recovered else 0
        segments = list_segments(self._dir)
        if segments:
            # An empty tail segment (left behind by truncate_through, or
            # by a tear before its first record) still pins the LSN
            # sequence via its filename: snapshots reference the LSNs it
            # stood for, so the sequence must never regress below it.
            last = max(last, _segment_first_lsn(segments[-1]) - 1)
        self._next_lsn = last + 1
        self._written_lsn = last
        self._durable_lsn = last
        if segments:
            self._seg_path = segments[-1]
            self._seg_size = self._seg_path.stat().st_size
            self._file = open(self._seg_path, "ab")
        else:
            self._start_segment_locked(self._next_lsn)
        self._committer: Optional[threading.Thread] = None
        self._commit_wake = threading.Event()
        if self._window_s > 0:
            self._committer = threading.Thread(
                target=self._commit_loop,
                name=f"wal-committer-{self._dir.name}", daemon=True)
            self._committer.start()

    # -- recovery ----------------------------------------------------------

    def _open_and_repair(self) -> List[WALRecord]:
        segments = list_segments(self._dir)
        records: List[WALRecord] = []
        last_lsn = 0
        damage_at: Optional[Tuple[int, int]] = None
        for index, segment in enumerate(segments):
            data = segment.read_bytes()
            seg_records, valid_end, damage = scan_buffer(data)
            if damage == "corrupt":
                raise WALCorruptionError(
                    f"mid-log corruption in {segment}: a valid record "
                    f"follows a damaged one at byte {valid_end}")
            if damage_at is not None and seg_records:
                raise WALCorruptionError(
                    f"valid records in {segment} follow a damaged tail in "
                    f"{segments[damage_at[0]]}")
            for record in seg_records:
                if record.lsn <= last_lsn:
                    raise WALCorruptionError(
                        f"non-monotonic lsn {record.lsn} after {last_lsn} "
                        f"in {segment}")
                last_lsn = record.lsn
                records.append(record)
            if damage == "torn" and damage_at is None:
                damage_at = (index, valid_end)
        if damage_at is not None:
            index, valid_end = damage_at
            torn = segments[index]
            logger.warning(
                "wal: torn tail in %s: truncating %d -> %d bytes",
                torn, torn.stat().st_size, valid_end)
            with open(torn, "r+b") as handle:
                handle.truncate(valid_end)
                handle.flush()
                os.fsync(handle.fileno())
            for segment in segments[index + 1:]:
                segment.unlink()
            fsync_dir(self._dir)
        return records

    def drain_recovered(self) -> List[WALRecord]:
        """Records recovered at open, returned once for replay."""
        records, self._recovered = self._recovered, []
        return records

    # -- append path -------------------------------------------------------

    def _fire(self, point: str) -> None:
        if self._hook is not None:
            self._hook(point)

    def _start_segment_locked(self, first_lsn: int) -> None:
        """Open a fresh segment. Caller must hold ``self._mu`` (or be
        the constructor, before the lock is shared)."""
        self._seg_path = self._dir / _segment_name(first_lsn)
        self._file = open(self._seg_path, "ab")
        self._seg_size = 0

    def _maybe_rotate_locked(self, incoming_bytes: int, first_lsn: int) -> None:
        """Rotate to a new segment if the current one is full.

        Caller must hold ``self._mu``. Everything in the outgoing
        segment is fsynced before the switch so a later fsync on the new
        file never strands older records in an unsynced buffer.
        """
        if self._seg_size == 0:
            return
        if self._seg_size + incoming_bytes <= self._segment_bytes:
            return
        self._fsync_pending_locked()
        self._file.close()
        self._start_segment_locked(first_lsn)

    def _fsync_pending_locked(self, lsn: Optional[int] = None) -> None:
        """Fsync written-but-not-durable records. Caller must hold
        ``self._mu``. No-op if ``lsn`` (or everything written) is
        already durable — concurrent appenders piggyback this way."""
        if lsn is not None and self._durable_lsn >= lsn:
            return
        if self._durable_lsn >= self._written_lsn:
            return
        target = self._written_lsn
        self._fire("before_fsync")
        started = time.perf_counter()
        self._file.flush()
        os.fsync(self._file.fileno())
        elapsed = time.perf_counter() - started
        self._fire("after_fsync")
        self._durable_lsn = target
        self._fsyncs += 1
        self._fsync_seconds += elapsed
        self._last_fsync_s = elapsed
        self._cond.notify_all()

    def append(self, op: int, ids, embeddings=None, *,
               sync: bool = True) -> int:
        """Append one mutation record; returns its LSN.

        With ``sync=True`` (the only mode mutation handlers may use —
        enforced by the ``durability-discipline`` lint rule) this blocks
        until the record is fsynced, directly or via the group-commit
        window.
        """
        with self._mu:
            if self._closed:
                raise ServiceClosedError("WAL is closed")
            if self._commit_error is not None:
                raise ServiceClosedError(
                    f"WAL committer failed: {self._commit_error}")
            lsn = self._next_lsn
            self._next_lsn += 1
            buf = encode_record(lsn, op, ids, embeddings)
            self._maybe_rotate_locked(len(buf), lsn)
            self._file.write(buf)
            self._seg_size += len(buf)
            self._written_lsn = lsn
            self._appended += 1
            self._fire("after_write")
        if not sync:
            return lsn
        if self._window_s <= 0:
            with self._mu:
                self._fsync_pending_locked(lsn)
            return lsn
        self._commit_wake.set()
        with self._mu:
            while self._durable_lsn < lsn:
                if self._commit_error is not None:
                    raise ServiceClosedError(
                        f"WAL committer failed: {self._commit_error}")
                if self._closed:
                    raise ServiceClosedError("WAL closed while waiting "
                                             "for group commit")
                self._cond.wait(0.5)
        return lsn

    def _commit_loop(self) -> None:
        try:
            while True:
                triggered = self._commit_wake.wait(
                    timeout=max(self._window_s, 0.05))
                if triggered:
                    # Let the group accumulate for one full window before
                    # paying for the fsync.
                    time.sleep(self._window_s)
                self._commit_wake.clear()
                with self._mu:
                    self._fsync_pending_locked()
                    if self._closed and self._durable_lsn >= self._written_lsn:
                        return
        except Exception as exc:  # noqa: BLE001 - committer must not die silently
            logger.exception("wal: committer thread failed")
            with self._mu:
                self._commit_error = exc
                self._cond.notify_all()

    # -- maintenance -------------------------------------------------------

    def truncate_through(self, lsn: int) -> None:
        """Drop segments wholly covered by a snapshot at ``lsn``.

        Records with LSN > ``lsn`` are always retained. Called after a
        snapshot manifest is durably published, so losing the dropped
        prefix is safe by construction.
        """
        with self._mu:
            if self._written_lsn <= lsn:
                self._fsync_pending_locked()
                self._file.close()
                for segment in list_segments(self._dir):
                    segment.unlink()
                self._start_segment_locked(self._next_lsn)
                fsync_dir(self._dir)
                return
            segments = list_segments(self._dir)
            firsts = [_segment_first_lsn(p) for p in segments]
            for index, segment in enumerate(segments[:-1]):
                if firsts[index + 1] - 1 <= lsn:
                    segment.unlink()
            fsync_dir(self._dir)

    @property
    def durable_lsn(self) -> int:
        with self._mu:
            return self._durable_lsn

    @property
    def next_lsn(self) -> int:
        with self._mu:
            return self._next_lsn

    def stats(self) -> dict:
        with self._mu:
            segments = list_segments(self._dir)
            total = 0
            for segment in segments:
                try:
                    total += segment.stat().st_size
                except OSError:
                    logger.debug("wal: segment %s vanished during stats",
                                 segment)
            return {
                "next_lsn": self._next_lsn,
                "durable_lsn": self._durable_lsn,
                "appended": self._appended,
                "fsyncs": self._fsyncs,
                "fsync_seconds": round(self._fsync_seconds, 6),
                "last_fsync_seconds": round(self._last_fsync_s, 6),
                "fsync_window_ms": self._window_s * 1000.0,
                "segments": len(segments),
                "bytes": total,
            }

    def close(self) -> None:
        with self._mu:
            if self._closed:
                return
            self._closed = True
            if self._committer is None:
                self._fsync_pending_locked()
        if self._committer is not None:
            self._commit_wake.set()
            self._committer.join(timeout=5.0)
        with self._mu:
            try:
                self._file.close()
            except OSError:
                logger.exception("wal: close failed for %s", self._seg_path)


# --------------------------------------------------------------------------
# Read-only tailing (replicas)

class WALGapError(LookupError):
    """The tail being followed was truncated past the reader's position
    (the primary snapshotted and dropped segments the reader had not
    applied yet, or repaired a torn tail below bytes the reader had
    already consumed). The reader must rebuild from the current
    snapshot. ``last_lsn`` is the last record this reader applied
    successfully — everything after it must come from the snapshot."""

    def __init__(self, message: str, last_lsn: int = 0):
        super().__init__(message)
        self.last_lsn = int(last_lsn)


class WALTailer:
    """Incremental, read-only reader of a WAL another process appends to.

    Never repairs: a torn tail simply ends the poll (the bytes will be
    complete next time), while mid-log corruption raises. Records are
    returned in LSN order, each exactly once; an LSN gap — meaning the
    primary truncated past us — raises :class:`WALGapError`.
    """

    def __init__(self, directory, applied_lsn: int = 0):
        self._dir = Path(directory)
        self._offsets: Dict[str, int] = {}
        self._last_lsn = int(applied_lsn)

    @property
    def last_lsn(self) -> int:
        return self._last_lsn

    def poll(self) -> List[WALRecord]:
        out: List[WALRecord] = []
        segments = list_segments(self._dir)
        names = {segment.name for segment in segments}
        for name in list(self._offsets):
            if name not in names:
                del self._offsets[name]
        for segment in segments:
            offset = self._offsets.get(segment.name, 0)
            try:
                data = segment.read_bytes()
            except FileNotFoundError:
                logger.debug("wal: segment %s vanished during tail", segment)
                break
            if offset > len(data):
                # The segment shrank below bytes this reader already
                # consumed: the primary truncated (torn-tail repair or
                # snapshot) records we may have applied. Surface it the
                # same way as a clean LSN gap — silence here would let
                # the reader diverge from the primary.
                raise WALGapError(
                    f"wal segment {segment.name} shrank below this "
                    f"reader's offset ({len(data)} < {offset} bytes): "
                    f"truncated past records already consumed (last good "
                    f"lsn {self._last_lsn})", last_lsn=self._last_lsn)
            if offset == len(data):
                continue
            records, valid_end, damage = scan_buffer(data[offset:])
            if damage == "corrupt":
                raise WALCorruptionError(
                    f"mid-log corruption while tailing {segment}")
            self._offsets[segment.name] = offset + valid_end
            for record in records:
                if record.lsn <= self._last_lsn:
                    continue
                if record.lsn != self._last_lsn + 1:
                    raise WALGapError(
                        f"wal tail jumped from lsn {self._last_lsn} to "
                        f"{record.lsn}: truncated past this reader (last "
                        f"good lsn {self._last_lsn})",
                        last_lsn=self._last_lsn)
                self._last_lsn = record.lsn
                out.append(record)
            if damage == "torn":
                # Stop here: records in later segments must not be applied
                # ahead of the bytes still landing in this one.
                break
        return out


# --------------------------------------------------------------------------
# Snapshot generations

SNAPSHOT_SCHEMA = "repro.wal.snapshot.v1"
_MANIFEST_NAME = "SNAPSHOT.json"
_SNAP_PREFIX = "snapshot-"


class ShardDurability:
    """Snapshot-generation bookkeeping for one shard's durable directory.

    A directory holds at most one *committed* generation (named by
    ``SNAPSHOT.json``) plus the WAL segments appended since it was
    taken. ``base_tag`` fingerprints the partition file the shard booted
    from: if the bundle is reloaded (new partition bytes), the durable
    state no longer composes with the base and is reset rather than
    replayed onto data it never described.
    """

    def __init__(self, directory, base_tag: str, read_only: bool = False):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.base_tag = str(base_tag)
        self.read_only = bool(read_only)
        self.manifest = self._load_manifest()

    def _load_manifest(self) -> Optional[dict]:
        path = self.directory / _MANIFEST_NAME
        if not path.exists():
            return None
        try:
            manifest = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise CorruptArtifactError(
                f"unreadable snapshot manifest {path}: {exc}") from exc
        if manifest.get("schema") != SNAPSHOT_SCHEMA:
            raise CorruptArtifactError(
                f"{path}: unknown snapshot schema {manifest.get('schema')!r}")
        if manifest.get("base") != self.base_tag:
            logger.warning(
                "durable state in %s was built for base %s, current base "
                "is %s: %s (reload replaces shard data wholesale)",
                self.directory, manifest.get("base"), self.base_tag,
                "ignoring" if self.read_only else "resetting")
            if not self.read_only:
                # A replica (read_only) must never delete shared state;
                # the primary owns the reset.
                self.reset()
            return None
        return manifest

    def reset(self) -> None:
        """Discard snapshot + WAL state (base changed or caller rebuilds)."""
        for path in self.directory.glob(_SNAP_PREFIX + "*.npz"):
            path.unlink(missing_ok=True)
        for path in list_segments(self.directory):
            path.unlink(missing_ok=True)
        (self.directory / _MANIFEST_NAME).unlink(missing_ok=True)
        fsync_dir(self.directory)

    @property
    def applied_lsn(self) -> int:
        return int(self.manifest["applied_lsn"]) if self.manifest else 0

    @property
    def generation(self) -> int:
        return int(self.manifest["generation"]) if self.manifest else 0

    def snapshot_path(self) -> Optional[Path]:
        """Path of the committed snapshot, sha256-verified, or ``None``."""
        if self.manifest is None:
            return None
        path = self.directory / self.manifest["file"]
        try:
            digest = sha256_file(path)
        except OSError as exc:
            raise CorruptArtifactError(
                f"snapshot {path} referenced by manifest is unreadable: "
                f"{exc}") from exc
        if digest != self.manifest["sha256"]:
            raise CorruptArtifactError(
                f"snapshot {path} sha256 mismatch: manifest says "
                f"{self.manifest['sha256'][:12]}…, file is {digest[:12]}…")
        return path

    def commit_snapshot(self, save_fn: Callable[[str], None], *,
                        count: int, next_id: int, applied_lsn: int,
                        wal: Optional[ShardWAL] = None) -> dict:
        """Write, verify and publish a new snapshot generation.

        ``save_fn(path)`` must atomically produce an ``np.load``-able
        file at ``path`` (the store's own atomic save). The previous
        generation is kept until the new one has been re-read and
        digested; only then is the manifest flipped, the old file
        deleted, and the WAL truncated through ``applied_lsn``.
        """
        generation = self.generation + 1
        fname = f"{_SNAP_PREFIX}{generation:06d}.npz"
        fpath = self.directory / fname
        save_fn(str(fpath))
        fsync_file(fpath)
        fsync_dir(self.directory)
        with np.load(fpath) as payload:
            for key in payload.files:
                payload[key]  # force a full decompress/read of every member
        digest = sha256_file(fpath)
        previous = (self.manifest or {}).get("file")
        self.manifest = {
            "schema": SNAPSHOT_SCHEMA,
            "generation": generation,
            "file": fname,
            "sha256": digest,
            "count": int(count),
            "next_id": int(next_id),
            "applied_lsn": int(applied_lsn),
            "base": self.base_tag,
        }
        atomic_write_json(self.directory / _MANIFEST_NAME, self.manifest,
                          durable=True)
        if previous and previous != fname:
            (self.directory / previous).unlink(missing_ok=True)
        if wal is not None:
            wal.truncate_through(applied_lsn)
        return self.manifest
