"""Consistent-hash partitioning of an embedding store across shards.

The sharded serving tier (:mod:`repro.serving.sharding`) splits one
logical :class:`~repro.core.store.EmbeddingStore` into N shard-local
stores. This module owns the two pieces that must agree between the
offline splitter (``python -m repro shard-tool split``), every shard
worker, and the online coordinator:

* :class:`HashRing` — a consistent-hash ring over trajectory ids.
  Each shard contributes ``vnodes`` virtual points; an id lands on the
  first ring point clockwise of its hash. The hash is a fixed
  splitmix64 finaliser (vectorised over uint64), **not** Python's
  salted ``hash()``, so placement is identical across processes and
  runs. Adding a shard moves only the ids that fall into the new
  shard's arcs — every relocated id maps to the *new* shard, ids that
  stay put keep their old shard.
* ``save_partitions`` / ``load_partition`` — the on-disk layout: a
  ``PARTITIONS.json`` manifest (schema ``repro.partitions.v1``) plus
  one ``partition-NNNN.npz`` per shard, each individually loadable by
  :meth:`EmbeddingStore.load` so a worker touches only its own rows.

Layout::

    partitions/
      PARTITIONS.json     schema, num_shards, vnodes, per-file sha256
      partition-0000.npz  EmbeddingStore.save payload for shard 0
      partition-0001.npz  ...
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..exceptions import CorruptArtifactError
from .atomicio import atomic_savez, atomic_write_text
from .store import EmbeddingStore

PathLike = Union[str, Path]

__all__ = ["HashRing", "PARTITION_SCHEMA", "partition_file_name",
           "save_partitions", "load_partition", "load_partition_manifest"]

PARTITION_SCHEMA = "repro.partitions.v1"
MANIFEST_NAME = "PARTITIONS.json"

_U64 = np.uint64

# XORed into ring-point hash inputs (NOT id hash inputs). Ring points
# use inputs < num_shards * 2**20; salting lifts them past 2**63 so no
# trajectory id (< 2**63) can share a hash input with a ring point —
# an exact key collision would deterministically misroute that id.
_RING_SALT = _U64(0xD1B54A32D192ED03)


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finaliser: uint64 -> well-mixed uint64.

    Deterministic across processes and platforms (unlike the
    interpreter's salted ``hash``), cheap enough to hash millions of
    ids per routing call, and avalanching enough that consecutive
    trajectory ids spread uniformly around the ring.
    """
    z = np.asarray(values, dtype=_U64).copy()
    with np.errstate(over="ignore"):
        z += _U64(0x9E3779B97F4A7C15)
        z = (z ^ (z >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> _U64(27))) * _U64(0x94D049BB133111EB)
        z = z ^ (z >> _U64(31))
    return z


class HashRing:
    """Consistent-hash ring mapping trajectory ids to shard indices.

    Parameters
    ----------
    num_shards:
        Number of shards (>= 1).
    vnodes:
        Virtual points per shard. More vnodes smooth the load split
        (64 keeps the max/min shard imbalance within a few percent)
        at a tiny ``log(num_shards * vnodes)`` lookup cost.
    """

    def __init__(self, num_shards: int, vnodes: int = 64):
        if not isinstance(num_shards, (int, np.integer)) or num_shards < 1:
            raise ValueError(
                f"num_shards must be a positive integer, got {num_shards!r}")
        if not isinstance(vnodes, (int, np.integer)) or vnodes < 1:
            raise ValueError(
                f"vnodes must be a positive integer, got {vnodes!r}")
        self.num_shards = int(num_shards)
        self.vnodes = int(vnodes)
        # Point j of shard s hashes (s << 20 | j) ^ RING_SALT: shard
        # points are a pure function of (shard, vnode), so ring N's
        # points are a strict subset of ring N+1's — the consistency
        # property. The salt keeps the ring-point hash inputs disjoint
        # from id hash inputs: without it, sequential ids 0..vnodes-1
        # hash to exactly shard 0's point keys and searchsorted pins
        # every small dataset onto shard 0.
        shards = np.repeat(np.arange(self.num_shards, dtype=_U64),
                           self.vnodes)
        points = np.tile(np.arange(self.vnodes, dtype=_U64),
                         self.num_shards)
        keys = _splitmix64(((shards << _U64(20)) | points) ^ _RING_SALT)
        order = np.argsort(keys, kind="stable")
        self._ring_keys = keys[order]
        self._ring_shards = shards[order].astype(np.int64)

    def shard_for(self, ids: Union[int, Sequence[int], np.ndarray]
                  ) -> Union[int, np.ndarray]:
        """Owning shard for each id (scalar in, scalar out)."""
        scalar = np.isscalar(ids) or getattr(ids, "ndim", 1) == 0
        arr = np.atleast_1d(np.asarray(ids, dtype=np.int64))
        if arr.size and arr.min() < 0:
            raise ValueError("trajectory ids must be non-negative")
        hashed = _splitmix64(arr.astype(_U64))
        # First ring point clockwise of the hash, wrapping past the top.
        pos = np.searchsorted(self._ring_keys, hashed, side="left")
        pos[pos == self._ring_keys.shape[0]] = 0
        shards = self._ring_shards[pos]
        return int(shards[0]) if scalar else shards

    def partition(self, ids: np.ndarray) -> List[np.ndarray]:
        """Row-index arrays per shard: ``out[s]`` selects shard s's rows."""
        owners = self.shard_for(np.asarray(ids, dtype=np.int64))
        return [np.flatnonzero(owners == s) for s in range(self.num_shards)]

    def spread(self, ids: np.ndarray) -> List[int]:
        """Per-shard id counts (a quick balance diagnostic)."""
        return [int(rows.shape[0]) for rows in self.partition(ids)]


def partition_file_name(shard_id: int) -> str:
    return f"partition-{shard_id:04d}.npz"


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _atomic_savez(path: Path, **arrays) -> None:
    """Uncompressed ``np.savez`` via tmp-file + atomic rename.

    Uncompressed on purpose: partition files at the 1M-row scale are
    hundreds of MB of near-incompressible floats, and zlib would
    dominate split/reload time for a few percent of size.
    """
    atomic_savez(path, compressed=False, **arrays)


def save_partitions(out_dir: PathLike, ids: np.ndarray,
                    embeddings: np.ndarray, num_shards: int,
                    vnodes: int = 64, next_id: Optional[int] = None,
                    metadata: Optional[Dict] = None) -> Dict:
    """Split (ids, embeddings) into per-shard files; returns the manifest.

    Rows are routed by :class:`HashRing` on id, so the online insert
    path (which hashes one id at a time) agrees with the offline split.
    Every partition file is a valid :meth:`EmbeddingStore.save` payload;
    all partitions share the global ``next_id`` so any shard can accept
    a coordinator-assigned id without collisions.
    """
    ids = np.asarray(ids, dtype=np.int64)
    embeddings = np.asarray(embeddings)
    if embeddings.ndim != 2 or ids.shape != (embeddings.shape[0],):
        raise ValueError(
            f"need parallel ids ({ids.shape}) and 2-D embeddings "
            f"({embeddings.shape})")
    if np.unique(ids).size != ids.size:
        raise ValueError("duplicate trajectory ids")
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    ring = HashRing(num_shards, vnodes=vnodes)
    top = int(ids.max()) + 1 if ids.size else 0
    next_id = top if next_id is None else max(int(next_id), top)

    shard_entries = []
    for shard_id, rows in enumerate(ring.partition(ids)):
        name = partition_file_name(shard_id)
        _atomic_savez(out_dir / name,
                      embeddings=embeddings[rows], ids=ids[rows],
                      next_id=np.array(next_id))
        shard_entries.append({
            "shard": shard_id,
            "file": name,
            "count": int(rows.shape[0]),
            "sha256": _sha256(out_dir / name),
            "bytes": (out_dir / name).stat().st_size,
        })

    from .. import __version__  # deferred: repro/__init__ imports core

    manifest = {
        "schema": PARTITION_SCHEMA,
        # Intentional wall-clock metadata stamp, not a
        # deadline.  # repro: disable=determinism
        "created_unix": time.time(),
        "repro_version": __version__,
        "num_shards": int(num_shards),
        "vnodes": int(vnodes),
        "embedding_dim": int(embeddings.shape[1]),
        "total_count": int(ids.shape[0]),
        "next_id": int(next_id),
        "shards": shard_entries,
        "user_metadata": metadata or {},
    }
    atomic_write_text(out_dir / MANIFEST_NAME,
                      json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return manifest


def load_partition_manifest(partition_dir: PathLike) -> Dict:
    """Read and validate ``PARTITIONS.json``."""
    path = Path(partition_dir) / MANIFEST_NAME
    if not path.exists():
        raise CorruptArtifactError(f"no {MANIFEST_NAME} in {partition_dir}")
    try:
        manifest = json.loads(path.read_text())
    except (ValueError, OSError) as exc:
        raise CorruptArtifactError(
            f"unreadable partition manifest: {exc}") from exc
    schema = manifest.get("schema", "")
    if schema != PARTITION_SCHEMA:
        raise CorruptArtifactError(
            f"unsupported partition schema {schema!r} "
            f"(expected {PARTITION_SCHEMA})")
    shards = manifest.get("shards")
    if (not isinstance(shards, list)
            or len(shards) != manifest.get("num_shards")):
        raise CorruptArtifactError(
            "partition manifest shard list does not match num_shards")
    return manifest


def load_partition(partition_dir: PathLike, shard_id: int,
                   model=None, backend="exact", verify: bool = True,
                   **backend_options) -> EmbeddingStore:
    """Load one shard's store (search-only unless ``model`` is given).

    ``verify=True`` checks the file's sha256 against the manifest, so a
    torn split surfaces as :class:`CorruptArtifactError` at worker boot
    instead of as silently missing rows.
    """
    manifest = load_partition_manifest(partition_dir)
    if not 0 <= int(shard_id) < manifest["num_shards"]:
        raise ValueError(
            f"shard_id {shard_id} out of range for "
            f"{manifest['num_shards']} shards")
    entry = manifest["shards"][int(shard_id)]
    path = Path(partition_dir) / entry["file"]
    if not path.exists():
        raise CorruptArtifactError(f"partition file missing: {entry['file']}")
    if verify and _sha256(path) != entry.get("sha256"):
        raise CorruptArtifactError(
            f"partition file corrupted (sha256 mismatch): {entry['file']}")
    store = EmbeddingStore.load(path, model, backend=backend,
                                **backend_options)
    if len(store) != entry["count"]:
        raise CorruptArtifactError(
            f"partition {shard_id} row count {len(store)} != manifest "
            f"{entry['count']}")
    return store
