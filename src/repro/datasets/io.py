"""Dataset persistence: npz (compact) and CSV (interchange) formats.

Real-world interchange files are dirty — short rows, non-numeric fields,
coordinates that fail :class:`Trajectory` validation. The loaders here
follow the skip-and-log contract: malformed records are dropped with a
per-file summary warning (count + first offending line) instead of
aborting the whole load on the first bad byte. Pass ``strict=True`` to
restore fail-fast behaviour, or a
:class:`~repro.dataquality.SanitizeConfig` to additionally repair the
trajectories that do parse.
"""

from __future__ import annotations

import csv
import logging
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..exceptions import InvalidTrajectoryError
from .trajectory import Trajectory, TrajectoryDataset

PathLike = Union[str, Path]

_LOG = logging.getLogger(__name__)


def save_npz(dataset: TrajectoryDataset, path: PathLike) -> None:
    """Save a dataset as flat coordinate array + offsets (self-describing)."""
    points = [t.points for t in dataset]
    lengths = np.array([len(p) for p in points], dtype=np.int64)
    ids = np.array([-1 if t.traj_id is None else t.traj_id for t in dataset],
                   dtype=np.int64)
    flat = (np.concatenate(points, axis=0) if points
            else np.zeros((0, 2)))
    np.savez_compressed(path, flat=flat, lengths=lengths, ids=ids)


def load_npz(path: PathLike, strict: bool = True) -> TrajectoryDataset:
    """Load a dataset written by :func:`save_npz`.

    With ``strict=False``, trajectories that fail validation (e.g.
    non-finite coordinates injected by a corrupted producer) are skipped
    with a summary warning instead of failing the load.
    """
    with np.load(path) as data:
        flat = data["flat"]
        lengths = data["lengths"]
        ids = data["ids"]
    offsets = np.concatenate([[0], np.cumsum(lengths)])
    trajectories = []
    skipped = 0
    first_error: Optional[str] = None
    for i, (start, stop) in enumerate(zip(offsets[:-1], offsets[1:])):
        traj_id = None if ids[i] < 0 else int(ids[i])
        try:
            trajectories.append(Trajectory(flat[start:stop], traj_id=traj_id))
        except InvalidTrajectoryError as exc:
            if strict:
                raise
            skipped += 1
            if first_error is None:
                first_error = f"trajectory {i} (id {traj_id}): {exc}"
    if skipped:
        _LOG.warning("load_npz(%s): skipped %d invalid trajectories "
                     "(first: %s)", path, skipped, first_error)
    return TrajectoryDataset(trajectories)


def save_csv(dataset: TrajectoryDataset, path: PathLike) -> None:
    """Write ``traj_id,point_index,x,y`` rows (one point per row)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["traj_id", "point_index", "x", "y"])
        for i, traj in enumerate(dataset):
            traj_id = traj.traj_id if traj.traj_id is not None else i
            for j, (x, y) in enumerate(traj.points):
                writer.writerow([traj_id, j, f"{x:.6f}", f"{y:.6f}"])


def load_csv(path: PathLike, strict: bool = False) -> TrajectoryDataset:
    """Load a dataset written by :func:`save_csv` (rows must be grouped).

    Malformed rows — missing fields, short rows, non-numeric values —
    are skipped and counted, with one summary warning per file naming
    the first offending line. A trajectory whose surviving points still
    fail validation is dropped the same way. ``strict=True`` restores
    raise-on-first-bad-record behaviour (:class:`ValueError` for rows,
    :class:`InvalidTrajectoryError` for trajectories).
    """
    groups: dict[int, list[tuple[float, float]]] = {}
    order: list[int] = []
    bad_rows = 0
    first_bad: Optional[str] = None
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        for lineno, row in enumerate(reader, start=2):
            try:
                traj_id = int(row["traj_id"])
                x = float(row["x"])
                y = float(row["y"])
            except (KeyError, TypeError, ValueError) as exc:
                if strict:
                    raise ValueError(
                        f"{path}:{lineno}: malformed row {row!r}") from exc
                bad_rows += 1
                if first_bad is None:
                    first_bad = f"line {lineno}: {row!r}"
                continue
            if traj_id not in groups:
                groups[traj_id] = []
                order.append(traj_id)
            groups[traj_id].append((x, y))
    trajectories = []
    dropped = 0
    for tid in order:
        try:
            trajectories.append(Trajectory(np.array(groups[tid],
                                                    dtype=np.float64),
                                           traj_id=tid))
        except InvalidTrajectoryError:
            if strict:
                raise
            dropped += 1
            if first_bad is None:
                first_bad = f"trajectory {tid} failed validation"
    if bad_rows or dropped:
        _LOG.warning("load_csv(%s): skipped %d malformed rows, dropped %d "
                     "invalid trajectories (first: %s)", path, bad_rows,
                     dropped, first_bad)
    return TrajectoryDataset(trajectories)
