"""Serving-layer benchmark: single-query latency and micro-batched throughput.

Measures the deployment pattern end to end (paper §VI-A, served online by
``repro.serving``):

* **offline_serial** — the baseline a one-shot script gets: sequential
  ``EmbeddingStore.query`` calls, one trajectory encoded per call;
  reported as per-query latency percentiles and queries/second.
* **service@{1,4,16}** — the same queries through a
  :class:`~repro.serving.service.SimilarityService` (result cache off)
  with 1, 4, and 16 concurrent client threads; the micro-batcher
  coalesces concurrent encodes into padded batched encoder calls.

The headline number is ``speedup_16_vs_serial`` — service throughput with
16 concurrent clients over the serial single-query baseline; the
acceptance floor is 2x. An ``identical`` flag records that the service
returned the same top-k ids as the offline store for every sampled query
(a speedup over wrong answers is not reported).

Run with ``PYTHONPATH=src python benchmarks/bench_serving.py``;
``scripts/check_bench_regression.py`` compares a fresh run against the
committed ``BENCH_serving.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import threading
import time
from pathlib import Path

if __package__:
    from .latency import percentiles_ms
else:  # run as a script: sibling import off sys.path[0]
    from latency import percentiles_ms

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_serving.json"

#: Benchmark scale: small enough to finish in well under a minute, large
#: enough that encoder batching dominates timer noise.
CONFIG = {
    "num_seeds": 40,
    "num_database": 256,
    "embedding_dim": 16,
    "epochs": 2,
    "measure": "hausdorff",
    "queries_per_client": 32,
    "concurrency": [1, 4, 16],
    "max_batch_size": 16,
    "max_wait_ms": 2.0,
}


def build_world(config=CONFIG):
    """Train a small model and fill a store; returns (model, store, queries)."""
    from repro import NeuTraj, NeuTrajConfig, PortoConfig, generate_porto
    from repro.core.store import EmbeddingStore

    seeds = list(generate_porto(
        PortoConfig(num_trajectories=config["num_seeds"], min_points=10,
                    max_points=25), seed=0))
    database = list(generate_porto(
        PortoConfig(num_trajectories=config["num_database"], min_points=10,
                    max_points=25), seed=1))
    queries = list(generate_porto(
        PortoConfig(num_trajectories=max(config["concurrency"])
                    * config["queries_per_client"], min_points=10,
                    max_points=25), seed=2))
    model = NeuTraj(NeuTrajConfig(
        measure=config["measure"], embedding_dim=config["embedding_dim"],
        epochs=config["epochs"], sampling_num=5, batch_anchors=10,
        cell_size=400.0, seed=0))
    model.fit(seeds)
    store = EmbeddingStore(model)
    store.add(database)
    return model, store, queries


def bench_offline_serial(store, queries, k=10) -> dict:
    """Sequential one-trajectory-per-call store queries (the baseline)."""
    store.query(queries[0], k=k)  # warmup / first-touch
    latencies = []
    start = time.perf_counter()
    for query in queries:
        t0 = time.perf_counter()
        store.query(query, k=k)
        latencies.append(time.perf_counter() - t0)
    elapsed = time.perf_counter() - start
    result = {"queries": len(queries), "seconds": elapsed,
              "qps": len(queries) / elapsed}
    result.update(percentiles_ms(latencies))
    return result


def bench_service(service, queries, clients, per_client, k=10) -> dict:
    """`clients` threads, each issuing `per_client` distinct queries."""
    service.top_k(queries[0], k=k, use_cache=False)  # warmup
    batches_before = service._batcher.stats()
    latencies = [[] for _ in range(clients)]
    barrier = threading.Barrier(clients + 1)

    def client(idx):
        mine = queries[idx * per_client:(idx + 1) * per_client]
        barrier.wait()
        for query in mine:
            t0 = time.perf_counter()
            service.top_k(query, k=k, use_cache=False)
            latencies[idx].append(time.perf_counter() - t0)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    batches_after = service._batcher.stats()
    dispatched_batches = batches_after["batches"] - batches_before["batches"]
    dispatched_items = batches_after["items"] - batches_before["items"]
    total = clients * per_client
    result = {
        "clients": clients,
        "queries": total,
        "seconds": elapsed,
        "qps": total / elapsed,
        "mean_batch_size": (dispatched_items / dispatched_batches
                            if dispatched_batches else 0.0),
    }
    result.update(percentiles_ms([l for per in latencies for l in per]))
    return result


def check_identical(service, store, queries, k=10) -> bool:
    """Service answers must match the offline store exactly."""
    for query in queries:
        expected, _ = store.query(query, k=k)
        got = service.top_k(query, k=k, use_cache=False)
        if got.ids != [int(i) for i in expected]:
            return False
    return True


def run_all(config=CONFIG) -> dict:
    from repro.serving import ServingConfig, SimilarityService

    model, store, queries = build_world(config)
    per_client = config["queries_per_client"]

    offline = bench_offline_serial(store, queries[:2 * per_client])

    service_results = {}
    service = SimilarityService(
        model, store,
        ServingConfig(max_batch_size=config["max_batch_size"],
                      max_wait_ms=config["max_wait_ms"],
                      cache_capacity=0))
    try:
        for clients in config["concurrency"]:
            service_results[str(clients)] = bench_service(
                service, queries, clients, per_client)
        identical = check_identical(service, store, queries[:16])
    finally:
        service.close()

    top_concurrency = str(max(config["concurrency"]))
    return {
        "schema": "repro.bench_serving.v1",
        "config": dict(config),
        "cpu_count": os.cpu_count(),
        "results": {
            "offline_serial": offline,
            "service": service_results,
            "speedup_16_vs_serial": (service_results[top_concurrency]["qps"]
                                     / offline["qps"]),
            "identical": identical,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    report = run_all()
    results = report["results"]
    print(f"{'workload':<16} {'qps':>9} {'p50 ms':>8} {'p95 ms':>8} "
          f"{'batch':>6}")
    offline = results["offline_serial"]
    print(f"{'offline serial':<16} {offline['qps']:>9.1f} "
          f"{offline['p50_ms']:>8.2f} {offline['p95_ms']:>8.2f} {'1.0':>6}")
    for clients, entry in results["service"].items():
        print(f"{'service@' + clients:<16} {entry['qps']:>9.1f} "
              f"{entry['p50_ms']:>8.2f} {entry['p95_ms']:>8.2f} "
              f"{entry['mean_batch_size']:>6.1f}")
    print(f"speedup @16 clients vs serial: "
          f"{results['speedup_16_vs_serial']:.2f}x "
          f"(identical={results['identical']})")

    args.output.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {args.output}")
    return 0 if results["identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
