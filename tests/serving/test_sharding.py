"""Tests for the sharded scatter-gather serving tier.

Every multi-process test here runs 2-3 shard workers over tiny stores,
so the whole module stays tier-1 friendly. The load-bearing property is
*id-identity*: a sharded service must return exactly the ids (and
order) a single-process exact store would, ties included.
"""

import numpy as np
import pytest

from repro.core.partition import save_partitions
from repro.core.store import EmbeddingStore
from repro.exceptions import (NotFittedError, ReloadError, ServiceClosedError,
                              ServiceUnavailableError, ShardUnavailableError)
from repro.serving import merge_top_k
from repro.serving.sharding import (ShardedConfig, ShardedService,
                                    ShardRequestError)
from repro.testing.faults import KillWorkerOnce

pytestmark = pytest.mark.sharding

DIM = 8


def make_embeddings(n, seed=11, dim=DIM):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, dim)).astype(np.float32)


@pytest.fixture
def partitions(tmp_path):
    """120 rows split across 3 shards, with exact-duplicate rows for ties."""
    emb = make_embeddings(120)
    emb[40] = emb[7]   # distance ties under different ids ...
    emb[80] = emb[7]   # ... spread across shards by the hash ring
    ids = np.arange(120, dtype=np.int64)
    save_partitions(tmp_path, ids, emb, num_shards=3)
    return tmp_path, ids, emb


@pytest.fixture
def reference(partitions):
    """The single-process exact store the sharded tier must agree with."""
    _, ids, emb = partitions
    store = EmbeddingStore(None, dim=DIM)
    store.add_embeddings(emb, ids=ids.tolist())
    return store


@pytest.fixture
def service(partitions):
    svc = ShardedService(partitions[0], config=ShardedConfig())
    yield svc
    svc.close()


# ------------------------------------------------------------------ merge


def test_merge_top_k_orders_by_distance_then_id():
    merged = merge_top_k([
        (np.array([5, 9]), np.array([0.3, 0.1])),
        (np.array([2, 7]), np.array([0.1, 0.3])),
    ], k=4)
    ids, dist = merged
    assert ids.tolist() == [2, 9, 5, 7]  # 0.1-tie broken by id
    assert dist.tolist() == [0.1, 0.1, 0.3, 0.3]


def test_merge_top_k_handles_k_beyond_total():
    merged = merge_top_k([(np.array([3]), np.array([0.5]))], k=10)
    assert merged[0].tolist() == [3]


# --------------------------------------------------------------- identity


@pytest.mark.parametrize("k", [1, 5, 17, 120])
def test_sharded_topk_identical_to_single_store(service, reference, k):
    # k=120 exceeds every per-shard count (~40): the merge must
    # reassemble the full ranking, not just per-shard heads.
    queries = make_embeddings(6, seed=23)
    queries[0] = reference.embeddings[7]  # lands on the 3-way tie
    for q in queries:
        want_ids, want_dist = reference.query_embedding(q, k=k)
        got = service.query_embedding(q, k=k)
        assert got.ids == [int(i) for i in want_ids]
        np.testing.assert_allclose(got.distances, want_dist, rtol=1e-5)
        assert got.partial is False


def test_tie_ranking_is_deterministic(service, reference):
    # ids 7/40/80 share one embedding; (distance, id) ordering puts
    # them adjacent and ascending regardless of which shard owns which.
    q = reference.embeddings[7]
    got = service.query_embedding(q, k=3)
    assert got.ids == [7, 40, 80]


# ------------------------------------------------------------ mutations


def test_insert_and_delete_route_by_hash(service, reference):
    new = make_embeddings(10, seed=99)
    assigned = service.insert_embeddings(new)
    assert assigned == list(range(120, 130))
    reference.add_embeddings(new, ids=assigned)
    assert service.size() == len(reference) == 130

    q = new[4]
    want_ids, _ = reference.query_embedding(q, k=8)
    assert service.query_embedding(q, k=8).ids == [int(i) for i in want_ids]

    removed = service.delete([124, 7, 999])
    assert removed == 2  # 999 was never present
    reference.remove([124, 7])
    want_ids, _ = reference.query_embedding(q, k=8)
    assert service.query_embedding(q, k=8).ids == [int(i) for i in want_ids]


def test_compact_reports_per_shard(service):
    result = service.compact()
    assert sorted(result) == [0, 1, 2]
    assert all(v is False for v in result.values())  # exact backend


def test_trajectory_entry_points_require_model(service):
    with pytest.raises(NotFittedError):
        service.top_k([[0.0, 0.0], [1.0, 1.0]], k=2)
    with pytest.raises(NotFittedError):
        service.synthetic_probe()


# -------------------------------------------------------- degraded mode


@pytest.mark.faults
def test_killed_shard_degrades_to_partial_results(partitions, reference,
                                                  tmp_path):
    marker = tmp_path / "killed.marker"
    hook = KillWorkerOnce(None, marker)
    config = ShardedConfig(breaker_failure_threshold=1, breaker_reset_s=60.0,
                           request_timeout_s=10.0)
    with ShardedService(partitions[0], config=config,
                        request_hooks={1: hook}) as svc:
        q = make_embeddings(1, seed=5)[0]

        # First query kills shard 1 mid-request: the answer must still
        # arrive, flagged partial, with shards 0+2's rows only.
        got = svc.query_embedding(q, k=10)
        assert marker.exists()
        assert got.partial is True
        owned_elsewhere = [int(i) for i in got.ids]
        full_ids, _ = reference.query_embedding(q, k=120)
        assert owned_elsewhere == [
            i for i in map(int, full_ids)
            if svc.ring.shard_for(i) != 1][:10]

        # The breaker opened, so the next query skips the dead shard
        # without paying a timeout, still partial.
        assert svc.shards[1].breaker.state == "open"
        assert svc.query_embedding(q, k=10).partial is True

        # Restart heals: fresh worker, closed breaker, full answers.
        svc.restart_shard(1)
        healed = svc.query_embedding(q, k=10)
        assert healed.partial is False
        want_ids, _ = reference.query_embedding(q, k=10)
        assert healed.ids == [int(i) for i in want_ids]


@pytest.mark.faults
def test_mutation_on_dead_shard_raises_after_routing_live_ones(partitions):
    config = ShardedConfig(breaker_failure_threshold=1, request_timeout_s=5.0)
    with ShardedService(partitions[0], config=config) as svc:
        svc.shards[2].call("shutdown", {})
        new = make_embeddings(12, seed=42)
        with pytest.raises(ShardUnavailableError):
            svc.insert_embeddings(new)
        # rows owned by live shards were still inserted
        assert svc.size() > 120


@pytest.mark.faults
def test_all_shards_down_is_unavailable(partitions):
    config = ShardedConfig(breaker_failure_threshold=1, request_timeout_s=5.0)
    with ShardedService(partitions[0], config=config) as svc:
        for handle in svc.shards:
            handle.call("shutdown", {})
        with pytest.raises(ServiceUnavailableError):
            svc.query_embedding(make_embeddings(1)[0], k=3)


def test_worker_app_error_does_not_trip_breaker(service):
    with pytest.raises(ShardRequestError):
        service.shards[0].call("no-such-op", {})
    assert service.shards[0].breaker.state == "closed"
    assert service.shards[0].alive


# --------------------------------------------------------------- reload


def test_reload_flips_to_new_partitions(service, tmp_path):
    emb = make_embeddings(50, seed=77)
    new_dir = tmp_path / "gen2"
    save_partitions(new_dir, np.arange(50, dtype=np.int64), emb,
                    num_shards=3)
    report = service.reload(partition_dir=new_dir)
    assert report["generation"] == 1
    assert sorted(report["activated"]) == [0, 1, 2]
    assert service.size() == 50

    ref = EmbeddingStore(None, dim=DIM)
    ref.add_embeddings(emb)
    q = make_embeddings(1, seed=3)[0]
    want_ids, _ = ref.query_embedding(q, k=7)
    assert service.query_embedding(q, k=7).ids == [int(i) for i in want_ids]


def test_reload_rejects_shard_count_change(service, tmp_path):
    other = tmp_path / "wrong-shards"
    save_partitions(other, np.arange(30, dtype=np.int64),
                    make_embeddings(30), num_shards=2)
    with pytest.raises(ReloadError):
        service.reload(partition_dir=other)
    assert service.size() == 120  # still serving the old generation


def test_failed_prepare_aborts_cleanly(service, tmp_path):
    with pytest.raises(ReloadError):
        service.reload(partition_dir=tmp_path / "does-not-exist")
    # old generation still answers
    assert service.query_embedding(make_embeddings(1)[0], k=2).partial is False


# ----------------------------------------------------------------- http


def test_http_front_end_serves_sharded_tier(partitions, reference, tmp_path):
    import json
    import threading
    import urllib.error
    import urllib.request

    from repro.serving import make_server

    def call(server, path, payload=None, method=None):
        data = None if payload is None else json.dumps(payload).encode()
        request = urllib.request.Request(server.url + path, data=data,
                                         method=method)
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    with ShardedService(partitions[0]) as svc:
        server = make_server(svc)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            status, health = call(server, "/healthz")
            assert (status, health["store_size"]) == (200, 120)

            status, compacted = call(server, "/admin/compact", method="POST")
            assert status == 200
            assert sorted(compacted["compacted"]) == ["0", "1", "2"]

            new_dir = tmp_path / "gen2"
            save_partitions(new_dir, np.arange(30, dtype=np.int64),
                            make_embeddings(30, seed=13), num_shards=3)
            status, report = call(server, "/admin/reload",
                                  {"partition_dir": str(new_dir)})
            assert (status, report["generation"]) == (200, 1)
            assert call(server, "/healthz")[1]["store_size"] == 30

            status, body = call(server, "/admin/reload",
                                {"partition_dir": str(tmp_path / "nope")})
            assert status == 409
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)


# ------------------------------------------------------------- plumbing


def test_readiness_and_stats(service):
    assert service.readiness()["ready"] is False  # not yet warmed
    assert service.warmup() > 0
    ready = service.readiness()
    assert ready["ready"] is True
    sharding = service.stats()["store"]["sharding"]
    assert sharding["num_shards"] == 3
    assert sum(w["count"] for w in sharding["workers"].values()) == 120


def test_closed_service_rejects_queries(partitions):
    svc = ShardedService(partitions[0])
    svc.close()
    with pytest.raises(ServiceClosedError):
        svc.query_embedding(make_embeddings(1)[0], k=1)
