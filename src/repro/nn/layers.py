"""Basic feed-forward layers built on the autodiff engine."""

from __future__ import annotations

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor


class Linear(Module):
    """Affine map ``y = x @ W^T + b`` over the last axis.

    Parameters
    ----------
    in_features, out_features:
        Input/output widths.
    rng:
        Generator for Xavier initialization.
    bias:
        Include the additive bias (default True).
    """

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True):
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((out_features, in_features), rng))
        self.bias = Parameter(init.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.transpose()
        if self.bias is not None:
            out = out + self.bias
        return out


def euclidean_distance(a: Tensor, b: Tensor, eps: float = 1e-8) -> Tensor:
    """Row-wise Euclidean distance between two (B, d) tensors."""
    diff = a - b
    return (diff * diff).sum(axis=-1).sqrt(eps=eps)


def embedding_similarity(a: Tensor, b: Tensor, eps: float = 1e-8) -> Tensor:
    """NeuTraj's embedding similarity ``g = exp(-||E_i - E_j||)`` (§V-B)."""
    return (-euclidean_distance(a, b, eps=eps)).exp()
