"""Durability benchmark: WAL append throughput, recovery time, failover.

Three sections, each with functional hard gates (checked by
``check_bench_regression.py --only durability``) plus loose wall-clock
numbers for trend-watching:

* **append** — acked-append throughput of one :class:`ShardWAL` under 4
  concurrent appender threads at fsync windows of 0 / 2 / 8 ms. Hard
  gates: every acked LSN is durable when ``append`` returns, a reopen
  recovers exactly the acked records, and the 8 ms group-commit window
  issues strictly fewer fsyncs than there were appends (it batched).
* **recovery** — time to rebuild a shard store from (a) pure WAL replay
  of ``records`` insert batches and (b) a checksummed snapshot plus an
  empty WAL after ``compact``-style truncation. Hard gate: both paths
  recover an id-identical store; the snapshot path must replay zero
  records.
* **failover** — a 2-shard durable service with one standby per shard;
  SIGKILL the shard-0 primary and time the next query, which must
  promote the standby and answer ``partial=False`` with every acked row
  still present. Hard gates: zero acked-write loss, exactly one
  failover, complete answer.

Timing comparisons against the committed ``BENCH_durability.json`` use a
loosened threshold (fsync and fork latency on shared 1-CPU runners are
far noisier than compute kernels).

Run with ``PYTHONPATH=src python benchmarks/bench_durability.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_durability.json"

CONFIG = {
    "embedding_dim": 16,
    "append_threads": 4,
    "appends_per_thread": 60,
    "fsync_windows_ms": [0.0, 2.0, 8.0],
    "recovery_records": 400,
    "rows_per_record": 4,
    "failover_rows": 200,
    "num_shards": 2,
    "k": 10,
    "seed": 2026,
}


def _append_section(wal_dir: Path, window_ms: float, config: dict) -> dict:
    from repro.serving.wal import OP_INSERT, ShardWAL

    dim = config["embedding_dim"]
    threads = config["append_threads"]
    per_thread = config["appends_per_thread"]
    rng = np.random.default_rng(config["seed"])
    rows = rng.standard_normal((threads * per_thread, dim))

    wal = ShardWAL(wal_dir, fsync_window_ms=window_ms)
    unacked = []
    lock = threading.Lock()

    def appender(thread_id: int) -> None:
        for i in range(per_thread):
            row = thread_id * per_thread + i
            ids = np.array([row], dtype=np.int64)
            lsn = wal.append(OP_INSERT, ids, rows[row:row + 1])
            if wal.durable_lsn < lsn:  # ack before fsync = lost-write bug
                with lock:
                    unacked.append(lsn)

    workers = [threading.Thread(target=appender, args=(t,))
               for t in range(threads)]
    started = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - started
    stats = wal.stats()
    wal.close()

    reopened = ShardWAL(wal_dir)
    recovered = len(reopened.drain_recovered())
    reopened.close()

    acked = threads * per_thread
    return {
        "window_ms": window_ms,
        "acked": acked,
        "appends_per_s": acked / elapsed,
        "fsyncs": int(stats["fsyncs"]),
        "durable_ok": not unacked,
        "recovered": recovered,
    }


def _recovery_section(base_dir: Path, config: dict) -> dict:
    from repro.core.store import EmbeddingStore
    from repro.serving.wal import OP_INSERT, ShardDurability, ShardWAL

    dim = config["embedding_dim"]
    records = config["recovery_records"]
    per_record = config["rows_per_record"]
    rng = np.random.default_rng(config["seed"] + 1)

    wal_dir = base_dir / "recovery"
    wal = ShardWAL(wal_dir)
    next_id = 0
    for _ in range(records):
        ids = np.arange(next_id, next_id + per_record, dtype=np.int64)
        wal.append(OP_INSERT, ids, rng.standard_normal((per_record, dim)))
        next_id += per_record

    def replay_into_store() -> "tuple[EmbeddingStore, int]":
        recovery = ShardWAL(wal_dir)
        store = EmbeddingStore(None, dim=dim)
        replayed = 0
        for record in recovery.drain_recovered():
            store.add_embeddings(record.embeddings,
                                 ids=[int(i) for i in record.ids])
            replayed += 1
        recovery.close()
        return store, replayed

    started = time.perf_counter()
    store, replayed = replay_into_store()
    wal_replay_s = time.perf_counter() - started
    reference_ids = sorted(int(i) for i in store.ids)

    dur = ShardDurability(wal_dir, base_tag="bench")
    dur.commit_snapshot(store.save, count=len(store), next_id=next_id,
                        applied_lsn=records, wal=wal)
    wal.close()

    started = time.perf_counter()
    snapshot_store = EmbeddingStore.load(dur.snapshot_path(), None)
    _, post_snapshot_replayed = replay_into_store()
    snapshot_recover_s = time.perf_counter() - started

    return {
        "records": records,
        "rows": next_id,
        "wal_replay_s": wal_replay_s,
        "wal_replayed_records": replayed,
        "snapshot_recover_s": snapshot_recover_s,
        "post_snapshot_replayed": post_snapshot_replayed,
        "id_identical": sorted(int(i) for i in snapshot_store.ids)
        == reference_ids,
    }


def _failover_section(base_dir: Path, config: dict) -> dict:
    from repro.core.partition import save_partitions
    from repro.serving.sharding import ShardedConfig, ShardedService

    dim = config["embedding_dim"]
    rows = config["failover_rows"]
    rng = np.random.default_rng(config["seed"] + 2)
    embeddings = rng.standard_normal((rows, dim))
    ids = np.arange(rows, dtype=np.int64)
    part_dir = base_dir / "parts"
    save_partitions(part_dir, ids, embeddings,
                    num_shards=config["num_shards"])

    service = ShardedService(
        part_dir, config=ShardedConfig(replicas=1, request_timeout_s=60.0),
        durable_dir=base_dir / "durable")
    try:
        acked = service.insert_embeddings(
            rng.standard_normal((20, dim)))
        query = rng.standard_normal(dim)
        service.query_embedding(query, k=config["k"])  # warm path

        os.kill(service._shards[0]._proc.pid, signal.SIGKILL)
        started = time.perf_counter()
        result = service.query_embedding(query, k=config["k"])
        failover_s = time.perf_counter() - started

        present = set()
        for handle in service._shards:
            present.update(handle.call("ids", None, 60.0))
        stats = service.stats()["durability"]
        return {
            "failover_s": failover_s,
            "partial": bool(result.partial),
            "failovers": int(stats["failovers"]),
            "acked_rows": len(acked) + rows,
            "acked_lost": len((set(acked) | set(ids.tolist())) - present),
        }
    finally:
        service.close()


def run_all(config=CONFIG) -> dict:
    results = {"append": {}}
    with tempfile.TemporaryDirectory(prefix="bench-durability-") as tmp:
        tmp = Path(tmp)
        for window_ms in config["fsync_windows_ms"]:
            label = f"window_{window_ms:g}ms"
            entry = _append_section(tmp / f"append-{window_ms:g}",
                                    window_ms, config)
            results["append"][label] = entry
            print(f"  append {label}: {entry['appends_per_s']:.0f} acked/s, "
                  f"{entry['fsyncs']} fsyncs for {entry['acked']} appends")
        results["recovery"] = _recovery_section(tmp, config)
        print(f"  recovery: replay {results['recovery']['wal_replay_s']:.3f}s"
              f" for {results['recovery']['records']} records, snapshot "
              f"{results['recovery']['snapshot_recover_s']:.3f}s")
        results["failover"] = _failover_section(tmp, config)
        print(f"  failover: {results['failover']['failover_s']:.3f}s, "
              f"partial={results['failover']['partial']}, "
              f"acked_lost={results['failover']['acked_lost']}")
    return {
        "schema": "repro.bench_durability.v1",
        "config": {k: (list(v) if isinstance(v, list) else v)
                   for k, v in config.items()},
        "cpu_count": os.cpu_count() or 1,
        "results": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    report = run_all()
    results = report["results"]
    ok = (all(e["durable_ok"] and e["recovered"] == e["acked"]
              for e in results["append"].values())
          and results["recovery"]["id_identical"]
          and not results["failover"]["partial"]
          and results["failover"]["acked_lost"] == 0)
    args.output.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {args.output}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
