"""Serving over the IVF search backend: config, answers, metrics."""

import numpy as np
import pytest

from repro.core.backends import IVFBackend
from repro.core.store import EmbeddingStore
from repro.exceptions import ConfigurationError
from repro.index.ann import IVFConfig, IVFIndex
from repro.serving import ServingConfig, SimilarityService


def test_serving_config_index_validation():
    with pytest.raises(ConfigurationError):
        ServingConfig(index="annoy")
    with pytest.raises(ConfigurationError):
        ServingConfig(nprobe=0)
    with pytest.raises(ConfigurationError):
        ServingConfig(nlist=-1)
    assert ServingConfig(index="ivf", nlist=8, nprobe=2).index == "ivf"
    assert ServingConfig(index="keep").index == "keep"


def test_service_installs_ivf_backend(serving_world, fresh_store):
    model, items = serving_world
    svc = SimilarityService(model, fresh_store,
                            ServingConfig(index="ivf", nlist=4, nprobe=4,
                                          max_wait_ms=0.5))
    try:
        assert fresh_store.backend.name == "ivf"
        # nprobe == nlist: answers match the exact scan
        exact = EmbeddingStore(model)
        exact.add(items[:16])
        want, want_d = exact.query(items[1], k=5)
        result = svc.top_k(items[1], k=5, use_cache=False)
        assert result.ids == [int(i) for i in want]
        np.testing.assert_allclose(result.distances, want_d, atol=1e-6)
    finally:
        svc.close()


def test_service_exact_resets_foreign_backend(serving_world, fresh_store):
    model, items = serving_world
    fresh_store.use_backend("ivf", nlist=4, nprobe=2)
    svc = SimilarityService(model, fresh_store,
                            ServingConfig(index="exact", max_wait_ms=0.5))
    try:
        assert fresh_store.backend.name == "exact"
    finally:
        svc.close()


def test_service_keep_preserves_attached_backend(serving_world, fresh_store,
                                                 tmp_path):
    """index="keep" serves an out-of-band (e.g. mmap) index untouched."""
    model, items = serving_world
    index = IVFIndex.build(
        np.asarray(fresh_store.ids, dtype=np.int64),
        np.ascontiguousarray(fresh_store.embeddings, dtype=np.float32),
        IVFConfig(nlist=4, nprobe=4, seed=0))
    index.save(tmp_path / "ivf")
    mapped = IVFIndex.load(tmp_path / "ivf", mmap=True)
    backend = fresh_store.use_backend(IVFBackend(index=mapped))
    svc = SimilarityService(model, fresh_store,
                            ServingConfig(index="keep", max_wait_ms=0.5))
    try:
        assert fresh_store.backend is backend
        assert backend.index is mapped
        result = svc.top_k(items[0], k=3, use_cache=False)
        assert result.ids[0] == 0
    finally:
        svc.close()


def test_candidate_metrics_exposed(serving_world, fresh_store):
    model, items = serving_world
    svc = SimilarityService(model, fresh_store,
                            ServingConfig(index="ivf", nlist=4, nprobe=4,
                                          max_wait_ms=0.5))
    try:
        svc.top_k(items[0], k=3, use_cache=False)
        svc.top_k(items[1], k=3, use_cache=False)
        text = svc.render_metrics()
        assert "repro_search_candidates_total" in text
        assert "repro_topk_candidates_bucket" in text
        total = next(line for line in text.splitlines()
                     if line.startswith("repro_search_candidates_total"))
        assert float(total.split()[-1]) >= 2 * 3  # scanned >= k per query
    finally:
        svc.close()


def test_stats_reports_search_backend(serving_world, fresh_store):
    model, items = serving_world
    svc = SimilarityService(model, fresh_store,
                            ServingConfig(index="ivf", nlist=4, nprobe=2,
                                          max_wait_ms=0.5))
    try:
        svc.top_k(items[2], k=3, use_cache=False)
        backend_stats = svc.stats()["store"]["search_backend"]
        assert backend_stats["kind"] == "ivf"
        assert backend_stats["nprobe"] == 2
        assert backend_stats["queries"] >= 1
        assert backend_stats["candidates_scanned"] > 0
    finally:
        svc.close()


def test_mutation_through_service_keeps_ivf_consistent(serving_world,
                                                       fresh_store):
    model, items = serving_world
    svc = SimilarityService(model, fresh_store,
                            ServingConfig(index="ivf", nlist=4, nprobe=4,
                                          max_wait_ms=0.5))
    try:
        new_ids = svc.insert(items[16:18])
        result = svc.top_k(items[16], k=1, use_cache=False)
        assert result.ids == [new_ids[0]]
        assert svc.delete([new_ids[0]]) == 1
        result = svc.top_k(items[16], k=len(fresh_store), use_cache=False)
        assert new_ids[0] not in result.ids
    finally:
        svc.close()
