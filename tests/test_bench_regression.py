"""Optional performance-regression gate (deselected from tier-1).

Marked ``bench_regression`` and excluded by the default ``addopts`` in
``pyproject.toml`` because it re-runs the kernel micro-benchmarks
(~30 s). Opt in with::

    PYTHONPATH=src python -m pytest -m bench_regression
"""

import sys
from pathlib import Path

import pytest

SCRIPTS = Path(__file__).resolve().parent.parent / "scripts"


@pytest.mark.bench_regression
def test_kernels_not_slower_than_committed_baseline():
    sys.path.insert(0, str(SCRIPTS))
    try:
        from check_bench_regression import BASELINE, run_check
    finally:
        sys.path.pop(0)
    assert BASELINE.exists(), "benchmarks/BENCH_kernels.json not committed"
    failures = run_check()
    assert not failures, "\n".join(failures)


@pytest.mark.bench_regression
def test_serving_not_slower_than_committed_baseline():
    sys.path.insert(0, str(SCRIPTS))
    try:
        from check_bench_regression import SERVING_BASELINE, run_serving_check
    finally:
        sys.path.pop(0)
    assert SERVING_BASELINE.exists(), \
        "benchmarks/BENCH_serving.json not committed"
    failures = run_serving_check()
    assert not failures, "\n".join(failures)


@pytest.mark.bench_regression
def test_sanitize_overhead_and_quality_hold_against_baseline():
    sys.path.insert(0, str(SCRIPTS))
    try:
        from check_bench_regression import (SANITIZE_BASELINE,
                                            run_sanitize_check)
    finally:
        sys.path.pop(0)
    assert SANITIZE_BASELINE.exists(), \
        "benchmarks/BENCH_sanitize.json not committed"
    failures = run_sanitize_check()
    assert not failures, "\n".join(failures)


@pytest.mark.bench_regression
def test_resilience_contract_holds_against_committed_baseline():
    sys.path.insert(0, str(SCRIPTS))
    try:
        from check_bench_regression import (RESILIENCE_BASELINE,
                                            run_resilience_check)
    finally:
        sys.path.pop(0)
    assert RESILIENCE_BASELINE.exists(), \
        "benchmarks/BENCH_resilience.json not committed"
    failures = run_resilience_check()
    assert not failures, "\n".join(failures)


@pytest.mark.bench_regression
def test_sharding_speedup_and_identity_hold_against_baseline():
    sys.path.insert(0, str(SCRIPTS))
    try:
        from check_bench_regression import (SHARDING_BASELINE,
                                            run_sharding_check)
    finally:
        sys.path.pop(0)
    assert SHARDING_BASELINE.exists(), \
        "benchmarks/BENCH_sharding.json not committed"
    failures = run_sharding_check()
    assert not failures, "\n".join(failures)


@pytest.mark.bench_regression
def test_durability_contract_holds_against_committed_baseline():
    sys.path.insert(0, str(SCRIPTS))
    try:
        from check_bench_regression import (DURABILITY_BASELINE,
                                            run_durability_check)
    finally:
        sys.path.pop(0)
    assert DURABILITY_BASELINE.exists(), \
        "benchmarks/BENCH_durability.json not committed"
    failures = run_durability_check()
    assert not failures, "\n".join(failures)


def test_only_flag_parses_comma_separated_suite_lists():
    sys.path.insert(0, str(SCRIPTS))
    try:
        from check_bench_regression import KNOWN_SUITES, _parse_only
    finally:
        sys.path.pop(0)
    assert _parse_only("kernels") == {"kernels"}
    assert _parse_only("kernels,ann, durability") == {"kernels", "ann",
                                                      "durability"}
    assert _parse_only("all") == set(KNOWN_SUITES)
    with pytest.raises(ValueError):
        _parse_only("kernels,bogus")
    with pytest.raises(ValueError):
        _parse_only(" , ")
