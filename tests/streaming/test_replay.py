"""Porto timed replay and per-source supervision (flap/shed survival)."""

import numpy as np
import pytest

from repro.datasets.porto import (PortoConfig, StreamReplayConfig,
                                  generate_porto, replay_stream)
from repro.exceptions import ServiceOverloadedError
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.retry import RetryPolicy
from repro.streaming import SlidingWindowStore, SourceSupervisor, WindowConfig
from repro.testing.faults import FlappingSource

from tests.streaming.conftest import in_order_points

pytestmark = pytest.mark.streaming

_DATASET = generate_porto(PortoConfig(num_trajectories=6, min_points=8,
                                      max_points=16), seed=5)
_FAULTY = StreamReplayConfig(drop_fraction=0.05, duplicate_fraction=0.1,
                             reorder_fraction=0.2, late_fraction=0.02)


def test_replay_is_deterministic():
    a1, t1 = replay_stream(_DATASET, _FAULTY, seed=3)
    a2, t2 = replay_stream(_DATASET, _FAULTY, seed=3)
    assert a1 == a2
    assert set(t1) == set(t2)
    for source in t1:
        np.testing.assert_array_equal(t1[source], t2[source])
    a3, _ = replay_stream(_DATASET, _FAULTY, seed=4)
    assert a3 != a1


def test_every_sent_point_arrives_and_duplicates_are_extra():
    arrivals, truth = replay_stream(_DATASET, _FAULTY, seed=1)
    seen = {}
    for point in arrivals:
        seen[(point.source_id, point.seq)] = seen.get(
            (point.source_id, point.seq), 0) + 1
    for source, coords in truth.items():
        for seq0 in range(len(coords)):
            assert seen.get((source, seq0 + 1), 0) >= 1
    assert sum(seen.values()) > len(seen)  # duplicates really injected


def test_clean_replay_matches_event_time_order():
    arrivals, truth = replay_stream(_DATASET, StreamReplayConfig(), seed=0)
    assert len(arrivals) == sum(len(c) for c in truth.values())
    times = [p.t for p in arrivals]
    assert times == sorted(times)


def test_drop_fraction_creates_permanent_gaps():
    _, clean = replay_stream(_DATASET, StreamReplayConfig(), seed=0)
    _, dropped = replay_stream(
        _DATASET, StreamReplayConfig(drop_fraction=0.3), seed=0)
    assert (sum(len(c) for c in dropped.values())
            < sum(len(c) for c in clean.values()))


def test_faulty_replay_converges_through_a_window():
    """End-to-end: the window absorbs the generator's pathologies."""
    arrivals, truth = replay_stream(
        _DATASET,
        StreamReplayConfig(duplicate_fraction=0.1, reorder_fraction=0.15,
                           reorder_span=4),
        seed=2)
    window = SlidingWindowStore(WindowConfig(lateness_s=1e6, ttl_s=1e9,
                                             reorder_buffer=64,
                                             max_segment_points=10_000))
    for point in arrivals:
        window.apply(point)
    for sid in window.live_segments():
        segment = window.segment(sid)
        np.testing.assert_array_equal(segment.points(),
                                      truth[segment.source_id])


# --------------------------------------------------------------- supervisor


def _noop_sleep(_):
    pass


def test_supervisor_survives_flaps_and_completes():
    points = in_order_points(7, 40)
    source = FlappingSource(points, cut_after=[10, 25], rewind=5)
    delivered = []
    supervisor = SourceSupervisor(
        7, source.connect, lambda batch: delivered.extend(batch),
        batch_size=4, sleep=_noop_sleep)
    stats = supervisor.run()
    assert stats["completed"] and stats["flaps"] == 2
    assert source.connects == 3
    # Rewind replays points already delivered: at-least-once, never lossy.
    assert {(p.source_id, p.seq) for p in delivered} == {
        (p.source_id, p.seq) for p in points}
    assert len(delivered) > len(points)


def test_supervisor_gives_up_after_reconnect_exhaustion():
    points = in_order_points(7, 20)
    source = FlappingSource(points, cut_after=[2] * 50, rewind=0)
    supervisor = SourceSupervisor(
        7, source.connect, lambda batch: None, batch_size=4,
        reconnect=RetryPolicy(max_retries=3, base_delay_s=0.0),
        sleep=_noop_sleep)
    stats = supervisor.run()
    assert not stats["completed"]
    assert stats["flaps"] == 4  # initial try + 3 retries


def test_supervisor_retry_budget_is_per_outage_not_per_lifetime():
    """A long-lived source that flaps more times than max_retries — but
    makes progress between flaps — must never be abandoned: the retry
    budget and backoff schedule reset after any connect that delivered
    points."""
    points = in_order_points(7, 40)
    cuts = [4 * (i + 1) for i in range(9)]  # 9 flaps, 4 points each
    source = FlappingSource(points, cut_after=cuts, rewind=0)
    delivered = []
    supervisor = SourceSupervisor(
        7, source.connect, lambda batch: delivered.extend(batch),
        batch_size=2,
        reconnect=RetryPolicy(max_retries=2, base_delay_s=0.0),
        breaker=CircuitBreaker(failure_threshold=100, reset_timeout_s=0.01),
        sleep=_noop_sleep)
    stats = supervisor.run()
    assert stats["completed"]
    assert stats["flaps"] == 9  # far past max_retries=2, all survived
    assert {(p.source_id, p.seq) for p in delivered} == {
        (p.source_id, p.seq) for p in points}


def test_supervisor_retries_admission_sheds():
    points = in_order_points(7, 8)
    sheds = {"left": 3}

    def flaky_ingest(batch):
        if sheds["left"]:
            sheds["left"] -= 1
            raise ServiceOverloadedError("gate full")

    supervisor = SourceSupervisor(
        7, lambda: iter(points), flaky_ingest, batch_size=8,
        sleep=_noop_sleep)
    stats = supervisor.run()
    assert stats["completed"]
    assert stats["sheds_retried"] == 3


def test_supervisor_raises_through_after_overload_exhaustion():
    points = in_order_points(7, 4)

    def always_shed(batch):
        raise ServiceOverloadedError("gate full")

    supervisor = SourceSupervisor(
        7, lambda: iter(points), always_shed, batch_size=4,
        overload=RetryPolicy(max_retries=2, base_delay_s=0.0),
        reconnect=RetryPolicy(max_retries=1, base_delay_s=0.0),
        sleep=_noop_sleep)
    stats = supervisor.run()
    # The shed bubbled out of _deliver, counted as flaps until the
    # reconnect budget also ran out: the supervisor never wedges.
    assert not stats["completed"]
    assert stats["sheds_retried"] >= 2


def test_jittered_backoff_is_seeded_and_bounded():
    policy = RetryPolicy(max_retries=5, base_delay_s=0.1, multiplier=2.0,
                         max_delay_s=1.0, jitter=0.5)
    rng1 = np.random.default_rng(0)
    rng2 = np.random.default_rng(0)
    d1 = [policy.delay(a, rng=rng1) for a in range(1, 6)]
    d2 = [policy.delay(a, rng=rng2) for a in range(1, 6)]
    assert d1 == d2  # same seed, same schedule
    base = [policy.delay(a) for a in range(1, 6)]
    for got, nominal in zip(d1, base):
        assert 0.5 * nominal <= got <= 1.5 * nominal
        # max_delay_s caps the *jittered* delay, not just the nominal one.
        assert got <= policy.max_delay_s
    rng3 = np.random.default_rng(1)
    assert [policy.delay(a, rng=rng3) for a in range(1, 6)] != d1
