"""Siamese LSTM baseline (Pei et al. [24], instantiated per paper §VII-A3).

The classic deep-metric-learning comparator: a shared LSTM encoder trained
on *uniformly random* trajectory pairs with a plain MSE regression onto the
target similarity. Differs from NeuTraj in exactly the two ablated
dimensions — no spatial attention memory and no distance-weighted
sampling/ranking loss — so it doubles as the "neither module" reference.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence, Union

import numpy as np

from ..datasets.grid import CoordinateNormalizer, Grid
from ..datasets.trajectory import Trajectory, TrajectoryDataset
from ..measures import get_measure, pairwise_distances
from ..nn.layers import embedding_similarity
from ..nn.optim import Adam, clip_grad_norm
from ..nn.tensor import Tensor
from .config import NeuTrajConfig
from .encoder import TrajectoryEncoder
from .model import MetricModel
from .similarity import (distance_to_similarity, exponential_similarity,
                         suggest_alpha)
from .trainer import EpochStats, TrainingHistory


class SiameseTraj(MetricModel):
    """Siamese-network baseline sharing NeuTraj's inference API.

    The ``use_sam`` flag of the config is forced off (plain LSTM backbone).
    """

    def __init__(self, config: Optional[NeuTrajConfig] = None):
        config = (config or NeuTrajConfig()).ablated(
            use_sam=False, use_weighted_sampling=False)
        super().__init__(config)
        self.history: Optional[TrainingHistory] = None

    def fit(self, seeds: Union[TrajectoryDataset, Sequence[Trajectory]],
            distance_matrix: Optional[np.ndarray] = None,
            pairs_per_epoch: Optional[int] = None,
            epoch_callback: Optional[Callable[[int, float], None]] = None
            ) -> TrainingHistory:
        """Train on uniformly sampled seed pairs with MSE regression.

        ``pairs_per_epoch`` defaults to ``N * 2 * sampling_num`` so the
        Siamese baseline sees exactly as many pairs per epoch as NeuTraj.
        """
        seed_list = list(seeds)
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        if len(seed_list) < 2:
            raise ValueError("need at least two seeds")

        if distance_matrix is None:
            measure = get_measure(cfg.measure)
            distance_matrix = pairwise_distances(seed_list, measure)
        distance_matrix = np.asarray(distance_matrix, dtype=np.float64)

        self.alpha = cfg.alpha or suggest_alpha(distance_matrix)
        transform = (distance_to_similarity if cfg.row_normalize
                     else exponential_similarity)
        similarity = transform(distance_matrix, self.alpha)

        dataset = TrajectoryDataset(seed_list)
        grid = Grid.for_dataset(dataset, cfg.cell_size, margin=cfg.cell_size)
        normalizer = CoordinateNormalizer.fit(seed_list)
        self.encoder = TrajectoryEncoder(grid, normalizer, cfg, rng)
        optimizer = Adam(self.encoder.parameters(), lr=cfg.learning_rate)

        n = len(seed_list)
        if pairs_per_epoch is None:
            pairs_per_epoch = n * 2 * cfg.sampling_num
        batch_pairs = cfg.batch_anchors * cfg.sampling_num

        history = TrainingHistory()
        for epoch in range(cfg.epochs):
            start = time.perf_counter()
            losses = []
            remaining = pairs_per_epoch
            while remaining > 0:
                count = min(batch_pairs, remaining)
                remaining -= count
                left = rng.integers(0, n, size=count)
                right = rng.integers(0, n, size=count)
                losses.append(self._step(seed_list, similarity, left, right,
                                         optimizer))
            elapsed = time.perf_counter() - start
            mean_loss = float(np.mean(losses)) if losses else 0.0
            history.epochs.append(EpochStats(epoch=epoch, loss=mean_loss,
                                             seconds=elapsed, num_anchors=n))
            if epoch_callback is not None:
                epoch_callback(epoch, mean_loss)
        self.history = history
        return history

    def _step(self, seeds: Sequence[Trajectory], similarity: np.ndarray,
              left: np.ndarray, right: np.ndarray, optimizer: Adam) -> float:
        """One MSE step over uniformly sampled pairs."""
        trajectories = [seeds[i] for i in left] + [seeds[j] for j in right]
        embeddings = self.encoder.encode(trajectories)
        count = len(left)
        emb_left = embeddings.take_rows(np.arange(count))
        emb_right = embeddings.take_rows(np.arange(count, 2 * count))
        predicted = embedding_similarity(emb_left, emb_right)
        truth = Tensor(similarity[left, right])
        diff = predicted - truth
        loss = (diff * diff).mean()
        optimizer.zero_grad()
        loss.backward()
        if self.config.grad_clip > 0:
            clip_grad_norm(optimizer.parameters, self.config.grad_clip)
        optimizer.step()
        return float(loss.item())
