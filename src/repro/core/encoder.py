"""Trajectory encoder: grid + normaliser + (SAM-)LSTM -> embeddings (§IV, §V-A).

The encoder owns everything needed to turn a raw trajectory into its
d-dimensional embedding: the coordinate normaliser (RNN input scale), the
spatial grid (SAM addressing), the recurrent network, and — when SAM is
enabled — the external memory tensor. The final valid hidden state of the
recurrent pass is the trajectory representation.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..datasets.grid import CoordinateNormalizer, Grid
from ..datasets.trajectory import Trajectory, pad_batch
from ..nn.module import Module
from ..nn.rnn import LSTM
from ..nn.sam import SAMLSTM, SpatialMemory
from ..nn.tensor import Tensor
from .config import NeuTrajConfig


class TrajectoryEncoder(Module):
    """Encode batches of trajectories into embeddings.

    Parameters
    ----------
    grid:
        Spatial grid used both for SAM memory addressing.
    normalizer:
        Coordinate normaliser fitted on the seed pool.
    config:
        Model hyper-parameters (``use_sam`` selects the cell type).
    rng:
        Generator for weight initialisation.
    """

    def __init__(self, grid: Grid, normalizer: CoordinateNormalizer,
                 config: NeuTrajConfig, rng: np.random.Generator):
        self.grid = grid
        self.normalizer = normalizer
        self.config = config
        d = config.embedding_dim
        if config.use_sam:
            self.rnn = SAMLSTM(2, d, rng)
            self.memory = SpatialMemory(grid.shape, d, bandwidth=config.bandwidth)
        else:
            self.rnn = LSTM(2, d, rng)
            self.memory = None

    @property
    def uses_sam(self) -> bool:
        return self.memory is not None

    def encode(self, trajectories: Sequence[Trajectory],
               update_memory: bool = False) -> Tensor:
        """Differentiable batch encoding -> (B, d) embedding Tensor."""
        coords, _, mask = pad_batch(trajectories)
        inputs = self.normalizer.transform(coords)
        if self.uses_sam:
            cells = self.grid.to_cells(coords)
            return self.rnn(inputs, cells, mask, self.memory,
                            update_memory=update_memory)
        return self.rnn(inputs, mask)

    def embed(self, trajectories: Sequence[Trajectory],
              batch_size: int = 128) -> np.ndarray:
        """Inference embeddings (B, d) as a plain array.

        Runs under :class:`~repro.nn.tensor.no_grad` (no tape) with the
        memory read-only, so embeddings are deterministic and cheap.
        """
        from ..nn.tensor import no_grad
        chunks: List[np.ndarray] = []
        items = list(trajectories)
        with no_grad():
            for start in range(0, len(items), batch_size):
                batch = items[start:start + batch_size]
                chunks.append(self.encode(batch, update_memory=False).data)
        if not chunks:
            return np.zeros((0, self.config.embedding_dim))
        return np.concatenate(chunks, axis=0)

    def reset_memory(self) -> None:
        if self.memory is not None:
            self.memory.reset()
