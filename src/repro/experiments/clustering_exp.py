"""Trajectory-clustering experiment (paper §VII-F, Figure 9).

Cluster the database twice with DBSCAN — once on exact pairwise distances,
once on embedding distances from a trained NeuTraj — and compare cluster
counts across an epsilon sweep plus partition quality at each epsilon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..clustering import (adjusted_rand_index, dbscan,
                          homogeneity_completeness_v, num_clusters)
from ..measures import pairwise_distances
from .common import train_variant
from .workloads import Workload, _measure_for


@dataclass(frozen=True)
class ClusteringPoint:
    """One epsilon setting of the Fig. 9 sweep."""

    eps_quantile: float
    eps_exact: float
    eps_embed: float
    clusters_exact: int
    clusters_embed: int
    homogeneity: float
    completeness: float
    v_measure: float
    ari: float


def run_clustering(workload: Workload, measure_name: str = "frechet",
                   quantiles: Sequence[float] = (0.02, 0.05, 0.1, 0.2),
                   min_points: int = 5, max_items: Optional[int] = None
                   ) -> List[ClusteringPoint]:
    """Run the epsilon sweep.

    Epsilon is chosen per distance space at matched *quantiles* of the
    off-diagonal distance distribution — embedding distances live on a
    different scale than exact metres, so comparing absolute epsilons
    would be meaningless.
    """
    items = workload.database[:max_items] if max_items else workload.database
    measure = _measure_for(measure_name, workload.bbox)
    exact = pairwise_distances(items, measure)

    from ..eval import embedding_distance_matrix
    model = train_variant("neutraj", workload, measure_name)
    embed = embedding_distance_matrix(model.embed(items))

    n = len(items)
    off = ~np.eye(n, dtype=bool)
    points = []
    for quantile in quantiles:
        eps_exact = float(np.quantile(exact[off], quantile))
        eps_embed = float(np.quantile(embed[off], quantile))
        labels_exact = dbscan(exact, eps_exact, min_points)
        labels_embed = dbscan(embed, eps_embed, min_points)
        h, c, v = homogeneity_completeness_v(labels_exact, labels_embed)
        points.append(ClusteringPoint(
            eps_quantile=quantile,
            eps_exact=eps_exact,
            eps_embed=eps_embed,
            clusters_exact=num_clusters(labels_exact),
            clusters_embed=num_clusters(labels_embed),
            homogeneity=h, completeness=c, v_measure=v,
            ari=adjusted_rand_index(labels_exact, labels_embed)))
    return points
