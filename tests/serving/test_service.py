"""Tests for SimilarityService: query parity, caching, mutation, warmup."""

import threading

import numpy as np
import pytest

from repro.core.store import EmbeddingStore
from repro.exceptions import ConfigurationError
from repro.serving import ServingConfig, SimilarityService


@pytest.fixture
def service(serving_world, fresh_store):
    model, items = serving_world
    svc = SimilarityService(model, fresh_store,
                            ServingConfig(max_wait_ms=0.5),
                            probes=items[:2])
    yield svc
    svc.close()


def test_config_validation():
    with pytest.raises(ConfigurationError):
        ServingConfig(max_batch_size=0)
    with pytest.raises(ConfigurationError):
        ServingConfig(max_wait_ms=-1)
    with pytest.raises(ConfigurationError):
        ServingConfig(cache_capacity=-1)
    with pytest.raises(ConfigurationError):
        ServingConfig(default_k=0)


def test_topk_matches_offline_store(service, serving_world, fresh_store):
    _, items = serving_world
    result = service.top_k(items[1], k=5, use_cache=False)
    expected_ids, expected_dist = fresh_store.query(items[1], k=5)
    assert result.ids == [int(i) for i in expected_ids]
    np.testing.assert_allclose(result.distances, expected_dist, atol=1e-9)
    assert not result.cached


def test_embed_matches_model(service, serving_world):
    model, items = serving_world
    via_service = service.embed(items[0])
    direct = model.embed([items[0]])[0]
    np.testing.assert_allclose(via_service, direct, atol=1e-12)


def test_cache_hit_on_repeat_query(service, serving_world):
    _, items = serving_world
    first = service.top_k(items[2], k=4)
    second = service.top_k(items[2], k=4)
    assert not first.cached
    assert second.cached
    assert second.ids == first.ids
    assert service._cache.hits == 1


def test_raw_points_list_accepted(service, serving_world):
    """Queries may arrive as plain coordinate lists (the HTTP body shape)."""
    _, items = serving_world
    as_list = items[3].points.tolist()
    a = service.top_k(as_list, k=3, use_cache=False)
    b = service.top_k(items[3], k=3, use_cache=False)
    assert a.ids == b.ids


def test_insert_invalidates_cache_and_extends_store(service, serving_world):
    _, items = serving_world
    before = service.top_k(items[4], k=3)
    assert service.top_k(items[4], k=3).cached
    new_ids = service.insert(items[16:18])
    assert new_ids == [16, 17]
    after = service.top_k(items[4], k=3)
    assert not after.cached  # generation bumped -> old key dead
    assert before.ids  # sanity: query produced answers both times


def test_delete_removes_and_invalidates(service, serving_world):
    _, items = serving_world
    target = service.top_k(items[5], k=1, use_cache=False).ids[0]
    removed = service.delete([target])
    assert removed == 1
    fresh = service.top_k(items[5], k=5, use_cache=False)
    assert target not in fresh.ids


def test_insert_empty_is_noop(service):
    assert service.insert([]) == []


def test_invalid_k_counts_an_error(service, serving_world):
    _, items = serving_world
    with pytest.raises(ValueError):
        service.top_k(items[0], k=0)
    assert service._m_errors.value >= 1


def test_stats_shape(service, serving_world):
    _, items = serving_world
    service.top_k(items[0], k=2)
    stats = service.stats()
    assert stats["store"]["size"] == 16
    assert stats["store"]["measure"] == "hausdorff"
    assert stats["cache"]["capacity"] == 1024
    assert stats["batcher"]["items"] >= 1
    assert stats["uptime_seconds"] >= 0
    assert "repro_topk_requests_total" in stats["metrics"]


def test_warmup_with_probes(service):
    assert service.warmup() == 2
    assert service._m_queries.value >= 2


def test_warmup_empty_store_uses_embed_path(serving_world):
    model, _ = serving_world
    svc = SimilarityService(model, EmbeddingStore(model))
    try:
        assert svc.warmup() == 1  # synthetic probe through the encoder
        assert svc._m_embeds.value == 1
    finally:
        svc.close()


def test_metrics_render_nonempty(service, serving_world):
    _, items = serving_world
    service.top_k(items[0], k=2)
    text = service.render_metrics()
    assert "repro_topk_requests_total 1" in text
    assert "repro_encode_batch_size_count" in text


def test_from_bundle(bundle_dir, serving_world, fresh_store):
    _, items = serving_world
    svc = SimilarityService.from_bundle(bundle_dir)
    try:
        assert len(svc.store) == len(fresh_store)
        assert len(svc.probes) == 3
        result = svc.top_k(items[0], k=5, use_cache=False)
        expected, _ = fresh_store.query(items[0], k=5)
        assert result.ids == [int(i) for i in expected]
    finally:
        svc.close()


def test_concurrent_queries_match_serial_quick(service, serving_world,
                                               fresh_store):
    """4 concurrent clients agree with the offline serial answers."""
    _, items = serving_world
    queries = items[:8]
    expected = [fresh_store.query(q, k=5)[0].tolist() for q in queries]
    answers = {}

    def client(idx):
        got = [service.top_k(q, k=5, use_cache=False).ids for q in queries]
        answers[idx] = got

    threads = [threading.Thread(target=client, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    for got in answers.values():
        assert got == expected


@pytest.mark.serving
def test_concurrent_queries_match_serial_16_clients(serving_world,
                                                    fresh_store):
    """The acceptance-scale determinism check: 16 clients, shared batches."""
    model, items = serving_world
    svc = SimilarityService(model, fresh_store, ServingConfig(max_wait_ms=2.0))
    queries = items[:16]
    expected = [fresh_store.query(q, k=5)[0].tolist() for q in queries]
    answers = {}
    try:
        def client(idx):
            got = [svc.top_k(q, k=5, use_cache=False).ids for q in queries]
            answers[idx] = got

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        stats = svc._batcher.stats()
    finally:
        svc.close()
    assert len(answers) == 16
    for got in answers.values():
        assert got == expected
    assert stats["mean_batch_size"] > 1.0  # batching actually coalesced
