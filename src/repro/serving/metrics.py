"""Serving metrics: counters and histograms with Prometheus exposition.

The online service needs to be observable without external dependencies, so
this module implements the minimal useful subset of a metrics client:
monotonic counters, fixed-bucket latency/size histograms with streaming
percentiles over a bounded recent window, and a registry that renders the
Prometheus text exposition format (scrapeable from ``GET /metrics``).

All metric types are thread-safe; the serving layer updates them from both
HTTP handler threads and the micro-batcher worker.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_LATENCY_BUCKETS", "DEFAULT_SIZE_BUCKETS"]

#: Latency buckets in seconds — 0.5 ms .. 2.5 s, roughly log-spaced.
DEFAULT_LATENCY_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
                           0.05, 0.1, 0.25, 0.5, 1.0, 2.5)

#: Batch-size buckets — powers of two up to a generous maximum.
DEFAULT_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: Recent observations kept per histogram for percentile estimates.
_PERCENTILE_WINDOW = 4096

_NAME_OK = set("abcdefghijklmnopqrstuvwxyz"
               "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects (ints bare)."""
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing counter."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = _check_name(name)
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def render(self) -> List[str]:
        return [f"{self.name} {_format_value(self.value)}"]

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """A settable value, optionally split by a label set.

    ``set(value)`` drives the unlabelled series; ``set(value, shard="3")``
    drives one labelled child per distinct label combination (rendered as
    ``name{shard="3"} value``). The sharded tier uses labelled gauges for
    per-shard health — breaker state, last WAL fsync latency — where a
    counter's monotonicity would hide recoveries.
    """

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = _check_name(name)
        self.help = help
        self._lock = threading.Lock()
        self._values: "Dict[Tuple[Tuple[str, str], ...], float]" = {}

    @staticmethod
    def _key(labels: Dict[str, str]) -> "Tuple[Tuple[str, str], ...]":
        for label in labels:
            _check_name(label)
        return tuple(sorted((k, str(v)) for k, v in labels.items()))

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._values[self._key(labels)] = float(value)

    def get(self, **labels) -> Optional[float]:
        with self._lock:
            return self._values.get(self._key(labels))

    def render(self) -> List[str]:
        with self._lock:
            items = sorted(self._values.items())
        lines = []
        for key, value in items:
            if key:
                rendered = ",".join(f'{k}="{v}"' for k, v in key)
                lines.append(f"{self.name}{{{rendered}}} "
                             f"{_format_value(value)}")
            else:
                lines.append(f"{self.name} {_format_value(value)}")
        return lines

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return {(",".join(f"{k}={v}" for k, v in key) if key else ""):
                    value for key, value in sorted(self._values.items())}


class Histogram:
    """Fixed-bucket histogram with percentile estimates.

    Bucket counts, sum and count are exact; percentiles are computed over a
    bounded window of the most recent :data:`_PERCENTILE_WINDOW`
    observations (exact until the window rolls).
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        self.name = _check_name(name)
        self.help = help
        edges = tuple(sorted(float(b) for b in buckets))
        if not edges:
            raise ValueError("histogram needs at least one bucket")
        self.buckets = edges
        self._lock = threading.Lock()
        self._bucket_counts = [0] * len(edges)
        self._count = 0
        self._sum = 0.0
        self._recent: List[float] = []
        self._recent_pos = 0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            for i, edge in enumerate(self.buckets):
                if value <= edge:
                    self._bucket_counts[i] += 1
                    break
            if len(self._recent) < _PERCENTILE_WINDOW:
                self._recent.append(value)
            else:  # overwrite in ring order so the window stays recent
                self._recent[self._recent_pos] = value
                self._recent_pos = (self._recent_pos + 1) % _PERCENTILE_WINDOW

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, q: float) -> float:
        """q-th percentile (q in [0, 100]) over the recent window; NaN if empty."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        with self._lock:
            window = sorted(self._recent)
        if not window:
            return math.nan
        if len(window) == 1:
            return window[0]
        pos = (q / 100.0) * (len(window) - 1)
        lo = int(math.floor(pos))
        hi = min(lo + 1, len(window) - 1)
        frac = pos - lo
        return window[lo] * (1.0 - frac) + window[hi] * frac

    def render(self) -> List[str]:
        with self._lock:
            counts = list(self._bucket_counts)
            total = self._count
            total_sum = self._sum
        lines = []
        cumulative = 0
        for edge, n in zip(self.buckets, counts):
            cumulative += n
            lines.append(f'{self.name}_bucket{{le="{_format_value(edge)}"}} '
                         f"{cumulative}")
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {total}')
        lines.append(f"{self.name}_sum {_format_value(total_sum)}")
        lines.append(f"{self.name}_count {total}")
        return lines

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.sum,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Named collection of metrics with text exposition.

    ``counter``/``histogram`` are get-or-create so call sites can stay
    declaration-free; re-registering a name as a different metric type is
    an error.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: "Dict[str, object]" = {}

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
                  ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}")
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def metrics(self) -> "List[Tuple[str, object]]":
        with self._lock:
            return sorted(self._metrics.items())

    def render(self) -> str:
        """Prometheus text exposition of every registered metric."""
        lines: List[str] = []
        for name, metric in self.metrics():
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly dump of every metric (used by ``stats()``)."""
        return {name: metric.snapshot() for name, metric in self.metrics()}
