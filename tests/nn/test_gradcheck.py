"""Numerical gradient checks for every autodiff operation.

These tests validate the engine against central-difference derivatives,
including the composite expressions the NeuTraj model relies on (attention
softmax-mix, embedding similarity, masked state carry).
"""

import numpy as np
import pytest

from repro.nn.tensor import (Tensor, concat, gradient_check, lstm_gates,
                             stack, unstack, where)

RNG = np.random.default_rng(99)

# Constant co-operands captured once (regenerating them per evaluation would
# break the finite-difference comparison).
MAT_3x5 = Tensor(RNG.normal(size=(3, 5)))
MAT_5x4 = Tensor(RNG.normal(size=(5, 4)))
BATCH_2x3x4 = Tensor(RNG.normal(size=(2, 3, 4)))
VEC_3 = Tensor(RNG.normal(size=3))
MAT_4x3 = Tensor(RNG.normal(size=(4, 3)))


@pytest.mark.parametrize("name,build,shape", [
    ("add", lambda t: (t + t * 2.0).sum(), (4, 3)),
    ("sub", lambda t: (t - 3.0).sum(), (4, 3)),
    ("mul_self", lambda t: (t * t).sum(), (4, 3)),
    ("div", lambda t: (t / (t * t + 1.0)).sum(), (4, 3)),
    ("pow", lambda t: (t ** 3).sum(), (4, 3)),
    ("neg", lambda t: (-t).sum(), (4, 3)),
    ("matmul", lambda t: (t @ MAT_3x5).sum(), (4, 3)),
    ("matmul_left_const", lambda t: (MAT_5x4 @ t).sum(), (4, 3)),
    ("matmul_vector_rhs", lambda t: (t @ VEC_3).sum(), (4, 3)),
    ("matmul_batched", lambda t: (t.reshape(2, 2, 3) @ BATCH_2x3x4).sum(),
     (4, 3)),
    ("exp", lambda t: t.exp().sum(), (4, 3)),
    ("log", lambda t: (t * t + 1.0).log().sum(), (4, 3)),
    ("sigmoid", lambda t: t.sigmoid().sum(), (4, 3)),
    ("tanh", lambda t: t.tanh().sum(), (4, 3)),
    ("softmax", lambda t: (t.softmax(axis=-1) * MAT_4x3).sum(), (4, 3)),
    ("sum_axis", lambda t: (t.sum(axis=0) ** 2).sum(), (4, 3)),
    ("sum_keepdims", lambda t: (t.sum(axis=1, keepdims=True) * t).sum(),
     (4, 3)),
    ("mean", lambda t: (t.mean(axis=1) ** 2).sum(), (4, 3)),
    ("reshape", lambda t: (t.reshape(3, 4) @ MAT_5x4.transpose()).sum().sum(),
     (4, 3)),
    ("transpose", lambda t: (t.transpose(1, 0) ** 2).sum(), (4, 3)),
    ("getitem", lambda t: (t[1:3, :2] ** 2).sum(), (4, 3)),
    ("concat", lambda t: concat([t.tanh(), t * 2.0], axis=-1).sum(), (4, 3)),
    ("stack", lambda t: (stack([t, t * t], axis=0) ** 2).sum(), (4, 3)),
])
def test_op_gradients(name, build, shape):
    x = np.random.default_rng(hash(name) % 2**31).normal(size=shape)
    assert gradient_check(build, x)


@pytest.mark.parametrize("num_gates", [3, 4])
def test_lstm_gates_gradient(num_gates):
    """Fused sigmoid-slab op: every gate slice backpropagates correctly."""
    x = np.random.default_rng(20 + num_gates).normal(size=(3, num_gates * 2))

    def build(t):
        gates = lstm_gates(t, num_gates)
        total = gates[0].sum()
        for i, g in enumerate(gates[1:], start=2):
            total = total + (g ** i).sum()
        return total

    assert gradient_check(build, x)


def test_lstm_gates_matches_sliced_sigmoid():
    """Forward values equal the unfused sigmoid-then-slice formulation."""
    x = np.random.default_rng(25).normal(size=(4, 12))
    fused = lstm_gates(Tensor(x), 3)
    reference = Tensor(x).sigmoid()
    for g, gate in enumerate(fused):
        np.testing.assert_allclose(gate.data,
                                   reference.data[:, g * 4:(g + 1) * 4])


def test_lstm_gates_rejects_indivisible_width():
    with pytest.raises(ValueError):
        lstm_gates(Tensor(np.zeros((2, 7))), 3)


def test_unstack_gradient():
    x = np.random.default_rng(26).normal(size=(3, 2, 4))

    def build(t):
        slots = unstack(t, axis=0)
        return (slots[0] ** 2).sum() + (slots[1] * 3.0).sum() + slots[2].sum()

    assert gradient_check(build, x)


def test_sqrt_gradient_away_from_zero():
    x = np.abs(np.random.default_rng(0).normal(size=(4, 3))) + 1.0
    assert gradient_check(lambda t: t.sqrt().sum(), x)


def test_relu_gradient_away_from_kink():
    x = np.random.default_rng(3).normal(size=(4, 3))
    x[np.abs(x) < 0.05] = 0.5
    assert gradient_check(lambda t: t.relu().sum(), x)


def test_clip_min_gradient_away_from_boundary():
    x = np.random.default_rng(4).normal(size=(4, 3))
    x[np.abs(x - 0.1) < 0.05] = 1.0
    assert gradient_check(lambda t: t.clip_min(0.1).sum(), x)


def test_take_rows_gradient_with_duplicates():
    idx = np.array([0, 2, 2, 1])
    x = np.random.default_rng(5).normal(size=(4, 3))
    assert gradient_check(lambda t: (t.take_rows(idx) ** 2).sum(), x)


def test_where_gradient():
    cond = np.random.default_rng(6).random((4, 3)) > 0.5
    x = np.random.default_rng(7).normal(size=(4, 3))
    assert gradient_check(lambda t: where(cond, t * 2.0, t * t).sum(), x)


def test_embedding_similarity_gradient():
    """g = exp(-||a - b||): the NeuTraj pair-similarity head."""
    from repro.nn.layers import embedding_similarity

    b = Tensor(np.random.default_rng(8).normal(size=(5, 4)))

    def build(t):
        return embedding_similarity(t, b).sum()

    x = np.random.default_rng(9).normal(size=(5, 4))
    assert gradient_check(build, x)


def test_attention_read_composite_gradient():
    """softmax-attention over a constant memory window (SAM read path)."""
    window = Tensor(np.random.default_rng(10).normal(size=(3, 7, 4)))

    def build(t):
        scores = (window @ t.reshape(3, 4, 1)).reshape(3, 7)
        attn = scores.softmax(axis=-1)
        mix = (window.transpose(0, 2, 1) @ attn.reshape(3, 7, 1)).reshape(3, 4)
        return (mix * mix).sum()

    x = np.random.default_rng(11).normal(size=(3, 4))
    assert gradient_check(build, x)


def test_ranking_loss_composite_gradient():
    """Rank-weighted similar + margin dissimilar loss (Eq. 8-9)."""
    from repro.core.sampling import rank_weights

    weights = Tensor(rank_weights(6))
    truth = Tensor(np.random.default_rng(12).uniform(size=6))

    def build(t):
        g = (-((t * t).sum(axis=-1).sqrt(eps=1e-12))).exp()
        diff_s = g - truth
        diff_d = (g - truth).relu()
        return (weights * diff_s * diff_s).sum() + (weights * diff_d * diff_d).sum()

    x = np.random.default_rng(13).normal(size=(6, 4)) + 1.0
    assert gradient_check(build, x, tol=1e-3)
