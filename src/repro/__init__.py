"""NeuTraj reproduction: linear-time trajectory similarity via seed-guided
neural metric learning (Yao et al., ICDE 2019).

Public API highlights
---------------------
``NeuTraj`` / ``NeuTrajConfig``
    The model: fit on seed trajectories, then ``embed`` / ``similarity`` /
    ``top_k`` in linear time.
``get_measure``
    Exact measures: ``"dtw"``, ``"frechet"``, ``"hausdorff"``, ``"erp"``.
``generate_porto`` / ``generate_geolife`` / ``generate_zero_shot_seeds``
    Synthetic workloads standing in for the paper's datasets (see DESIGN.md).
See README.md for a quickstart.
"""

from .core import (EmbeddingStore, MetricModel, NeuTraj, NeuTrajConfig,
                   SiameseTraj, TrainingHistory)
from .dataquality import (QualityReport, SanitizeConfig, sanitize,
                          sanitize_dataset)
from .datasets import (GeolifeConfig, Grid, PortoConfig, RoadNetworkConfig,
                       Trajectory, TrajectoryDataset, generate_geolife,
                       generate_porto, generate_zero_shot_seeds)
from .exceptions import (ConfigurationError, InvalidTrajectoryError,
                         NotFittedError, ReproError)
from .measures import (available_measures, cross_distances, get_measure,
                       pairwise_distances)

__version__ = "1.0.0"

__all__ = [
    "EmbeddingStore", "MetricModel", "NeuTraj", "NeuTrajConfig",
    "SiameseTraj",
    "TrainingHistory",
    "QualityReport", "SanitizeConfig", "sanitize", "sanitize_dataset",
    "GeolifeConfig", "Grid", "PortoConfig", "RoadNetworkConfig",
    "Trajectory", "TrajectoryDataset", "generate_geolife", "generate_porto",
    "generate_zero_shot_seeds",
    "ConfigurationError", "InvalidTrajectoryError", "NotFittedError",
    "ReproError",
    "available_measures", "cross_distances", "get_measure",
    "pairwise_distances",
    "__version__",
]
