"""Tests for serving counters, histograms, and Prometheus exposition."""

import math

import pytest

from repro.serving import Counter, Histogram, MetricsRegistry


def test_counter_increments():
    counter = Counter("requests_total", "help text")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == pytest.approx(3.5)


def test_counter_rejects_decrease():
    counter = Counter("requests_total")
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_invalid_metric_names_rejected():
    with pytest.raises(ValueError):
        Counter("bad name")
    with pytest.raises(ValueError):
        Counter("1leading_digit")
    with pytest.raises(ValueError):
        Counter("")


def test_histogram_counts_and_sum():
    hist = Histogram("latency_seconds", buckets=(0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 0.5, 5.0):
        hist.observe(value)
    assert hist.count == 4
    assert hist.sum == pytest.approx(5.555)


def test_histogram_percentiles():
    hist = Histogram("latency_seconds")
    assert math.isnan(hist.percentile(50))
    for value in range(1, 101):
        hist.observe(float(value))
    assert hist.percentile(0) == 1.0
    assert hist.percentile(100) == 100.0
    assert hist.percentile(50) == pytest.approx(50.5)
    assert hist.percentile(95) == pytest.approx(95.05)
    with pytest.raises(ValueError):
        hist.percentile(101)


def test_histogram_snapshot_keys():
    hist = Histogram("latency_seconds")
    hist.observe(0.25)
    snap = hist.snapshot()
    assert set(snap) == {"count", "sum", "p50", "p95", "p99"}
    assert snap["count"] == 1
    assert snap["p99"] == pytest.approx(0.25)


def test_render_prometheus_format():
    registry = MetricsRegistry()
    registry.counter("repro_requests_total", "Requests.").inc(3)
    hist = registry.histogram("repro_latency_seconds", "Latency.",
                              buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(50.0)
    text = registry.render()
    assert "# HELP repro_requests_total Requests." in text
    assert "# TYPE repro_requests_total counter" in text
    assert "repro_requests_total 3" in text
    assert "# TYPE repro_latency_seconds histogram" in text
    # Buckets are cumulative; +Inf equals the total count.
    assert 'repro_latency_seconds_bucket{le="0.1"} 1' in text
    assert 'repro_latency_seconds_bucket{le="1"} 2' in text
    assert 'repro_latency_seconds_bucket{le="+Inf"} 3' in text
    assert "repro_latency_seconds_count 3" in text
    assert text.endswith("\n")


def test_registry_get_or_create_returns_same_object():
    registry = MetricsRegistry()
    a = registry.counter("repro_total")
    b = registry.counter("repro_total")
    assert a is b


def test_registry_type_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("repro_total")
    with pytest.raises(ValueError):
        registry.histogram("repro_total")


def test_registry_snapshot():
    registry = MetricsRegistry()
    registry.counter("repro_total").inc(7)
    registry.histogram("repro_seconds").observe(1.0)
    snap = registry.snapshot()
    assert snap["repro_total"] == 7
    assert snap["repro_seconds"]["count"] == 1
