"""Symmetric Hausdorff distance between trajectory point sets.

``H(A, B) = max( max_a min_b d(a, b), max_b min_a d(a, b) )`` — the largest
distance from any point of one trajectory to the other trajectory. Ignores
point ordering; a metric on compact point sets. Fully vectorised (no DP).
"""

from __future__ import annotations

import numpy as np

from ._batch import hausdorff_many
from .base import (TrajectoryMeasure, check_pair, point_distances,
                   register_measure)


@register_measure("hausdorff")
class HausdorffDistance(TrajectoryMeasure):
    """Exact symmetric Hausdorff distance."""

    is_metric = True

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        check_pair(a, b)
        cost = point_distances(a, b)
        forward = cost.min(axis=1).max()
        backward = cost.min(axis=0).max()
        return float(max(forward, backward))

    def distance_many(self, pairs_a, pairs_b) -> np.ndarray:
        pairs_a = [np.asarray(a, dtype=np.float64) for a in pairs_a]
        pairs_b = [np.asarray(b, dtype=np.float64) for b in pairs_b]
        for a, b in zip(pairs_a, pairs_b):
            check_pair(a, b)
        return hausdorff_many(pairs_a, pairs_b)

    def directed(self, a: np.ndarray, b: np.ndarray) -> float:
        """One-sided (directed) Hausdorff distance from ``a`` to ``b``."""
        return float(point_distances(a, b).min(axis=1).max())
