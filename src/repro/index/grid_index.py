"""Grid-based inverted index (paper Table V, second index).

Each grid cell keeps the set of trajectory ids that pass through it; a
query collects the union of ids over the query trajectory's cells (expanded
by a ring of neighbouring cells). Simpler than an R-tree and very effective
for trajectory data whose density follows the street network.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from ..datasets.grid import Grid


class GridInvertedIndex:
    """Inverted cell -> trajectory-id index.

    Parameters
    ----------
    grid:
        Discretisation of the space.
    """

    def __init__(self, grid: Grid):
        self.grid = grid
        self._cells: Dict[Tuple[int, int], Set[int]] = {}
        self.size = 0

    @classmethod
    def from_trajectories(cls, trajectories: Sequence, grid: Grid
                          ) -> "GridInvertedIndex":
        """Index trajectories (ids = positions)."""
        index = cls(grid)
        for i, traj in enumerate(trajectories):
            index.insert(i, np.asarray(getattr(traj, "points", traj)))
        return index

    def insert(self, traj_id: int, points: np.ndarray) -> None:
        """Register a trajectory's visited cells."""
        cells = self.grid.to_cells(points)
        for cell in {(int(x), int(y)) for x, y in cells}:
            self._cells.setdefault(cell, set()).add(traj_id)
        self.size += 1

    def remove(self, traj_id: int) -> bool:
        """Drop a trajectory from every cell; returns True if it was indexed."""
        found = False
        empty = []
        for cell, ids in self._cells.items():
            if traj_id in ids:
                ids.discard(traj_id)
                found = True
                if not ids:
                    empty.append(cell)
        for cell in empty:
            del self._cells[cell]
        if found:
            self.size -= 1
        return found

    def query_cells(self, cells: Sequence[Tuple[int, int]]) -> List[int]:
        """Union of ids over the given cells."""
        out: Set[int] = set()
        for cell in cells:
            out |= self._cells.get((int(cell[0]), int(cell[1])), set())
        return sorted(out)

    def match_counts(self, cells: Sequence[Tuple[int, int]]
                     ) -> Dict[int, int]:
        """How many of the given cells each candidate id appears in.

        The count is a cheap overlap score: trajectories sharing more
        cells with the query rank higher. The serving layer's degraded
        top-k path uses it when the learned encoder is unavailable.
        """
        counts: Dict[int, int] = {}
        for cell in {(int(c[0]), int(c[1])) for c in cells}:
            for traj_id in self._cells.get(cell, ()):
                counts[traj_id] = counts.get(traj_id, 0) + 1
        return counts

    def query(self, points: np.ndarray, ring: int = 1) -> List[int]:
        """Candidate ids for a query trajectory.

        ``ring`` expands each visited cell by that many neighbouring cells,
        trading candidate count against the risk of missing near matches.
        """
        cells = self.grid.to_cells(np.asarray(getattr(points, "points", points)))
        expanded: Set[Tuple[int, int]] = set()
        for x, y in {(int(cx), int(cy)) for cx, cy in cells}:
            for dx in range(-ring, ring + 1):
                for dy in range(-ring, ring + 1):
                    expanded.add((x + dx, y + dy))
        return self.query_cells(sorted(expanded))

    @property
    def num_occupied_cells(self) -> int:
        return len(self._cells)
