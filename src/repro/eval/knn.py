"""k-nearest-neighbour search primitives used across experiments.

Three search modes appear in the paper's evaluation:

* brute-force exact search (ground truth and the BruteForce timing row),
* embedding search (NeuTraj: vectorised Euclidean over the embedding table),
* sketch search (AP baselines: approximate distance over precomputed
  signatures).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..approx.base import ApproximateMeasure
from ..measures.base import TrajectoryMeasure


def top_k_from_distances(distances: np.ndarray, k: int,
                         exclude: int = -1) -> np.ndarray:
    """Indices of the ``k`` smallest entries (optionally excluding one)."""
    distances = np.asarray(distances, dtype=np.float64)
    if exclude >= 0:
        distances = distances.copy()
        distances[exclude] = np.inf
    k = min(k, (np.isfinite(distances)).sum())
    idx = np.argpartition(distances, k - 1)[:k]
    return idx[np.argsort(distances[idx], kind="stable")]


def brute_force_knn(query, database: Sequence, measure: TrajectoryMeasure,
                    k: int) -> np.ndarray:
    """Exact top-k by scanning the database with the exact measure."""
    query_points = np.asarray(getattr(query, "points", query))
    distances = np.array([
        measure.distance(query_points, np.asarray(getattr(t, "points", t)))
        for t in database
    ])
    return top_k_from_distances(distances, k)


def embedding_distance_matrix(embeddings: np.ndarray) -> np.ndarray:
    """All-pairs Euclidean distances between embedding rows (N, N)."""
    embeddings = np.asarray(embeddings, dtype=np.float64)
    diff = embeddings[:, None, :] - embeddings[None, :, :]
    return np.sqrt((diff * diff).sum(axis=-1))


def embedding_knn(query_embedding: np.ndarray, database_embeddings: np.ndarray,
                  k: int) -> np.ndarray:
    """Top-k by Euclidean distance in the embedding space (O(N d))."""
    diffs = database_embeddings - np.asarray(query_embedding)[None, :]
    distances = np.sqrt((diffs * diffs).sum(axis=1))
    return top_k_from_distances(distances, k)


def sketch_knn(query_sketch, database_sketches: List, approx: ApproximateMeasure,
               k: int) -> np.ndarray:
    """Top-k by approximate distance over precomputed sketches."""
    distances = np.array([
        approx.signature_distance(query_sketch, sketch)
        for sketch in database_sketches
    ])
    return top_k_from_distances(distances, k)


def rerank_with_exact(query, database: Sequence, candidates: Sequence[int],
                      measure: TrajectoryMeasure, k: int) -> np.ndarray:
    """Re-rank candidate indices by the exact measure; return best ``k``.

    This is the paper's search protocol: retrieve top-50 with the fast
    method, then compute the exact distance only for those 50.
    """
    query_points = np.asarray(getattr(query, "points", query))
    candidates = np.asarray(list(candidates), dtype=int)
    distances = np.array([
        measure.distance(query_points,
                         np.asarray(getattr(database[i], "points", database[i])))
        for i in candidates
    ])
    order = np.argsort(distances, kind="stable")
    return candidates[order[:k]]
