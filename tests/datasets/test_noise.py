"""Tests for failure injection and model robustness under corruption."""

import numpy as np
import pytest

from repro.datasets import (Trajectory, add_outliers, drop_points,
                            jitter_gps, resample_rate)


@pytest.fixture
def walk(rng):
    return Trajectory(np.cumsum(rng.normal(size=(30, 2)) * 10, axis=0),
                      traj_id=5)


class TestDropPoints:
    def test_keeps_endpoints(self, walk, rng):
        out = drop_points(walk, 0.5, rng)
        np.testing.assert_allclose(out.points[0], walk.points[0])
        np.testing.assert_allclose(out.points[-1], walk.points[-1])

    def test_fraction_removed(self, walk, rng):
        out = drop_points(walk, 0.5, rng)
        assert len(out) == pytest.approx(2 + 28 * 0.5, abs=1)

    def test_zero_fraction_identity(self, walk, rng):
        out = drop_points(walk, 0.0, rng)
        np.testing.assert_allclose(out.points, walk.points)

    def test_preserves_id(self, walk, rng):
        assert drop_points(walk, 0.3, rng).traj_id == 5

    def test_order_preserved(self, walk, rng):
        out = drop_points(walk, 0.4, rng)
        original = [tuple(p) for p in walk.points]
        positions = [original.index(tuple(p)) for p in out.points]
        assert positions == sorted(positions)

    def test_rejects_bad_fraction(self, walk, rng):
        with pytest.raises(ValueError):
            drop_points(walk, 1.0, rng)

    def test_tiny_trajectory_passthrough(self, rng):
        t = Trajectory([[0.0, 0.0], [1.0, 1.0]])
        assert len(drop_points(t, 0.9, rng)) == 2


class TestAddOutliers:
    def test_count_displaced(self, walk, rng):
        out = add_outliers(walk, 3, magnitude=1000.0, rng=rng)
        moved = np.any(out.points != walk.points, axis=1).sum()
        assert moved == 3

    def test_zero_count_identity(self, walk, rng):
        out = add_outliers(walk, 0, magnitude=1000.0, rng=rng)
        np.testing.assert_allclose(out.points, walk.points)

    def test_count_clamped(self, walk, rng):
        out = add_outliers(walk, 500, magnitude=10.0, rng=rng)
        assert len(out) == len(walk)

    def test_rejects_negative(self, walk, rng):
        with pytest.raises(ValueError):
            add_outliers(walk, -1, 1.0, rng)


class TestResampleRate:
    def test_upsample(self, walk, rng):
        out = resample_rate(walk, 2.0, rng)
        assert len(out) == 60

    def test_downsample(self, walk, rng):
        out = resample_rate(walk, 0.5, rng)
        assert len(out) == 15

    def test_minimum_two_points(self, walk, rng):
        out = resample_rate(walk, 0.01, rng)
        assert len(out) >= 2

    def test_rejects_nonpositive(self, walk, rng):
        with pytest.raises(ValueError):
            resample_rate(walk, 0.0, rng)

    def test_endpoints_preserved(self, walk, rng):
        out = resample_rate(walk, 1.5, rng)
        np.testing.assert_allclose(out.points[0], walk.points[0])
        np.testing.assert_allclose(out.points[-1], walk.points[-1])


class TestJitter:
    def test_zero_noise_identity(self, walk, rng):
        out = jitter_gps(walk, 0.0, rng)
        np.testing.assert_allclose(out.points, walk.points)

    def test_rejects_negative(self, walk, rng):
        with pytest.raises(ValueError):
            jitter_gps(walk, -1.0, rng)


class TestModelRobustness:
    """Failure injection against a trained model: small corruptions must
    produce small embedding displacement relative to typical inter-
    trajectory distances."""

    @pytest.fixture(scope="class")
    def model_and_data(self):
        from repro import NeuTraj, NeuTrajConfig, PortoConfig, generate_porto
        ds = generate_porto(PortoConfig(num_trajectories=40, min_points=15,
                                        max_points=25), seed=41)
        seeds = list(ds)[:25]
        test = list(ds)[25:]
        model = NeuTraj(NeuTrajConfig(measure="hausdorff", embedding_dim=16,
                                      epochs=3, sampling_num=5,
                                      batch_anchors=10, cell_size=500.0,
                                      seed=0))
        model.fit(seeds)
        emb = model.embed(test)
        diff = emb[:, None, :] - emb[None, :, :]
        spread = np.median(np.sqrt((diff ** 2).sum(-1)))
        return model, test, spread

    def test_robust_to_gps_jitter(self, model_and_data, rng):
        model, test, spread = model_and_data
        shifts = []
        for t in test[:6]:
            noisy = jitter_gps(t, 10.0, rng)  # 10 m noise on a 10 km frame
            shifts.append(model.distance(t, noisy))
        assert np.median(shifts) < 0.5 * spread

    def test_robust_to_point_dropout(self, model_and_data, rng):
        model, test, spread = model_and_data
        shifts = []
        for t in test[:6]:
            dropped = drop_points(t, 0.2, rng)
            shifts.append(model.distance(t, dropped))
        assert np.median(shifts) < 0.75 * spread

    def test_outliers_move_embedding_more_than_jitter(self, model_and_data,
                                                      rng):
        model, test, _ = model_and_data
        jitter_shift, outlier_shift = [], []
        for t in test[:6]:
            jitter_shift.append(model.distance(t, jitter_gps(t, 10.0, rng)))
            outlier_shift.append(model.distance(
                t, add_outliers(t, 3, magnitude=3000.0, rng=rng)))
        assert np.median(outlier_shift) > np.median(jitter_shift)
