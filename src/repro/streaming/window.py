"""Sliding-window state machine: dedup, reordering, watermarks, eviction.

:class:`SlidingWindowStore` is the *deterministic core* of the streaming
tier: a pure in-memory state machine whose entire state is a function of
the sequence of accepted points in arrival order. It knows nothing about
WALs, encoders or embedding stores — the ingester replays the accepted
sequence from the WAL after a crash and lands, by construction, in the
same window state.

Semantics (see DESIGN.md "Streaming ingest" for the full contract):

* **Event time only.** Timestamps come from the points themselves; this
  module never reads a clock, so replay is exact and the determinism
  lint stays clean.
* **Per-source sequence numbers, at-least-once dedup.** Each source
  numbers its points ``1, 2, ...``. A point at or below the source's
  ``applied_through`` mark (or already applied above it) is a duplicate:
  acknowledged, counted, state unchanged.
* **Bounded reordering.** Out-of-order points wait in a per-source
  buffer of at most ``reorder_buffer`` slots until their gap fills. A
  full buffer force-advances over the lowest gap (the skipped sequence
  range is counted as abandoned — a retransmit arriving later dedups
  away below ``applied_through``).
* **Watermark and lateness.** The watermark trails the maximum accepted
  event time by ``lateness_s``. Points older than the watermark are
  *late*: counted and dropped, never silently and never applied. The
  watermark is monotone because the maximum is.
* **Segment-granular TTL eviction.** Applied points append to their
  source's active *segment* (a growing trajectory); segments roll at
  ``max_segment_points`` so prefix-encoded history ages out in bounded
  chunks. A segment whose newest point falls ``ttl_s`` behind the
  watermark is evicted wholesale — the caller drops its embedding.

The class is deliberately not thread-safe: the ingester serialises all
access under its own lock.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from .events import StreamPoint

__all__ = ["ApplyResult", "Segment", "SlidingWindowStore", "WindowConfig"]


@dataclass(frozen=True)
class WindowConfig:
    """Shape of the sliding window.

    Attributes
    ----------
    lateness_s:
        Event-time slack the watermark trails the newest accepted point
        by; points older than the watermark are counted and dropped.
    ttl_s:
        Event-time a segment may idle behind the watermark before it is
        evicted (with its embedding).
    reorder_buffer:
        Out-of-order points held per source while waiting for their
        sequence gap to fill.
    max_segment_points:
        Roll a source's growing segment after this many points, bounding
        both encoder state growth and eviction granularity.
    """

    lateness_s: float = 30.0
    ttl_s: float = 300.0
    reorder_buffer: int = 16
    max_segment_points: int = 512

    def __post_init__(self) -> None:
        if self.lateness_s < 0:
            raise ConfigurationError("lateness_s must be >= 0")
        if self.ttl_s <= 0:
            raise ConfigurationError("ttl_s must be > 0")
        if self.reorder_buffer < 1:
            raise ConfigurationError("reorder_buffer must be >= 1")
        if self.max_segment_points < 2:
            raise ConfigurationError("max_segment_points must be >= 2")


@dataclass
class Segment:
    """One contiguous run of applied points from one source."""

    segment_id: int
    source_id: int
    first_seq: int
    last_seq: int
    sealed: bool = False
    seqs: List[int] = field(default_factory=list)
    times: List[float] = field(default_factory=list)
    xs: List[float] = field(default_factory=list)
    ys: List[float] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.times)

    @property
    def last_t(self) -> float:
        return self.times[-1]

    def points(self) -> np.ndarray:
        """The (n, 2) coordinate array, in applied order."""
        return np.stack([np.asarray(self.xs, dtype=np.float64),
                         np.asarray(self.ys, dtype=np.float64)], axis=1)


@dataclass
class _SourceState:
    applied_through: int = 0
    applied_above: Set[int] = field(default_factory=set)
    buffer: Dict[int, StreamPoint] = field(default_factory=dict)
    segment_id: Optional[int] = None


@dataclass
class ApplyResult:
    """What one accepted point did to the window.

    ``status`` is ``"applied"`` (point in a segment now, possibly with
    buffered followers — see ``appended``), ``"buffered"`` (waiting for
    its gap; acknowledged but not yet in a segment), ``"duplicate"`` or
    ``"late"``. ``accepted`` is True for applied/buffered — exactly the
    points the ingester must make durable before acking.
    """

    status: str
    accepted: bool
    appended: List[Tuple[int, StreamPoint]] = field(default_factory=list)
    opened: List[int] = field(default_factory=list)
    rolled: List[Tuple[int, int]] = field(default_factory=list)
    evicted: List[int] = field(default_factory=list)
    abandoned: List[Tuple[int, int, int]] = field(default_factory=list)


class SlidingWindowStore:
    """Deterministic sliding-window state over per-source point streams."""

    def __init__(self, config: WindowConfig = WindowConfig()):
        self.config = config
        self._sources: Dict[int, _SourceState] = {}
        self._segments: Dict[int, Segment] = {}
        # Lazy eviction heap: one (last_t, segment_id) entry per applied
        # point; entries superseded by newer appends (or by eviction) are
        # discarded when popped. Keeps eviction amortised O(1) per point
        # instead of O(live segments).
        self._evict_heap: List[Tuple[float, int]] = []
        self._next_segment_id = 0
        self._max_t = -np.inf
        self.applied = 0
        self.duplicates = 0
        self.late_dropped = 0
        self.gaps_abandoned = 0
        self.segments_rolled = 0
        self.segments_evicted = 0

    # ----------------------------------------------------------- inspection

    @property
    def watermark(self) -> float:
        """Event-time watermark (−inf until the first accepted point)."""
        return self._max_t - self.config.lateness_s

    @property
    def max_event_t(self) -> float:
        return self._max_t

    def segment(self, segment_id: int) -> Segment:
        return self._segments[segment_id]

    def has_segment(self, segment_id: int) -> bool:
        """Whether ``segment_id`` is still live (O(1))."""
        return segment_id in self._segments

    def live_segments(self) -> List[int]:
        """Ids of all segments currently in the window, ascending."""
        return sorted(self._segments)

    def buffered(self) -> int:
        """Points currently parked in reorder buffers."""
        return sum(len(s.buffer) for s in self._sources.values())

    def source_ids(self) -> List[int]:
        return sorted(self._sources)

    def applied_through(self, source_id: int) -> int:
        state = self._sources.get(source_id)
        return 0 if state is None else state.applied_through

    def stats(self) -> Dict:
        return {
            "watermark": float(self.watermark),
            "max_event_t": float(self._max_t),
            "sources": len(self._sources),
            "segments": len(self._segments),
            "window_points": sum(len(s) for s in self._segments.values()),
            "buffered": self.buffered(),
            "applied": self.applied,
            "duplicates": self.duplicates,
            "late_dropped": self.late_dropped,
            "gaps_abandoned": self.gaps_abandoned,
            "segments_rolled": self.segments_rolled,
            "segments_evicted": self.segments_evicted,
        }

    # ----------------------------------------------------------- planning

    def classify(self, points: Sequence[StreamPoint]) -> List[str]:
        """Dry-run a batch through dedup -> lateness -> reorder, unmutated.

        Returns the status :meth:`apply` would assign each point were the
        batch applied in offer order (``"applied"``, ``"buffered"``,
        ``"duplicate"`` or ``"late"``). The window itself is untouched.

        This is what lets the ingester put durability *before* mutation:
        it classifies the batch, fsyncs the accepted points into the WAL,
        and only then applies them — so a failed WAL append leaves the
        window unchanged and a retried batch re-classifies identically
        instead of dedup-ing away points that were never made durable.

        The shadow state below mirrors :meth:`apply`'s decision branches
        exactly; ``tests/streaming/test_window.py`` property-tests the
        agreement over adversarial arrival orders.
        """
        shadow: Dict[int, Tuple[List[int], Set[int], Set[int]]] = {}
        max_t = self._max_t
        statuses: List[str] = []
        for point in points:
            sh = shadow.get(point.source_id)
            if sh is None:
                state = self._sources.get(point.source_id)
                sh = (([0], set(), set()) if state is None else
                      ([state.applied_through], set(state.applied_above),
                       set(state.buffer)))
                shadow[point.source_id] = sh
            through, above, buffered = sh
            if (point.seq <= through[0] or point.seq in above
                    or point.seq in buffered):
                statuses.append("duplicate")
                continue
            if point.t < max_t - self.config.lateness_s:
                statuses.append("late")
                continue
            max_t = max(max_t, point.t)
            if point.seq == through[0] + 1:
                statuses.append("applied")
                through[0] = point.seq
                above.discard(point.seq)
            else:
                statuses.append("buffered")
                buffered.add(point.seq)
                if len(buffered) > self.config.reorder_buffer:
                    through[0] = min(buffered) - 1
            while through[0] + 1 in buffered:
                through[0] += 1
                buffered.discard(through[0])
                above.discard(through[0])
        return statuses

    # ------------------------------------------------------------- mutation

    def apply(self, point: StreamPoint) -> ApplyResult:
        """Run one point through dedup -> lateness -> reorder -> append.

        Mutates the window and returns what happened; the ingester turns
        ``appended``/``opened``/``rolled``/``evicted`` into encoder-state
        and embedding-store maintenance.
        """
        state = self._sources.setdefault(point.source_id, _SourceState())
        if (point.seq <= state.applied_through
                or point.seq in state.applied_above
                or point.seq in state.buffer):
            self.duplicates += 1
            return ApplyResult(status="duplicate", accepted=False)
        if point.t < self.watermark:
            self.late_dropped += 1
            return ApplyResult(status="late", accepted=False)

        result = ApplyResult(status="applied", accepted=True)
        self._max_t = max(self._max_t, point.t)
        if point.seq == state.applied_through + 1:
            self._append(state, point, result)
            self._drain_buffer(state, result)
        else:
            state.buffer[point.seq] = point
            result.status = "buffered"
            if len(state.buffer) > self.config.reorder_buffer:
                self._force_advance(state, result)
        self._evict_stale(result)
        return result

    def _append(self, state: _SourceState, point: StreamPoint,
                result: ApplyResult) -> None:
        """Append one in-order point to the source's active segment."""
        segment = (None if state.segment_id is None
                   else self._segments.get(state.segment_id))
        if segment is not None and len(segment) >= self.config.max_segment_points:
            segment.sealed = True
            old_id = segment.segment_id
            segment = None
            state.segment_id = None
            self.segments_rolled += 1
            result.rolled.append((old_id, self._next_segment_id))
        if segment is None:
            segment = Segment(segment_id=self._next_segment_id,
                              source_id=point.source_id,
                              first_seq=point.seq, last_seq=point.seq)
            self._segments[segment.segment_id] = segment
            state.segment_id = segment.segment_id
            self._next_segment_id += 1
            result.opened.append(segment.segment_id)
        segment.seqs.append(point.seq)
        segment.times.append(point.t)
        segment.xs.append(point.x)
        segment.ys.append(point.y)
        segment.last_seq = point.seq
        heapq.heappush(self._evict_heap, (point.t, segment.segment_id))
        state.applied_through = point.seq
        state.applied_above.discard(point.seq)
        self.applied += 1
        result.appended.append((segment.segment_id, point))

    def _drain_buffer(self, state: _SourceState, result: ApplyResult) -> None:
        """Apply buffered points whose gap just closed."""
        while state.applied_through + 1 in state.buffer:
            follower = state.buffer.pop(state.applied_through + 1)
            self._append(state, follower, result)

    def _force_advance(self, state: _SourceState, result: ApplyResult) -> None:
        """Reorder buffer overflowed: abandon the lowest gap and move on."""
        lowest = min(state.buffer)
        gap_from = state.applied_through + 1
        self.gaps_abandoned += 1
        result.abandoned.append(
            (next(iter(state.buffer.values())).source_id, gap_from, lowest - 1))
        state.applied_through = lowest - 1
        self._drain_buffer(state, result)

    def _evict_stale(self, result: ApplyResult) -> None:
        """Drop segments idle past the TTL horizon behind the watermark.

        Amortised O(1) per applied point: pop the lazy heap while its
        top falls below the horizon. A popped entry either evicts its
        segment (``last_t`` really is below the horizon) or is a stale
        entry — superseded by a newer append, or for a segment already
        gone — and is discarded. Every heap entry is popped at most
        once, and the entry for a segment's newest point always carries
        ``t == last_t``, so no evictable segment is ever missed.
        """
        horizon = self.watermark - self.config.ttl_s
        if not self._evict_heap or not np.isfinite(horizon):
            return
        stale: Set[int] = set()
        while self._evict_heap and self._evict_heap[0][0] < horizon:
            _, sid = heapq.heappop(self._evict_heap)
            segment = self._segments.get(sid)
            if segment is not None and segment.last_t < horizon:
                stale.add(sid)
        for sid in sorted(stale):
            segment = self._segments.pop(sid)
            state = self._sources.get(segment.source_id)
            if state is not None and state.segment_id == sid:
                state.segment_id = None
            self.segments_evicted += 1
            result.evicted.append(sid)

    # ----------------------------------------------------------- snapshot

    def snapshot_arrays(self) -> Dict[str, np.ndarray]:
        """The whole window state as flat arrays (npz-serialisable)."""
        source_ids = sorted(self._sources)
        src = np.array([[sid, self._sources[sid].applied_through,
                         -1 if self._sources[sid].segment_id is None
                         else self._sources[sid].segment_id]
                        for sid in source_ids], dtype=np.int64
                       ).reshape(len(source_ids), 3)
        above = np.array([[sid, seq] for sid in source_ids
                          for seq in sorted(self._sources[sid].applied_above)],
                         dtype=np.int64).reshape(-1, 2)
        buffered = np.array(
            [[p.source_id, p.seq, p.t, p.x, p.y] for sid in source_ids
             for p in sorted(self._sources[sid].buffer.values())],
            dtype=np.float64).reshape(-1, 5)
        seg_ids = sorted(self._segments)
        seg_meta = np.array([[s, self._segments[s].source_id,
                              self._segments[s].first_seq,
                              self._segments[s].last_seq,
                              int(self._segments[s].sealed)]
                             for s in seg_ids], dtype=np.int64
                            ).reshape(len(seg_ids), 5)
        seg_points = np.array(
            [[s, seq, t, x, y] for s in seg_ids
             for seq, t, x, y in zip(self._segments[s].seqs,
                                     self._segments[s].times,
                                     self._segments[s].xs,
                                     self._segments[s].ys)],
            dtype=np.float64).reshape(-1, 5)
        counters = np.array([self.applied, self.duplicates, self.late_dropped,
                             self.gaps_abandoned, self.segments_rolled,
                             self.segments_evicted, self._next_segment_id],
                            dtype=np.int64)
        return {
            "window_sources": src,
            "window_applied_above": above,
            "window_buffered": buffered,
            "window_seg_meta": seg_meta,
            "window_seg_points": seg_points,
            "window_counters": counters,
            "window_max_t": np.array(self._max_t),
        }

    @classmethod
    def from_snapshot_arrays(cls, config: WindowConfig,
                             arrays: Dict[str, np.ndarray]
                             ) -> "SlidingWindowStore":
        """Rebuild a window from :meth:`snapshot_arrays` output."""
        window = cls(config)
        counters = np.asarray(arrays["window_counters"], dtype=np.int64)
        (window.applied, window.duplicates, window.late_dropped,
         window.gaps_abandoned, window.segments_rolled,
         window.segments_evicted, window._next_segment_id) = (
            int(v) for v in counters)
        window._max_t = float(arrays["window_max_t"])
        for sid, through, seg in np.asarray(arrays["window_sources"],
                                            dtype=np.int64):
            window._sources[int(sid)] = _SourceState(
                applied_through=int(through),
                segment_id=None if seg < 0 else int(seg))
        for sid, seq in np.asarray(arrays["window_applied_above"],
                                   dtype=np.int64):
            window._sources[int(sid)].applied_above.add(int(seq))
        for row in np.asarray(arrays["window_buffered"], dtype=np.float64):
            point = StreamPoint(source_id=int(row[0]), seq=int(row[1]),
                                t=float(row[2]), x=float(row[3]),
                                y=float(row[4]))
            window._sources[point.source_id].buffer[point.seq] = point
        for seg_id, source_id, first_seq, last_seq, sealed in np.asarray(
                arrays["window_seg_meta"], dtype=np.int64):
            window._segments[int(seg_id)] = Segment(
                segment_id=int(seg_id), source_id=int(source_id),
                first_seq=int(first_seq), last_seq=int(last_seq),
                sealed=bool(sealed))
        for row in np.asarray(arrays["window_seg_points"], dtype=np.float64):
            segment = window._segments[int(row[0])]
            segment.seqs.append(int(row[1]))
            segment.times.append(float(row[2]))
            segment.xs.append(float(row[3]))
            segment.ys.append(float(row[4]))
        # Seed the lazy eviction heap with each segment's newest point —
        # the one entry whose presence the eviction invariant needs.
        window._evict_heap = [(segment.last_t, sid)
                              for sid, segment in window._segments.items()
                              if segment.times]
        heapq.heapify(window._evict_heap)
        return window

    def state_fingerprint(self) -> Dict:
        """Comparable summary of the window state (chaos-test oracle).

        Two windows that processed equivalent accepted sequences produce
        equal fingerprints: per-source progress, per-segment point runs,
        and the watermark. Counters are excluded — duplicate/late counts
        legitimately differ between an interrupted run (which re-offers
        points) and an uninterrupted one.
        """
        return {
            "sources": {sid: (state.applied_through,
                              tuple(sorted(state.applied_above)),
                              tuple(sorted(state.buffer)))
                        for sid, state in self._sources.items()},
            "segments": {sid: (segment.source_id, segment.sealed,
                               tuple(segment.seqs),
                               tuple(segment.times),
                               tuple(segment.xs), tuple(segment.ys))
                         for sid, segment in self._segments.items()},
            "watermark": float(self.watermark),
            "next_segment_id": self._next_segment_id,
        }
