"""Batched LSTM over variable-length coordinate sequences.

This is the backbone shared by the Siamese baseline and the NT-No-SAM
ablation; :mod:`repro.nn.sam` extends the same structure with the spatial
attention memory. Gate layout follows the paper's Eq. 1-2 with the spatial
gate removed: a single sigmoid block produces ``[forget, input, output]``
and a separate tanh block produces the candidate cell state.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor, where


class LSTMCell(Module):
    """Single LSTM step. Inputs ``x``: (B, input_size); states: (B, hidden)."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        self.input_size = input_size
        self.hidden_size = hidden_size
        d = hidden_size
        self.w_gates = Parameter(init.xavier_uniform((3 * d, input_size), rng))
        self.u_gates = Parameter(init.orthogonal((3 * d, d), rng))
        self.b_gates = Parameter(init.lstm_forget_bias(init.zeros(3 * d), d))
        self.w_cand = Parameter(init.xavier_uniform((d, input_size), rng))
        self.u_cand = Parameter(init.orthogonal((d, d), rng))
        self.b_cand = Parameter(init.zeros(d))

    def forward(self, x: Tensor, h_prev: Tensor, c_prev: Tensor
                ) -> Tuple[Tensor, Tensor]:
        d = self.hidden_size
        gates = (x @ self.w_gates.transpose()
                 + h_prev @ self.u_gates.transpose() + self.b_gates).sigmoid()
        f_t = gates[:, 0 * d:1 * d]
        i_t = gates[:, 1 * d:2 * d]
        o_t = gates[:, 2 * d:3 * d]
        cand = (x @ self.w_cand.transpose()
                + h_prev @ self.u_cand.transpose() + self.b_cand).tanh()
        c_t = f_t * c_prev + i_t * cand
        h_t = o_t * c_t.tanh()
        return h_t, c_t


class LSTM(Module):
    """Run an :class:`LSTMCell` over padded sequences with a validity mask.

    ``forward`` consumes coordinates of shape (B, T, input_size) and a boolean
    mask (B, T); padded steps carry the previous state through so the final
    state equals the state at each sequence's true end.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        self.hidden_size = hidden_size
        self.cell = LSTMCell(input_size, hidden_size, rng)

    def forward(self, inputs: np.ndarray, mask: np.ndarray,
                return_sequence: bool = False):
        inputs = np.asarray(inputs, dtype=np.float64)
        mask = np.asarray(mask, dtype=bool)
        batch, steps, _ = inputs.shape
        h = Tensor(np.zeros((batch, self.hidden_size)))
        c = Tensor(np.zeros((batch, self.hidden_size)))
        outputs = []
        for t in range(steps):
            x_t = Tensor(inputs[:, t, :])
            h_new, c_new = self.cell(x_t, h, c)
            step_mask = mask[:, t][:, None]
            h = where(step_mask, h_new, h)
            c = where(step_mask, c_new, c)
            if return_sequence:
                outputs.append(h)
        if return_sequence:
            return h, outputs
        return h


def lengths_to_mask(lengths: np.ndarray, max_len: Optional[int] = None) -> np.ndarray:
    """Boolean mask (B, T) that is True for valid positions."""
    lengths = np.asarray(lengths, dtype=int)
    if max_len is None:
        max_len = int(lengths.max()) if lengths.size else 0
    return np.arange(max_len)[None, :] < lengths[:, None]
