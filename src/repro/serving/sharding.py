"""Sharded scatter-gather serving tier.

Scales the single-process :class:`~repro.serving.service.SimilarityService`
past one GIL by splitting the embedding store across N worker
*processes*, each owning one consistent-hash partition (see
:mod:`repro.core.partition`) with its own
:class:`~repro.core.backends.SearchBackend` and an optional encoder
replica. The parent-side :class:`ShardedService` is the coordinator:

* **Queries** encode once (through the same micro-batcher the
  single-process service uses), fan the query *embedding* out to every
  shard in parallel, and merge per-shard top-k with the deterministic
  ``(distance, id)`` order (:func:`~repro.serving.router.merge_top_k`)
  — so a sharded answer is id-identical to the single-store exact scan.
* **Mutations** route to exactly one shard by hashing the trajectory id
  on the ring; the coordinator owns the global id space.
* **Failures** are per-shard: each worker sits behind its own
  :class:`~repro.resilience.CircuitBreaker`, and a dead/slow/tripped
  shard drops out of the scatter — the query still answers from the
  surviving shards, flagged ``partial=True`` — until every shard is
  unavailable (:class:`~repro.exceptions.ShardUnavailableError`).
* **Reload** is zero-downtime and two-phase: ``prepare`` loads the new
  partition/bundle generation in every worker *alongside* the old one
  (requests keep answering from the old), then ``activate`` flips each
  worker and the coordinator's encoder atomically; any prepare failure
  aborts the whole reload and the old generation keeps serving.

Worker protocol (one ``multiprocessing`` pipe per shard, request serial
per worker): requests are ``(req_id, op, payload)`` tuples, replies are
``(req_id, status, result, busy_s)`` where ``busy_s`` is the worker-side
wall time spent on the request — the input to the critical-path
throughput model in ``benchmarks/bench_sharded_serving.py``. The parent
matches replies by ``req_id`` and silently drains stale replies left by
timed-out calls, so one slow request can never mis-pair a later one.
Workers are spawned with the ``fork`` start method **before** the
coordinator starts any threads (micro-batcher, scatter pool) — forking a
threaded process is undefined behaviour.

Fault injection: ``request_hooks={shard_id: hook}`` installs an object
whose ``trigger()`` runs in the worker before each request —
:class:`repro.testing.faults.KillWorkerOnce` slots in directly, which is
how the degraded-mode tests kill exactly one shard exactly once.
``wal_hooks={shard_id: hook}`` reaches deeper: the hook fires inside the
WAL append path (``after_write`` / ``before_fsync`` / ``after_fsync``),
which is how the crash-chaos tests kill a worker mid-group-commit.

Durability (``durable_dir=...``): each worker keeps a per-shard
write-ahead log (:mod:`repro.serving.wal`) and acknowledges a mutation
only after its record is fsynced, so ``restart_shard`` and a cold
coordinator start recover to an id-identical store (snapshot + WAL
replay) including the coordinator's ``_next_id``. With
``config.replicas > 0`` each shard also runs warm-standby workers that
tail the primary's acked WAL; when a primary dies the coordinator
*promotes* a replica (it catches up to the end of the log, repairs any
torn tail, and takes over the WAL for append) instead of degrading to a
partial answer, then respawns a replacement replica that rebuilds from
the shared snapshot+WAL. The old primary is always torn down before
promotion so the log never has two appenders.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from multiprocessing.connection import wait as _mp_wait
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.partition import (HashRing, load_partition,
                              load_partition_manifest)
from ..core.store import EmbeddingStore
from ..datasets.trajectory import Trajectory
from ..exceptions import (ConfigurationError, CorruptArtifactError,
                          DeadlineExceededError, InvalidTrajectoryError,
                          NotFittedError, PartialWriteError, ReloadError,
                          ReproError, ServiceClosedError,
                          ServiceOverloadedError, ServiceUnavailableError,
                          ShardUnavailableError)
from ..resilience.admission import AdmissionGate
from ..resilience.breaker import CLOSED as _BREAKER_CLOSED
from ..resilience.breaker import CircuitBreaker
from .batching import MicroBatcher
from .bundle import load_bundle_model
from .metrics import DEFAULT_SIZE_BUCKETS, MetricsRegistry
from .router import group_by_shard, merge_top_k
from .service import TopKResult
from .wal import (OP_DELETE, OP_INSERT, ShardDurability, ShardWAL,
                  WALGapError, WALTailer)

PathLike = Union[str, Path]

__all__ = ["ShardedConfig", "ShardedService", "ShardRequestError"]

_LOG = logging.getLogger(__name__)

_DEFAULT = object()  # sentinel: timeout=None means "no deadline"

_BOOT_REQ_ID = 0  # the worker's unsolicited "I'm up" message


class ShardRequestError(ReproError):
    """A shard worker processed the request but raised while doing so.

    Transport-level failures (dead worker, timeout, open breaker) raise
    :class:`~repro.exceptions.ShardUnavailableError` instead and count
    against the shard's circuit breaker; this error does not — the
    worker is healthy, the request was bad.
    """


@dataclass
class ShardedConfig:
    """Tunables of the sharded serving tier.

    Attributes
    ----------
    index:
        Per-shard search backend: ``"exact"`` or ``"ivf"``.
    nlist / nprobe:
        IVF parameters for each shard's local index (``index="ivf"``
        only). ``nlist=0`` auto-sizes per shard (~sqrt of the shard's
        row count).
    max_batch_size / max_wait_ms:
        Coordinator encoder micro-batcher settings (same semantics as
        :class:`~repro.serving.service.ServingConfig`).
    default_k:
        ``k`` used when a query does not specify one.
    max_points:
        Longest trajectory accepted at the boundary (0 disables).
    max_inflight:
        Concurrent requests admitted; 0 disables shedding.
    request_timeout_s:
        Per-shard call timeout: a shard that does not answer within this
        window is treated as unavailable for that request (and the
        failure counts toward its breaker).
    boot_timeout_s:
        How long to wait for a worker to load its partition at startup,
        restart, and reload-prepare.
    breaker_failure_threshold / breaker_reset_s:
        Per-shard circuit breaker: consecutive transport failures that
        open it, and how long it stays open before probing the shard
        again.
    default_timeout_s:
        Per-request deadline when the caller does not pass one
        (``None`` disables deadlines by default).
    fsync_window_ms:
        Group-commit window for durable tiers: 0 fsyncs on every ack;
        a positive window batches fsyncs, trading up to that much ack
        latency for amortised disk flushes under concurrent writers.
    wal_segment_bytes:
        WAL log-rotation threshold per shard.
    replicas:
        Warm-standby workers per shard tailing the primary's acked WAL;
        requires ``durable_dir`` on the service. 0 disables replication.
    """

    index: str = "exact"
    nlist: int = 0
    nprobe: int = 8
    max_batch_size: int = 16
    max_wait_ms: float = 2.0
    default_k: int = 10
    max_points: int = 100_000
    max_inflight: int = 0
    request_timeout_s: float = 30.0
    boot_timeout_s: float = 120.0
    breaker_failure_threshold: int = 3
    breaker_reset_s: float = 5.0
    default_timeout_s: Optional[float] = 30.0
    fsync_window_ms: float = 0.0
    wal_segment_bytes: int = 64 << 20
    replicas: int = 0

    def __post_init__(self) -> None:
        if self.index not in ("exact", "ivf"):
            raise ConfigurationError(
                f"index must be 'exact' or 'ivf', got {self.index!r}")
        if self.nlist < 0:
            raise ConfigurationError("nlist must be >= 0 (0 = auto)")
        if self.nprobe < 1:
            raise ConfigurationError("nprobe must be >= 1")
        if self.max_batch_size < 1:
            raise ConfigurationError("max_batch_size must be >= 1")
        if self.max_wait_ms < 0:
            raise ConfigurationError("max_wait_ms must be >= 0")
        if self.default_k < 1:
            raise ConfigurationError("default_k must be >= 1")
        if self.max_points < 0:
            raise ConfigurationError("max_points must be >= 0")
        if self.max_inflight < 0:
            raise ConfigurationError("max_inflight must be >= 0")
        if self.request_timeout_s <= 0:
            raise ConfigurationError("request_timeout_s must be positive")
        if self.boot_timeout_s <= 0:
            raise ConfigurationError("boot_timeout_s must be positive")
        if self.breaker_failure_threshold < 1:
            raise ConfigurationError("breaker_failure_threshold must be >= 1")
        if self.breaker_reset_s < 0:
            raise ConfigurationError("breaker_reset_s must be >= 0")
        if (self.default_timeout_s is not None
                and self.default_timeout_s <= 0):
            raise ConfigurationError(
                "default_timeout_s must be positive (or None)")
        if self.fsync_window_ms < 0:
            raise ConfigurationError("fsync_window_ms must be >= 0")
        if self.wal_segment_bytes < 4096:
            raise ConfigurationError("wal_segment_bytes must be >= 4096")
        if self.replicas < 0:
            raise ConfigurationError("replicas must be >= 0")


# --------------------------------------------------------------------- worker


def _backend_spec(boot: Dict) -> Tuple[str, Dict]:
    """(backend name, backend options) from a boot spec."""
    if boot.get("index") == "ivf":
        return "ivf", {"nlist": boot.get("nlist", 0),
                       "nprobe": boot.get("nprobe", 8)}
    return boot.get("index", "exact"), {}


def _shard_base_tag(boot: Dict, shard_id: int) -> str:
    """sha256 of the shard's partition file — the durability base tag.

    Snapshot + WAL state only composes with the exact partition bytes
    it was recorded against; a reload (new bytes, new tag) resets it.
    """
    manifest = load_partition_manifest(boot["partition_dir"])
    return str(manifest["shards"][shard_id]["sha256"])


def _apply_wal_record(store: EmbeddingStore, record) -> List[int]:
    """Idempotently apply one WAL record; returns the ids it touched.

    Replay-safe by construction: inserts skip ids already present,
    deletes skip ids already gone — so replaying a prefix that partially
    overlaps the snapshot (or a coordinator retry after failover) never
    double-applies.
    """
    if record.op == OP_INSERT:
        fresh = ~store.contains(record.ids)
        if not fresh.any():
            return []
        return store.add_embeddings(record.embeddings[fresh],
                                    ids=record.ids[fresh])
    present = store.contains(record.ids)
    if not present.any():
        return []
    touched = [int(i) for i in record.ids[present]]
    store.remove(touched)
    return touched


def _recover_durable(shard_id: int, boot: Dict, model, wal_hook,
                     prebuilt_store: Optional[EmbeddingStore] = None
                     ) -> Tuple[EmbeddingStore, Dict]:
    """Recover a durable shard: snapshot (or base partition) + WAL replay.

    Primaries open the WAL for append — repairing a torn tail — and
    replay every record past the snapshot's ``applied_lsn``; replicas
    attach a read-only tailer instead (they must never truncate or
    append the shared log). Returns ``(store, dur_state)`` where
    ``dur_state`` carries the durability handles the dispatch loop uses.
    """
    role = boot.get("role", "primary")
    base = _shard_base_tag(boot, shard_id)
    dur = ShardDurability(Path(boot["durable_dir"]) / f"shard-{shard_id:04d}",
                          base, read_only=(role == "replica"))
    backend, options = _backend_spec(boot)
    snapshot = dur.snapshot_path()
    if snapshot is not None:
        store = EmbeddingStore.load(snapshot, model=model, backend=backend,
                                    **options)
    elif prebuilt_store is not None:
        store = prebuilt_store
    else:
        store = load_partition(boot["partition_dir"], shard_id, model=model,
                               backend=backend, **options)
    applied = dur.applied_lsn
    if role == "replica":
        tailer = WALTailer(dur.directory, applied_lsn=applied)
        for record in tailer.poll():
            _apply_wal_record(store, record)
        return store, {"dur": dur, "wal": None, "tailer": tailer,
                       "applied_lsn": tailer.last_lsn, "role": role}
    wal = ShardWAL(dur.directory,
                   segment_bytes=boot.get("wal_segment_bytes", 64 << 20),
                   fsync_window_ms=boot.get("fsync_window_ms", 0.0),
                   hook=wal_hook)
    for record in wal.drain_recovered():
        if record.lsn <= applied:
            continue
        _apply_wal_record(store, record)
        applied = record.lsn
    return store, {"dur": dur, "wal": wal, "tailer": None,
                   "applied_lsn": applied, "role": role}


def _load_generation(shard_id: int, boot: Dict, wal_hook=None,
                     attach_durability: bool = True) -> Dict:
    """Load one (partition, model) generation from a boot spec.

    ``boot`` keys: ``partition_dir`` (required), ``bundle_dir``
    (optional encoder replica — ``None`` gives a search-only worker),
    ``index``/``nlist``/``nprobe`` (per-shard backend), and for durable
    tiers ``durable_dir``/``fsync_window_ms``/``wal_segment_bytes``/
    ``role``. ``attach_durability=False`` loads the partition only —
    the reload *prepare* path, which must not touch the WAL the active
    generation still appends to.
    """
    model = None
    if boot.get("bundle_dir"):
        model, _ = load_bundle_model(boot["bundle_dir"])
    if boot.get("durable_dir") and attach_durability:
        store, dur_state = _recover_durable(shard_id, boot, model, wal_hook)
    else:
        backend, options = _backend_spec(boot)
        store = load_partition(boot["partition_dir"], shard_id, model=model,
                               backend=backend, **options)
        dur_state = None
    return {"store": store, "model": model, "boot": dict(boot),
            "dur": dur_state}


def _shard_worker_main(conn, shard_id: int, boot: Dict, hook,
                       wal_hook=None) -> None:
    """Entry point of one shard worker process.

    Serial request loop over the pipe: recv ``(req_id, op, payload)``,
    answer ``(req_id, status, result, busy_s)``. The first message is
    unsolicited (req_id 0): a boot report, or the boot error if the
    partition/bundle failed to load. ``hook`` (when given) is triggered
    before each request — the fault-injection seam; ``wal_hook`` fires
    inside the WAL append path (crash-chaos seam).
    """
    try:
        active = _load_generation(shard_id, boot, wal_hook=wal_hook)
    except Exception as exc:
        try:
            conn.send((_BOOT_REQ_ID, "error",
                       f"{type(exc).__name__}: {exc}", 0.0))
        finally:
            conn.close()
        return
    staged: Optional[Dict] = None
    generation = 0
    boot_report = {"shard": shard_id, "pid": os.getpid(),
                   "count": len(active["store"])}
    if active["dur"] is not None:
        boot_report.update({
            "role": active["dur"]["role"],
            "applied_lsn": active["dur"]["applied_lsn"],
            "next_id": active["store"].next_id})
    conn.send((_BOOT_REQ_ID, "ok", boot_report, 0.0))

    def require_primary(op: str) -> None:
        dur = active["dur"]
        if dur is not None and dur["role"] != "primary":
            raise ValueError(
                f"shard {shard_id} replica refuses {op!r}: replicas are "
                f"read-only tailers until promoted")

    def log_mutation(opcode: int, ids, embeddings=None) -> None:
        """WAL-first: the record is durable before the store mutates."""
        dur = active["dur"]
        if dur is None:
            return
        dur["applied_lsn"] = dur["wal"].append(opcode, ids,
                                               embeddings=embeddings)

    def catch_up() -> Dict:
        """Replica: apply newly acked primary records; rebuild on gap."""
        nonlocal active
        dur = active["dur"]
        if dur is None or dur["role"] != "replica":
            raise ValueError(f"shard {shard_id} is not a replica")
        try:
            records = dur["tailer"].poll()
        except WALGapError:
            # The primary truncated past our cursor (snapshot+truncate
            # while we lagged): rebuild from the shared snapshot.
            store, dur_state = _recover_durable(
                shard_id, active["boot"], active["model"], None)
            active = {**active, "store": store, "dur": dur_state}
            return {"applied_lsn": dur_state["applied_lsn"],
                    "count": len(store), "rebuilt": True}
        for record in records:
            _apply_wal_record(active["store"], record)
        dur["applied_lsn"] = dur["tailer"].last_lsn
        return {"applied_lsn": dur["applied_lsn"],
                "count": len(active["store"]), "rebuilt": False}

    def promote() -> Dict:
        """Replica -> primary: drain the log tail, take over for append.

        The coordinator guarantees the old primary is dead before this
        runs, so opening the WAL for append (which repairs a torn tail)
        is safe — there is exactly one appender per shard log.
        """
        nonlocal active
        dur = active["dur"]
        if dur is None:
            raise ValueError(f"shard {shard_id} is not durable")
        if dur["role"] == "primary":
            return {"count": len(active["store"]),
                    "next_id": active["store"].next_id,
                    "applied_lsn": dur["applied_lsn"]}
        try:
            for record in dur["tailer"].poll():
                _apply_wal_record(active["store"], record)
            applied = dur["tailer"].last_lsn
        except WALGapError:
            boot_p = {**active["boot"], "role": "primary"}
            store, dur_state = _recover_durable(
                shard_id, boot_p, active["model"], wal_hook)
            active = {**active, "boot": boot_p, "store": store,
                      "dur": dur_state}
            return {"count": len(store), "next_id": store.next_id,
                    "applied_lsn": dur_state["applied_lsn"]}
        boot_p = {**active["boot"], "role": "primary"}
        wal = ShardWAL(dur["dur"].directory,
                       segment_bytes=boot_p.get("wal_segment_bytes",
                                                64 << 20),
                       fsync_window_ms=boot_p.get("fsync_window_ms", 0.0),
                       hook=wal_hook)
        # Opening for append repaired any torn tail; replay whatever the
        # tailer had not seen yet (normally nothing).
        for record in wal.drain_recovered():
            if record.lsn <= applied:
                continue
            _apply_wal_record(active["store"], record)
            applied = record.lsn
        base = dur["dur"]
        base.read_only = False
        active = {**active, "boot": boot_p,
                  "dur": {"dur": base, "wal": wal, "tailer": None,
                          "applied_lsn": applied, "role": "primary"}}
        return {"count": len(active["store"]),
                "next_id": active["store"].next_id,
                "applied_lsn": applied}

    def dispatch(op: str, payload):
        nonlocal active, staged, generation
        store = active["store"]
        dur = active["dur"]
        if op == "ping":
            report = {"shard": shard_id, "pid": os.getpid(),
                      "count": len(store), "generation": generation}
            if dur is not None:
                report.update({"role": dur["role"],
                               "applied_lsn": dur["applied_lsn"],
                               "next_id": store.next_id})
            return report
        if op == "search":
            embedding, k = payload
            if len(store) == 0:
                return np.zeros(0, dtype=np.int64), np.zeros(0)
            return store.query_embedding(embedding, k)
        if op == "search_many":
            embeddings, k = payload
            if len(store) == 0:
                empty = (np.zeros(0, dtype=np.int64), np.zeros(0))
                return [empty for _ in range(len(embeddings))]
            return [store.query_embedding(e, k) for e in embeddings]
        if op == "insert":
            require_primary(op)
            ids, kind, data = payload
            if kind == "embeddings":
                vectors = np.asarray(data)
            else:  # trajectories: encode on the worker's model replica
                model = active["model"]
                if model is None:
                    raise NotFittedError(
                        "shard has no encoder replica (search-only); "
                        "send embeddings")
                vectors = model.embed([Trajectory(p) for p in data])
            id_arr = np.asarray(ids, dtype=np.int64)
            fresh = ~store.contains(id_arr)  # idempotent retry: skip dupes
            if fresh.any():
                log_mutation(OP_INSERT, id_arr[fresh],
                             np.asarray(vectors)[fresh])
                store.add_embeddings(np.asarray(vectors)[fresh],
                                     ids=id_arr[fresh])
            return {"applied": [int(i) for i in id_arr],
                    "count": int(fresh.sum())}
        if op == "delete":
            require_primary(op)
            id_arr = np.unique(np.asarray(list(payload), dtype=np.int64))
            present = store.contains(id_arr)
            touched = [int(i) for i in id_arr[present]]
            if touched:
                log_mutation(OP_DELETE, id_arr[present])
                store.remove(touched)
            return {"removed": len(touched), "ids": touched}
        if op == "compact":
            require_primary(op)
            compact = getattr(store.backend, "compact", None)
            compacted = False
            if compact is not None:
                compact()
                compacted = True
            if dur is None:
                return compacted
            dur["dur"].commit_snapshot(
                store.save, count=len(store), next_id=store.next_id,
                applied_lsn=dur["applied_lsn"], wal=dur["wal"])
            return {"compacted": compacted,
                    "snapshot_generation": dur["dur"].generation}
        if op == "catch_up":
            return catch_up()
        if op == "promote":
            return promote()
        if op == "ids":
            return sorted(int(i) for i in store.ids)
        if op == "stats":
            report = {"shard": shard_id, "pid": os.getpid(),
                      "count": len(store), "generation": generation,
                      "staged": None if staged is None
                      else len(staged["store"]),
                      "search": store.search_stats()}
            if dur is not None:
                report["durability"] = {
                    "role": dur["role"],
                    "applied_lsn": dur["applied_lsn"],
                    "snapshot_generation": dur["dur"].generation,
                    "wal": (None if dur["wal"] is None
                            else dur["wal"].stats())}
            return report
        if op == "prepare":
            # Load the new generation's partition only: the active
            # generation still owns the WAL, and a second appender (or a
            # premature base-tag reset) would corrupt it. Durability
            # re-attaches at activation.
            staged = _load_generation(shard_id, payload,
                                      attach_durability=False)
            return {"count": len(staged["store"])}
        if op == "activate":
            if staged is None:
                raise ReloadError("activate without a prepared generation")
            if dur is not None and dur["wal"] is not None:
                dur["wal"].close()
            new = staged
            staged = None
            if new["boot"].get("durable_dir"):
                store2, dur_state = _recover_durable(
                    shard_id, new["boot"], new["model"], wal_hook,
                    prebuilt_store=new["store"])
                new = {**new, "store": store2, "dur": dur_state}
            active = new
            generation += 1
            return {"generation": generation, "count": len(active["store"])}
        if op == "abort":
            had = staged is not None
            staged = None
            return had
        if op == "shutdown":
            return "bye"
        raise ValueError(f"unknown op {op!r}")

    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            break
        req_id, op, payload = request
        # CPU time, not wall: when shards outnumber cores the workers
        # time-slice, and wall time would book a neighbour's quantum as
        # this shard's work — poisoning the bench's critical-path
        # projection. The worker is single-threaded, so process CPU
        # time is exactly this request's compute.
        start = time.process_time()
        try:
            if hook is not None:
                hook.trigger()
            status, result = "ok", dispatch(op, payload)
        except Exception as exc:
            status, result = "error", f"{type(exc).__name__}: {exc}"
        busy = time.process_time() - start
        try:
            conn.send((req_id, status, result, busy))
        except (BrokenPipeError, OSError):
            break
        if op == "shutdown" and status == "ok":
            break
    dur = active.get("dur")
    if dur is not None and dur.get("wal") is not None:
        try:
            dur["wal"].close()
        except OSError:
            _LOG.exception("shard %d: WAL close failed on exit", shard_id)
    conn.close()


# --------------------------------------------------------------- parent side


class _ShardHandle:
    """Parent-side proxy for one shard worker: pipe + process + breaker.

    Thread-safe: ``call`` serialises requests to the worker under the
    handle lock (the worker itself is a serial loop), tracks the
    worker's cumulative busy time, and converts transport failures
    (dead worker, timeout) into
    :class:`~repro.exceptions.ShardUnavailableError` while counting
    them against the shard's circuit breaker.
    """

    def __init__(self, shard_id: int, boot: Dict, hook,
                 failure_threshold: int, reset_timeout_s: float,
                 boot_timeout_s: float,
                 ctx: Optional[multiprocessing.context.BaseContext] = None,
                 wal_hook=None):
        self.shard_id = shard_id
        self._boot = dict(boot)
        self._hook = hook
        self._wal_hook = wal_hook
        self.boot_info: Dict = {}
        self._failure_threshold = failure_threshold
        self._reset_timeout_s = reset_timeout_s
        self._boot_timeout_s = boot_timeout_s
        self._ctx = ctx or multiprocessing.get_context("fork")
        self._lock = threading.Lock()
        self.breaker = CircuitBreaker(failure_threshold=failure_threshold,
                                      reset_timeout_s=reset_timeout_s)
        self._conn = None
        self._proc = None
        self._req_seq = _BOOT_REQ_ID
        self._requests = 0
        self._failures = 0
        self._busy_s = 0.0
        self._spawn_locked()

    # -------------------------------------------------------------- lifecycle

    def _spawn_locked(self) -> None:
        """Fork the worker and wait for its boot report.

        Caller must hold ``self._lock`` (or be ``__init__``, before the
        handle is shared).
        """
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, self.shard_id, self._boot, self._hook,
                  self._wal_hook),
            name=f"repro-shard-{self.shard_id}", daemon=True)
        proc.start()
        child_conn.close()
        self._conn, self._proc = parent_conn, proc
        self._req_seq = _BOOT_REQ_ID
        reply = self._recv_locked(
            time.monotonic() + self._boot_timeout_s, _BOOT_REQ_ID)
        if reply[1] != "ok":
            self._teardown_locked()
            raise ShardUnavailableError(
                f"shard {self.shard_id} failed to boot: {reply[2]}")
        self.boot_info = reply[2] if isinstance(reply[2], dict) else {}

    def _teardown_locked(self) -> None:
        """Close the pipe and reap the process. Caller must hold
        ``self._lock``."""
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        if self._proc is not None:
            if self._proc.is_alive():
                self._proc.terminate()
            self._proc.join(timeout=5.0)
        self._conn = None
        self._proc = None

    def restart(self) -> None:
        """Respawn the worker from its current boot spec.

        An explicit operator action (tests, ``shard-tool``, admin): the
        circuit breaker is replaced by a fresh closed one, so the first
        request after a successful restart goes straight through instead
        of waiting out the open window.
        """
        with self._lock:
            self._teardown_locked()
            self._spawn_locked()
            self.breaker = CircuitBreaker(
                failure_threshold=self._failure_threshold,
                reset_timeout_s=self._reset_timeout_s)

    def close(self) -> None:
        """Best-effort graceful shutdown, then teardown."""
        with self._lock:
            if self._conn is not None and self._proc is not None \
                    and self._proc.is_alive():
                try:
                    self._req_seq += 1
                    self._conn.send((self._req_seq, "shutdown", None))
                    self._recv_locked(time.monotonic() + 2.0, self._req_seq)
                except (ShardUnavailableError, OSError):
                    pass  # dying worker: terminate below either way
            self._teardown_locked()

    @property
    def alive(self) -> bool:
        with self._lock:
            return self._proc is not None and self._proc.is_alive()

    # --------------------------------------------------------------- requests

    def _recv_locked(self, deadline: float, want_req_id: int):
        """Wait for the reply to ``want_req_id``, draining stale replies.

        Caller must hold ``self._lock``. Raises
        :class:`ShardUnavailableError` on timeout or a dead worker
        (without touching the breaker — the caller decides).
        """
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ShardUnavailableError(
                    f"shard {self.shard_id} did not answer in time")
            try:
                ready = _mp_wait([self._conn, self._proc.sentinel],
                                 timeout=remaining)
                if self._conn not in ready:
                    if self._proc.sentinel in ready:
                        raise EOFError("worker process died")
                    continue  # timed out this round; loop re-checks
                reply = self._conn.recv()
            except (EOFError, BrokenPipeError, OSError) as exc:
                raise ShardUnavailableError(
                    f"shard {self.shard_id} worker died: {exc}") from exc
            if reply[0] < want_req_id:
                continue  # stale reply from a timed-out earlier call
            return reply

    def call(self, op: str, payload, timeout: Optional[float] = None):
        """One request/reply round-trip with the worker.

        Raises :class:`ShardUnavailableError` when the worker is down,
        its breaker is open, or the reply misses ``timeout`` — those
        count as breaker failures. A worker-side exception raises
        :class:`ShardRequestError` and does *not* trip the breaker.
        """
        with self._lock:
            if self._conn is None or self._proc is None:
                raise ShardUnavailableError(
                    f"shard {self.shard_id} is down")
            if not self.breaker.allow():
                raise ShardUnavailableError(
                    f"shard {self.shard_id} circuit breaker is open")
            self._req_seq += 1
            req_id = self._req_seq
            deadline = time.monotonic() + (timeout if timeout is not None
                                           else 3600.0)
            try:
                self._conn.send((req_id, op, payload))
                reply = self._recv_locked(deadline, req_id)
            except ShardUnavailableError:
                self._failures += 1
                self.breaker.record_failure()
                if self._proc is not None and not self._proc.is_alive():
                    self._teardown_locked()
                raise
            except (BrokenPipeError, OSError) as exc:
                self._failures += 1
                self.breaker.record_failure()
                self._teardown_locked()
                raise ShardUnavailableError(
                    f"shard {self.shard_id} pipe broke: {exc}") from exc
            _, status, result, busy = reply
            self._requests += 1
            self._busy_s += float(busy)
            self.breaker.record_success()
        if status != "ok":
            raise ShardRequestError(f"shard {self.shard_id}: {result}")
        return result

    def stats(self) -> Dict:
        with self._lock:
            return {"shard": self.shard_id,
                    "alive": (self._proc is not None
                              and self._proc.is_alive()),
                    "requests": self._requests,
                    "transport_failures": self._failures,
                    "busy_seconds": self._busy_s,
                    "breaker": self.breaker.stats()}

    def busy_seconds(self) -> float:
        """Cumulative worker-side busy time (critical-path bench input)."""
        with self._lock:
            return self._busy_s


class ShardedService:
    """Scatter-gather coordinator over N shard worker processes.

    Parameters
    ----------
    partition_dir:
        Directory written by :func:`repro.core.partition.save_partitions`
        (or ``python -m repro shard-tool split``); fixes the shard count.
    bundle_dir:
        Serving bundle whose model becomes the coordinator's encoder and
        every worker's encoder replica. ``None`` builds a *search-only*
        tier: ``query_embedding``/``insert_embeddings`` work, trajectory
        entry points raise :class:`~repro.exceptions.NotFittedError`.
    config:
        :class:`ShardedConfig`.
    request_hooks:
        ``{shard_id: hook}`` fault-injection hooks; each worker calls
        ``hook.trigger()`` before every request (see
        :class:`repro.testing.faults.KillWorkerOnce`).
    durable_dir:
        Root directory for per-shard WALs and snapshots. ``None`` keeps
        the pre-durability behaviour: mutations live only in worker
        memory and restarts rebuild from the partition files.
    wal_hooks:
        ``{shard_id: hook}`` crash-injection hooks fired inside the
        primary's WAL append path (see
        :class:`repro.testing.faults.KillAtWALPoint`).
    """

    def __init__(self, partition_dir: PathLike,
                 bundle_dir: Optional[PathLike] = None,
                 config: Optional[ShardedConfig] = None,
                 request_hooks: Optional[Dict] = None,
                 durable_dir: Optional[PathLike] = None,
                 wal_hooks: Optional[Dict] = None):
        self.config = config or ShardedConfig()
        self.partition_dir = Path(partition_dir)
        self.bundle_dir = None if bundle_dir is None else Path(bundle_dir)
        self.durable_dir = None if durable_dir is None else Path(durable_dir)
        if self.config.replicas > 0 and self.durable_dir is None:
            raise ConfigurationError(
                "replicas require durable_dir: a standby tails the "
                "primary's WAL, which only exists on a durable tier")
        manifest = load_partition_manifest(self.partition_dir)
        self.num_shards = int(manifest["num_shards"])
        self._dim = int(manifest["embedding_dim"])
        self._ring = HashRing(self.num_shards,
                              vnodes=int(manifest["vnodes"]))
        hooks = dict(request_hooks or {})
        self._wal_hooks = dict(wal_hooks or {})
        boot = self._boot_spec(self.partition_dir, self.bundle_dir)
        # Workers MUST fork before any coordinator thread exists
        # (micro-batcher, scatter pool): forking a threaded process can
        # deadlock the child on locks held by threads that don't exist
        # there.
        ctx = multiprocessing.get_context("fork")
        self._ctx = ctx
        self._shards: List[_ShardHandle] = []
        self._replicas: Dict[int, List[_ShardHandle]] = {
            s: [] for s in range(self.num_shards)}
        try:
            for shard_id in range(self.num_shards):
                self._shards.append(_ShardHandle(
                    shard_id, boot, hooks.get(shard_id),
                    self.config.breaker_failure_threshold,
                    self.config.breaker_reset_s,
                    self.config.boot_timeout_s, ctx=ctx,
                    wal_hook=self._wal_hooks.get(shard_id)))
            for shard_id in range(self.num_shards):
                for _ in range(self.config.replicas):
                    self._replicas[shard_id].append(
                        self._spawn_replica_handle(shard_id))
        except Exception:
            for handle in self._all_handles():
                handle.close()
            raise

        self.model = None
        self._batcher = None
        self.probes: List[Trajectory] = []
        if self.bundle_dir is not None:
            self.model, _ = load_bundle_model(self.bundle_dir)
            if self.model.config.embedding_dim != self._dim:
                for handle in self._shards:
                    handle.close()
                raise ConfigurationError(
                    f"bundle embedding_dim "
                    f"{self.model.config.embedding_dim} != partition "
                    f"manifest {self._dim}")
        self.registry = MetricsRegistry()
        self._started = time.monotonic()
        self._lock = threading.Lock()
        self._next_id = int(manifest["next_id"])
        self._count = int(manifest["total_count"])
        self._generation = 0
        self._closed = False
        self._warmed = False
        self._failover_lock = threading.Lock()

        reg = self.registry
        self._m_queries = reg.counter(
            "repro_topk_requests_total", "Top-k queries answered.")
        self._m_partial = reg.counter(
            "repro_partial_answers_total",
            "Top-k answers missing at least one shard.")
        self._m_shard_requests = reg.counter(
            "repro_shard_requests_total", "Per-shard requests issued.")
        self._m_shard_failures = reg.counter(
            "repro_shard_failures_total",
            "Per-shard transport failures (dead worker, timeout).")
        self._m_inserts = reg.counter(
            "repro_inserted_trajectories_total", "Trajectories inserted.")
        self._m_deletes = reg.counter(
            "repro_deleted_trajectories_total", "Trajectories deleted.")
        self._m_errors = reg.counter(
            "repro_request_errors_total", "Requests that raised.")
        self._m_shed = reg.counter(
            "repro_shed_requests_total",
            "Requests refused by the admission gate (HTTP 429).")
        self._m_deadline = reg.counter(
            "repro_deadline_exceeded_total",
            "Requests dropped because their deadline expired.")
        self._m_encoder_failures = reg.counter(
            "repro_encoder_failures_total",
            "Batched encoder calls that raised.")
        self._m_breaker_transitions = reg.counter(
            "repro_breaker_transitions_total",
            "Circuit-breaker state transitions (encoder + shards).")
        self._m_reloads = reg.counter(
            "repro_reloads_total", "Successful generation flips.")
        self._h_latency = reg.histogram(
            "repro_topk_latency_seconds", "End-to-end top-k latency.")
        self._h_scatter = reg.histogram(
            "repro_scatter_seconds",
            "Fan-out + merge time per top-k (excludes encoding).")
        self._h_encode = reg.histogram(
            "repro_encode_batch_seconds", "Batched encoder call latency.")
        self._h_batch_size = reg.histogram(
            "repro_encode_batch_size", "Trajectories per encoder batch.",
            buckets=DEFAULT_SIZE_BUCKETS)
        self._m_failovers = reg.counter(
            "repro_failovers_total",
            "Replica promotions after a primary failure.")
        self._g_breaker = reg.gauge(
            "repro_shard_breaker_open",
            "1 when the shard's circuit breaker is open/half-open.")
        self._g_fsync = reg.gauge(
            "repro_wal_fsync_seconds",
            "Duration of the shard's most recent WAL fsync.")

        self._gate = AdmissionGate(self.config.max_inflight)
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failure_threshold,
            reset_timeout_s=self.config.breaker_reset_s,
            on_transition=lambda old, new:
                self._m_breaker_transitions.inc())
        if self.model is not None:
            self._batcher = MicroBatcher(
                self._encode_batch,
                max_batch_size=self.config.max_batch_size,
                max_wait_s=self.config.max_wait_ms / 1000.0,
                on_batch=self._record_batch,
                name="repro-sharded-encode-batcher")
        self._pool = ThreadPoolExecutor(
            max_workers=max(2, self.num_shards),
            thread_name_prefix="repro-scatter")
        if self.durable_dir is not None:
            # WAL replay may have advanced shards past the partition
            # manifest's id space; adopt the workers' recovered state.
            self._resync_id_space()

    # ---------------------------------------------------- durability plumbing

    def _boot_spec(self, partition_dir: Path,
                   bundle_dir: Optional[Path]) -> Dict:
        """The boot dict every worker (primary and replica) forks with."""
        return {"partition_dir": str(partition_dir),
                "bundle_dir": None if bundle_dir is None else str(bundle_dir),
                "index": self.config.index, "nlist": self.config.nlist,
                "nprobe": self.config.nprobe,
                "durable_dir": (None if self.durable_dir is None
                                else str(self.durable_dir)),
                "fsync_window_ms": self.config.fsync_window_ms,
                "wal_segment_bytes": self.config.wal_segment_bytes,
                "role": "primary"}

    def _all_handles(self) -> List[_ShardHandle]:
        # Runs without _failover_lock on purpose: it is also the cleanup
        # path of __init__, which can fail before that lock exists.
        # Promotion swaps list slots atomically (CPython) and handles
        # close idempotently, so a stale snapshot here is harmless.
        # repro: disable=lockset
        handles = list(self._shards)
        for standby in self._replicas.values():
            handles.extend(standby)
        return handles

    def _spawn_replica_handle(self, shard_id: int) -> _ShardHandle:
        """Fork one warm-standby worker for ``shard_id``.

        Safe to call after coordinator threads exist *only* because
        replica workers re-exec nothing and take no coordinator locks —
        but the initial fleet is still forked before any thread starts;
        post-thread spawns reuse the same (fork) path the existing
        ``restart_shard`` admin action already exercises.
        """
        boot = {**self._boot_spec(self.partition_dir, self.bundle_dir),
                "role": "replica"}
        return _ShardHandle(
            shard_id, boot, None,
            self.config.breaker_failure_threshold,
            self.config.breaker_reset_s,
            self.config.boot_timeout_s, ctx=self._ctx)

    def _resync_id_space(self) -> None:
        """Adopt recovered per-shard state into the coordinator's counters.

        After WAL replay a shard may hold rows (and a ``next_id``
        high-water mark) the partition manifest has never heard of; the
        global id space must start past every shard's recovered ids or a
        fresh insert would collide with a recovered one.
        """
        counts: List[int] = []
        next_ids: List[int] = []
        for handle in self._shards:
            try:
                info = handle.call("ping", None, self.config.boot_timeout_s)
            except (ShardUnavailableError, ShardRequestError) as exc:
                _LOG.warning("id-space resync skipped shard %d: %s",
                             handle.shard_id, exc)
                continue
            counts.append(int(info.get("count", 0)))
            if "next_id" in info:
                next_ids.append(int(info["next_id"]))
        with self._lock:
            self._next_id = max([self._next_id] + next_ids)
            if len(counts) == self.num_shards:
                self._count = sum(counts)

    def _tail_replicas(self, shard_id: int) -> None:
        """Nudge the shard's standbys to apply newly acked WAL records."""
        for replica in self._replicas.get(shard_id, ()):
            try:
                replica.call("catch_up", None, self.config.request_timeout_s)
            except (ShardUnavailableError, ShardRequestError) as exc:
                _LOG.warning("replica catch-up failed on shard %d: %s",
                             shard_id, exc)

    def _promote(self, shard_id: int, failed: _ShardHandle) -> None:
        """Promote a standby to primary after the primary failed.

        Serialised under ``_failover_lock``; racing scatter legs that
        all saw the same dead primary are detected by handle identity —
        promotion swaps the handle, so a ``failed`` that is no longer
        installed means another leg already promoted. (Liveness checks
        race here: right after SIGKILL ``Process.is_alive()`` can still
        report True, and one failure leaves the breaker closed.) The old
        primary's handle is closed (worker terminated) *before* the
        standby takes over the WAL so the log never has two appenders.
        """
        with self._failover_lock:
            current = self._shards[shard_id]
            if current is not failed:
                return  # another caller already promoted
            standbys = self._replicas.get(shard_id, [])
            if not standbys:
                raise ShardUnavailableError(
                    f"shard {shard_id} is down and has no replica")
            current.close()
            replica = standbys.pop(0)
            try:
                info = replica.call("promote", None,
                                    self.config.boot_timeout_s)
            except (ShardUnavailableError, ShardRequestError) as exc:
                replica.close()
                raise ShardUnavailableError(
                    f"shard {shard_id}: replica promotion failed: "
                    f"{exc}") from exc
            replica._boot["role"] = "primary"
            replica._hook = current._hook
            self._shards[shard_id] = replica
            self._m_failovers.inc()
            with self._lock:
                self._next_id = max(self._next_id,
                                    int(info.get("next_id", 0)))
            _LOG.warning(
                "shard %d: promoted replica (count=%d, applied_lsn=%d)",
                shard_id, info.get("count", -1), info.get("applied_lsn", -1))
            try:
                standbys.append(self._spawn_replica_handle(shard_id))
            except (ShardUnavailableError, OSError) as exc:
                _LOG.warning("shard %d: could not respawn a replacement "
                             "replica: %s", shard_id, exc)

    def _shard_call(self, shard_id: int, op: str, payload,
                    timeout: Optional[float]):
        """One shard request with transparent failover.

        On a transport failure the coordinator promotes a standby (when
        one exists) and retries the request exactly once — callers see a
        complete answer instead of a partial/failed one. Mutation retry
        is safe because shard mutations are idempotent by id.
        """
        handle = self._shards[shard_id]
        try:
            return handle.call(op, payload, timeout)
        except ShardUnavailableError:
            if not self._replicas.get(shard_id):
                raise
            self._promote(shard_id, handle)
            return self._shards[shard_id].call(op, payload, timeout)

    # ------------------------------------------------------------ encoder path

    def _encode_batch(self, trajectories: List[Trajectory]) -> np.ndarray:
        if not self.breaker.allow():
            raise ServiceUnavailableError("encoder circuit breaker is open")
        try:
            out = self.model.embed(trajectories,
                                   batch_size=self.config.max_batch_size)
        except Exception:
            self._m_encoder_failures.inc()
            self.breaker.record_failure()
            raise
        self.breaker.record_success()
        return out

    def _record_batch(self, batch_size: int, seconds: float) -> None:
        self._h_batch_size.observe(batch_size)
        self._h_encode.observe(seconds)

    def _require_batcher(self) -> MicroBatcher:
        if self._batcher is None:
            raise NotFittedError(
                "this sharded service has no encoder (no bundle_dir); "
                "use query_embedding/insert_embeddings")
        return self._batcher

    def _resolve_deadline(self, timeout):
        """Map a caller timeout to (timeout_s, monotonic deadline)."""
        if timeout is _DEFAULT:
            timeout = self.config.default_timeout_s
        if timeout is None:
            return None, None
        return timeout, time.monotonic() + timeout

    def _as_trajectory(self, trajectory) -> Trajectory:
        """Boundary validation: anything malformed raises the typed error."""
        try:
            traj = (trajectory if isinstance(trajectory, Trajectory)
                    else Trajectory(trajectory))
        except InvalidTrajectoryError:
            raise
        except (TypeError, ValueError) as exc:
            raise InvalidTrajectoryError(
                f"not a valid trajectory: {exc}") from exc
        limit = self.config.max_points
        if limit and len(traj.points) > limit:
            raise InvalidTrajectoryError(
                f"trajectory has {len(traj.points)} points (limit {limit})")
        return traj

    def embed(self, trajectory, timeout=_DEFAULT) -> np.ndarray:
        """Embedding of one trajectory via the coordinator's batcher."""
        batcher = self._require_batcher()
        try:
            query = self._as_trajectory(trajectory)
            timeout, deadline = self._resolve_deadline(timeout)
            with self._gate.admit("embed"):
                try:
                    return batcher(query, timeout=timeout, deadline=deadline)
                except FuturesTimeoutError as exc:
                    self._m_deadline.inc()
                    raise DeadlineExceededError(
                        f"no embedding within {timeout}s") from exc
        except ServiceOverloadedError:
            self._m_shed.inc()
            self._m_errors.inc()
            raise
        except Exception:
            self._m_errors.inc()
            raise

    # ------------------------------------------------------------- query path

    def top_k(self, trajectory, k: Optional[int] = None,
              use_cache: bool = True, timeout=_DEFAULT) -> TopKResult:
        """Scatter-gather top-k for a query trajectory.

        Encodes once, fans the embedding to every shard, merges with the
        deterministic ``(distance, id)`` order. With all shards healthy
        the answer is id-identical to a single-store exact scan; when
        some (but not all) shards are unavailable the answer covers the
        survivors and is flagged ``partial=True``.

        ``use_cache`` is accepted for transport parity with
        :class:`~repro.serving.service.SimilarityService` and currently
        ignored — the coordinator keeps no result cache (per-shard
        answers are already parallel, and a coordinator cache would need
        cross-shard generation tracking to invalidate correctly).
        """
        start = time.monotonic()
        try:
            query = self._as_trajectory(trajectory)
            if k is None:
                k = self.config.default_k
            timeout, deadline = self._resolve_deadline(timeout)
            batcher = self._require_batcher()
            with self._gate.admit("top_k"):
                try:
                    embedding = batcher(query, timeout=timeout,
                                        deadline=deadline)
                except FuturesTimeoutError as exc:
                    self._m_deadline.inc()
                    raise DeadlineExceededError(
                        f"no answer within {timeout}s") from exc
                return self._scatter_top_k(embedding, k, deadline)
        except ServiceOverloadedError:
            self._m_shed.inc()
            self._m_errors.inc()
            raise
        except Exception:
            self._m_errors.inc()
            raise
        finally:
            self._h_latency.observe(time.monotonic() - start)

    def query_embedding(self, embedding: np.ndarray,
                        k: Optional[int] = None,
                        timeout=_DEFAULT) -> TopKResult:
        """Scatter-gather top-k for an already-computed query embedding."""
        try:
            if k is None:
                k = self.config.default_k
            embedding = np.asarray(embedding, dtype=np.float64)
            if embedding.shape != (self._dim,):
                raise ValueError(
                    f"expected embedding of shape ({self._dim},), got "
                    f"{embedding.shape}")
            _, deadline = self._resolve_deadline(timeout)
            with self._gate.admit("query_embedding"):
                return self._scatter_top_k(embedding, k, deadline)
        except ServiceOverloadedError:
            self._m_shed.inc()
            self._m_errors.inc()
            raise
        except Exception:
            self._m_errors.inc()
            raise

    def _call_timeout(self, deadline: Optional[float]) -> float:
        limit = self.config.request_timeout_s
        if deadline is None:
            return limit
        return max(0.0, min(limit, deadline - time.monotonic()))

    def _scatter(self, op: str, payload, deadline: Optional[float],
                 shard_ids: Optional[Sequence[int]] = None
                 ) -> "Tuple[Dict[int, object], List[int]]":
        """Fan one request to shards in parallel; returns (results, failed).

        ``results`` maps shard id -> worker result for every shard that
        answered; ``failed`` lists shards that were unavailable
        (transport failures only — a worker-side exception propagates as
        :class:`ShardRequestError`)."""
        # Unlocked fast-fail: _closed flips once, under _lock, in close();
        # a scatter racing the flip either errors here or fails on the
        # closed worker pipes — both surface ServiceClosedError. Taking
        # _lock on every scatter would serialise the hot path for a
        # shutdown-only check.
        # repro: disable=lockset
        if self._closed:
            raise ServiceClosedError("sharded service is closed")
        targets = (range(self.num_shards) if shard_ids is None
                   else list(shard_ids))
        timeout = self._call_timeout(deadline)
        futures = {s: self._pool.submit(self._shard_call, s, op, payload,
                                        timeout)
                   for s in targets}
        results: Dict[int, object] = {}
        failed: List[int] = []
        error: Optional[ShardRequestError] = None
        for s, fut in futures.items():
            self._m_shard_requests.inc()
            try:
                results[s] = fut.result()
            except ShardUnavailableError:
                self._m_shard_failures.inc()
                failed.append(s)
            except ShardRequestError as exc:
                error = exc
        if error is not None:
            raise error
        return results, failed

    def _scatter_top_k(self, embedding: np.ndarray, k: int,
                       deadline: Optional[float]) -> TopKResult:
        if not isinstance(k, (int, np.integer)) or isinstance(k, bool) \
                or k < 1:
            raise ValueError(f"k must be a positive integer, got {k!r}")
        start = time.monotonic()
        results, failed = self._scatter("search", (embedding, int(k)),
                                        deadline)
        if not results:
            raise ShardUnavailableError(
                f"all {self.num_shards} shards unavailable")
        ids, distances = merge_top_k(list(results.values()), int(k))
        self._h_scatter.observe(time.monotonic() - start)
        partial = bool(failed)
        if partial:
            self._m_partial.inc()
            _LOG.warning("partial top-k: shards %s unavailable", failed)
        self._m_queries.inc()
        return TopKResult(ids=[int(i) for i in ids],
                          distances=[float(d) for d in distances],
                          partial=partial)

    # --------------------------------------------------------------- mutation

    def insert(self, trajectories: Sequence) -> List[int]:
        """Encode + insert trajectories; returns their assigned ids.

        Each trajectory routes to the single shard owning its id on the
        hash ring. Embeddings are computed once on the coordinator (the
        workers' replicas serve reloads and trajectory-payload inserts
        from other clients)."""
        items = [self._as_trajectory(t) for t in trajectories]
        if not items:
            return []
        batcher = self._require_batcher()
        timeout, deadline = self._resolve_deadline(_DEFAULT)
        futures = [batcher.submit(t, deadline=deadline) for t in items]
        embeddings = np.stack([f.result(timeout=timeout) for f in futures])
        return self.insert_embeddings(embeddings, deadline=deadline)

    def insert_embeddings(self, embeddings: np.ndarray,
                          deadline: Optional[float] = None) -> List[int]:
        """Insert precomputed embedding rows; returns their assigned ids."""
        embeddings = np.asarray(embeddings, dtype=np.float64)
        if embeddings.ndim != 2 or embeddings.shape[1] != self._dim:
            raise ValueError(
                f"expected embeddings of shape (n, {self._dim}), got "
                f"{embeddings.shape}")
        if embeddings.shape[0] == 0:
            return []
        with self._lock:
            assigned = list(range(self._next_id,
                                  self._next_id + embeddings.shape[0]))
            self._next_id += embeddings.shape[0]
        groups = group_by_shard(self._ring, assigned)
        inserted = 0
        applied: List[int] = []
        failed: List[int] = []
        for shard_id, positions in groups.items():
            ids = [assigned[p] for p in positions]
            payload = (ids, "embeddings", embeddings[positions])
            try:
                result = self._shard_call(shard_id, "insert", payload,
                                          self._call_timeout(deadline))
            except ShardUnavailableError:
                self._m_shard_failures.inc()
                failed.append(shard_id)
                continue
            inserted += int(result["count"])
            applied.extend(int(i) for i in result["applied"])
            self._tail_replicas(shard_id)
        with self._lock:
            self._count += inserted
            self._generation += 1
        self._m_inserts.inc(inserted)
        if failed:
            # Only count durably applied sub-batches; the caller can
            # retry the whole batch — re-sent ids no-op at the shard.
            raise PartialWriteError(
                f"insert lost rows owned by unavailable shard(s) {failed} "
                f"({inserted} of {len(assigned)} rows inserted)",
                applied_ids=applied)
        return assigned

    def delete(self, ids: Sequence[int]) -> int:
        """Remove entries by id; returns how many were removed."""
        id_list = [int(i) for i in ids]
        if not id_list:
            return 0
        groups = group_by_shard(self._ring, id_list)
        removed = 0
        deleted_ids: List[int] = []
        failed: List[int] = []
        for shard_id, positions in groups.items():
            owned = [id_list[p] for p in positions]
            try:
                result = self._shard_call(shard_id, "delete", owned,
                                          self.config.request_timeout_s)
            except ShardUnavailableError:
                self._m_shard_failures.inc()
                failed.append(shard_id)
                continue
            removed += int(result["removed"])
            deleted_ids.extend(int(i) for i in result["ids"])
            self._tail_replicas(shard_id)
        with self._lock:
            self._count -= removed
            self._generation += 1
        self._m_deletes.inc(removed)
        if failed:
            raise PartialWriteError(
                f"delete could not reach shard(s) {failed} "
                f"({removed} rows removed elsewhere)",
                applied_ids=deleted_ids)
        return removed

    # ----------------------------------------------------------- maintenance

    def compact(self) -> Dict[int, bool]:
        """Fold pending inserts/tombstones on every shard's index.

        Returns ``{shard: compacted}`` — ``False`` means the shard's
        backend has nothing to compact (exact scan). Unavailable shards
        are omitted (compaction is advisory; they compact on restart).

        On a durable tier this also folds each shard's live store into a
        fresh checksummed snapshot generation and truncates its WAL;
        replicas are caught up *first* so truncation cannot strand them
        mid-log (a lagging replica that still misses records rebuilds
        from the new snapshot via the WAL-gap path).
        """
        if self.durable_dir is not None:
            for shard_id in range(self.num_shards):
                self._tail_replicas(shard_id)
        results, _ = self._scatter("compact", None, None)
        return {s: (bool(v["compacted"]) if isinstance(v, dict) else bool(v))
                for s, v in results.items()}

    def reload(self, partition_dir: Optional[PathLike] = None,
               bundle_dir: Optional[PathLike] = None) -> Dict:
        """Zero-downtime flip to a new partition/bundle generation.

        Two phases: every worker *prepares* (loads the new generation
        alongside the one still serving), then every worker *activates*
        (atomic in-worker swap; the worker is serial, so no request ever
        sees a half-flipped store) and the coordinator swaps its own
        encoder and id state. Any prepare failure aborts everywhere and
        the old generation keeps serving — :class:`ReloadError`.

        The shard count is fixed for the life of the tier; resharding is
        the offline ``shard-tool split`` + restart path.
        """
        with self._failover_lock:
            current_partition, current_bundle = (self.partition_dir,
                                                 self.bundle_dir)
        new_partition = (current_partition if partition_dir is None
                         else Path(partition_dir))
        new_bundle = (current_bundle if bundle_dir is None
                      else Path(bundle_dir))
        try:
            manifest = load_partition_manifest(new_partition)
        except CorruptArtifactError as exc:
            raise ReloadError(
                f"cannot reload from {new_partition}: {exc}") from exc
        if int(manifest["num_shards"]) != self.num_shards:
            raise ReloadError(
                f"cannot reload across shard counts ({manifest['num_shards']}"
                f" != {self.num_shards}); run shard-tool split + restart")
        if int(manifest["embedding_dim"]) != self._dim:
            raise ReloadError(
                f"new partitions have embedding_dim "
                f"{manifest['embedding_dim']}, serving {self._dim}")
        new_model = None
        if new_bundle is not None:
            new_model, _ = load_bundle_model(new_bundle)
            if new_model.config.embedding_dim != self._dim:
                raise ReloadError(
                    "new bundle's embedding_dim does not match the tier")
        boot = self._boot_spec(new_partition, new_bundle)

        prepared, failed = self._scatter("prepare", boot, None)
        if failed or len(prepared) < self.num_shards:
            self._scatter("abort", None, None,
                          shard_ids=sorted(prepared))
            raise ReloadError(
                f"prepare failed on shard(s) "
                f"{sorted(set(range(self.num_shards)) - set(prepared))}; "
                f"old generation keeps serving")

        activated, failed = self._scatter("activate", None, None)
        for shard_id in failed:
            # A worker that died between prepare and activate: restart
            # it straight onto the new generation so the tier converges.
            handle = self._shards[shard_id]
            handle._boot = boot
            try:
                handle.restart()
                activated[shard_id] = {"restarted": True}
            except ShardUnavailableError:
                _LOG.warning("shard %d unavailable after reload; it will "
                             "serve the new generation once restarted",
                             shard_id)
        for handle in self._shards:
            handle._boot = dict(boot)
        for shard_id, standbys in self._replicas.items():
            for replica in standbys:
                # Standbys tail the old generation's WAL, which the new
                # base tag just invalidated: restart them onto the new
                # generation (a standby restart never blocks serving).
                replica._boot = {**boot, "role": "replica"}
                try:
                    replica.restart()
                except ShardUnavailableError as exc:
                    _LOG.warning("shard %d replica restart after reload "
                                 "failed: %s", shard_id, exc)
        with self._failover_lock:
            # A failover racing the reload must spawn its standby from
            # the *new* generation's boot spec, never a torn pair.
            self.partition_dir = new_partition
            self.bundle_dir = new_bundle
        if new_model is not None:
            self.model = new_model
        with self._lock:
            self._next_id = max(self._next_id, int(manifest["next_id"]))
            self._count = int(manifest["total_count"])
            self._generation += 1
            generation = self._generation
        self._m_reloads.inc()
        return {"generation": generation,
                "partition_dir": str(new_partition),
                "activated": sorted(activated),
                "total_count": int(manifest["total_count"])}

    def restart_shard(self, shard_id: int) -> Dict:
        """Respawn one worker from its current boot spec (admin path).

        On a durable tier the restarted worker recovers snapshot + WAL,
        and the coordinator re-adopts its id space so recovered rows
        survive the restart id-identically.
        """
        if not 0 <= shard_id < self.num_shards:
            raise ValueError(f"no shard {shard_id}")
        self._shards[shard_id].restart()
        if self.durable_dir is not None:
            self._resync_id_space()
        return self._shards[shard_id].stats()

    # ------------------------------------------------------------- lifecycle

    def synthetic_probe(self) -> Trajectory:
        """A short trajectory through the centre of the encoder's grid."""
        if self.model is None:
            raise NotFittedError(
                "a search-only sharded service has no encoder grid")
        encoder = self.model._require_fitted()
        xmin, ymin, xmax, ymax = encoder.grid.bbox
        cx, cy = (xmin + xmax) / 2.0, (ymin + ymax) / 2.0
        step = encoder.grid.cell_size
        return Trajectory([[cx - step, cy], [cx, cy], [cx + step, cy]])

    def warmup(self, queries: int = 4) -> int:
        """Touch every shard through the full scatter path; returns count."""
        rng = np.random.default_rng(0)
        served = 0
        for _ in range(max(1, queries)):
            self.query_embedding(rng.standard_normal(self._dim), k=1)
            served += 1
        with self._lock:
            self._warmed = True
        return served

    def readiness(self) -> Dict:
        """Readiness checks for ``/readyz``: every shard up and answering."""
        shard_checks = {f"shard_{h.shard_id}_alive": h.alive
                        for h in self._shards}
        with self._lock:
            warmed = self._warmed
            closed = self._closed
        checks = {
            "store_nonempty": self.size() > 0,
            "warmed": warmed,
            "all_shards_alive": all(shard_checks.values()),
            "accepting_requests": not closed,
        }
        checks.update(shard_checks)
        ready = (checks["store_nonempty"] and checks["warmed"]
                 and checks["all_shards_alive"]
                 and checks["accepting_requests"])
        return {"ready": ready, "checks": checks}

    def size(self) -> int:
        """Total rows across all shards (coordinator-tracked)."""
        with self._lock:
            return self._count

    @property
    def ring(self) -> HashRing:
        """The id-routing ring (identical to shard-tool split's)."""
        return self._ring

    @property
    def shards(self) -> List[_ShardHandle]:
        """Per-shard handles — a read-only diagnostics surface."""
        return list(self._shards)

    def shard_busy_seconds(self) -> List[float]:
        """Cumulative worker-side busy time per shard (bench input)."""
        return [h.busy_seconds() for h in self._shards]

    def stats(self) -> Dict:
        """JSON-friendly operational snapshot (also the ``/v1/stats`` body)."""
        shard_stats = [h.stats() for h in self._shards]
        with self._lock:
            size, next_id = self._count, self._next_id
            generation = self._generation
        worker_stats, _ = self._scatter("stats", None, None)
        return {
            "store": {"size": size, "next_id": next_id,
                      "generation": generation,
                      "embedding_dim": self._dim,
                      "sharding": {
                          "num_shards": self.num_shards,
                          "ring_vnodes": self._ring.vnodes,
                          "index": self.config.index,
                          "shards": shard_stats,
                          "workers": {str(s): w for s, w in
                                      sorted(worker_stats.items())},
                      }},
            "batcher": (None if self._batcher is None
                        else self._batcher.stats()),
            "resilience": {
                "encoder_breaker": self.breaker.stats(),
                "admission": self._gate.stats(),
            },
            "durability": {
                "durable_dir": (None if self.durable_dir is None
                                else str(self.durable_dir)),
                "fsync_window_ms": self.config.fsync_window_ms,
                "replicas": self.config.replicas,
                "failovers": self._m_failovers.value,
                "replica_handles": {
                    str(s): [r.stats() for r in standbys]
                    for s, standbys in sorted(self._replicas.items())
                    if standbys},
            },
            "readiness": self.readiness(),
            "uptime_seconds": time.monotonic() - self._started,
            "metrics": self.registry.snapshot(),
        }

    def render_metrics(self) -> str:
        """Prometheus text exposition (the ``/metrics`` body)."""
        for handle in self._shards:
            is_open = handle.breaker.state != _BREAKER_CLOSED
            self._g_breaker.set(1.0 if is_open else 0.0,
                                shard=str(handle.shard_id))
        if self.durable_dir is not None and not self._closed:
            try:
                worker_stats, _ = self._scatter("stats", None, None)
            except (ReproError, OSError) as exc:
                _LOG.warning("metrics: worker stats scatter failed: %s", exc)
                worker_stats = {}
            for s, report in worker_stats.items():
                wal = (report.get("durability") or {}).get("wal") or {}
                if "last_fsync_seconds" in wal:
                    self._g_fsync.set(float(wal["last_fsync_seconds"]),
                                      shard=str(s))
        return self.registry.render()

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, drain: bool = True) -> None:
        """Shut the tier down: batcher, scatter pool, then every worker."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._batcher is not None:
            self._batcher.close(drain=drain)
        self._pool.shutdown(wait=True)
        for handle in self._all_handles():
            handle.close()

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
