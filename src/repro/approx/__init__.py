"""Approximate trajectory-distance algorithms (the paper's "AP" baselines)."""

from .base import ApproximateMeasure
from .lsh_curves import (CurveLSH, GridDTW, GridFrechet, LSHCurveDistance,
                         snap_curve)
from .hausdorff_embed import AnchorHausdorff
from .fastdtw import FastDTW, fastdtw


def get_approx(measure_name: str, bbox=None, delta: float = 100.0,
               **kwargs) -> ApproximateMeasure:
    """Instantiate the default AP comparator for a measure name.

    ``frechet`` -> :class:`GridFrechet`, ``dtw`` -> :class:`FastDTW`,
    ``hausdorff`` -> :class:`AnchorHausdorff` (needs ``bbox``).
    ERP has no published approximate algorithm (paper §VII-A3) and raises.
    """
    if measure_name == "frechet":
        return GridFrechet(delta=delta, **kwargs)
    if measure_name == "dtw":
        return FastDTW(**kwargs)
    if measure_name == "hausdorff":
        if bbox is None:
            raise ValueError("AnchorHausdorff requires bbox")
        return AnchorHausdorff(bbox, **kwargs)
    if measure_name == "erp":
        raise ValueError("ERP has no approximate algorithm (paper §VII-A3)")
    raise KeyError(f"no approximate algorithm registered for {measure_name!r}")


__all__ = [
    "ApproximateMeasure", "CurveLSH", "GridDTW", "GridFrechet",
    "LSHCurveDistance", "snap_curve",
    "AnchorHausdorff", "FastDTW", "fastdtw", "get_approx",
]
