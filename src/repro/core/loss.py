"""NeuTraj's distance-weighted ranking loss (paper Eq. 8-9).

For an anchor ``a`` with ranked similar samples and rank weights ``r``:

``L_a^s = sum_l r_l * (g(a, l) - f(a, l))^2``            (regression, Eq. 8)
``L_a^d = sum_l r_l * relu(g(a, l) - f(a, l))^2``        (margin, Eq. 9)

The similar loss fits the predicted similarity to the ground truth; the
dissimilar loss only pushes *too similar* predictions down (one-sided), so
already-separated negatives contribute zero gradient.
"""

from __future__ import annotations

import numpy as np

from ..nn.tensor import Tensor


def similar_loss(predicted: Tensor, truth: np.ndarray,
                 weights: np.ndarray) -> Tensor:
    """Rank-weighted MSE over a ranked similar list (Eq. 8)."""
    diff = predicted - Tensor(np.asarray(truth, dtype=np.float64))
    return (Tensor(np.asarray(weights, dtype=np.float64)) * diff * diff).sum()


def dissimilar_loss(predicted: Tensor, truth: np.ndarray,
                    weights: np.ndarray) -> Tensor:
    """Rank-weighted one-sided margin loss over a dissimilar list (Eq. 9)."""
    diff = (predicted - Tensor(np.asarray(truth, dtype=np.float64))).relu()
    return (Tensor(np.asarray(weights, dtype=np.float64)) * diff * diff).sum()


def ranking_loss(similar_pred: Tensor, similar_truth: np.ndarray,
                 dissimilar_pred: Tensor, dissimilar_truth: np.ndarray,
                 weights: np.ndarray) -> Tensor:
    """Total per-anchor loss ``L_a^s + L_a^d`` (paper §V-B)."""
    return (similar_loss(similar_pred, similar_truth, weights)
            + dissimilar_loss(dissimilar_pred, dissimilar_truth, weights))


def mse_pair_loss(predicted: Tensor, truth: np.ndarray) -> Tensor:
    """Plain MSE over pairs — the Siamese baseline's objective."""
    truth_t = Tensor(np.asarray(truth, dtype=np.float64))
    diff = predicted - truth_t
    return (diff * diff).mean()
