"""Shared fixtures for the streaming-tier tests.

The encoder is built deterministically from a seed (no training), so a
child process in a crash test can rebuild the *same* encoder and the
recovered embeddings can be compared bit-for-bit.
"""

import numpy as np
import pytest

from repro.core.config import NeuTrajConfig
from repro.core.encoder import TrajectoryEncoder
from repro.datasets import Grid
from repro.datasets.grid import CoordinateNormalizer
from repro.streaming import StreamPoint


def make_encoder(use_sam: bool = True, seed: int = 0,
                 dim: int = 8) -> TrajectoryEncoder:
    """Deterministic untrained encoder over a [0, 1000]^2 frame."""
    grid = Grid((0.0, 0.0, 1000.0, 1000.0), cell_size=100.0)
    normalizer = CoordinateNormalizer(mean=[500.0, 500.0],
                                      std=[250.0, 250.0])
    cfg = NeuTrajConfig(embedding_dim=dim, use_sam=use_sam, cell_size=100.0,
                        seed=seed)
    return TrajectoryEncoder(grid, normalizer, cfg,
                             np.random.default_rng(seed))


@pytest.fixture
def encoder():
    return make_encoder(use_sam=True)


def in_order_points(source_id: int, n: int, *, t0: float = 0.0,
                    dt: float = 1.0, seed: int = 0):
    """``n`` sequential points for one source on a fixed cadence."""
    rng = np.random.default_rng(seed + source_id)
    coords = rng.uniform(100.0, 900.0, size=(n, 2))
    return [StreamPoint(source_id=source_id, seq=i + 1, t=t0 + i * dt,
                        x=float(coords[i, 0]), y=float(coords[i, 1]))
            for i in range(n)]
