"""Top-k similarity search at scale, with and without a spatial index.

Reproduces the paper's motivating workload (§I, §VII-C): a large taxi-trip
database where exact top-k search is too slow, answered instead with
NeuTraj embeddings — optionally pre-filtered through an R-tree so only a
fraction of the database is touched ("elastic" property).

Run:  python examples/similarity_search.py
"""

import time

import numpy as np

from repro import NeuTraj, NeuTrajConfig, PortoConfig, generate_porto
from repro.eval import embedding_knn, rerank_with_exact
from repro.index import RTree, expand_bbox, search_embedding
from repro.measures import get_measure


def main() -> None:
    rng = np.random.default_rng(7)

    dataset = generate_porto(PortoConfig(num_trajectories=600, min_points=10,
                                         max_points=30), seed=7)
    seeds_ds, rest = dataset.split((0.15, 0.85), rng)
    seeds, database = list(seeds_ds), list(rest)
    queries = database[:5]
    print(f"{len(database)} database trajectories, {len(seeds)} seeds")

    model = NeuTraj(NeuTrajConfig(measure="hausdorff", embedding_dim=32,
                                  epochs=5, sampling_num=10,
                                  batch_anchors=20, cell_size=250.0, seed=1))
    model.fit(seeds)

    # Offline: embed the database once.
    start = time.perf_counter()
    embeddings = model.embed(database)
    print(f"embedded database in {time.perf_counter() - start:.1f}s")

    hausdorff = get_measure("hausdorff")

    # --- Search without an index: scan embeddings, re-rank top-50 exactly.
    start = time.perf_counter()
    for query in queries:
        q_emb = model.embed([query])[0]
        candidates = embedding_knn(q_emb, embeddings, 50)
        top10 = rerank_with_exact(query, database, candidates, hausdorff, 10)
    no_index = (time.perf_counter() - start) / len(queries)

    # --- Brute force reference.
    start = time.perf_counter()
    for query in queries:
        dists = np.array([hausdorff(query, t) for t in database])
        truth10 = np.argsort(dists)[:10]
    brute = (time.perf_counter() - start) / len(queries)

    # --- Search with an R-tree pre-filter.
    tree = RTree.from_trajectories(database)
    start = time.perf_counter()
    involved = []
    for query in queries:
        q_emb = model.embed([query])[0]
        result = search_embedding(tree, query, q_emb, embeddings, 50,
                                  margin=500.0)
        involved.append(result.num_candidates)
    indexed = (time.perf_counter() - start) / len(queries)

    overlap = len(set(top10.tolist()) & set(truth10.tolist()))
    print(f"\nper-query times: brute {brute * 1e3:.0f} ms | "
          f"NeuTraj {no_index * 1e3:.0f} ms | "
          f"NeuTraj+R-tree {indexed * 1e3:.0f} ms")
    print(f"R-tree involved {np.mean(involved):.0f}/{len(database)} "
          f"trajectories per query")
    print(f"last query: {overlap}/10 of the exact top-10 recovered")


if __name__ == "__main__":
    main()
