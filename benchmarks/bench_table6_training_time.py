"""Table VI — offline training and embedding time.

Per-epoch time, epochs to converge, total training time and bulk embedding
time for Siamese / NeuTraj / NT-No-SAM / NT-No-WS. Expected shape (paper):
SAM variants pay more per epoch but converge in fewer epochs than the
Siamese baseline; SAM embedding is slightly slower than plain LSTM.
"""

import pytest

from repro.experiments import format_table, run_training_time, train_variant


@pytest.fixture(scope="module")
def table6(porto_workload):
    return run_training_time(porto_workload, "frechet")


def test_table6_training_time(benchmark, table6, porto_workload, report):
    # Kernel: bulk-embedding a batch with the trained full model.
    model = train_variant("neutraj", porto_workload, "frechet")
    batch = porto_workload.database[:64]
    benchmark(lambda: model.embed(batch, batch_size=64))

    rows = [[r.method, f"{r.seconds_per_epoch:.1f}s", r.epochs_to_converge,
             f"{r.total_seconds:.1f}s", f"{r.embed_seconds:.1f}s"]
            for r in table6]
    report("table6_training_time",
           format_table(
               f"Table VI: offline cost (embedding {table6[0].embed_count} "
               "trajectories)",
               ["method", "t_epoch", "#epochs", "t_total", "t_embed"], rows))

    by_method = {r.method: r for r in table6}
    # SAM adds per-epoch cost over the plain-LSTM ablation.
    assert (by_method["neutraj"].seconds_per_epoch
            > by_method["nt_no_sam"].seconds_per_epoch * 0.9)
    # SAM-based embedding is not faster than plain LSTM embedding.
    assert (by_method["neutraj"].embed_seconds
            > by_method["nt_no_sam"].embed_seconds * 0.8)
    assert all(r.total_seconds > 0 for r in table6)
