"""Hypothesis property tests for the spatial indexes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import Grid, Trajectory
from repro.index import GridInvertedIndex, RTree, bbox_intersects

coord = st.floats(min_value=0.0, max_value=100.0, allow_nan=False, width=64)


@st.composite
def boxes(draw, count=st.integers(min_value=1, max_value=40)):
    n = draw(count)
    out = []
    for _ in range(n):
        x1, x2 = sorted((draw(coord), draw(coord)))
        y1, y2 = sorted((draw(coord), draw(coord)))
        out.append((x1, y1, x2, y2))
    return out


@given(boxes(), st.tuples(coord, coord, coord, coord))
@settings(max_examples=50, deadline=None)
def test_rtree_equals_linear_scan(items, raw_window):
    x1, x2 = sorted((raw_window[0], raw_window[2]))
    y1, y2 = sorted((raw_window[1], raw_window[3]))
    window = (x1, y1, x2, y2)
    tree = RTree(items, leaf_capacity=4)
    expected = sorted(i for i, b in enumerate(items)
                      if bbox_intersects(b, window))
    assert tree.query(window) == expected


@given(boxes())
@settings(max_examples=30, deadline=None)
def test_rtree_universe_returns_everything(items):
    tree = RTree(items, leaf_capacity=4)
    assert tree.query((-1e9, -1e9, 1e9, 1e9)) == list(range(len(items)))


@st.composite
def trajectories(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    pts = [(draw(coord), draw(coord)) for _ in range(n)]
    return np.array(pts)


@given(st.lists(trajectories(), min_size=1, max_size=15))
@settings(max_examples=40, deadline=None)
def test_grid_index_self_retrieval(point_lists):
    grid = Grid((0.0, 0.0, 100.0, 100.0), cell_size=10.0)
    trajs = [Trajectory(p) for p in point_lists]
    index = GridInvertedIndex.from_trajectories(trajs, grid)
    for i, t in enumerate(trajs):
        assert i in index.query(t.points, ring=0)


@given(st.lists(trajectories(), min_size=2, max_size=10))
@settings(max_examples=30, deadline=None)
def test_grid_index_ring_monotone(point_lists):
    grid = Grid((0.0, 0.0, 100.0, 100.0), cell_size=10.0)
    trajs = [Trajectory(p) for p in point_lists]
    index = GridInvertedIndex.from_trajectories(trajs, grid)
    probe = trajs[0].points
    assert (set(index.query(probe, ring=0))
            <= set(index.query(probe, ring=1))
            <= set(index.query(probe, ring=2)))
