"""Figure 5 — convergence curves of NeuTraj vs NT-No-SAM on four measures.

Expected shape (paper): both variants' losses decrease over epochs; the SAM
model reaches its converged loss in no more epochs than the ablation.
"""

import numpy as np
import pytest

from repro.core.trainer import TrainingHistory, EpochStats
from repro.experiments import format_table, run_convergence, train_variant


@pytest.fixture(scope="module")
def fig5(porto_workload):
    return run_convergence(porto_workload)


def test_fig5_convergence(benchmark, fig5, porto_workload, report,
                          strict_shapes):
    # Kernel: one training epoch equivalent — a single optimisation step.
    from repro.core import PairSampler
    from repro.core.trainer import training_step
    from repro.nn.optim import Adam
    model = train_variant("neutraj", porto_workload, "frechet", cache=False)
    encoder = model.encoder
    sampler = PairSampler(model.similarity_matrix,
                          porto_workload.scale.sampling_num, weighted=True,
                          rng=np.random.default_rng(0))
    optimizer = Adam(encoder.parameters(), lr=0.008)
    batch = [sampler.sample(a) for a in range(4)]
    benchmark(lambda: training_step(encoder, porto_workload.seeds, batch,
                                    optimizer, grad_clip=5.0))

    epochs = len(fig5[0].losses)
    rows = [[c.measure, c.variant]
            + [f"{loss:.4f}" for loss in c.losses] for c in fig5]
    report("fig5_convergence",
           format_table("Fig 5: training-loss curves (per epoch)",
                        ["measure", "variant"]
                        + [f"ep{i}" for i in range(epochs)], rows))

    if not strict_shapes:
        return
    for curve in fig5:
        losses = np.array(curve.losses)
        # Loss decreases overall (allowing local noise).
        assert losses[-3:].mean() < losses[0], (curve.measure, curve.variant)

    # SAM converges at least as fast as the ablation on a majority of
    # measures (paper Fig. 5 conclusion).
    by_key = {(c.measure, c.variant): c for c in fig5}
    faster = 0
    for measure in ("frechet", "hausdorff", "erp", "dtw"):
        sam = TrainingHistory([EpochStats(i, l, 0.0, 0)
                               for i, l in enumerate(by_key[(measure, "neutraj")].losses)])
        plain = TrainingHistory([EpochStats(i, l, 0.0, 0)
                                 for i, l in enumerate(by_key[(measure, "nt_no_sam")].losses)])
        if (sam.epochs_to_converge(rel_tol=0.1)
                <= plain.epochs_to_converge(rel_tol=0.1)):
            faster += 1
    assert faster >= 2
