"""Anti-diagonal vectorised dynamic programming for alignment measures.

DTW, discrete Fréchet and ERP all share the recurrence structure
``DP[i, j] = combine(cost[i, j], DP[i-1, j], DP[i, j-1], DP[i-1, j-1])``.
A naive double loop costs O(n*m) Python operations per pair; iterating over
anti-diagonals instead performs O(n+m) vectorised steps, which makes exact
seed-distance-matrix computation tractable on CPU.
"""

from __future__ import annotations

import numpy as np

_INF = np.inf


def dtw_table(cost: np.ndarray) -> np.ndarray:
    """DTW accumulated-cost table for a (n, m) local-cost matrix.

    Returns the (n+1, m+1) table; the DTW distance is ``table[n, m]``.
    """
    n, m = cost.shape
    table = np.full((n + 1, m + 1), _INF, dtype=np.float64)
    table[0, 0] = 0.0
    for k in range(2, n + m + 1):
        i = np.arange(max(1, k - m), min(n, k - 1) + 1, dtype=np.intp)
        j = k - i
        best = np.minimum(np.minimum(table[i - 1, j], table[i, j - 1]),
                          table[i - 1, j - 1])
        table[i, j] = cost[i - 1, j - 1] + best
    return table


def frechet_table(cost: np.ndarray) -> np.ndarray:
    """Discrete Fréchet coupling table; distance is ``table[n, m]``."""
    n, m = cost.shape
    table = np.full((n + 1, m + 1), _INF, dtype=np.float64)
    table[0, 0] = 0.0  # only reachable from (1, 1): yields max(d00, 0) = d00
    for k in range(2, n + m + 1):
        i = np.arange(max(1, k - m), min(n, k - 1) + 1, dtype=np.intp)
        j = k - i
        best = np.minimum(np.minimum(table[i - 1, j], table[i, j - 1]),
                          table[i - 1, j - 1])
        table[i, j] = np.maximum(cost[i - 1, j - 1], best)
    return table


def erp_table(cost: np.ndarray, gap_a: np.ndarray, gap_b: np.ndarray
              ) -> np.ndarray:
    """ERP edit table.

    Parameters
    ----------
    cost:
        (n, m) match costs ``d(a_i, b_j)``.
    gap_a:
        (n,) deletion costs ``d(a_i, g)`` against the gap point.
    gap_b:
        (m,) insertion costs ``d(b_j, g)``.
    """
    n, m = cost.shape
    table = np.full((n + 1, m + 1), _INF, dtype=np.float64)
    table[0, 0] = 0.0
    table[1:, 0] = np.cumsum(gap_a)
    table[0, 1:] = np.cumsum(gap_b)
    for k in range(2, n + m + 1):
        i = np.arange(max(1, k - m), min(n, k - 1) + 1, dtype=np.intp)
        j = k - i
        match = table[i - 1, j - 1] + cost[i - 1, j - 1]
        delete = table[i - 1, j] + gap_a[i - 1]
        insert = table[i, j - 1] + gap_b[j - 1]
        table[i, j] = np.minimum(np.minimum(match, delete), insert)
    return table
