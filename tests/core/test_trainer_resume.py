"""Kill-and-resume equivalence: the headline checkpoint guarantee.

A training run interrupted after any epoch and resumed from its
checkpoint must produce **bit-identical** parameters and loss history to
an uninterrupted run — not merely similar. That works because one seeded
``np.random.default_rng`` drives encoder init, the pair sampler and the
anchor shuffles, and the checkpoint captures its exact bit-generator
state alongside parameters, Adam moments and history (see
``repro.core.trainer.pack_training_checkpoint``).
"""

import numpy as np
import pytest

from repro import NeuTraj, NeuTrajConfig, PortoConfig, generate_porto
from repro.measures import get_measure, pairwise_distances
from repro.testing import corrupt_bytes

pytestmark = pytest.mark.faults

CFG = dict(measure="hausdorff", embedding_dim=8, epochs=4, sampling_num=3,
           batch_anchors=8, cell_size=500.0, seed=7)


@pytest.fixture(scope="module")
def world():
    ds = generate_porto(PortoConfig(num_trajectories=16, min_points=8,
                                    max_points=12), seed=11)
    seeds = list(ds)
    matrix = pairwise_distances(seeds, get_measure("hausdorff"))
    return seeds, matrix


def _params(model):
    return model.encoder.state_dict()


class _CrashAfter(Exception):
    pass


def _run_interrupted(seeds, matrix, ckpt_dir, crash_after_epoch):
    """fit() that dies (by exception) right after a given epoch."""
    model = NeuTraj(NeuTrajConfig(**CFG))

    def die(epoch, loss):
        if epoch == crash_after_epoch:
            raise _CrashAfter(str(epoch))

    with pytest.raises(_CrashAfter):
        model.fit(seeds, distance_matrix=matrix, checkpoint_dir=ckpt_dir,
                  epoch_callback=die)


@pytest.mark.parametrize("crash_after_epoch", [0, 2])
def test_resume_is_bit_identical(world, tmp_path, crash_after_epoch):
    seeds, matrix = world

    baseline = NeuTraj(NeuTrajConfig(**CFG))
    base_history = baseline.fit(seeds, distance_matrix=matrix)

    ckpt_dir = tmp_path / "ckpts"
    _run_interrupted(seeds, matrix, ckpt_dir, crash_after_epoch)

    resumed = NeuTraj(NeuTrajConfig(**CFG))
    resumed_history = resumed.fit(seeds, distance_matrix=matrix,
                                  checkpoint_dir=ckpt_dir)

    base_losses = [e.loss for e in base_history.epochs]
    resumed_losses = [e.loss for e in resumed_history.epochs]
    assert resumed_losses == base_losses  # exact float equality, no tolerance

    base_params = _params(baseline)
    resumed_params = _params(resumed)
    assert base_params.keys() == resumed_params.keys()
    for name in base_params:
        assert np.array_equal(base_params[name], resumed_params[name]), name


def test_resume_skips_corrupt_newest_checkpoint(world, tmp_path):
    """Corrupting the newest checkpoint falls back to the previous one and
    still converges to the bit-identical final state."""
    seeds, matrix = world

    baseline = NeuTraj(NeuTrajConfig(**CFG))
    baseline.fit(seeds, distance_matrix=matrix)

    ckpt_dir = tmp_path / "ckpts"
    _run_interrupted(seeds, matrix, ckpt_dir, crash_after_epoch=2)
    corrupt_bytes(ckpt_dir / "ckpt-00000002.npz", mode="truncate", offset=50)

    resumed = NeuTraj(NeuTrajConfig(**CFG))
    history = resumed.fit(seeds, distance_matrix=matrix,
                          checkpoint_dir=ckpt_dir)
    assert len(history.epochs) == CFG["epochs"]
    for name, value in _params(baseline).items():
        assert np.array_equal(value, _params(resumed)[name]), name


def test_completed_run_resumes_to_noop(world, tmp_path):
    seeds, matrix = world
    ckpt_dir = tmp_path / "ckpts"
    model = NeuTraj(NeuTrajConfig(**CFG))
    first = model.fit(seeds, distance_matrix=matrix, checkpoint_dir=ckpt_dir)

    again = NeuTraj(NeuTrajConfig(**CFG))
    second = again.fit(seeds, distance_matrix=matrix, checkpoint_dir=ckpt_dir)
    assert [e.loss for e in second.epochs] == [e.loss for e in first.epochs]
    for name, value in _params(model).items():
        assert np.array_equal(value, _params(again)[name]), name


def test_resume_false_retrains_from_scratch(world, tmp_path):
    seeds, matrix = world
    ckpt_dir = tmp_path / "ckpts"
    _run_interrupted(seeds, matrix, ckpt_dir, crash_after_epoch=1)

    model = NeuTraj(NeuTrajConfig(**CFG))
    history = model.fit(seeds, distance_matrix=matrix,
                        checkpoint_dir=ckpt_dir, resume=False)
    assert len(history.epochs) == CFG["epochs"]

    baseline = NeuTraj(NeuTrajConfig(**CFG))
    base = baseline.fit(seeds, distance_matrix=matrix)
    assert [e.loss for e in history.epochs] == [e.loss for e in base.epochs]


def test_config_change_invalidates_checkpoints(world, tmp_path):
    """A checkpoint from a different config fingerprint must not be
    silently applied."""
    from repro.exceptions import CheckpointError

    seeds, matrix = world
    ckpt_dir = tmp_path / "ckpts"
    _run_interrupted(seeds, matrix, ckpt_dir, crash_after_epoch=1)

    changed = dict(CFG, learning_rate=0.05)
    model = NeuTraj(NeuTrajConfig(**changed))
    with pytest.raises(CheckpointError, match="fingerprint"):
        model.fit(seeds, distance_matrix=matrix, checkpoint_dir=ckpt_dir)
