"""Tests for the synthetic Porto / Geolife workload generators."""

import numpy as np
import pytest

from repro.datasets import (GeolifeConfig, PortoConfig, generate_geolife,
                            generate_porto)
from repro.measures import get_measure


class TestPorto:
    def test_count_and_ids(self):
        ds = generate_porto(PortoConfig(num_trajectories=25), seed=0)
        assert len(ds) == 25
        assert [t.traj_id for t in ds] == list(range(25))

    def test_lengths_in_range(self):
        cfg = PortoConfig(num_trajectories=30, min_points=10, max_points=40)
        ds = generate_porto(cfg, seed=1)
        lengths = ds.lengths
        assert lengths.min() >= 10 and lengths.max() <= 40

    def test_within_extent(self):
        cfg = PortoConfig(num_trajectories=20, extent=5000.0)
        ds = generate_porto(cfg, seed=2)
        xmin, ymin, xmax, ymax = ds.bbox
        assert xmin >= 0.0 and ymin >= 0.0
        assert xmax <= 5000.0 and ymax <= 5000.0

    def test_deterministic_per_seed(self):
        a = generate_porto(PortoConfig(num_trajectories=10), seed=3)
        b = generate_porto(PortoConfig(num_trajectories=10), seed=3)
        for ta, tb in zip(a, b):
            np.testing.assert_array_equal(ta.points, tb.points)

    def test_different_seeds_differ(self):
        a = generate_porto(PortoConfig(num_trajectories=5), seed=4)
        b = generate_porto(PortoConfig(num_trajectories=5), seed=5)
        assert any(not np.array_equal(ta.points, tb.points)
                   for ta, tb in zip(a, b))

    def test_route_families_create_near_duplicates(self):
        """The generator must reproduce Porto's near-duplicate structure:
        some pairs should be far closer than the typical pair."""
        cfg = PortoConfig(num_trajectories=80, family_fraction=0.9,
                          num_route_families=5, noise_std=10.0)
        ds = generate_porto(cfg, seed=6)
        hausdorff = get_measure("hausdorff")
        dists = [hausdorff(ds[i], ds[j])
                 for i in range(0, 40) for j in range(i + 1, 40)]
        dists = np.array(dists)
        assert dists.min() < 0.15 * np.median(dists)


class TestGeolife:
    def test_count(self):
        ds = generate_geolife(GeolifeConfig(num_trajectories=15), seed=0)
        assert len(ds) == 15

    def test_lengths_in_range(self):
        cfg = GeolifeConfig(num_trajectories=30, min_points=12, max_points=50)
        ds = generate_geolife(cfg, seed=1)
        assert ds.lengths.min() >= 12 and ds.lengths.max() <= 50

    def test_deterministic_per_seed(self):
        a = generate_geolife(GeolifeConfig(num_trajectories=8), seed=2)
        b = generate_geolife(GeolifeConfig(num_trajectories=8), seed=2)
        for ta, tb in zip(a, b):
            np.testing.assert_array_equal(ta.points, tb.points)

    def test_variable_lengths(self):
        ds = generate_geolife(GeolifeConfig(num_trajectories=50), seed=3)
        assert len(set(ds.lengths.tolist())) > 5

    def test_within_extent(self):
        cfg = GeolifeConfig(num_trajectories=20, extent=4000.0)
        ds = generate_geolife(cfg, seed=4)
        xmin, ymin, xmax, ymax = ds.bbox
        assert xmin >= 0.0 and xmax <= 4000.0
        assert ymin >= 0.0 and ymax <= 4000.0
