"""Deterministic trajectory fuzzing and metamorphic invariant checks.

Two halves:

* **Generators** — :func:`adversarial_arrays` enumerates the named
  degenerate shapes dirty GPS data actually produces (NaN/Inf fixes,
  teleport spikes, stalls, empty and single-point tracks, wrong shapes);
  :func:`random_walks` and :func:`corrupt` grow seeded random valid and
  dirty trajectories. Everything is driven by an explicit seed — no
  wall-clock, no global RNG — so a failing case replays exactly.

* **Invariant checks** — :func:`check_measure_invariants` and
  :func:`check_encoder_invariants` assert the metamorphic properties
  every measure/encoder must satisfy regardless of input values
  (symmetry, identity, non-negativity, finiteness, typed rejection of
  degenerate shapes; finite deterministic embeddings). They return a
  list of human-readable violations so a test can simply assert the
  list is empty and print it otherwise.

The ``fuzz``-marked tests in ``tests/testing/test_fuzz.py`` run these
checks with a small budget in tier-1 CI; crank ``count`` up for a deeper
local sweep.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..dataquality import SanitizeConfig, sanitize
from ..datasets.trajectory import Trajectory
from ..exceptions import InvalidTrajectoryError

__all__ = ["adversarial_arrays", "check_encoder_invariants",
           "check_measure_invariants", "corrupt", "random_walks"]

#: Measures whose distance changes under a common translation of both
#: inputs. ERP anchors skip costs to a fixed gap point, so it is the one
#: registry measure that is *not* translation invariant.
TRANSLATION_VARIANT_MEASURES = frozenset({"erp"})


def adversarial_arrays() -> List[Tuple[str, np.ndarray]]:
    """Named degenerate / adversarial point arrays, fixed and seedless.

    Every shape here was observed (or is trivially constructible) in raw
    GPS exports: sensor dropouts produce NaN rows, integer overflow in
    upstream ETL produces huge magnitudes, stationary vehicles produce
    duplicate runs, multipath produces teleport spikes.
    """
    nan, inf = float("nan"), float("inf")
    line = np.stack([np.linspace(0.0, 4.0, 5),
                     np.zeros(5, dtype=np.float64)], axis=1)
    spike = line.copy()
    spike[2] = [2.0, 5e7]
    return [
        ("empty", np.empty((0, 2), dtype=np.float64)),
        ("singleton", np.array([[1.0, 2.0]])),
        ("two-identical", np.array([[3.0, 3.0], [3.0, 3.0]])),
        ("constant", np.full((6, 2), 7.5)),
        ("nan-coordinate", np.array([[0.0, 0.0], [nan, 1.0], [2.0, 2.0]])),
        ("inf-coordinate", np.array([[0.0, 0.0], [1.0, inf], [2.0, 2.0]])),
        ("all-nan", np.full((4, 2), nan)),
        ("huge-magnitude", np.array([[1e15, -1e15], [1e15 + 1.0, -1e15]])),
        ("tiny-steps", np.array([[0.0, 0.0], [1e-15, 0.0], [2e-15, 0.0]])),
        ("collinear", line),
        ("duplicated-points", np.repeat(line, 3, axis=0)),
        ("teleport-spike", spike),
        ("zigzag-extreme", np.array([[0.0, 0.0], [1e6, 1e6], [0.0, 1.0],
                                     [1e6, -1e6], [0.0, 2.0]])),
        ("wrong-shape-1d", np.zeros(4, dtype=np.float64)),
        ("wrong-shape-3col", np.zeros((4, 3), dtype=np.float64)),
    ]


def random_walks(seed: int, count: int = 8, min_len: int = 2,
                 max_len: int = 40, step: float = 1.0,
                 origin: Tuple[float, float] = (0.0, 0.0)
                 ) -> List[np.ndarray]:
    """Seeded valid random-walk trajectories (each >= ``min_len`` points)."""
    if min_len < 2:
        raise ValueError("min_len must be >= 2 (measures reject shorter)")
    rng = np.random.default_rng(seed)
    walks = []
    for _ in range(count):
        length = int(rng.integers(min_len, max_len + 1))
        steps = rng.normal(scale=step, size=(length, 2))
        steps[0] = origin
        walks.append(np.cumsum(steps, axis=0))
    return walks


def corrupt(points: np.ndarray, rng: np.random.Generator,
            kinds: Sequence[str] = ("nan", "spike", "dup", "stall")
            ) -> Tuple[np.ndarray, List[str]]:
    """Apply 1-3 seeded corruptions to a valid trajectory.

    Returns the dirty copy and the list of corruption kinds applied, so a
    test can assert the sanitizer's report accounts for each one.
    """
    points = np.asarray(points, dtype=np.float64).copy()
    applied = []
    max_kinds = min(3, len(kinds))
    for kind in rng.choice(list(kinds),
                           size=int(rng.integers(1, max_kinds + 1)),
                           replace=False):
        idx = int(rng.integers(0, len(points)))
        if kind == "nan":
            points[idx, int(rng.integers(0, 2))] = np.nan
        elif kind == "spike":
            span = float(np.nanmax(np.abs(points))) + 1.0
            points[idx] = points[idx] + span * 1e4
        elif kind == "dup":
            points = np.insert(points, idx, points[idx], axis=0)
        elif kind == "stall":
            points = np.insert(points, idx,
                               np.repeat(points[idx:idx + 1], 4, axis=0),
                               axis=0)
        else:
            raise ValueError(f"unknown corruption kind {kind!r}")
        applied.append(str(kind))
    return points, applied


# ------------------------------------------------------------------ checks

def _expect_close(violations: List[str], label: str, got: float,
                  want: float, rel: float, abs_tol: float) -> None:
    if not np.isclose(got, want, rtol=rel, atol=abs_tol):
        violations.append(f"{label}: got {got!r}, expected {want!r}")


def check_measure_invariants(measure, trajectories:
                             Optional[Sequence[np.ndarray]] = None,
                             seed: int = 0, count: int = 6,
                             rel: float = 1e-6, abs_tol: float = 1e-6
                             ) -> List[str]:
    """Metamorphic invariants a trajectory measure must satisfy.

    Checks, over seeded random walks (or the caller's ``trajectories``):

    * non-negativity and finiteness of every pairwise distance,
    * symmetry ``d(a, b) == d(b, a)``,
    * identity ``d(a, a) == 0``,
    * translation invariance (skipped for measures in
      :data:`TRANSLATION_VARIANT_MEASURES`),
    * typed rejection: every sub-segment or misshapen adversarial input
      raises :class:`InvalidTrajectoryError` — never an ``IndexError``
      or a silent number.

    Returns a list of violation descriptions (empty == all invariants
    hold).
    """
    name = getattr(measure, "name", type(measure).__name__)
    trajs = (list(trajectories) if trajectories is not None
             else random_walks(seed, count=count))
    violations: List[str] = []
    for i, a in enumerate(trajs):
        d_self = measure.distance(a, a)
        _expect_close(violations, f"{name}: identity d(t{i}, t{i})",
                      d_self, 0.0, rel, abs_tol)
        for j in range(i + 1, len(trajs)):
            b = trajs[j]
            ab = measure.distance(a, b)
            ba = measure.distance(b, a)
            if not np.isfinite(ab):
                violations.append(f"{name}: d(t{i}, t{j}) not finite: {ab!r}")
                continue
            if ab < 0.0:
                violations.append(f"{name}: d(t{i}, t{j}) negative: {ab!r}")
            _expect_close(violations, f"{name}: symmetry d(t{i}, t{j})",
                          ba, ab, rel, abs_tol)
            if name not in TRANSLATION_VARIANT_MEASURES:
                offset = np.array([123.5, -67.25])
                shifted = measure.distance(a + offset, b + offset)
                _expect_close(
                    violations,
                    f"{name}: translation invariance d(t{i}, t{j})",
                    shifted, ab, max(rel, 1e-5), max(abs_tol, 1e-5))
    for case, arr in adversarial_arrays():
        if arr.ndim == 2 and arr.shape[1:] == (2,) and len(arr) >= 2:
            continue  # structurally valid; values-level dirt is allowed
        probe = trajs[0]
        for label, x, y in ((f"{name}: degenerate left ({case})", arr, probe),
                            (f"{name}: degenerate right ({case})", probe, arr)):
            try:
                result = measure.distance(x, y)
            except InvalidTrajectoryError:
                continue
            except Exception as exc:  # noqa: BLE001 - report, don't mask
                violations.append(f"{label}: raised {type(exc).__name__} "
                                  f"instead of InvalidTrajectoryError")
                continue
            violations.append(f"{label}: returned {result!r} instead of "
                              f"raising InvalidTrajectoryError")
    return violations


def check_encoder_invariants(embed: Callable[[Sequence[Trajectory]],
                                             np.ndarray],
                             seed: int = 0, count: int = 6,
                             config: Optional[SanitizeConfig] = None
                             ) -> List[str]:
    """Invariants of an embedding function over clean and sanitized input.

    ``embed`` maps a sequence of :class:`Trajectory` to a ``(B, d)``
    array (e.g. ``encoder.embed`` or ``NeuTraj.embed``). Checks:

    * embeddings of valid trajectories are finite,
    * embedding is deterministic (two calls agree bit-for-bit),
    * every adversarial array that the sanitizer repairs (default
      ``degenerate="repair"`` policy) is accepted and embeds finite —
      i.e. sanitize-then-embed never crashes on dirty data.
    """
    cfg = config or SanitizeConfig()
    violations: List[str] = []
    clean = [Trajectory(points=w, traj_id=f"fuzz-{i}")
             for i, w in enumerate(random_walks(seed, count=count))]
    first = embed(clean)
    if not np.all(np.isfinite(first)):
        violations.append("embeddings of valid trajectories contain "
                          "non-finite values")
    second = embed(clean)
    if not np.array_equal(first, second):
        violations.append("embedding is not deterministic across calls")
    for case, arr in adversarial_arrays():
        try:
            traj, report = sanitize(arr, cfg, traj_id=f"adv-{case}")
        except InvalidTrajectoryError:
            continue  # unrepairable (e.g. empty) — rejection is the contract
        try:
            vec = embed([traj])
        except Exception as exc:  # noqa: BLE001 - report, don't mask
            violations.append(f"encoder rejected sanitized {case!r} "
                              f"({report.action}): {type(exc).__name__}: "
                              f"{exc}")
            continue
        if not np.all(np.isfinite(vec)):
            violations.append(f"non-finite embedding for sanitized {case!r}")
    return violations
