"""Seeded dead weight: a Parameter no forward path ever reads.

``w_spare`` is registered by ``parameters()`` (so the optimiser pays for
it) but no method of the class reads it — its tape backward is
unreachable and its gradient is forever zero.
"""

import numpy as np

from repro.nn.module import Module, Parameter


class PaddedEncoder(Module):

    def __init__(self, hidden_size):
        self.w_step = Parameter(np.zeros((hidden_size, hidden_size)))
        self.w_spare = Parameter(np.zeros((hidden_size, hidden_size)))

    def forward(self, x):
        return x @ self.w_step
