"""Store round-trips at the search-backend boundary (repro.core.backends)."""

import numpy as np
import pytest

from repro import NeuTraj, NeuTrajConfig, PortoConfig, generate_porto
from repro.core.backends import (ExactBackend, IVFBackend, SearchBackend,
                                 make_backend)
from repro.core.store import EmbeddingStore
from repro.exceptions import ConfigurationError
from repro.index.ann import IVFConfig, IVFIndex


@pytest.fixture(scope="module")
def world():
    ds = generate_porto(PortoConfig(num_trajectories=80, min_points=8,
                                    max_points=14), seed=13)
    seeds = list(ds)[:20]
    rest = list(ds)[20:]
    model = NeuTraj(NeuTrajConfig(measure="hausdorff", embedding_dim=8,
                                  epochs=2, sampling_num=3, batch_anchors=8,
                                  cell_size=500.0, seed=0))
    model.fit(seeds)
    return model, rest


# ------------------------------------------------------------ construction

def test_make_backend_resolution():
    assert isinstance(make_backend(None), ExactBackend)
    assert isinstance(make_backend("exact"), ExactBackend)
    ivf = make_backend("ivf", nlist=4, nprobe=2)
    assert isinstance(ivf, IVFBackend)
    assert ivf.config.nlist == 4 and ivf.config.nprobe == 2
    passthrough = ExactBackend()
    assert make_backend(passthrough) is passthrough


def test_make_backend_rejects_bad_specs():
    with pytest.raises(ConfigurationError):
        make_backend("annoy")
    with pytest.raises(ConfigurationError):
        make_backend("exact", nlist=4)
    with pytest.raises(ConfigurationError):
        make_backend("ivf", bogus_option=1)
    with pytest.raises(ConfigurationError):
        make_backend(ExactBackend(), nlist=4)


def test_store_default_backend_is_exact(world):
    model, items = world
    store = EmbeddingStore(model)
    assert store.backend.name == "exact"
    assert store.search_stats()["kind"] == "exact"


# ---------------------------------------------------- exact vs ivf answers

def test_ivf_backend_matches_exact_on_small_store(world):
    """With nprobe >= nlist the IVF path degenerates to an exact scan."""
    model, items = world
    exact = EmbeddingStore(model)
    exact.add(items)
    ivf = EmbeddingStore(model, backend="ivf", nlist=4, nprobe=4, seed=0)
    ivf.add(items)
    for query in items[:8]:
        want, want_d = exact.query(query, k=5)
        got, got_d = ivf.query(query, k=5)
        np.testing.assert_array_equal(got, want)
        np.testing.assert_allclose(got_d, want_d, atol=1e-4)


def test_exact_backend_counts_full_scans(world):
    model, items = world
    store = EmbeddingStore(model)
    store.add(items[:10])
    store.query(items[0], k=3)
    stats = store.search_stats()
    assert stats["queries"] == 1
    assert stats["candidates_scanned"] == 10


def test_ivf_backend_scans_fraction(world):
    model, items = world
    store = EmbeddingStore(model, backend="ivf", nlist=8, nprobe=2, seed=0)
    store.add(items)
    store.query(items[0], k=3)
    stats = store.search_stats()
    assert stats["kind"] == "ivf"
    assert 0 < stats["candidates_scanned"] < len(items)


def test_use_backend_switches_both_ways(world):
    model, items = world
    store = EmbeddingStore(model)
    store.add(items)
    want, _ = store.query(items[1], k=5)
    store.use_backend("ivf", nlist=4, nprobe=4, seed=0)
    got, _ = store.query(items[1], k=5)
    np.testing.assert_array_equal(got, want)
    store.use_backend("exact")
    back, _ = store.query(items[1], k=5)
    np.testing.assert_array_equal(back, want)


# ------------------------------------------------- mutation + id stability

@pytest.mark.parametrize("backend_kwargs", [
    {"backend": "exact"},
    {"backend": "ivf", "nlist": 4, "nprobe": 4, "seed": 0},
])
def test_insert_delete_query_id_stability(world, backend_kwargs):
    model, items = world
    store = EmbeddingStore(model, **backend_kwargs)
    first = store.add(items[:20])
    removed = store.remove(first[5:10])
    assert removed == 5
    second = store.add(items[20:30])
    # ids never recycle, even across deletes
    assert min(second) > max(first)
    assert len(store) == 25
    for probe_pos in (0, 3, 12):
        ids, _ = store.query(items[probe_pos], k=25)
        assert set(first[5:10]).isdisjoint(ids.tolist())
    # a surviving row is still its own nearest neighbour
    ids, dist = store.query(items[2], k=1)
    assert ids[0] == first[2]
    assert dist[0] == pytest.approx(0.0, abs=1e-4)


# ----------------------------------------------------------- persistence

@pytest.mark.parametrize("backend_kwargs", [
    {"backend": "exact"},
    {"backend": "ivf", "nlist": 4, "nprobe": 4, "seed": 0},
])
def test_save_load_roundtrip_per_backend(world, tmp_path, backend_kwargs):
    model, items = world
    store = EmbeddingStore(model, **backend_kwargs)
    store.add(items[:30])
    store.remove([3, 4])
    store.save(tmp_path / "store.npz")
    reloaded = EmbeddingStore.load(tmp_path / "store.npz", model,
                                   **backend_kwargs)
    assert reloaded.backend.name == backend_kwargs["backend"]
    assert reloaded.ids == store.ids
    assert reloaded.next_id == store.next_id
    want, _ = store.query(items[7], k=5)
    got, _ = reloaded.query(items[7], k=5)
    np.testing.assert_array_equal(got, want)


def test_mmap_index_reopen_after_restart(world, tmp_path):
    """Offline-built IVF index attaches to a freshly loaded store."""
    model, items = world
    store = EmbeddingStore(model)
    store.add(items)
    store.save(tmp_path / "store.npz")
    index = IVFIndex.build(
        np.asarray(store.ids, dtype=np.int64),
        np.ascontiguousarray(store.embeddings, dtype=np.float32),
        IVFConfig(nlist=4, nprobe=4, seed=0))
    index.save(tmp_path / "ivf")

    # "restart": new store from disk + mmap'd index, no rebuild
    reloaded = EmbeddingStore.load(tmp_path / "store.npz", model)
    mapped = IVFIndex.load(tmp_path / "ivf", mmap=True)
    backend = reloaded.use_backend(IVFBackend(index=mapped))
    assert backend.index is mapped  # id sets matched: kept, not rebuilt
    want, _ = store.query(items[0], k=5)
    got, _ = reloaded.query(items[0], k=5)
    np.testing.assert_array_equal(got, want)


def test_stale_mmap_index_is_rebuilt(world, tmp_path):
    model, items = world
    store = EmbeddingStore(model)
    store.add(items)
    index = IVFIndex.build(
        np.asarray(store.ids, dtype=np.int64),
        np.ascontiguousarray(store.embeddings, dtype=np.float32),
        IVFConfig(nlist=4, nprobe=4, seed=0))
    index.save(tmp_path / "ivf")
    store.remove(store.ids[:3])  # store moved on; index is stale
    mapped = IVFIndex.load(tmp_path / "ivf", mmap=True)
    backend = store.use_backend(IVFBackend(index=mapped))
    assert backend.index is not mapped  # mismatch detected -> rebuilt
    assert backend.index.live_count == len(store)


# ------------------------------------------------------------- recall gate

def test_backend_interface_is_abstract():
    backend = SearchBackend()
    with pytest.raises(NotImplementedError):
        backend.rebuild()
    with pytest.raises(NotImplementedError):
        backend.search(np.zeros(4), 1)
    with pytest.raises(NotImplementedError):
        backend.stats()
