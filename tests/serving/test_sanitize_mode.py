"""Sanitize-mode boundary: repair-with-report instead of rejection.

Strict mode (the default, covered by the existing serving tests) turns
dirty queries into 400s. These tests flip ``ServingConfig.sanitize`` on
and assert dirty queries — teleport spikes, duplicate runs, NaN rows,
out-of-grid points — are answered with accurate per-response quality
reports, correct metrics, and top-k results that match querying with the
hand-cleaned trajectory.
"""

import numpy as np
import pytest

from repro.dataquality import SanitizeConfig
from repro.exceptions import InvalidTrajectoryError
from repro.serving import ServingConfig, SimilarityService


def _dirty_variant(points):
    """Spike + duplicate + NaN row, all repairable."""
    dirty = np.asarray(points, dtype=np.float64).copy()
    dirty = np.insert(dirty, 2, dirty[2], axis=0)          # duplicate
    dirty = np.insert(dirty, 4, [np.nan, np.nan], axis=0)  # dropout row
    span = float(np.abs(dirty[np.isfinite(dirty)]).max()) + 1.0
    dirty = np.insert(dirty, 1, dirty[1] + span * 1e5, axis=0)  # teleport
    return dirty


@pytest.fixture
def sanitizing_service(serving_world, fresh_store):
    model, _ = serving_world
    config = ServingConfig(max_wait_ms=0.0, sanitize=True)
    with SimilarityService(model, fresh_store, config=config) as service:
        yield service


@pytest.fixture
def strict_service(serving_world, fresh_store):
    model, _ = serving_world
    with SimilarityService(model, fresh_store,
                           config=ServingConfig(max_wait_ms=0.0)) as service:
        yield service


class TestSanitizeModeAnswers:
    def test_clean_query_passes_with_clean_report(self, sanitizing_service,
                                                  serving_world):
        _, items = serving_world
        result = sanitizing_service.top_k(items[16], k=3)
        assert len(result.ids) == 3
        assert result.quality is not None
        assert result.quality["action"] == "pass"
        assert result.quality["spikes_removed"] == 0

    def test_dirty_query_is_repaired_and_answers_match_clean(
            self, sanitizing_service, serving_world):
        _, items = serving_world
        clean = np.asarray(items[17].points, dtype=np.float64)
        dirty = _dirty_variant(clean)
        with pytest.raises(InvalidTrajectoryError):
            # Sanity: strict validation would refuse this input.
            from repro.datasets import Trajectory
            Trajectory(dirty)
        result = sanitizing_service.top_k(dirty, k=5, use_cache=False)
        baseline = sanitizing_service.top_k(clean, k=5, use_cache=False)
        assert result.ids == baseline.ids
        q = result.quality
        assert q["action"] == "repaired"
        assert q["nonfinite_dropped"] == 1
        assert q["duplicates_collapsed"] >= 1
        assert q["spikes_removed"] >= 1

    def test_out_of_grid_points_are_clamped(self, sanitizing_service,
                                            serving_world):
        model, items = serving_world
        xmin, ymin, xmax, ymax = model.encoder.grid.bbox
        dirty = np.asarray(items[18].points, dtype=np.float64).copy()
        dirty[0] = [xmax + (xmax - xmin), ymax + (ymax - ymin)]
        result = sanitizing_service.top_k(dirty, k=2, use_cache=False)
        assert result.quality["clamped_points"] >= 1
        assert result.quality["action"] == "repaired"

    def test_unrepairable_query_still_rejected(self, sanitizing_service):
        with pytest.raises(InvalidTrajectoryError):
            sanitizing_service.top_k(np.full((3, 2), np.nan), k=1)
        snapshot = sanitizing_service.registry.snapshot()
        assert snapshot["repro_sanitize_rejected_total"] == 1

    def test_metrics_count_repairs(self, sanitizing_service, serving_world):
        _, items = serving_world
        sanitizing_service.top_k(items[16], k=1)            # clean
        sanitizing_service.top_k(
            _dirty_variant(items[17].points), k=1)           # repaired
        counters = sanitizing_service.registry.snapshot()
        assert counters["repro_sanitize_repaired_total"] == 1
        assert counters.get("repro_sanitize_rejected_total", 0) == 0

    def test_cache_hit_still_reports_quality(self, sanitizing_service,
                                             serving_world):
        _, items = serving_world
        dirty = _dirty_variant(items[19].points)
        first = sanitizing_service.top_k(dirty, k=2)
        second = sanitizing_service.top_k(dirty, k=2)
        assert not first.cached and second.cached
        assert second.quality == first.quality
        assert second.quality["action"] == "repaired"

    def test_insert_sanitizes(self, sanitizing_service, serving_world):
        _, items = serving_world
        before = len(sanitizing_service.store)
        ids = sanitizing_service.insert([_dirty_variant(items[16].points)])
        assert len(ids) == 1
        assert len(sanitizing_service.store) == before + 1

    def test_stats_flag(self, sanitizing_service, strict_service):
        assert sanitizing_service.stats()["sanitize_mode"] is True
        assert strict_service.stats()["sanitize_mode"] is False


class TestStrictModeUnchanged:
    def test_dirty_query_rejected_without_sanitize(self, strict_service,
                                                   serving_world):
        _, items = serving_world
        with pytest.raises(InvalidTrajectoryError):
            strict_service.top_k(_dirty_variant(items[17].points), k=1)

    def test_quality_absent_in_strict_mode(self, strict_service,
                                           serving_world):
        _, items = serving_world
        result = strict_service.top_k(items[16], k=2)
        assert result.quality is None
        assert result.to_json()["quality"] is None


class TestExplicitConfig:
    def test_custom_sanitize_config_is_used(self, serving_world, fresh_store):
        model, items = serving_world
        config = ServingConfig(
            max_wait_ms=0.0, sanitize=True,
            sanitize_config=SanitizeConfig(max_jump=None, dup_epsilon=None))
        with SimilarityService(model, fresh_store, config=config) as service:
            # bbox is grafted from the grid even onto an explicit config.
            assert service._sanitize_config.bbox == model.encoder.grid.bbox
            dirty = np.asarray(items[16].points, dtype=np.float64).copy()
            dirty = np.insert(dirty, 1, dirty[1], axis=0)
            result = service.top_k(dirty, k=1, use_cache=False)
            # dup collapse disabled -> duplicates survive untouched.
            assert result.quality["duplicates_collapsed"] == 0
            assert result.quality["action"] == "pass"
