"""Table V — online similarity search with spatial indexes.

Fréchet search through a bounding-box R-tree and a grid inverted index,
ranking the candidates with BruteForce / AP / NeuTraj. Expected shape
(paper): indexes shrink the involved-trajectory count below the DB size;
NeuTraj is the fastest ranker under both indexes.
"""

import pytest

from repro.experiments import (db_sizes_for_scale, format_table,
                               run_indexed_search_time)
from repro.index import RTree


@pytest.fixture(scope="module")
def table5(porto_workload):
    sizes = db_sizes_for_scale(porto_workload.scale)
    return run_indexed_search_time(porto_workload, db_sizes=sizes), sizes


def test_table5_indexed_search(benchmark, table5, porto_workload, report):
    results, sizes = table5

    # Kernel: an R-tree range query over the database.
    tree = RTree.from_trajectories(porto_workload.database)
    window = porto_workload.queries[0].bbox
    benchmark(lambda: tree.query(window))

    rows = []
    for index_name in ("rtree", "grid"):
        for method in ("BruteForce", "AP", "NeuTraj"):
            cells = {r.db_size: r for r in results
                     if r.index_name == index_name and r.method == method}
            rows.append(
                [index_name, method]
                + [f"{cells[s].seconds_per_query:.4f}s" for s in sizes])
        involved = {r.db_size: r.involved for r in results
                    if r.index_name == index_name and r.method == "BruteForce"}
        rows.append([index_name, "# involved"]
                    + [f"{involved[s]:.0f}" for s in sizes])
    report("table5_indexed_search",
           format_table("Table V: online search time with index (per query)",
                        ["index", "method"] + [f"db={s}" for s in sizes],
                        rows))

    for index_name in ("rtree", "grid"):
        for size in sizes:
            brute = next(r for r in results if r.index_name == index_name
                         and r.method == "BruteForce" and r.db_size == size)
            neural = next(r for r in results if r.index_name == index_name
                          and r.method == "NeuTraj" and r.db_size == size)
            assert neural.seconds_per_query < brute.seconds_per_query
            assert brute.involved <= size
