"""Trajectory encoder: grid + normaliser + (SAM-)LSTM -> embeddings (§IV, §V-A).

The encoder owns everything needed to turn a raw trajectory into its
d-dimensional embedding: the coordinate normaliser (RNN input scale), the
spatial grid (SAM addressing), the recurrent network, and — when SAM is
enabled — the external memory tensor. The final valid hidden state of the
recurrent pass is the trajectory representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..datasets.grid import CoordinateNormalizer, Grid
from ..datasets.trajectory import Trajectory, pad_batch
from ..nn.module import Module
from ..nn.rnn import LSTM
from ..nn.sam import SAMLSTM, SpatialMemory
from ..nn.tensor import Tensor
from .config import NeuTrajConfig


@dataclass(frozen=True)
class PrefixState:
    """Resumable encoder state after folding a trajectory prefix.

    The recurrent encoders are left folds over points: the state after
    point ``t`` depends only on the state after ``t-1`` and point ``t``
    (inference reads the SAM memory but never writes it). Persisting
    ``(h, c)`` therefore lets a *growing* trajectory re-embed in O(new
    points) instead of O(length): the streaming ingest tier keeps one
    ``PrefixState`` per live trajectory segment.

    Instances are immutable value objects — extending a prefix returns a
    new state, so a caller can keep the old one (e.g. for speculative
    growth or crash-safe checkpointing).

    Attributes
    ----------
    h, c:
        Hidden and cell state, each of shape (1, d). ``h[0]`` is the
        embedding of the prefix consumed so far.
    length:
        Number of points folded into this state.
    """

    h: np.ndarray
    c: np.ndarray
    length: int

    @property
    def embedding(self) -> np.ndarray:
        """The (d,) embedding of the consumed prefix (a copy)."""
        return self.h[0].copy()


class TrajectoryEncoder(Module):
    """Encode batches of trajectories into embeddings.

    Parameters
    ----------
    grid:
        Spatial grid used both for SAM memory addressing.
    normalizer:
        Coordinate normaliser fitted on the seed pool.
    config:
        Model hyper-parameters (``use_sam`` selects the cell type).
    rng:
        Generator for weight initialisation.
    """

    def __init__(self, grid: Grid, normalizer: CoordinateNormalizer,
                 config: NeuTrajConfig, rng: np.random.Generator):
        self.grid = grid
        self.normalizer = normalizer
        self.config = config
        d = config.embedding_dim
        if config.use_sam:
            self.rnn = SAMLSTM(2, d, rng)
            self.memory = SpatialMemory(grid.shape, d, bandwidth=config.bandwidth)
        else:
            self.rnn = LSTM(2, d, rng)
            self.memory = None

    @property
    def uses_sam(self) -> bool:
        return self.memory is not None

    def encode(self, trajectories: Sequence[Trajectory],
               update_memory: bool = False) -> Tensor:
        """Differentiable batch encoding -> (B, d) embedding Tensor."""
        coords, _, mask = pad_batch(trajectories)
        inputs = self.normalizer.transform(coords)
        if self.uses_sam:
            cells = self.grid.to_cells(coords)
            return self.rnn(inputs, cells, mask, self.memory,
                            update_memory=update_memory)
        return self.rnn(inputs, mask)

    def embed(self, trajectories: Sequence[Trajectory],
              batch_size: int = 128) -> np.ndarray:
        """Inference embeddings (B, d) as a plain array.

        Runs under :class:`~repro.nn.tensor.no_grad` (no tape) with the
        memory read-only, so embeddings are deterministic and cheap.
        """
        from ..nn.tensor import no_grad
        chunks: List[np.ndarray] = []
        items = list(trajectories)
        with no_grad():
            for start in range(0, len(items), batch_size):
                batch = items[start:start + batch_size]
                chunks.append(self.encode(batch, update_memory=False).data)
        if not chunks:
            return np.zeros((0, self.config.embedding_dim))
        return np.concatenate(chunks, axis=0)

    # -------------------------------------------------- incremental encoding

    def init_prefix(self) -> PrefixState:
        """Fresh encoder state (the empty-prefix fold identity)."""
        d = self.config.embedding_dim
        return PrefixState(h=np.zeros((1, d)), c=np.zeros((1, d)), length=0)

    def extend_prefix(self, state: PrefixState,
                      points: np.ndarray) -> PrefixState:
        """Fold ``points`` ((n, 2) raw coordinates) into ``state``.

        Runs the recurrence one point at a time with batch size 1 under
        ``no_grad`` and the memory read-only. Each point's input
        projection is computed individually, so the result is invariant
        to how a growing trajectory is chunked across calls: extending
        point by point, in bursts, or all at once produces bit-identical
        states. (The batched :meth:`embed` path hoists all projections
        into one GEMM whose BLAS kernel may round differently by ~1 ulp;
        :meth:`encode_prefix` is the canonical full re-encoding to
        compare incremental growth against.)

        Returns a new state; ``state`` itself is not mutated.
        """
        from ..nn.tensor import no_grad
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError(
                f"expected points of shape (n, 2), got {points.shape}")
        if points.shape[0] == 0:
            return PrefixState(h=state.h.copy(), c=state.c.copy(),
                               length=state.length)
        if not np.isfinite(points).all():
            raise ValueError("points must be finite")
        inputs = self.normalizer.transform(points)
        cells = self.grid.to_cells(points) if self.uses_sam else None
        cell = self.rnn.cell
        with no_grad():
            h = Tensor(state.h.copy())
            c = Tensor(state.c.copy())
            for t in range(inputs.shape[0]):
                # Project exactly one point: (1, 1, 2) -> one step's
                # pre-activations, keeping the fold chunk-invariant.
                x_gates, x_cand = cell.project_inputs(inputs[t:t + 1][None])
                if self.uses_sam:
                    h, c = cell.step(x_gates[0], x_cand[0], cells[t:t + 1],
                                     h, c, self.memory, write=False)
                else:
                    h, c = cell.step(x_gates[0], x_cand[0], h, c)
        return PrefixState(h=h.data, c=c.data,
                           length=state.length + int(points.shape[0]))

    def encode_prefix(self, points: np.ndarray) -> PrefixState:
        """Full re-encoding through the incremental path (from scratch).

        ``encode_prefix(all_points)`` is bit-identical to any sequence of
        :meth:`extend_prefix` calls that feeds the same points in order —
        the property the streaming tier's O(new points) re-embedding
        relies on.
        """
        return self.extend_prefix(self.init_prefix(), points)

    def reset_memory(self) -> None:
        if self.memory is not None:
            self.memory.reset()
