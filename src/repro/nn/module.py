"""Module/Parameter containers for the numpy autodiff engine.

Mirrors the small subset of ``torch.nn.Module`` the reproduction needs:
named parameter registration (recursive through sub-modules), zeroing of
gradients, and flat state-dict save/load for checkpointing.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np

from .tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor (always requires grad)."""

    def __init__(self, data):
        super().__init__(np.asarray(data, dtype=np.float64), requires_grad=True)


class Module:
    """Base class for neural modules.

    Sub-classes assign :class:`Parameter` and :class:`Module` instances as
    attributes; they are discovered automatically for optimization and
    checkpointing.
    """

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, value in vars(self).items():
            qualified = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield qualified, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{qualified}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{qualified}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{qualified}.{i}.")

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter array keyed by its qualified name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load arrays produced by :meth:`state_dict` (strict matching)."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)} "
                           f"unexpected={sorted(unexpected)}")
        for name, param in params.items():
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(f"shape mismatch for {name}: "
                                 f"{value.shape} vs {param.data.shape}")
            param.data = value.copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError
