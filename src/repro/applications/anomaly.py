"""Trajectory anomaly detection on NeuTraj embeddings.

The paper's introduction lists anomaly detection [18] among the all-pairs
tasks bottlenecked by exact similarity computation. With embeddings, the
classic kNN-distance outlier score becomes an O(N² d) vector operation:

    score(T) = mean distance from E(T) to its k nearest embeddings.

Trajectories whose score exceeds a high quantile of the score distribution
are flagged anomalous.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..core.model import MetricModel


@dataclass(frozen=True)
class AnomalyResult:
    """Scores and flagged indices from :func:`detect_anomalies`."""

    scores: np.ndarray
    threshold: float
    anomalies: np.ndarray  # indices sorted by descending score


def knn_outlier_scores(embeddings: np.ndarray, k: int = 5) -> np.ndarray:
    """Mean distance to the k nearest other embeddings, per row."""
    from ..eval import embedding_distance_matrix
    embeddings = np.asarray(embeddings, dtype=np.float64)
    n = len(embeddings)
    if n <= k:
        raise ValueError(f"need more than k={k} trajectories, got {n}")
    distances = embedding_distance_matrix(embeddings)
    np.fill_diagonal(distances, np.inf)
    nearest = np.sort(distances, axis=1)[:, :k]
    return nearest.mean(axis=1)


def detect_anomalies(model: MetricModel, trajectories: Sequence,
                     k: int = 5, quantile: float = 0.95) -> AnomalyResult:
    """Flag trajectories whose kNN-embedding score is extreme.

    Parameters
    ----------
    model:
        A trained metric model (NeuTraj or baseline).
    trajectories:
        The corpus to scan.
    k:
        Neighbourhood size of the outlier score.
    quantile:
        Scores above this quantile are anomalies (default: top 5%).
    """
    if not 0.0 < quantile < 1.0:
        raise ValueError("quantile must be in (0, 1)")
    embeddings = model.embed(list(trajectories))
    scores = knn_outlier_scores(embeddings, k=k)
    threshold = float(np.quantile(scores, quantile))
    flagged = np.flatnonzero(scores > threshold)
    order = np.argsort(-scores[flagged], kind="stable")
    return AnomalyResult(scores=scores, threshold=threshold,
                         anomalies=flagged[order])
