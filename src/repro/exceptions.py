"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class InvalidTrajectoryError(ReproError):
    """A trajectory failed validation (wrong shape, too short, non-finite)."""


class ConfigurationError(ReproError):
    """A configuration value is invalid or inconsistent."""


class NotFittedError(ReproError):
    """A model method requiring training was called before ``fit``."""
