"""Unit tests for the breaker / retry / admission primitives.

All time-dependent behaviour runs on injected fake clocks — nothing here
sleeps or depends on scheduler luck.
"""

import pytest

from repro.exceptions import ServiceOverloadedError
from repro.resilience import AdmissionGate, CircuitBreaker, RetryPolicy

pytestmark = pytest.mark.faults


# ------------------------------------------------------------ circuit breaker

class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_breaker_trips_after_consecutive_failures():
    breaker = CircuitBreaker(failure_threshold=3, clock=_Clock())
    for _ in range(2):
        breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == "open"
    assert not breaker.allow()


def test_success_resets_the_failure_streak():
    breaker = CircuitBreaker(failure_threshold=2, clock=_Clock())
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == "closed"  # streak broken, never reached 2


def test_half_open_probe_then_close():
    clock = _Clock()
    transitions = []
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=10.0,
                             clock=clock,
                             on_transition=lambda a, b: transitions.append(
                                 (a, b)))
    breaker.record_failure()
    assert breaker.state == "open"
    clock.now = 5.0
    assert not breaker.allow()          # still inside the open window
    clock.now = 11.0
    assert breaker.state == "half_open"
    assert breaker.allow()              # the single probe slot
    assert not breaker.allow()          # no second probe
    breaker.record_success()
    assert breaker.state == "closed"
    assert ("closed", "open") in transitions
    assert ("open", "half_open") in transitions
    assert ("half_open", "closed") in transitions


def test_half_open_failure_reopens():
    clock = _Clock()
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=10.0,
                             clock=clock)
    breaker.record_failure()
    clock.now = 11.0
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == "open"
    clock.now = 12.0
    assert not breaker.allow()          # the open window restarted


def test_breaker_stats_shape():
    breaker = CircuitBreaker(failure_threshold=2)
    stats = breaker.stats()
    assert stats["state"] == "closed"
    assert stats["failure_threshold"] == 2
    assert stats["transitions"] == 0


# ------------------------------------------------------------------- retries

def test_retry_delays_grow_and_cap():
    policy = RetryPolicy(max_retries=5, base_delay_s=0.1, multiplier=2.0,
                         max_delay_s=0.5)
    delays = [policy.delay(i) for i in range(1, 6)]
    assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]


def test_retry_attempts_are_one_based():
    policy = RetryPolicy()
    with pytest.raises(ValueError, match="1-based"):
        policy.delay(0)


def test_retry_sleep_uses_injected_sleeper():
    slept = []
    policy = RetryPolicy(max_retries=2, base_delay_s=0.25, multiplier=2.0)
    policy.sleep(1, sleep=slept.append)
    policy.sleep(2, sleep=slept.append)
    assert slept == [0.25, 0.5]


# ------------------------------------------------------------------ admission

def test_unlimited_gate_never_sheds():
    gate = AdmissionGate(0)
    for _ in range(100):
        assert gate.try_acquire()
    assert gate.stats()["shed"] == 0


def test_bounded_gate_sheds_and_recovers():
    gate = AdmissionGate(2)
    assert gate.try_acquire()
    assert gate.try_acquire()
    assert not gate.try_acquire()
    assert gate.stats()["shed"] == 1
    gate.release()
    assert gate.try_acquire()
    stats = gate.stats()
    assert stats["in_flight"] == 2
    assert stats["admitted"] == 3


def test_admit_context_releases_on_exception():
    gate = AdmissionGate(1)
    with pytest.raises(RuntimeError):
        with gate.admit("test"):
            raise RuntimeError("boom")
    assert gate.stats()["in_flight"] == 0
    with gate.admit("test"):
        with pytest.raises(ServiceOverloadedError, match="shed"):
            with gate.admit("test"):
                pass
    assert gate.stats()["in_flight"] == 0
