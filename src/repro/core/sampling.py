"""Distance-weighted pair sampling (paper §V-B, inspired by [21]).

For each anchor seed ``a`` the sampler draws, from the similarity matrix row
``I_a = S[a]``:

* ``n`` distinct *similar* samples with probabilities proportional to
  ``I_a`` (spatially close seeds are picked more often), ranked by
  decreasing similarity, and
* ``n`` distinct *dissimilar* samples with probabilities proportional to
  ``1 - I_a``, ranked by increasing similarity.

The NT-No-WS ablation replaces the importance weights with uniform ones but
keeps the identical list construction, isolating the effect of weighting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class AnchorSamples:
    """Sampled training lists for one anchor.

    ``similar``/``dissimilar`` are seed indices; ``similar_truth`` /
    ``dissimilar_truth`` the corresponding ground-truth similarities, in
    ranked order (decreasing for similar, increasing for dissimilar).
    """

    anchor: int
    similar: np.ndarray
    dissimilar: np.ndarray
    similar_truth: np.ndarray
    dissimilar_truth: np.ndarray


class PairSampler:
    """Samples ranked similar/dissimilar lists from a similarity matrix.

    Parameters
    ----------
    similarity_matrix:
        (N, N) row-normalised seed similarity matrix ``S``.
    sampling_num:
        ``n`` samples per list.
    weighted:
        Distance-weighted sampling (True) or uniform (NT-No-WS ablation).
    rng:
        Source of randomness.
    """

    def __init__(self, similarity_matrix: np.ndarray, sampling_num: int,
                 weighted: bool, rng: np.random.Generator):
        s = np.asarray(similarity_matrix, dtype=np.float64)
        if s.ndim != 2 or s.shape[0] != s.shape[1]:
            raise ValueError("similarity matrix must be square")
        n = s.shape[0]
        if sampling_num >= n:
            raise ValueError(
                f"sampling_num={sampling_num} needs at least {sampling_num + 1} seeds")
        self.similarity = s
        self.sampling_num = int(sampling_num)
        self.weighted = bool(weighted)
        self.rng = rng

    def _draw(self, weights: np.ndarray, exclude: int) -> np.ndarray:
        """Sample ``n`` distinct indices != exclude by importance weights."""
        w = weights.copy()
        w[exclude] = 0.0
        w = np.clip(w, 0.0, None)
        total = w.sum()
        if not self.weighted or total <= 0:
            w = np.ones_like(w)
            w[exclude] = 0.0
            total = w.sum()
        probabilities = w / total
        return self.rng.choice(len(w), size=self.sampling_num,
                               replace=False, p=probabilities)

    def sample(self, anchor: int) -> AnchorSamples:
        """Draw and rank the 2n training pairs for ``anchor``."""
        row = self.similarity[anchor]
        similar = self._draw(row, anchor)
        dissimilar = self._draw(1.0 - row, anchor)
        # Rank: similar by decreasing similarity, dissimilar by increasing.
        similar = similar[np.argsort(-row[similar], kind="stable")]
        dissimilar = dissimilar[np.argsort(row[dissimilar], kind="stable")]
        return AnchorSamples(
            anchor=anchor,
            similar=similar,
            dissimilar=dissimilar,
            similar_truth=row[similar].copy(),
            dissimilar_truth=row[dissimilar].copy(),
        )


def rank_weights(n: int) -> np.ndarray:
    """Normalised reciprocal-rank weights ``(1, 1/2, ..., 1/n)`` (paper §V-B)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    raw = 1.0 / np.arange(1, n + 1)
    return raw / raw.sum()
