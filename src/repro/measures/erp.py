"""Edit distance with Real Penalty (Chen & Ng, VLDB'04).

ERP is an edit distance where matching costs the point distance and a
skip costs the distance to a fixed *gap* point ``g``. Unlike DTW it is a
metric (satisfies the triangle inequality), which is why the paper groups it
with Fréchet and Hausdorff.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ._batch import erp_many
from ._dp import erp_table
from .base import (TrajectoryMeasure, check_pair, point_distances,
                   register_measure)


@register_measure("erp")
class ERPDistance(TrajectoryMeasure):
    """Exact ERP distance.

    Parameters
    ----------
    gap:
        The reference gap point ``g``. Chen & Ng use the origin; for
        datasets far from the origin pass e.g. the dataset centroid so skip
        costs stay comparable to match costs.
    """

    is_metric = True

    def __init__(self, gap: Optional[Sequence[float]] = None):
        self.gap = (np.zeros(2, dtype=np.float64) if gap is None
                    else np.asarray(gap, dtype=np.float64))
        if self.gap.shape != (2,):
            raise ValueError("gap point must have shape (2,)")

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        check_pair(a, b)
        cost = point_distances(a, b)
        gap_a = np.linalg.norm(a - self.gap, axis=1)
        gap_b = np.linalg.norm(b - self.gap, axis=1)
        table = erp_table(cost, gap_a, gap_b)
        return float(table[-1, -1])

    def distance_many(self, pairs_a, pairs_b) -> np.ndarray:
        pairs_a = [np.asarray(a, dtype=np.float64) for a in pairs_a]
        pairs_b = [np.asarray(b, dtype=np.float64) for b in pairs_b]
        for a, b in zip(pairs_a, pairs_b):
            check_pair(a, b)
        return erp_many(pairs_a, pairs_b, self.gap)
