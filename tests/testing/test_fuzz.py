"""Fuzz harness self-tests + the tier-1 fuzz smoke budget.

The ``fuzz``-marked classes run every registered measure and a small
trained encoder through the metamorphic invariant checks with a fixed
seed and a small case budget, so tier-1 stays fast but every release
still sweeps the adversarial corpus.
"""

import numpy as np
import pytest

from repro import NeuTraj, NeuTrajConfig, PortoConfig, generate_porto
from repro.dataquality import SanitizeConfig, sanitize
from repro.exceptions import InvalidTrajectoryError
from repro.measures import available_measures, get_measure
from repro.testing.fuzz import (adversarial_arrays, check_encoder_invariants,
                                check_measure_invariants, corrupt,
                                random_walks)


class TestGenerators:
    def test_adversarial_cases_are_stable(self):
        first = adversarial_arrays()
        second = adversarial_arrays()
        assert [name for name, _ in first] == [name for name, _ in second]
        for (_, a), (_, b) in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_random_walks_seeded(self):
        a = random_walks(seed=3, count=4)
        b = random_walks(seed=3, count=4)
        assert len(a) == 4
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)
            assert len(x) >= 2
            assert np.isfinite(x).all()
        assert not np.array_equal(random_walks(seed=4, count=1)[0], a[0])

    def test_random_walks_rejects_min_len_below_two(self):
        with pytest.raises(ValueError):
            random_walks(seed=0, min_len=1)

    def test_corrupt_is_seeded_and_reported(self):
        base = random_walks(seed=5, count=1, min_len=10)[0]
        dirty1, kinds1 = corrupt(base, np.random.default_rng(9))
        dirty2, kinds2 = corrupt(base, np.random.default_rng(9))
        np.testing.assert_array_equal(dirty1, dirty2)
        assert kinds1 == kinds2 and 1 <= len(kinds1) <= 3

    def test_corrupted_walks_sanitize_clean(self):
        cfg = SanitizeConfig(max_jump=100.0)
        rng = np.random.default_rng(17)
        for i, base in enumerate(random_walks(seed=17, count=6, min_len=10)):
            dirty, kinds = corrupt(base, rng)
            traj, report = sanitize(dirty, cfg, traj_id=f"dirty-{i}")
            assert np.isfinite(traj.points).all()
            assert report.modified or not kinds


@pytest.mark.fuzz
class TestMeasureInvariants:
    @pytest.mark.parametrize("name", available_measures())
    def test_invariants_hold(self, name):
        violations = check_measure_invariants(get_measure(name), seed=42,
                                              count=5)
        assert violations == []

    def test_detects_broken_measure(self):
        class Broken:
            name = "broken"

            def distance(self, a, b):
                return float(len(a) - len(b))  # asymmetric, negative

        violations = check_measure_invariants(Broken(), seed=1, count=3)
        assert violations  # must flag symmetry/negativity/typed-rejection


@pytest.mark.fuzz
class TestEncoderInvariants:
    @pytest.fixture(scope="class")
    def model(self):
        ds = generate_porto(PortoConfig(num_trajectories=12, min_points=6,
                                        max_points=10), seed=2)
        model = NeuTraj(NeuTrajConfig(measure="hausdorff", embedding_dim=8,
                                      epochs=1, sampling_num=3,
                                      batch_anchors=6, cell_size=500.0,
                                      seed=3))
        model.fit(list(ds))
        return model

    def test_encoder_invariants_hold(self, model):
        violations = check_encoder_invariants(model.embed, seed=7, count=4)
        assert violations == []

    def test_sanitized_adversarial_inputs_embed_finite(self, model):
        for case, arr in adversarial_arrays():
            try:
                traj, _ = sanitize(arr, SanitizeConfig(),
                                   traj_id=f"adv-{case}")
            except InvalidTrajectoryError:
                continue
            emb = model.embed([traj])
            assert np.isfinite(emb).all(), case
