"""WAL codec, recovery, group-commit, tailer and snapshot tests.

The fuzz half enforces the damage contract at every byte: truncation
anywhere in the log is a *torn tail* (recovered silently to the longest
valid prefix, never an exception), while damage with a valid record
after it is *corruption* (typed error, never a silent drop of an acked
record).
"""

import threading

import numpy as np
import pytest

from repro.exceptions import CorruptArtifactError, WALCorruptionError
from repro.serving.wal import (OP_DELETE, OP_INSERT, ShardDurability,
                               ShardWAL, WALGapError, WALTailer, crc32c,
                               encode_record, list_segments, scan_buffer)
from repro.testing.faults import CorruptionSpec

pytestmark = pytest.mark.durability

DIM = 4


def _records_blob(n=3, seed=7):
    """n encoded records (alternating insert/delete) and their boundaries."""
    rng = np.random.default_rng(seed)
    blob = b""
    bounds = []
    for lsn in range(1, n + 1):
        ids = np.arange(lsn * 10, lsn * 10 + 3, dtype=np.int64)
        if lsn % 2:
            rec = encode_record(lsn, OP_INSERT, ids,
                                rng.standard_normal((3, DIM)))
        else:
            rec = encode_record(lsn, OP_DELETE, ids)
        blob += rec
        bounds.append(len(blob))
    return blob, bounds


# ------------------------------------------------------------------- crc32c


def test_crc32c_rfc_vectors():
    # RFC 3720 / RFC 7143 CRC32C test vectors.
    assert crc32c(b"123456789") == 0xE3069283
    assert crc32c(b"\x00" * 32) == 0x8A9136AA
    assert crc32c(b"\xff" * 32) == 0x62A8AB43
    assert crc32c(b"") == 0


def test_crc32c_vectorized_matches_scalar_and_chains():
    rng = np.random.default_rng(3)
    data = rng.integers(0, 256, size=100_000, dtype=np.uint8).tobytes()
    # Below the vectorization threshold the scalar loop runs; force both
    # paths over the same bytes and compare.
    want = 0
    for i in range(0, len(data), 1024):
        want = crc32c(data[i:i + 1024], want)  # scalar path, chained
    assert crc32c(data) == want  # vectorized path, one shot


# -------------------------------------------------------------------- codec


def test_encode_decode_roundtrip():
    blob, _ = _records_blob(n=4)
    records, end, damage = scan_buffer(blob)
    assert damage is None and end == len(blob)
    assert [r.lsn for r in records] == [1, 2, 3, 4]
    assert records[0].op == OP_INSERT
    assert records[0].embeddings.shape == (3, DIM)
    assert records[1].op == OP_DELETE
    assert records[1].embeddings is None
    assert records[1].ids.tolist() == [20, 21, 22]


def test_scan_empty_buffer():
    assert scan_buffer(b"") == ([], 0, None)


def test_truncation_at_every_byte_offset_is_torn_never_corrupt():
    blob, bounds = _records_blob(n=3)
    for cut in range(len(blob) + 1):
        records, valid_end, damage = scan_buffer(blob[:cut])
        whole = sum(1 for b in bounds if b <= cut)
        assert len(records) == whole  # longest valid prefix, exactly
        assert valid_end == (bounds[whole - 1] if whole else 0)
        if cut in (0, *bounds):
            assert damage is None  # clean cut on a record boundary
        else:
            assert damage == "torn"


def test_bit_flip_in_last_record_is_torn_elsewhere_corrupt():
    blob, bounds = _records_blob(n=3)
    for offset in range(len(blob)):
        flipped = bytearray(blob)
        flipped[offset] ^= 0xFF
        records, _, damage = scan_buffer(bytes(flipped))
        if offset >= bounds[1]:  # damage inside the final record
            assert damage == "torn"
            assert [r.lsn for r in records] == [1, 2]
        else:  # valid records follow the damage: must refuse to guess
            assert damage == "corrupt"


# ----------------------------------------------------------- ShardWAL open


def _write_segment(directory, blob, first_lsn=1):
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"wal-{first_lsn:020d}.log"
    path.write_bytes(blob)
    return path


def test_wal_recovers_truncated_tail_at_many_offsets(tmp_path):
    blob, bounds = _records_blob(n=3)
    for cut in range(0, len(blob) + 1, 5):
        directory = tmp_path / f"cut-{cut}"
        _write_segment(directory, blob[:cut])
        wal = ShardWAL(directory)  # must never raise on a torn tail
        recovered = wal.drain_recovered()
        whole = sum(1 for b in bounds if b <= cut)
        assert [r.lsn for r in recovered] == list(range(1, whole + 1))
        # The log stays appendable right where the valid prefix ended.
        lsn = wal.append(OP_DELETE, np.array([99], dtype=np.int64))
        assert lsn == whole + 1
        wal.close()


def test_wal_open_raises_on_mid_log_corruption(tmp_path):
    blob, bounds = _records_blob(n=3)
    path = _write_segment(tmp_path / "wal", blob)
    CorruptionSpec(mode="flip", offset=bounds[0] + 4).apply(path)
    with pytest.raises(WALCorruptionError):
        ShardWAL(tmp_path / "wal")


def test_wal_empty_directory_starts_at_lsn_one(tmp_path):
    wal = ShardWAL(tmp_path / "wal")
    assert wal.drain_recovered() == []
    assert wal.append(OP_DELETE, np.array([1], dtype=np.int64)) == 1
    wal.close()


def test_wal_rotation_and_multi_segment_recovery(tmp_path):
    wal = ShardWAL(tmp_path / "wal", segment_bytes=256)
    for i in range(1, 12):
        wal.append(OP_DELETE, np.arange(i, dtype=np.int64))
    wal.close()
    assert len(list_segments(tmp_path / "wal")) > 1
    reopened = ShardWAL(tmp_path / "wal", segment_bytes=256)
    assert [r.lsn for r in reopened.drain_recovered()] == list(range(1, 12))
    assert reopened.append(OP_DELETE, np.array([0], dtype=np.int64)) == 12
    reopened.close()


def test_wal_valid_records_after_torn_segment_are_corruption(tmp_path):
    blob, bounds = _records_blob(n=2)
    # Segment 1 ends torn; segment 2 holds a later valid record.
    _write_segment(tmp_path / "wal", blob[:bounds[0] + 3], first_lsn=1)
    later = encode_record(5, OP_DELETE, np.array([1], dtype=np.int64))
    _write_segment(tmp_path / "wal", later, first_lsn=5)
    with pytest.raises(WALCorruptionError):
        ShardWAL(tmp_path / "wal")


def test_wal_group_commit_acks_are_durable(tmp_path):
    wal = ShardWAL(tmp_path / "wal", fsync_window_ms=4.0)
    acked = []
    lock = threading.Lock()

    def writer(base):
        for i in range(5):
            lsn = wal.append(OP_DELETE,
                             np.array([base * 100 + i], dtype=np.int64))
            assert wal.durable_lsn >= lsn  # ack implies fsynced
            with lock:
                acked.append(lsn)

    threads = [threading.Thread(target=writer, args=(t,)) for t in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    stats = wal.stats()
    wal.close()
    assert sorted(acked) == list(range(1, 21))
    # Group commit must have batched at least some of the 20 fsyncs.
    assert 1 <= stats["fsyncs"] < 20
    reopened = ShardWAL(tmp_path / "wal")
    assert len(reopened.drain_recovered()) == 20
    reopened.close()


# ------------------------------------------------------------------ tailer


def test_tailer_polls_incrementally_and_stops_at_torn_tail(tmp_path):
    wal = ShardWAL(tmp_path / "wal")
    tailer = WALTailer(tmp_path / "wal")
    wal.append(OP_DELETE, np.array([1], dtype=np.int64))
    assert [r.lsn for r in tailer.poll()] == [1]
    assert tailer.poll() == []  # nothing new
    wal.append(OP_DELETE, np.array([2], dtype=np.int64))
    wal.close()
    # Tear the tail on disk: the tailer just waits, it never repairs.
    segment = list_segments(tmp_path / "wal")[-1]
    blob = segment.read_bytes()
    segment.write_bytes(blob + b"\x57\x41")  # half a magic, mid-write
    assert [r.lsn for r in tailer.poll()] == [2]
    assert segment.read_bytes() == blob + b"\x57\x41"  # untouched


def test_tailer_raises_gap_after_truncation_past_reader(tmp_path):
    wal = ShardWAL(tmp_path / "wal")
    for i in range(1, 4):
        wal.append(OP_DELETE, np.array([i], dtype=np.int64))
    tailer = WALTailer(tmp_path / "wal")  # never polled: cursor at 0
    wal.truncate_through(3)
    wal.append(OP_DELETE, np.array([9], dtype=np.int64))  # lsn 4
    with pytest.raises(WALGapError):
        tailer.poll()


# --------------------------------------------------------------- snapshots


def _save_fn(rows):
    def save(path):
        np.savez(path, embeddings=np.zeros((rows, DIM)),
                 ids=np.arange(rows, dtype=np.int64),
                 next_id=np.array(rows))
    return save


def test_snapshot_commit_cycle_truncates_wal(tmp_path):
    wal = ShardWAL(tmp_path / "d")
    for i in range(1, 4):
        wal.append(OP_DELETE, np.array([i], dtype=np.int64))
    dur = ShardDurability(tmp_path / "d", base_tag="base-1")
    manifest = dur.commit_snapshot(_save_fn(5), count=5, next_id=5,
                                   applied_lsn=3, wal=wal)
    wal.close()
    assert manifest["generation"] == 1
    assert dur.snapshot_path() is not None
    # WAL truncated: a fresh reader sees nothing before lsn 4.
    reopened = ShardWAL(tmp_path / "d")
    assert reopened.drain_recovered() == []
    assert reopened.append(OP_DELETE, np.array([0], dtype=np.int64)) == 4
    reopened.close()
    # Second generation replaces the first snapshot file.
    dur2 = ShardDurability(tmp_path / "d", base_tag="base-1")
    assert dur2.applied_lsn == 3
    dur2.commit_snapshot(_save_fn(6), count=6, next_id=6, applied_lsn=4)
    assert dur2.generation == 2
    snaps = list((tmp_path / "d").glob("snapshot-*.npz"))
    assert [p.name for p in snaps] == ["snapshot-000002.npz"]


def test_snapshot_sha256_mismatch_is_typed_error(tmp_path):
    dur = ShardDurability(tmp_path / "d", base_tag="b")
    dur.commit_snapshot(_save_fn(2), count=2, next_id=2, applied_lsn=0)
    CorruptionSpec(mode="flip", offset=None).apply(
        tmp_path / "d" / dur.manifest["file"])
    fresh = ShardDurability(tmp_path / "d", base_tag="b")
    with pytest.raises(CorruptArtifactError):
        fresh.snapshot_path()


def test_base_tag_mismatch_resets_primary_but_not_replica(tmp_path):
    wal = ShardWAL(tmp_path / "d")
    wal.append(OP_DELETE, np.array([1], dtype=np.int64))
    wal.close()
    dur = ShardDurability(tmp_path / "d", base_tag="base-old")
    dur.commit_snapshot(_save_fn(2), count=2, next_id=2, applied_lsn=1)
    # Replica with a new base tag must leave the shared files alone.
    replica = ShardDurability(tmp_path / "d", base_tag="base-new",
                              read_only=True)
    assert replica.manifest is None
    assert (tmp_path / "d" / "SNAPSHOT.json").exists()
    # Primary with a new base tag owns the reset.
    primary = ShardDurability(tmp_path / "d", base_tag="base-new")
    assert primary.manifest is None
    assert not (tmp_path / "d" / "SNAPSHOT.json").exists()
    assert list((tmp_path / "d").glob("snapshot-*.npz")) == []
