"""exception-hygiene: no silent broad catches.

``except Exception`` has legitimate uses at process boundaries (turn
anything into a typed error, answer *something* over HTTP, keep a worker
thread alive) — but every one of them must do something with the error.
This rule flags:

* bare ``except:`` — always;
* ``except Exception`` / ``except BaseException`` handlers that neither
  **re-raise** (any ``raise`` in the body, including wrapping into the
  :mod:`repro.exceptions` hierarchy), **use the bound exception**
  (``except ... as exc`` with ``exc`` referenced — forwarding it to a
  future, formatting it into a response, stashing it), nor **record it**
  (a ``logger.exception/error/warning/...`` call in the body).

Narrowing the handler to the typed exceptions the call can actually
raise is always the preferred fix; the record path exists for
keep-alive handlers (observer callbacks, daemon loops) where any
failure must be swallowed but never silently.
"""

from __future__ import annotations

import ast
from typing import List

from . import register
from .base import ModuleContext, Rule

_BROAD_NAMES = frozenset({"Exception", "BaseException"})

_RECORD_METHODS = frozenset({"exception", "error", "warning", "warn",
                             "critical", "log", "debug", "info"})


def _broad_name(type_node: ast.AST) -> str:
    """'Exception'/'BaseException' if the except type includes one."""
    nodes = type_node.elts if isinstance(type_node, ast.Tuple) \
        else [type_node]
    for node in nodes:
        if isinstance(node, ast.Name) and node.id in _BROAD_NAMES:
            return node.id
    return ""


@register
class ExceptionHygiene(Rule):
    rule_id = "exception-hygiene"
    description = ("broad except handlers must re-raise, wrap into the "
                   "repro.exceptions hierarchy, use the caught exception, "
                   "or log it; bare except is banned")
    default_options = {}

    def check(self, ctx: ModuleContext) -> List:
        out = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                out.append(ctx.finding(
                    self.rule_id, node,
                    "bare `except:` catches SystemExit/KeyboardInterrupt "
                    "too; name the exceptions (at minimum `Exception`) "
                    "and handle them"))
                continue
            broad = _broad_name(node.type)
            if not broad or self._handles(node):
                continue
            out.append(ctx.finding(
                self.rule_id, node,
                f"`except {broad}` that neither re-raises, uses the "
                f"exception, nor records it; narrow to typed exceptions "
                f"or log before swallowing"))
        return out

    @staticmethod
    def _handles(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if handler.name and isinstance(node, ast.Name) \
                    and node.id == handler.name:
                return True
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _RECORD_METHODS:
                return True
        return False
