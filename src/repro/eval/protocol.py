"""The paper's top-k search evaluation protocol (Tables II & III).

Given a query set and a database with exact query->database distances, a
method produces a ranked candidate list per query; this module aggregates
HR@10, HR@50, R10@50 and the two distance distortions delta_H10 / delta_R10
exactly as defined in §VII-A4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from .knn import top_k_from_distances
from .metrics import distortion, hitting_ratio, recall_at, refined_top


@dataclass(frozen=True)
class SearchQuality:
    """Aggregated search-quality metrics over a query set."""

    hr10: float
    hr50: float
    r10_at_50: float
    delta_h10: float
    delta_r10: float

    def row(self) -> str:
        """Render as a table row matching the paper's format."""
        return (f"HR@10={self.hr10:.4f}  HR@50={self.hr50:.4f}  "
                f"R10@50={self.r10_at_50:.4f}  "
                f"δH10/δR10={self.delta_h10:.0f}/{self.delta_r10:.0f}")


def evaluate_ranking(exact_distances: np.ndarray,
                     predicted_rankings: Sequence[Sequence[int]],
                     k_small: int = 10, k_large: int = 50) -> SearchQuality:
    """Score predicted rankings against exact query->database distances.

    Parameters
    ----------
    exact_distances:
        (Q, N) exact distances; row q defines query q's ground truth.
    predicted_rankings:
        Per query, a ranked list of at least ``k_large`` database indices.
    """
    exact_distances = np.asarray(exact_distances, dtype=np.float64)
    if len(predicted_rankings) != exact_distances.shape[0]:
        raise ValueError("one predicted ranking per query is required")
    hr10s, hr50s, recalls, d_h10, d_r10 = [], [], [], [], []
    for q, ranking in enumerate(predicted_rankings):
        ranking = list(ranking)
        if len(ranking) < k_large:
            raise ValueError(
                f"query {q}: ranking shorter than k_large={k_large}")
        truth_large = top_k_from_distances(exact_distances[q], k_large)
        truth_small = truth_large[:k_small]
        pred_small = ranking[:k_small]
        pred_large = ranking[:k_large]
        hr10s.append(hitting_ratio(pred_small, truth_small))
        hr50s.append(hitting_ratio(pred_large, truth_large))
        recalls.append(recall_at(pred_large, truth_small))
        d_h10.append(distortion(exact_distances[q], pred_small, truth_small,
                                top=k_small))
        refined = refined_top(exact_distances[q], pred_large, top=k_small)
        d_r10.append(distortion(exact_distances[q], refined, truth_small,
                                top=k_small))
    return SearchQuality(
        hr10=float(np.mean(hr10s)),
        hr50=float(np.mean(hr50s)),
        r10_at_50=float(np.mean(recalls)),
        delta_h10=float(np.mean(d_h10)),
        delta_r10=float(np.mean(d_r10)),
    )


def rankings_from_matrix(method_distances: np.ndarray,
                         k: int = 50) -> list:
    """Convert a (Q, N) approximate-distance matrix into top-k rankings."""
    method_distances = np.asarray(method_distances, dtype=np.float64)
    return [top_k_from_distances(row, k) for row in method_distances]
