"""Evaluation metrics for top-k similarity search (paper §VII-A4).

* ``hitting_ratio`` — HR@k: overlap fraction between the predicted and the
  ground-truth top-k lists.
* ``recall_at`` — R10@50 style: fraction of the true top-``k_true`` found
  anywhere in the predicted top-``k_pred``.
* ``distortion`` — delta_H10 / delta_R10: how much larger the average exact
  distance of the returned top-10 is compared to the ground truth top-10.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def hitting_ratio(predicted: Sequence[int], truth: Sequence[int]) -> float:
    """HR@k = |predicted ∩ truth| / k with k = len(truth)."""
    truth = list(truth)
    if not truth:
        raise ValueError("ground truth list is empty")
    overlap = len(set(predicted) & set(truth))
    return overlap / len(truth)


def recall_at(predicted: Sequence[int], truth: Sequence[int]) -> float:
    """Fraction of ``truth`` recovered anywhere in ``predicted``.

    With ``len(truth)=10`` and ``len(predicted)=50`` this is the paper's
    R10@50.
    """
    truth_set = set(truth)
    if not truth_set:
        raise ValueError("ground truth list is empty")
    return len(truth_set & set(predicted)) / len(truth_set)


def distortion(query_distances: np.ndarray, predicted: Sequence[int],
               truth: Sequence[int], top: int = 10) -> float:
    """delta: mean exact distance of predicted top-``top`` minus truth's.

    Parameters
    ----------
    query_distances:
        Exact distances from the query to every database trajectory.
    predicted / truth:
        Ranked candidate index lists (at least ``top`` long).
    """
    query_distances = np.asarray(query_distances, dtype=np.float64)
    pred_top = list(predicted)[:top]
    true_top = list(truth)[:top]
    if len(pred_top) < top or len(true_top) < top:
        raise ValueError(f"need at least top={top} entries in both lists")
    return float(query_distances[pred_top].mean()
                 - query_distances[true_top].mean())


def refined_top(query_distances: np.ndarray, predicted: Sequence[int],
                top: int = 10) -> np.ndarray:
    """Re-rank a candidate list by exact distance, keep the best ``top``.

    Used for delta_R10: take the predicted top-50, re-rank them by their
    exact distances, then measure distortion of the best 10.
    """
    candidates = np.asarray(list(predicted), dtype=int)
    order = np.argsort(np.asarray(query_distances)[candidates], kind="stable")
    return candidates[order[:top]]


def mean_over_queries(values: Sequence[float]) -> float:
    """Average a per-query metric, validating non-emptiness."""
    values = list(values)
    if not values:
        raise ValueError("no query results to average")
    return float(np.mean(values))
