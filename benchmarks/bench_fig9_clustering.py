"""Figure 9 — DBSCAN trajectory clustering: exact vs embedding distances.

Expected shape (paper): the number of clusters under embedding distances
tracks the exact-distance curve across the epsilon sweep, and partition
agreement (homogeneity / completeness / V-measure / ARI) is high at the
well-clustered settings (paper: best values > 0.8).
"""

import numpy as np
import pytest

from repro.clustering import dbscan
from repro.experiments import format_table, run_clustering
from repro.measures import pairwise_distances, get_measure


@pytest.fixture(scope="module")
def fig9(porto_workload):
    max_items = min(len(porto_workload.database), 150)
    return run_clustering(porto_workload, "frechet", max_items=max_items)


def test_fig9_clustering(benchmark, fig9, porto_workload, report,
                         strict_shapes):
    # Kernel: one DBSCAN run on a precomputed matrix.
    items = porto_workload.database[:60]
    matrix = pairwise_distances(items, get_measure("hausdorff"))
    eps = float(np.quantile(matrix[~np.eye(len(items), dtype=bool)], 0.05))
    benchmark(lambda: dbscan(matrix, eps, 5))

    rows = [[f"{p.eps_quantile:.2f}", f"{p.eps_exact:.0f}",
             f"{p.eps_embed:.3f}", p.clusters_exact, p.clusters_embed,
             f"{p.homogeneity:.3f}", f"{p.completeness:.3f}",
             f"{p.v_measure:.3f}", f"{p.ari:.3f}"] for p in fig9]
    report("fig9_clustering",
           format_table("Fig 9: DBSCAN clustering, exact vs embedding "
                        "(Fréchet, min_pts=5)",
                        ["quantile", "eps_exact", "eps_embed", "#cl_exact",
                         "#cl_embed", "homog", "compl", "V", "ARI"], rows))

    # Shape: cluster counts move in the same direction across the sweep and
    # the best agreement is substantial.
    exact_counts = [p.clusters_exact for p in fig9]
    embed_counts = [p.clusters_embed for p in fig9]
    if strict_shapes:
        assert max(p.v_measure for p in fig9) > 0.5
        assert max(p.ari for p in fig9) > 0.3
    # Both sweeps produce non-trivial clusterings somewhere.
    if strict_shapes:
        assert max(exact_counts) >= 2
        assert max(embed_counts) >= 2
