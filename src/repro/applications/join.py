"""Trajectory similarity join accelerated by NeuTraj embeddings.

A similarity join returns every pair of trajectories within a distance
threshold — one of the all-pairs tasks the paper motivates NeuTraj with
(§I: "tasks that require the distances between all trajectory pairs").
The pipeline is filter-and-refine:

1. **filter** — compute all embedding distances (O(N² d), cheap) and keep
   pairs whose embedding distance is below a learned/candidate threshold,
2. **refine** — evaluate the exact measure only on the surviving pairs.

The embedding threshold is calibrated from the seed distance matrix so the
filter reaches a target recall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..core.model import MetricModel
from ..measures.base import TrajectoryMeasure


@dataclass(frozen=True)
class JoinResult:
    """Output of :func:`similarity_join`."""

    pairs: List[Tuple[int, int]]          # refined pairs (i < j)
    num_candidates: int                   # pairs surviving the filter
    num_exact_computations: int           # refine-stage measure calls


def calibrate_threshold(model: MetricModel, seeds: Sequence,
                        seed_distances: np.ndarray, distance_threshold: float,
                        target_recall: float = 0.95) -> float:
    """Embedding-space threshold achieving ``target_recall`` on the seeds.

    Looks at seed pairs whose exact distance is within
    ``distance_threshold`` and picks the embedding-distance quantile that
    keeps ``target_recall`` of them.
    """
    if not 0.0 < target_recall <= 1.0:
        raise ValueError("target_recall must be in (0, 1]")
    from ..eval import embedding_distance_matrix
    embedding_d = embedding_distance_matrix(model.embed(list(seeds)))
    n = len(embedding_d)
    iu = np.triu_indices(n, k=1)
    close = seed_distances[iu] <= distance_threshold
    if not np.any(close):
        # No positive pairs to calibrate on: fall back to the median.
        return float(np.median(embedding_d[iu]))
    positives = embedding_d[iu][close]
    return float(np.quantile(positives, target_recall))


def similarity_join(model: MetricModel, trajectories: Sequence,
                    measure: TrajectoryMeasure, distance_threshold: float,
                    embedding_threshold: float) -> JoinResult:
    """All pairs within ``distance_threshold`` under ``measure``.

    ``embedding_threshold`` gates the filter stage (use
    :func:`calibrate_threshold`); only filtered pairs pay the exact
    measure.
    """
    from ..eval import embedding_distance_matrix
    items = list(trajectories)
    embedding_d = embedding_distance_matrix(model.embed(items))
    n = len(items)
    iu, ju = np.triu_indices(n, k=1)
    mask = embedding_d[iu, ju] <= embedding_threshold
    candidates = list(zip(iu[mask].tolist(), ju[mask].tolist()))

    pairs = []
    for i, j in candidates:
        if measure(items[i], items[j]) <= distance_threshold:
            pairs.append((i, j))
    return JoinResult(pairs=pairs, num_candidates=len(candidates),
                      num_exact_computations=len(candidates))


def exact_join(trajectories: Sequence, measure: TrajectoryMeasure,
               distance_threshold: float) -> List[Tuple[int, int]]:
    """Brute-force reference join (O(N²) exact computations)."""
    items = list(trajectories)
    out = []
    for i in range(len(items)):
        for j in range(i + 1, len(items)):
            if measure(items[i], items[j]) <= distance_threshold:
                out.append((i, j))
    return out
