"""Circuit breaker for repeatedly failing dependencies.

Classic three-state breaker (Nygard, *Release It!*), used by the serving
layer to stop hammering a failing encoder and degrade to the grid-index
approximate path instead:

* **closed** — requests flow; consecutive failures are counted and
  ``failure_threshold`` of them trip the breaker.
* **open** — requests are refused (``allow()`` is False) until
  ``reset_timeout_s`` has elapsed, then the breaker moves to half-open.
* **half-open** — up to ``half_open_max`` probe requests are let through;
  one success closes the breaker, one failure re-opens it (and restarts
  the timeout).

The clock is injectable so state transitions are testable without real
waiting, and every transition can be observed via ``on_transition`` (the
serving layer increments a metric there).
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Callable, Dict, Optional

from ..exceptions import ConfigurationError

__all__ = ["CircuitBreaker"]

_LOG = logging.getLogger(__name__)

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Thread-safe closed/open/half-open circuit breaker.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures (while closed) that trip the breaker.
    reset_timeout_s:
        Seconds the breaker stays open before allowing probe requests.
    half_open_max:
        Probe requests admitted per half-open window.
    clock:
        Monotonic time source (injectable for tests).
    on_transition:
        Optional ``on_transition(old_state, new_state)`` observer.
    """

    def __init__(self, failure_threshold: int = 5,
                 reset_timeout_s: float = 30.0, half_open_max: int = 1,
                 clock: Callable[[], float] = time.monotonic,
                 on_transition: Optional[Callable[[str, str], None]] = None):
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if reset_timeout_s < 0:
            raise ConfigurationError("reset_timeout_s must be >= 0")
        if half_open_max < 1:
            raise ConfigurationError("half_open_max must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.half_open_max = half_open_max
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._transitions = 0

    # ------------------------------------------------------------- internals

    def _set_state(self, new_state: str) -> None:
        """Transition the breaker. Caller must hold ``self._lock``."""
        old = self._state
        if old == new_state:
            return
        self._state = new_state
        self._transitions += 1
        if self._on_transition is not None:
            try:
                self._on_transition(old, new_state)
            except Exception:  # observer bugs must not poison the breaker
                _LOG.exception("circuit-breaker on_transition observer "
                               "raised (%s -> %s)", old, new_state)

    def _maybe_half_open(self) -> None:
        """Apply a pending open -> half-open move. Caller must hold
        ``self._lock``."""
        if (self._state == OPEN
                and self._clock() - self._opened_at >= self.reset_timeout_s):
            self._set_state(HALF_OPEN)
            self._probes_in_flight = 0

    # ------------------------------------------------------------ public API

    @property
    def state(self) -> str:
        """Current state, applying any pending open -> half-open move."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def allow(self) -> bool:
        """Whether the caller may attempt the protected operation now.

        In half-open state each True consumes one probe slot, so callers
        must report the outcome via ``record_success``/``record_failure``.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN:
                if self._probes_in_flight < self.half_open_max:
                    self._probes_in_flight += 1
                    return True
                return False
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if self._state != CLOSED:
                self._set_state(CLOSED)
            self._probes_in_flight = 0

    def record_failure(self) -> None:
        with self._lock:
            self._maybe_half_open()
            self._consecutive_failures += 1
            tripped = (self._state == HALF_OPEN
                       or (self._state == CLOSED
                           and self._consecutive_failures
                           >= self.failure_threshold))
            if tripped:
                self._set_state(OPEN)
                self._opened_at = self._clock()
                self._probes_in_flight = 0

    def stats(self) -> Dict:
        with self._lock:
            self._maybe_half_open()
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "transitions": self._transitions,
                "failure_threshold": self.failure_threshold,
                "reset_timeout_s": self.reset_timeout_s,
            }
