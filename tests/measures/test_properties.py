"""Hypothesis property tests for measure invariants.

Verifies, over random trajectories: non-negativity, identity, symmetry for
all four measures; the triangle inequality for the metric ones (Fréchet,
Hausdorff, ERP); and known orderings (DTW >= Fréchet-style lower bounds).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.measures import get_measure

coords = st.floats(min_value=-100.0, max_value=100.0,
                   allow_nan=False, allow_infinity=False, width=64)


def trajectories(min_len=2, max_len=12):
    # Measures reject sub-segment inputs (< 2 points) with
    # InvalidTrajectoryError; tests/measures/test_degenerate.py covers that.
    return st.integers(min_value=min_len, max_value=max_len).flatmap(
        lambda n: arrays(np.float64, (n, 2), elements=coords))


MEASURES = ["dtw", "frechet", "hausdorff", "erp", "edr", "lcss", "sspd"]
METRICS = ["frechet", "hausdorff", "erp"]


@pytest.mark.parametrize("name", MEASURES)
@given(a=trajectories(), b=trajectories())
@settings(max_examples=30, deadline=None)
def test_non_negative(name, a, b):
    assert get_measure(name).distance(a, b) >= 0.0


@pytest.mark.parametrize("name", MEASURES)
@given(a=trajectories())
@settings(max_examples=30, deadline=None)
def test_identity(name, a):
    assert get_measure(name).distance(a, a) == pytest.approx(0.0, abs=1e-9)


@pytest.mark.parametrize("name", MEASURES)
@given(a=trajectories(), b=trajectories())
@settings(max_examples=30, deadline=None)
def test_symmetry(name, a, b):
    measure = get_measure(name)
    assert measure.distance(a, b) == pytest.approx(measure.distance(b, a),
                                                   rel=1e-9, abs=1e-9)


@pytest.mark.parametrize("name", METRICS)
@given(a=trajectories(), b=trajectories(), c=trajectories())
@settings(max_examples=30, deadline=None)
def test_triangle_inequality(name, a, b, c):
    measure = get_measure(name)
    ab = measure.distance(a, b)
    bc = measure.distance(b, c)
    ac = measure.distance(a, c)
    assert ac <= ab + bc + 1e-6


@given(a=trajectories(min_len=2), b=trajectories(min_len=2))
@settings(max_examples=30, deadline=None)
def test_dtw_at_least_frechet(a, b):
    """DTW sums per-step costs, so DTW >= max step cost >= ... >= Fréchet
    is not generally true; but DTW >= Fréchet holds because the Fréchet
    bottleneck cost appears as one of the summed alignment steps."""
    dtw = get_measure("dtw").distance(a, b)
    frechet = get_measure("frechet").distance(a, b)
    assert dtw >= frechet - 1e-9


@given(a=trajectories(), b=trajectories())
@settings(max_examples=30, deadline=None)
def test_frechet_at_least_hausdorff(a, b):
    """Discrete Fréchet upper-bounds Hausdorff on the sample points."""
    frechet = get_measure("frechet").distance(a, b)
    hausdorff = get_measure("hausdorff").distance(a, b)
    assert frechet >= hausdorff - 1e-9


@pytest.mark.parametrize("name", MEASURES)
@given(a=trajectories(), b=trajectories(),
       shift=st.tuples(coords, coords))
@settings(max_examples=20, deadline=None)
def test_translation_invariance(name, a, b, shift):
    """All measures except ERP are translation invariant (ERP's gap point
    breaks it); translating both inputs by the same vector must preserve
    the distance for the others."""
    if name == "erp":
        return
    measure = get_measure(name)
    offset = np.array(shift)
    original = measure.distance(a, b)
    translated = measure.distance(a + offset, b + offset)
    assert translated == pytest.approx(original, rel=1e-6, abs=1e-6)
