"""Symbolic shape/dtype lattice for the tape abstract interpreter.

The ``tape-shape`` rule interprets encoder code abstractly: every value
is a :class:`AbstractValue` carrying a symbolic shape and a dtype. Both
domains are honest lattices — when two control-flow paths disagree, the
join is ⊤ ("unknown"), never a guess — so the interpreter only reports
*provable* inconsistencies and branch-joined shapes produce no false
positives.

Dimensions are linear terms ``coeff·sym + const`` over a single symbol
(a constructor argument such as ``self.hidden_size``), which is exactly
the shape algebra the repro encoders use: gate blocks are ``3*d`` or
``4*d`` wide, so ``lstm_gates`` divisibility and matmul compatibility of
``(3d, d) @ (d, B)`` are decidable without knowing ``d``. Two dims are
*provably different* only when they share a symbol (or are both
constant) and their linear forms differ; ``d`` vs ``128`` is unknown,
not an error.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

# --------------------------------------------------------------------- dims


class Dim:
    """One axis length: ``coeff * sym + const`` or ⊤ (unknown)."""

    __slots__ = ("coeff", "sym", "const", "is_top")

    def __init__(self, coeff: int = 0, sym: Optional[str] = None,
                 const: int = 0, is_top: bool = False):
        if sym is None:
            coeff = 0
        self.coeff = coeff
        self.sym = sym if coeff else None
        self.const = const
        self.is_top = is_top

    # constructors ----------------------------------------------------------

    @classmethod
    def top(cls) -> "Dim":
        return cls(is_top=True)

    @classmethod
    def of(cls, value: int) -> "Dim":
        return cls(const=int(value))

    @classmethod
    def symbol(cls, name: str) -> "Dim":
        return cls(coeff=1, sym=name)

    # algebra ---------------------------------------------------------------

    def scaled(self, k: int) -> "Dim":
        if self.is_top:
            return Dim.top()
        return Dim(coeff=self.coeff * k, sym=self.sym, const=self.const * k)

    def plus(self, other: "Dim") -> "Dim":
        if self.is_top or other.is_top:
            return Dim.top()
        if self.sym and other.sym and self.sym != other.sym:
            return Dim.top()
        sym = self.sym or other.sym
        return Dim(coeff=self.coeff + other.coeff, sym=sym,
                   const=self.const + other.const)

    # ordering --------------------------------------------------------------

    def same(self, other: "Dim") -> bool:
        """Provably equal (⊤ is never provably equal to anything)."""
        if self.is_top or other.is_top:
            return False
        return (self.coeff, self.sym, self.const) == \
            (other.coeff, other.sym, other.const)

    def provably_different(self, other: "Dim") -> bool:
        """True only when no assignment of the symbols makes them equal.

        Comparable forms (same symbol, or both constant) with different
        linear coefficients differ for every positive symbol value except
        when the difference has a positive-integer root — ``3d`` vs
        ``d+2`` meet at ``d=1`` — so mixed coeff/const differences are
        only reported when no such root exists.
        """
        if self.is_top or other.is_top:
            return False
        if self.sym != other.sym:
            if self.sym is None or other.sym is None:
                return False  # d vs 128: unknown
            return False      # d vs k: unknown
        dc = self.coeff - other.coeff
        dk = self.const - other.const
        if dc == 0:
            return dk != 0
        # coeff difference: equal only at sym = -dk/dc; dims are >= 1.
        if dk % dc != 0:
            return True
        root = -dk // dc
        return root < 1

    def join(self, other: "Dim") -> "Dim":
        return self if self.same(other) else Dim.top()

    def known_const(self) -> Optional[int]:
        if self.is_top or self.sym is not None:
            return None
        return self.const

    def divisible_by(self, k: int) -> Optional[bool]:
        """True/False when provable, None when unknown."""
        if self.is_top or k <= 0:
            return None
        if self.sym is None:
            return self.const % k == 0
        if self.coeff % k == 0 and self.const % k == 0:
            return True
        return None  # 3d % 4 depends on d

    def __repr__(self) -> str:
        if self.is_top:
            return "?"
        parts = []
        if self.coeff:
            parts.append(f"{self.coeff}*{self.sym}" if self.coeff != 1
                         else str(self.sym))
        if self.const or not parts:
            parts.append(str(self.const))
        return "+".join(parts)


# ------------------------------------------------------------------- shapes


class Shape:
    """A tuple of :class:`Dim`, or ⊤ (unknown rank)."""

    __slots__ = ("dims", "is_top")

    def __init__(self, dims: Optional[Sequence[Dim]] = None,
                 is_top: bool = False):
        self.dims: Tuple[Dim, ...] = tuple(dims or ())
        self.is_top = is_top

    @classmethod
    def top(cls) -> "Shape":
        return cls(is_top=True)

    @classmethod
    def of(cls, *dims: Dim) -> "Shape":
        return cls(dims)

    @property
    def rank(self) -> Optional[int]:
        return None if self.is_top else len(self.dims)

    def join(self, other: "Shape") -> "Shape":
        if self.is_top or other.is_top or len(self.dims) != len(other.dims):
            return Shape.top()
        return Shape([a.join(b) for a, b in zip(self.dims, other.dims)])

    def __repr__(self) -> str:
        if self.is_top:
            return "(?)"
        return "(" + ", ".join(repr(d) for d in self.dims) + ")"


# ------------------------------------------------------------------- dtypes

F64 = "float64"
F32 = "float32"
F16 = "float16"
INT = "int"
BOOL = "bool"
DTYPE_TOP = "?"

#: dtypes that violate the project's float64 discipline when they reach
#: a tape op or Tensor constructor.
BAD_FLOATS = frozenset({F32, F16, "complex64"})


def join_dtype(a: str, b: str) -> str:
    return a if a == b else DTYPE_TOP


# ------------------------------------------------------------------- values


class AbstractValue:
    """Shape + dtype for one abstract array/tensor/scalar."""

    __slots__ = ("shape", "dtype", "tensorlike")

    def __init__(self, shape: Optional[Shape] = None, dtype: str = DTYPE_TOP,
                 tensorlike: bool = False):
        self.shape = shape if shape is not None else Shape.top()
        self.dtype = dtype
        self.tensorlike = tensorlike

    @classmethod
    def top(cls) -> "AbstractValue":
        return cls()

    def join(self, other: "AbstractValue") -> "AbstractValue":
        return AbstractValue(self.shape.join(other.shape),
                             join_dtype(self.dtype, other.dtype),
                             self.tensorlike and other.tensorlike)

    def __repr__(self) -> str:
        return f"AbstractValue({self.shape!r}, {self.dtype})"


TOP = AbstractValue.top()


# ------------------------------------------------------------- op transfers


def matmul(a: Shape, b: Shape) -> Tuple[Shape, Optional[str]]:
    """Numpy matmul transfer: result shape + error when provably wrong."""
    if a.is_top or b.is_top:
        return Shape.top(), None
    ra, rb = len(a.dims), len(b.dims)
    if ra == 0 or rb == 0:
        return Shape.top(), "matmul operand is 0-d"
    inner_a = a.dims[-1]
    inner_b = b.dims[-2] if rb >= 2 else b.dims[0]
    if inner_a.provably_different(inner_b):
        return Shape.top(), (f"inner dims {inner_a!r} and {inner_b!r} "
                             f"cannot match")
    if ra == 1 and rb == 1:
        return Shape.of(), None
    if ra == 1:
        return Shape(b.dims[:-2] + b.dims[-1:]), None
    if rb == 1:
        return Shape(a.dims[:-1]), None
    # Batch dims join elementwise; mismatches there broadcast or error,
    # both of which we approximate as ⊤ rather than guessing.
    if ra == 2 and rb == 2:
        return Shape.of(a.dims[0], b.dims[-1]), None
    return Shape.top(), None


def broadcast(a: Shape, b: Shape) -> Tuple[Shape, Optional[str]]:
    """Numpy broadcasting transfer for elementwise ops."""
    if a.is_top or b.is_top:
        return Shape.top(), None
    out: List[Dim] = []
    da, db = list(a.dims), list(b.dims)
    while len(da) < len(db):
        da.insert(0, Dim.of(1))
    while len(db) < len(da):
        db.insert(0, Dim.of(1))
    for x, y in zip(da, db):
        if x.known_const() == 1:
            out.append(y)
        elif y.known_const() == 1:
            out.append(x)
        elif x.provably_different(y):
            return Shape.top(), (f"shapes {a!r} and {b!r} do not broadcast "
                                 f"({x!r} vs {y!r})")
        else:
            out.append(x if x.same(y) else Dim.top())
    return Shape(out), None


def concat(shapes: Iterable[Shape], axis: int) -> Tuple[Shape,
                                                        Optional[str]]:
    shapes = list(shapes)
    if not shapes or any(s.is_top for s in shapes):
        return Shape.top(), None
    rank = len(shapes[0].dims)
    if any(len(s.dims) != rank for s in shapes) or not \
            (-rank <= axis < rank):
        return Shape.top(), None
    axis %= rank
    out = list(shapes[0].dims)
    total = shapes[0].dims[axis]
    for shape in shapes[1:]:
        for i in range(rank):
            if i == axis:
                continue
            if shape.dims[i].provably_different(out[i]):
                return Shape.top(), (
                    f"concat inputs disagree on non-concat axis {i}: "
                    f"{out[i]!r} vs {shape.dims[i]!r}")
            out[i] = out[i] if out[i].same(shape.dims[i]) else Dim.top()
        total = total.plus(shape.dims[axis])
    out[axis] = total
    return Shape(out), None


def stack(shapes: Iterable[Shape], axis: int) -> Tuple[Shape,
                                                       Optional[str]]:
    shapes = list(shapes)
    if not shapes or any(s.is_top for s in shapes):
        return Shape.top(), None
    rank = len(shapes[0].dims)
    base = list(shapes[0].dims)
    for shape in shapes[1:]:
        if len(shape.dims) != rank:
            return Shape.top(), "stack inputs have different ranks"
        for i in range(rank):
            if shape.dims[i].provably_different(base[i]):
                return Shape.top(), (
                    f"stack inputs disagree on axis {i}: "
                    f"{base[i]!r} vs {shape.dims[i]!r}")
            base[i] = base[i] if base[i].same(shape.dims[i]) else Dim.top()
    if not -(rank + 1) <= axis <= rank:
        return Shape.top(), None
    axis %= (rank + 1)
    base.insert(axis, Dim.of(len(shapes)))
    return Shape(base), None


def lstm_gates(pre: Shape, num_gates: int) -> Tuple[Tuple[Shape, ...],
                                                    Optional[str]]:
    """``lstm_gates(pre, n)`` splits the last axis into n equal blocks."""
    if pre.is_top or not pre.dims:
        return (Shape.top(),) * max(num_gates, 1), None
    last = pre.dims[-1]
    ok = last.divisible_by(num_gates)
    if ok is False:
        return (Shape.top(),) * num_gates, (
            f"last axis {last!r} is not divisible by num_gates="
            f"{num_gates}")
    if ok is True and (last.sym is not None or last.const):
        piece = Dim(coeff=last.coeff // num_gates, sym=last.sym,
                    const=last.const // num_gates)
    else:
        piece = Dim.top()
    return tuple(Shape(pre.dims[:-1] + (piece,))
                 for _ in range(num_gates)), None
